package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirRepoRoot moves the test into the module root so findModuleRoot and the
// relative package patterns resolve the same way they do for a CI invocation.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(filepath.Dir(filepath.Dir(wd)))
}

func TestRunRepoClean(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("run on the live tree exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run still printed diagnostics:\n%s", stdout.String())
	}
}

func TestRunFixturesDirty(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr strings.Builder
	code := run([]string{"internal/lint/testdata/floateq/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run on fixtures exited %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[floateq]") {
		t.Fatalf("fixture run reported no floateq findings:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Fatalf("missing findings summary on stderr:\n%s", stderr.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"-rules", "nosuchrule"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d\nstderr:\n%s", code, stderr.String())
	}
	for _, rule := range []string{
		"nodeterm", "floateq", "ctxflow", "gopanic", "stdlibonly",
		"fingerprintcov", "errdrop", "mutexspan", "seedflow",
	} {
		if !strings.Contains(stdout.String(), rule) {
			t.Fatalf("-list output missing %s:\n%s", rule, stdout.String())
		}
	}
}

// TestRunAllows: the audit mode prints active suppressions as
// "file:line: [rule] reason" and reports nothing else.
func TestRunAllows(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"-allows", "internal/lint/testdata/seedflow/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-allows exited %d\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[seedflow]") || !strings.Contains(out, "domain offset") {
		t.Fatalf("-allows output missing the fixture suppression:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, ".go:") || !strings.Contains(line, "] ") {
			t.Fatalf("malformed -allows line %q", line)
		}
	}
}
