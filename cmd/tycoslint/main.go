// Command tycoslint runs the TYCOS invariant analyzers (see internal/lint)
// over the given package directories and reports findings as
// "file:line: [rule] message". It exits 0 when the tree is clean, 1 when any
// diagnostic is reported, and 2 when packages fail to load or type-check.
//
// Usage:
//
//	tycoslint [-rules rule1,rule2] [-list] [-allows] [packages...]
//
// Package arguments are directories relative to the module root; a trailing
// /... walks recursively, skipping testdata (point at a testdata tree
// explicitly to lint fixtures). With no arguments it lints ./... .
//
// -allows prints every active //lint:allow suppression as
// "file:line: [rule] reason" instead of linting, so the allowlist can be
// audited in one pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tycos/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tycoslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated analyzer subset to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	allows := fs.Bool("allows", false, "print every active //lint:allow suppression and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader := &lint.Loader{Root: root}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *allows {
		for _, a := range lint.CollectAllows(pkgs) {
			fmt.Fprintln(stdout, a)
		}
		return 0
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tycoslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("tycoslint: no go.mod found above the working directory")
		}
		dir = parent
	}
}
