package main

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"tycos"
)

// progressSink renders a single live progress line for -all sweeps: pairs
// done, windows found so far, failures, and an ETA extrapolated from the
// average pair duration. It redraws in place with a carriage return, so it
// belongs on stderr — stdout stays clean, parseable result lines. Renders
// are throttled to one per renderEvery except the final one, which is always
// drawn (and newline-terminated) so the finished state is never lost to the
// throttle. PairFinished is the only event it consumes; sweeps deliver it
// from many workers at once, hence the mutex.
type progressSink struct {
	mu      sync.Mutex
	w       io.Writer
	start   time.Time
	last    time.Time // last render, zero until the first
	done    int
	total   int
	windows int
	failed  int
	width   int // widest line drawn so far, for trailing-garbage erasure

	now func() time.Time // test hook
}

// renderEvery caps redraw frequency: fast sweeps finish hundreds of pairs
// per second and unthrottled redraws would swamp the terminal.
const renderEvery = 100 * time.Millisecond

func newProgressSink(w io.Writer) *progressSink {
	return &progressSink{w: w, now: time.Now}
}

func (p *progressSink) Event(e tycos.Event) {
	// BaseEvent: with -trace-sample the event may arrive trace-stamped.
	pf, ok := tycos.BaseEvent(e).(tycos.PairFinished)
	if !ok {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = p.now()
	}
	p.total = pf.Total
	p.done++
	p.windows += pf.Windows
	if pf.Err != "" {
		p.failed++
	}
	p.render(p.done >= p.total)
}

func (p *progressSink) Count(name string, delta int64)           {}
func (p *progressSink) PhaseEnd(ph tycos.Phase, d time.Duration) {}

// render draws the current state; it assumes p.mu is held.
func (p *progressSink) render(final bool) {
	now := p.now()
	if !final && !p.last.IsZero() && now.Sub(p.last) < renderEvery {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("sweep: %d/%d pairs  %d windows", p.done, p.total, p.windows)
	if p.failed > 0 {
		line += fmt.Sprintf("  %d failed", p.failed)
	}
	if final {
		line += fmt.Sprintf("  done in %s", elapsed.Round(time.Millisecond))
	} else if p.done > 0 {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf("  eta %s", eta.Round(time.Second))
	}
	pad := ""
	if n := p.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	if len(line) > p.width {
		p.width = len(line)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	if final {
		fmt.Fprintln(p.w)
	}
}
