package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFleetCSV writes a CSV with one anchor column, two followers (one at
// delay 3), one noise column and one flatlined column.
func writeFleetCSV(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	const n = 160
	anchor := make([]float64, n)
	for i := range anchor {
		anchor[i] = math.Sin(float64(i)/7) + 0.1*math.Cos(float64(i)/3)
	}
	follow := func(delay int) []float64 {
		v := make([]float64, n)
		for i := range v {
			j := i - delay
			if j < 0 {
				j = 0
			}
			v[i] = anchor[j]
		}
		return v
	}
	f0, f3 := follow(0), follow(3)
	var sb strings.Builder
	sb.WriteString("anchor,hit0,hit3,noise,flat\n")
	var ar float64
	for i := 0; i < n; i++ {
		ar = 0.9*ar + rng.NormFloat64()
		sb.WriteString(fmt.Sprintf("%.6f,%.6f,%.6f,%.6f,0.25\n", anchor[i], f0[i], f3[i], ar))
	}
	path := filepath.Join(t.TempDir(), "fleet.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiscoverSubcommand(t *testing.T) {
	in := writeFleetCSV(t)
	code, stdout, stderr := runCLI(t, "discover", "-in", in, "-anchor", "anchor",
		"-smin", "8", "-smax", "16", "-tdmax", "4", "-sigma", "0.2", "-topk", "3", "-stats")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitOK, stdout, stderr)
	}
	if !strings.Contains(stdout, "#1 hit") {
		t.Errorf("top hit is not a planted follower:\n%s", stdout)
	}
	if strings.Contains(stdout, "flat") {
		t.Errorf("flatlined candidate was ranked:\n%s", stdout)
	}
	if !strings.Contains(stdout, "candidates: 4") {
		t.Errorf("-stats fleet size missing:\n%s", stdout)
	}
}

func TestDiscoverSubcommandExplicitCandidates(t *testing.T) {
	in := writeFleetCSV(t)
	code, stdout, stderr := runCLI(t, "discover", "-in", in, "-anchor", "anchor",
		"-candidates", "hit3,noise", "-screen=false",
		"-smin", "8", "-smax", "16", "-tdmax", "4", "-sigma", "0.2", "-stats")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitOK, stderr)
	}
	if !strings.Contains(stdout, "hit3") {
		t.Errorf("explicit candidate hit3 not ranked:\n%s", stdout)
	}
	if !strings.Contains(stdout, "candidates: 2") {
		t.Errorf("fleet not narrowed to the explicit list:\n%s", stdout)
	}
	if !strings.Contains(stdout, "screened: 0") {
		t.Errorf("screen ran despite -screen=false:\n%s", stdout)
	}
}

// TestDiscoverSubcommandCheckpointResume: a second run over the same journal
// replays every confirmation and prints identical rankings.
func TestDiscoverSubcommandCheckpointResume(t *testing.T) {
	in := writeFleetCSV(t)
	ckpt := filepath.Join(t.TempDir(), "disc.jsonl")
	args := []string{"discover", "-in", in, "-anchor", "anchor",
		"-checkpoint", ckpt, "-smin", "8", "-smax", "16", "-tdmax", "4", "-sigma", "0.2", "-stats"}
	code, out1, stderr := runCLI(t, args...)
	if code != exitOK {
		t.Fatalf("first run exit %d\nstderr:\n%s", code, stderr)
	}
	code, out2, stderr := runCLI(t, args...)
	if code != exitOK {
		t.Fatalf("second run exit %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(out2, "already journaled, resuming") {
		t.Errorf("resume banner missing:\n%s", out2)
	}
	if !strings.Contains(out2, "searched + ") {
		t.Fatalf("-stats confirmed line missing:\n%s", out2)
	}
	if !strings.Contains(out2, "confirmed: 0 searched") {
		t.Errorf("second run recomputed instead of replaying:\n%s", out2)
	}
	// Rankings (everything before the stats block) must match byte for byte.
	cut := func(s string) string {
		if i := strings.Index(s, "candidates:"); i >= 0 {
			return s[strings.Index(s, "#"):i]
		}
		return s
	}
	if cut(out1) != cut(out2) {
		t.Errorf("resumed rankings differ:\n%s\nvs\n%s", out1, out2)
	}
}

func TestDiscoverSubcommandUsageErrors(t *testing.T) {
	in := writeFleetCSV(t)
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no anchor", []string{"discover", "-in", in}, exitUsage},
		{"no input", []string{"discover", "-anchor", "anchor"}, exitUsage},
		{"bad variant", []string{"discover", "-in", in, "-anchor", "anchor", "-variant", "zzz"}, exitUsage},
		{"unknown anchor", []string{"discover", "-in", in, "-anchor", "nope"}, exitFailure},
		{"unknown candidate", []string{"discover", "-in", in, "-anchor", "anchor", "-candidates", "nope"}, exitFailure},
		{"anchor as candidate", []string{"discover", "-in", in, "-anchor", "anchor", "-candidates", "anchor"}, exitFailure},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := runCLI(t, tc.args...)
			if code != tc.code {
				t.Errorf("exit %d, want %d", code, tc.code)
			}
		})
	}
}

// TestDiscoverSubcommandProgress: -progress renders screen and confirm phase
// lines on stderr.
func TestDiscoverSubcommandProgress(t *testing.T) {
	in := writeFleetCSV(t)
	code, _, stderr := runCLI(t, "discover", "-in", in, "-anchor", "anchor",
		"-progress", "-smin", "8", "-smax", "16", "-tdmax", "4", "-sigma", "0.2")
	if code != exitOK {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "screen ") || !strings.Contains(stderr, "confirm ") {
		t.Errorf("progress phases missing on stderr:\n%q", stderr)
	}
}
