package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"tycos"
)

// runDiscover is the `tycos discover` subcommand: anchor→fleet top-K
// discovery over the columns of one CSV.
//
//	tycos discover -in plugs.csv -anchor plug7 \
//	      [-candidates a,b,c] [-topk 10] [-screen-threshold 0.2] \
//	      [-checkpoint disc.jsonl] [-progress] [search flags]
//
// Every other column is a candidate unless -candidates narrows the fleet.
// The ranked top-K is printed best first; exit codes match the main command
// (0 complete, 1 failure, 2 usage, 3 partial).
func runDiscover(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tycos discover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "input CSV file (required)")
		anchor     = fs.String("anchor", "", "name of the anchor column (required)")
		candidates = fs.String("candidates", "", "comma-separated candidate columns (default: every other column)")
		topK       = fs.Int("topk", 10, "ranked candidates to keep")
		screen     = fs.Bool("screen", true, "pre-screen candidates with the sliding-PCC baseline before confirming")
		screenThr  = fs.Float64("screen-threshold", 0, "|r| a candidate must reach in the pre-screen to survive (0 = 0.2)")
		screenWin  = fs.Int("screen-window", 0, "pre-screen sliding window size (0 = max(smin, 8))")
		screenStr  = fs.Int("screen-stride", 0, "pre-screen delay-grid stride (0 = max(1, tdmax/4))")
		workers    = fs.Int("workers", 0, "candidate-level workers (0 = GOMAXPROCS); results are identical for every value")
		ckpt       = fs.String("checkpoint", "", "journal confirmed candidates to this JSONL file and resume from it")
		progress   = fs.Bool("progress", false, "render a live progress line on stderr")
		stats      = fs.Bool("stats", false, "print discovery statistics")
		timeout    = fs.Duration("timeout", 0, "overall wall-clock budget (0 = none)")

		sMin       = fs.Int("smin", 6, "minimum window size (samples)")
		sMax       = fs.Int("smax", 96, "maximum window size (samples)")
		tdMax      = fs.Int("tdmax", 30, "maximum |time delay| (samples)")
		sigma      = fs.Float64("sigma", 0.25, "correlation threshold on normalized MI")
		epsilon    = fs.Float64("epsilon", 0, "noise threshold (0 = sigma/4)")
		k          = fs.Int("k", 4, "KSG nearest-neighbour count")
		delta      = fs.Int("delta", 1, "neighbourhood moving step δ")
		maxIdle    = fs.Int("maxidle", 8, "idle explorations before stopping a climb")
		searchTopK = fs.Int("search-topk", 0, "keep only the K best windows per candidate (0 = threshold mode)")
		variant    = fs.String("variant", "lmn", "search variant: l, ln, lm, lmn")
		seed       = fs.Int64("seed", 1, "root random seed (per-candidate seeds are derived from it)")
		maxEvals   = fs.Int("maxevals", 0, "stop after this many window evaluations per candidate (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *in == "" || *anchor == "" {
		fs.Usage()
		return exitUsage
	}

	opts := tycos.DiscoveryOptions{
		Search: tycos.Options{
			SMin: *sMin, SMax: *sMax, TDMax: *tdMax,
			Sigma: *sigma, Epsilon: *epsilon, K: *k,
			Delta: *delta, MaxIdle: *maxIdle, TopK: *searchTopK,
			Normalization:  tycos.NormMaxEntropy,
			Seed:           *seed,
			MaxEvaluations: *maxEvals,
		},
		TopK:            *topK,
		Screen:          *screen,
		ScreenThreshold: *screenThr,
		ScreenWindow:    *screenWin,
		ScreenStride:    *screenStr,
		Workers:         *workers,
	}
	switch strings.ToLower(*variant) {
	case "l":
		opts.Search.Variant = tycos.VariantL
	case "ln":
		opts.Search.Variant = tycos.VariantLN
	case "lm":
		opts.Search.Variant = tycos.VariantLM
	case "lmn":
		opts.Search.Variant = tycos.VariantLMN
	default:
		fmt.Fprintf(stderr, "tycos: unknown variant %q (want l, ln, lm or lmn)\n", *variant)
		return exitUsage
	}

	cols, err := tycos.LoadAllCSV(*in)
	if err != nil {
		fmt.Fprintln(stderr, "tycos:", err)
		return exitFailure
	}
	anchorSeries, cands, err := splitFleet(cols, *anchor, *candidates)
	if err != nil {
		fmt.Fprintln(stderr, "tycos:", err)
		return exitFailure
	}

	if *ckpt != "" {
		journal, err := tycos.OpenCheckpoint(*ckpt)
		if err != nil {
			fmt.Fprintln(stderr, "tycos:", err)
			return exitFailure
		}
		defer journal.Close()
		if n := journal.Len(); n > 0 {
			fmt.Fprintf(stdout, "checkpoint %s: %d candidates already journaled, resuming\n", *ckpt, n)
		}
		opts.Journal = journal
	}
	if *progress {
		// OnProgress runs on the engine's workers concurrently; the lock keeps
		// the \r-rewritten line whole.
		var mu sync.Mutex
		opts.OnProgress = func(p tycos.DiscoveryProgress) {
			mu.Lock()
			fmt.Fprintf(stderr, "\rtycos: %s %d/%d  %-24s", p.Phase, p.Done, p.Total, p.Candidate)
			mu.Unlock()
		}
		defer fmt.Fprintln(stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := tycos.Discover(ctx, anchorSeries, cands, opts)
	if err != nil {
		fmt.Fprintln(stderr, "tycos:", err)
		return exitFailure
	}
	printDiscovery(stdout, res, *stats)
	for _, ce := range res.Errors {
		fmt.Fprintf(stderr, "tycos: candidate %s: %s\n", ce.Name, ce.Err)
	}
	if res.Partial {
		fmt.Fprintf(stdout, "(partial: discovery stopped early, %d candidates unfinished)\n", res.Stats.Unfinished)
		return exitPartial
	}
	if len(res.Errors) > 0 {
		return exitFailure
	}
	return exitOK
}

// splitFleet resolves the anchor column and the candidate fleet from the CSV
// columns. An empty pick means every non-anchor column, in file order.
func splitFleet(cols []tycos.Series, anchor, pick string) (tycos.Series, []tycos.Series, error) {
	byName := make(map[string]tycos.Series, len(cols))
	for _, c := range cols {
		byName[c.Name] = c
	}
	a, ok := byName[anchor]
	if !ok {
		return tycos.Series{}, nil, fmt.Errorf("anchor column %q not in CSV", anchor)
	}
	var cands []tycos.Series
	if pick == "" {
		for _, c := range cols {
			if c.Name != anchor {
				cands = append(cands, c)
			}
		}
	} else {
		for _, name := range strings.Split(pick, ",") {
			name = strings.TrimSpace(name)
			if name == anchor {
				return tycos.Series{}, nil, fmt.Errorf("anchor %q listed as its own candidate", name)
			}
			c, ok := byName[name]
			if !ok {
				return tycos.Series{}, nil, fmt.Errorf("candidate column %q not in CSV", name)
			}
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return tycos.Series{}, nil, fmt.Errorf("no candidate columns besides the anchor")
	}
	return a, cands, nil
}

// printDiscovery renders the ranked fleet, best candidate first.
func printDiscovery(stdout io.Writer, res tycos.DiscoveryResult, stats bool) {
	if len(res.Ranked) == 0 {
		fmt.Fprintln(stdout, "no correlated candidates found")
	}
	for i, c := range res.Ranked {
		fmt.Fprintf(stdout, "#%d %s  score=%.3f  windows=%d\n", i+1, c.Name, c.Score, len(c.Result.Windows))
		for _, w := range c.Result.Windows {
			fmt.Fprintf(stdout, "  %v  score=%.3f  size=%d\n", w.Window, w.MI, w.Size())
		}
	}
	if stats {
		s := res.Stats
		fmt.Fprintf(stdout, "candidates: %d\nscreened: %d (pruned %d, %d degenerate windows)\nconfirmed: %d searched + %d replayed\nthreshold: %.3f\nwindows evaluated: %d\n",
			s.Candidates, s.Screened, s.Pruned, s.DegenerateWindows,
			s.Searched, s.Replayed, res.Threshold, s.Evaluated)
	}
}
