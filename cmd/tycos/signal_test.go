package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the CLI entry point for forked-process tests: with
// TYCOS_CLI_CHILD set the test binary becomes tycos itself, so signal tests
// deliver real SIGTERMs to a real process instead of simulating them.
func TestMain(m *testing.M) {
	if os.Getenv("TYCOS_CLI_CHILD") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("TYCOS_CLI_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "tycos test child:", err)
			os.Exit(exitUsage)
		}
		os.Exit(run(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// writeHeavyCSV builds a pair large enough that the full search runs for
// many seconds — long enough that a signal sent shortly after startup is
// guaranteed to land mid-search.
func writeHeavyCSV(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	sb.WriteString("a,b\n")
	const n = 4000
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		b := 0.8*a + 0.2*rng.NormFloat64()
		sb.WriteString(fmt.Sprintf("%.6f,%.6f\n", a, b))
	}
	path := filepath.Join(t.TempDir(), "heavy.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSIGTERMPrintsPartialAndExits3 forks a heavy single-pair search, sends
// SIGTERM mid-run and expects the graceful-cancellation contract: the
// windows accepted so far under a "(partial" banner and exit status 3 —
// exactly what SIGINT has always done, now also for the signal that cron,
// timeout(1) and container runtimes actually send.
func TestSIGTERMPrintsPartialAndExits3(t *testing.T) {
	in := writeHeavyCSV(t)
	args, err := json.Marshal([]string{
		"-in", in, "-x", "a", "-y", "b",
		"-smin", "6", "-smax", "400", "-tdmax", "100", "-sigma", "0.25",
		"-variant", "l", // slowest variant: from-scratch MI per window
	})
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "TYCOS_CLI_CHILD=1", "TYCOS_CLI_ARGS="+string(args))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// Give the child time to install its signal handler and enter the
	// search (handler installation is microseconds into run; the search
	// itself runs for minutes uninterrupted).
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	out := readAllWithin(t, stdout, 60*time.Second)
	err = cmd.Wait()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if code != exitPartial {
		t.Fatalf("exit = %d, want %d (graceful partial); output:\n%s", code, exitPartial, out)
	}
	if !strings.Contains(out, "(partial") {
		t.Errorf("partial banner missing from output:\n%s", out)
	}
}

// readAllWithin drains r, failing the test if it takes longer than d (a
// child that ignores the signal would otherwise hang the suite).
func readAllWithin(t *testing.T, r io.Reader, d time.Duration) string {
	t.Helper()
	type result struct {
		out string
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() { recover() }()
		var sb strings.Builder
		_, err := io.Copy(&sb, bufio.NewReader(r))
		ch <- result{sb.String(), err}
	}()
	select {
	case res := <-ch:
		return res.out
	case <-time.After(d):
		t.Fatalf("child did not exit within %v of SIGTERM", d)
		return ""
	}
}
