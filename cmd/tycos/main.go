// Command tycos searches a CSV time-series pair for multi-scale time-delay
// correlations and prints the extracted windows.
//
// Usage:
//
//	tycos -in data.csv -x rain -y collisions \
//	      -smin 6 -smax 96 -tdmax 30 -sigma 0.25 [-variant lmn] [-topk 0]
//	tycos -in plugs.csv -all [-checkpoint sweep.jsonl] [-retries 1]
//
// The input file must be a headered CSV; -x and -y name the two columns, or
// -all sweeps every pair of columns. Windows are printed one per line as
// ([start,end], τ=delay) score.
//
// A first SIGINT (Ctrl-C) cancels the search gracefully: the windows
// accepted so far are printed under a "(partial)" banner. -timeout and
// -maxevals bound the run the same way. With -checkpoint, completed pairs of
// a sweep are journaled so a killed run resumes where it left off.
//
// Exit status: 0 on a complete run, 1 when the search or input loading
// fails, 2 on usage errors, 3 when the run was interrupted or hit a budget
// and the printed results are partial.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"tycos"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitPartial = 3
)

func main() { os.Exit(run()) }

func run() int {
	var (
		in       = flag.String("in", "", "input CSV file (required)")
		xName    = flag.String("x", "", "name of the X column (required unless -all)")
		yName    = flag.String("y", "", "name of the Y column (required unless -all)")
		all      = flag.Bool("all", false, "search every pair of CSV columns instead of one -x/-y pair")
		sMin     = flag.Int("smin", 6, "minimum window size (samples)")
		sMax     = flag.Int("smax", 96, "maximum window size (samples)")
		tdMax    = flag.Int("tdmax", 30, "maximum |time delay| (samples)")
		sigma    = flag.Float64("sigma", 0.25, "correlation threshold on normalized MI")
		epsilon  = flag.Float64("epsilon", 0, "noise threshold (0 = sigma/4)")
		k        = flag.Int("k", 4, "KSG nearest-neighbour count")
		delta    = flag.Int("delta", 1, "neighbourhood moving step δ")
		maxIdle  = flag.Int("maxidle", 8, "idle explorations before stopping a climb")
		topK     = flag.Int("topk", 0, "keep only the K best windows (0 = threshold mode)")
		variant  = flag.String("variant", "lmn", "search variant: l, ln, lm, lmn")
		brute    = flag.Bool("brute", false, "run the exact Brute Force search instead (slow)")
		seed     = flag.Int64("seed", 1, "random seed")
		stats    = flag.Bool("stats", false, "print search statistics")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget (0 = none)")
		maxEvals = flag.Int("maxevals", 0, "stop after this many window evaluations per pair (0 = none)")
		parallel = flag.Int("parallel", 0, "sweep workers for -all (0 = GOMAXPROCS)")
		retries  = flag.Int("retries", 0, "extra attempts per failed pair in -all sweeps")
		pairTO   = flag.Duration("pairtimeout", 0, "per-pair wall-clock budget in -all sweeps (0 = none)")
		ckpt     = flag.String("checkpoint", "", "journal completed sweep pairs to this JSONL file and resume from it")
	)
	flag.Parse()
	if *in == "" || (!*all && (*xName == "" || *yName == "")) {
		flag.Usage()
		return exitUsage
	}
	opts := tycos.Options{
		SMin: *sMin, SMax: *sMax, TDMax: *tdMax,
		Sigma: *sigma, Epsilon: *epsilon, K: *k,
		Delta: *delta, MaxIdle: *maxIdle, TopK: *topK,
		Normalization:  tycos.NormMaxEntropy,
		Seed:           *seed,
		MaxEvaluations: *maxEvals,
	}
	switch strings.ToLower(*variant) {
	case "l":
		opts.Variant = tycos.VariantL
	case "ln":
		opts.Variant = tycos.VariantLN
	case "lm":
		opts.Variant = tycos.VariantLM
	case "lmn":
		opts.Variant = tycos.VariantLMN
	default:
		fmt.Fprintf(os.Stderr, "tycos: unknown variant %q (want l, ln, lm or lmn)\n", *variant)
		return exitUsage
	}

	// A first SIGINT cancels the search gracefully — the windows accepted so
	// far are printed with a "(partial)" banner; a second SIGINT kills the
	// process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *all {
		return runSweep(ctx, *in, opts, tycos.SweepOptions{
			Parallelism: *parallel,
			Retries:     *retries,
			PairTimeout: *pairTO,
		}, *ckpt, *stats)
	}
	return runPair(ctx, *in, *xName, *yName, opts, *brute, *stats)
}

// runPair searches the single (-x, -y) pair.
func runPair(ctx context.Context, in, xName, yName string, opts tycos.Options, brute, stats bool) int {
	pair, err := tycos.LoadPairCSV(in, xName, yName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tycos:", err)
		return exitFailure
	}
	var res tycos.Result
	if brute {
		res, err = tycos.BruteForce(pair, opts)
	} else {
		res, err = tycos.SearchContext(ctx, pair, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tycos:", err)
		return exitFailure
	}
	printResult(res, stats)
	if res.Partial {
		fmt.Printf("(partial: search stopped early — %s)\n", res.Stats.StopReason)
		return exitPartial
	}
	return exitOK
}

// runSweep searches every pair of columns in the CSV.
func runSweep(ctx context.Context, in string, opts tycos.Options, sw tycos.SweepOptions, ckptPath string, stats bool) int {
	cols, err := tycos.LoadAllCSV(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tycos:", err)
		return exitFailure
	}
	if ckptPath != "" {
		journal, err := tycos.OpenCheckpoint(ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tycos:", err)
			return exitFailure
		}
		defer journal.Close()
		if n := journal.Len(); n > 0 {
			fmt.Printf("checkpoint %s: %d pairs already journaled, resuming\n", ckptPath, n)
		}
		sw.Checkpoint = journal
	}
	results := tycos.SearchAllContext(ctx, cols, opts, sw)
	failed, partial := 0, false
	for _, pr := range results {
		if pr.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "tycos: %v\n", pr.Err)
			continue
		}
		tag := ""
		if pr.FromCheckpoint {
			tag = "  (from checkpoint)"
		}
		if pr.Result.Partial {
			partial = true
			tag += "  (partial)"
		}
		fmt.Printf("%s / %s: %d windows%s\n", pr.XName, pr.YName, len(pr.Result.Windows), tag)
		for _, w := range pr.Result.Windows {
			fmt.Printf("  %v  score=%.3f  size=%d\n", w.Window, w.MI, w.Size())
		}
		if stats {
			printStats(pr.Result.Stats, "  ")
		}
	}
	if ctx.Err() != nil || partial {
		fmt.Printf("(partial: sweep stopped early, %d/%d pairs failed or unfinished)\n", failed, len(results))
		return exitPartial
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tycos: %d/%d pairs failed\n", failed, len(results))
		return exitFailure
	}
	return exitOK
}

func printResult(res tycos.Result, stats bool) {
	if len(res.Windows) == 0 {
		fmt.Println("no correlated windows found")
	}
	for _, w := range res.Windows {
		fmt.Printf("%v  score=%.3f  size=%d\n", w.Window, w.MI, w.Size())
	}
	if stats {
		printStats(res.Stats, "")
	}
}

func printStats(st tycos.Stats, indent string) {
	fmt.Printf("%swindows evaluated: %d\n%sbatch MI estimations: %d\n%sincremental moves: %d\n%srestarts: %d\n%spruned directions: %d\n%sstop reason: %s\n",
		indent, st.WindowsEvaluated, indent, st.MIBatch, indent, st.MIIncremental,
		indent, st.Restarts, indent, st.PrunedDirections, indent, st.StopReason)
}
