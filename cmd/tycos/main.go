// Command tycos searches a CSV time-series pair for multi-scale time-delay
// correlations and prints the extracted windows.
//
// Usage:
//
//	tycos -in data.csv -x rain -y collisions \
//	      -smin 6 -smax 96 -tdmax 30 -sigma 0.25 [-variant lmn] [-topk 0]
//	tycos -in plugs.csv -all [-checkpoint sweep.jsonl] [-retries 1] [-progress]
//	tycos discover -in plugs.csv -anchor plug7 [-topk 10] [-progress]
//
// The input file must be a headered CSV; -x and -y name the two columns, or
// -all sweeps every pair of columns. Windows are printed one per line as
// ([start,end], τ=delay) score.
//
// A first SIGINT (Ctrl-C) cancels the search gracefully: the windows
// accepted so far are printed under a "(partial)" banner. -timeout and
// -maxevals bound the run the same way. With -checkpoint, completed pairs of
// a sweep are journaled so a killed run resumes where it left off.
//
// Observability: -trace streams every search event as JSONL (with
// -trace-sample R the run carries a deterministic trace ID stamped onto
// every line), -progress renders a live pair/ETA line on stderr during -all
// sweeps, -pprof serves net/http/pprof and live expvar counters, and
// -cpuprofile/-memprofile write pprof-loadable profiles of the run.
//
// Exit status: 0 on a complete run, 1 when the search or input loading
// fails, 2 on usage errors, 3 when the run was interrupted or hit a budget
// and the printed results are partial.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof serves the profiling endpoints
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"syscall"

	"tycos"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitPartial = 3
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole CLI behind an injectable front: tests drive it with
// custom argv and buffers instead of a subprocess.
func run(args []string, stdout, stderr io.Writer) int {
	// Subcommands dispatch before flag parsing; everything else is the
	// original pair/sweep flag surface.
	if len(args) > 0 && args[0] == "discover" {
		return runDiscover(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("tycos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input CSV file (required)")
		xName    = fs.String("x", "", "name of the X column (required unless -all)")
		yName    = fs.String("y", "", "name of the Y column (required unless -all)")
		all      = fs.Bool("all", false, "search every pair of CSV columns instead of one -x/-y pair")
		sMin     = fs.Int("smin", 6, "minimum window size (samples)")
		sMax     = fs.Int("smax", 96, "maximum window size (samples)")
		tdMax    = fs.Int("tdmax", 30, "maximum |time delay| (samples)")
		sigma    = fs.Float64("sigma", 0.25, "correlation threshold on normalized MI")
		epsilon  = fs.Float64("epsilon", 0, "noise threshold (0 = sigma/4)")
		k        = fs.Int("k", 4, "KSG nearest-neighbour count")
		delta    = fs.Int("delta", 1, "neighbourhood moving step δ")
		maxIdle  = fs.Int("maxidle", 8, "idle explorations before stopping a climb")
		topK     = fs.Int("topk", 0, "keep only the K best windows (0 = threshold mode)")
		variant  = fs.String("variant", "lmn", "search variant: l, ln, lm, lmn")
		knnEng   = fs.String("knn-engine", "", "k-NN engine for batch variants (l, ln): kdtree, brute, grid, or the approximate forest (empty = kdtree)")
		brute    = fs.Bool("brute", false, "run the exact Brute Force search instead (slow)")
		seed     = fs.Int64("seed", 1, "random seed")
		stats    = fs.Bool("stats", false, "print search statistics")
		timeout  = fs.Duration("timeout", 0, "overall wall-clock budget (0 = none)")
		maxEvals = fs.Int("maxevals", 0, "stop after this many window evaluations per pair (0 = none)")
		parallel = fs.Int("parallel", 0, "sweep workers for -all (0 = GOMAXPROCS)")
		restartW = fs.Int("restart-workers", 0, "concurrent LAHC restart workers within each pair (0 = GOMAXPROCS); results are identical for every value")
		retries  = fs.Int("retries", 0, "extra attempts per failed pair in -all sweeps")
		pairTO   = fs.Duration("pairtimeout", 0, "per-pair wall-clock budget in -all sweeps (0 = none)")
		ckpt     = fs.String("checkpoint", "", "journal completed sweep pairs to this JSONL file and resume from it")

		traceOut    = fs.String("trace", "", "stream search events to this JSONL trace file")
		traceSample = fs.Float64("trace-sample", 0, "probability the run is trace-stamped (0..1; deterministic in -seed, stamps -trace lines with trace/span IDs)")
		progress    = fs.Bool("progress", false, "render a live progress/ETA line on stderr (with -all)")
		pprofSrv    = fs.String("pprof", "", "serve net/http/pprof and expvar counters on this address (e.g. localhost:6060)")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf     = fs.String("memprofile", "", "write an end-of-run heap profile to this file")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		printVersion(stdout)
		return exitOK
	}
	if *in == "" || (!*all && (*xName == "" || *yName == "")) {
		fs.Usage()
		return exitUsage
	}
	opts := tycos.Options{
		SMin: *sMin, SMax: *sMax, TDMax: *tdMax,
		Sigma: *sigma, Epsilon: *epsilon, K: *k,
		Delta: *delta, MaxIdle: *maxIdle, TopK: *topK,
		Normalization:  tycos.NormMaxEntropy,
		Seed:           *seed,
		MaxEvaluations: *maxEvals,
		RestartWorkers: *restartW,
		KNNEngine:      *knnEng,
	}
	switch strings.ToLower(*variant) {
	case "l":
		opts.Variant = tycos.VariantL
	case "ln":
		opts.Variant = tycos.VariantLN
	case "lm":
		opts.Variant = tycos.VariantLM
	case "lmn":
		opts.Variant = tycos.VariantLMN
	default:
		fmt.Fprintf(stderr, "tycos: unknown variant %q (want l, ln, lm or lmn)\n", *variant)
		return exitUsage
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, "tycos:", err)
			return exitFailure
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "tycos:", err)
			f.Close()
			return exitFailure
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, "tycos:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "tycos:", err)
			}
		}()
	}

	var observers []tycos.Observer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "tycos:", err)
			return exitFailure
		}
		tw := tycos.NewTraceWriter(f)
		defer func() {
			if err := tw.Close(); err != nil {
				fmt.Fprintln(stderr, "tycos: trace:", err)
			}
			f.Close()
		}()
		observers = append(observers, tw)
	}
	if *progress && *all {
		observers = append(observers, newProgressSink(stderr))
	}
	if *pprofSrv != "" {
		ln, err := net.Listen("tcp", *pprofSrv)
		if err != nil {
			fmt.Fprintln(stderr, "tycos:", err)
			return exitFailure
		}
		defer ln.Close()
		// DefaultServeMux carries net/http/pprof (imported above) and expvar
		// (imported by the observability layer), so one server exposes both
		// /debug/pprof/ and the live /debug/vars counters.
		//lint:allow gopanic net/http recovers per-connection handler panics itself; Serve only returns when the deferred ln.Close fires
		go http.Serve(ln, nil)
		fmt.Fprintf(stderr, "tycos: profiling on http://%s/debug/pprof/ (counters on /debug/vars)\n", ln.Addr())
		observers = append(observers, tycos.NewExpvarObserver("tycos"))
	}
	opts.Observer = tycos.MultiObserver(observers...)

	// A first SIGINT or SIGTERM cancels the search gracefully — the windows
	// accepted so far are printed with a "(partial)" banner; a second signal
	// kills the process the usual way. SIGTERM matters beyond the terminal:
	// it is what cron, timeout(1) and container runtimes send first, and
	// without it a checkpointed sweep would lose its journal flush.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The run's trace root is a pure function of the seed, and the sampling
	// decision of the trace ID — so the same invocation always traces (or
	// doesn't) identically. When sampled, the root rides the context and the
	// search stamps every -trace line with trace/span IDs.
	if *traceSample > 0 {
		root := tycos.NewTrace(*seed, 1)
		if tycos.NewSampler(*traceSample).Sampled(root.TraceID) {
			ctx = tycos.ContextWithSpan(ctx, root)
			fmt.Fprintf(stderr, "tycos: trace %x\n", root.TraceID)
		}
	}

	if *all {
		return runSweep(ctx, *in, opts, tycos.SweepOptions{
			Parallelism: *parallel,
			Retries:     *retries,
			PairTimeout: *pairTO,
		}, *ckpt, *stats, stdout, stderr)
	}
	return runPair(ctx, *in, *xName, *yName, opts, *brute, *stats, stdout, stderr)
}

// printVersion reports the build as recorded by the Go toolchain.
func printVersion(w io.Writer) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprintln(w, "tycos (no build information)")
		return
	}
	v := info.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	fmt.Fprintf(w, "tycos %s %s\n", v, info.GoVersion)
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified":
			fmt.Fprintf(w, "  %s=%s\n", s.Key, s.Value)
		}
	}
}

// runPair searches the single (-x, -y) pair.
func runPair(ctx context.Context, in, xName, yName string, opts tycos.Options, brute, stats bool, stdout, stderr io.Writer) int {
	pair, err := tycos.LoadPairCSV(in, xName, yName)
	if err != nil {
		fmt.Fprintln(stderr, "tycos:", err)
		return exitFailure
	}
	var res tycos.Result
	if brute {
		res, err = tycos.BruteForce(pair, opts)
	} else {
		res, err = tycos.SearchContext(ctx, pair, opts)
	}
	if err != nil {
		fmt.Fprintln(stderr, "tycos:", err)
		return exitFailure
	}
	printResult(stdout, res, stats)
	if res.Partial {
		fmt.Fprintf(stdout, "(partial: search stopped early — %s)\n", res.Stats.StopReason)
		return exitPartial
	}
	return exitOK
}

// runSweep searches every pair of columns in the CSV.
func runSweep(ctx context.Context, in string, opts tycos.Options, sw tycos.SweepOptions, ckptPath string, stats bool, stdout, stderr io.Writer) int {
	cols, err := tycos.LoadAllCSV(in)
	if err != nil {
		fmt.Fprintln(stderr, "tycos:", err)
		return exitFailure
	}
	if ckptPath != "" {
		journal, err := tycos.OpenCheckpoint(ckptPath)
		if err != nil {
			fmt.Fprintln(stderr, "tycos:", err)
			return exitFailure
		}
		defer journal.Close()
		if n := journal.Len(); n > 0 {
			fmt.Fprintf(stdout, "checkpoint %s: %d pairs already journaled, resuming\n", ckptPath, n)
		}
		sw.Checkpoint = journal
	}
	results := tycos.SearchAllContext(ctx, cols, opts, sw)
	failed, partial := 0, false
	for _, pr := range results {
		if pr.Err != nil {
			failed++
			// Every failure line names the pair and the attempt count, so a
			// long sweep's errors can be attributed without scrollback
			// archaeology. The wrapped cause already carries the pair name;
			// unwrap it to avoid saying so twice.
			cause := pr.Err
			if u := errors.Unwrap(cause); u != nil {
				cause = u
			}
			fmt.Fprintf(stderr, "tycos: pair %s/%s (attempt %d): %v\n", pr.XName, pr.YName, pr.Attempts, cause)
			continue
		}
		tag := ""
		if pr.FromCheckpoint {
			tag = "  (from checkpoint)"
		}
		if pr.Result.Partial {
			partial = true
			tag += "  (partial)"
		}
		fmt.Fprintf(stdout, "%s / %s: %d windows%s\n", pr.XName, pr.YName, len(pr.Result.Windows), tag)
		for _, w := range pr.Result.Windows {
			fmt.Fprintf(stdout, "  %v  score=%.3f  size=%d\n", w.Window, w.MI, w.Size())
		}
		if stats {
			printStats(stdout, pr.Result.Stats, "  ")
		}
	}
	if ctx.Err() != nil || partial {
		fmt.Fprintf(stdout, "(partial: sweep stopped early, %d/%d pairs failed or unfinished)\n", failed, len(results))
		return exitPartial
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "tycos: %d/%d pairs failed\n", failed, len(results))
		return exitFailure
	}
	return exitOK
}

func printResult(stdout io.Writer, res tycos.Result, stats bool) {
	if len(res.Windows) == 0 {
		fmt.Fprintln(stdout, "no correlated windows found")
	}
	for _, w := range res.Windows {
		fmt.Fprintf(stdout, "%v  score=%.3f  size=%d\n", w.Window, w.MI, w.Size())
	}
	if stats {
		printStats(stdout, res.Stats, "")
	}
}

func printStats(stdout io.Writer, st tycos.Stats, indent string) {
	fmt.Fprintf(stdout, "%swindows evaluated: %d\n%sbatch MI estimations: %d\n%sincremental moves: %d\n%srestarts: %d\n%spruned directions: %d\n%sstop reason: %s\n",
		indent, st.WindowsEvaluated, indent, st.MIBatch, indent, st.MIIncremental,
		indent, st.Restarts, indent, st.PrunedDirections, indent, st.StopReason)
	if st.Timing.Total > 0 {
		fmt.Fprintf(stdout, "%sphases: validate=%s nullmodel=%s climb=%s finalize=%s total=%s (%.0f evals/s)\n",
			indent, st.Timing.Validate, st.Timing.NullModel, st.Timing.Climb,
			st.Timing.Finalize, st.Timing.Total, st.Timing.EvalsPerSec)
	}
}
