// Command tycos searches a CSV time-series pair for multi-scale time-delay
// correlations and prints the extracted windows.
//
// Usage:
//
//	tycos -in data.csv -x rain -y collisions \
//	      -smin 6 -smax 96 -tdmax 30 -sigma 0.25 [-variant lmn] [-topk 0]
//
// The input file must be a headered CSV; -x and -y name the two columns.
// Windows are printed one per line as ([start,end], τ=delay) score.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tycos"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV file (required)")
		xName   = flag.String("x", "", "name of the X column (required)")
		yName   = flag.String("y", "", "name of the Y column (required)")
		sMin    = flag.Int("smin", 6, "minimum window size (samples)")
		sMax    = flag.Int("smax", 96, "maximum window size (samples)")
		tdMax   = flag.Int("tdmax", 30, "maximum |time delay| (samples)")
		sigma   = flag.Float64("sigma", 0.25, "correlation threshold on normalized MI")
		epsilon = flag.Float64("epsilon", 0, "noise threshold (0 = sigma/4)")
		k       = flag.Int("k", 4, "KSG nearest-neighbour count")
		delta   = flag.Int("delta", 1, "neighbourhood moving step δ")
		maxIdle = flag.Int("maxidle", 8, "idle explorations before stopping a climb")
		topK    = flag.Int("topk", 0, "keep only the K best windows (0 = threshold mode)")
		variant = flag.String("variant", "lmn", "search variant: l, ln, lm, lmn")
		brute   = flag.Bool("brute", false, "run the exact Brute Force search instead (slow)")
		seed    = flag.Int64("seed", 1, "random seed")
		stats   = flag.Bool("stats", false, "print search statistics")
	)
	flag.Parse()
	if *in == "" || *xName == "" || *yName == "" {
		flag.Usage()
		os.Exit(2)
	}
	pair, err := tycos.LoadPairCSV(*in, *xName, *yName)
	if err != nil {
		fatal(err)
	}
	opts := tycos.Options{
		SMin: *sMin, SMax: *sMax, TDMax: *tdMax,
		Sigma: *sigma, Epsilon: *epsilon, K: *k,
		Delta: *delta, MaxIdle: *maxIdle, TopK: *topK,
		Normalization: tycos.NormMaxEntropy,
		Seed:          *seed,
	}
	switch strings.ToLower(*variant) {
	case "l":
		opts.Variant = tycos.VariantL
	case "ln":
		opts.Variant = tycos.VariantLN
	case "lm":
		opts.Variant = tycos.VariantLM
	case "lmn":
		opts.Variant = tycos.VariantLMN
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	var res tycos.Result
	if *brute {
		res, err = tycos.BruteForce(pair, opts)
	} else {
		res, err = tycos.Search(pair, opts)
	}
	if err != nil {
		fatal(err)
	}
	if len(res.Windows) == 0 {
		fmt.Println("no correlated windows found")
	}
	for _, w := range res.Windows {
		fmt.Printf("%v  score=%.3f  size=%d\n", w.Window, w.MI, w.Size())
	}
	if *stats {
		fmt.Printf("windows evaluated: %d\nbatch MI estimations: %d\nincremental moves: %d\nrestarts: %d\npruned directions: %d\n",
			res.Stats.WindowsEvaluated, res.Stats.MIBatch, res.Stats.MIIncremental,
			res.Stats.Restarts, res.Stats.PrunedDirections)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tycos:", err)
	os.Exit(1)
}
