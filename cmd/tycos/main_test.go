package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tycos/internal/faultinject"
)

// writeCSV writes a small three-column CSV with one correlated stretch per
// column pair, small enough that a full sweep finishes in well under a
// second.
func writeCSV(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const n = 200
	var sb strings.Builder
	sb.WriteString("a,b,c\n")
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b := rng.NormFloat64()
		c := rng.NormFloat64()
		if i >= 60 && i <= 140 {
			b = a[i] + 0.1*rng.NormFloat64()
			c = -a[i] + 0.1*rng.NormFloat64()
		}
		sb.WriteString(fmt.Sprintf("%.6f,%.6f,%.6f\n", a[i], b, c))
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestVersionFlag(t *testing.T) {
	code, stdout, _ := runCLI(t, "-version")
	if code != exitOK {
		t.Fatalf("exit %d, want %d", code, exitOK)
	}
	if !strings.HasPrefix(stdout, "tycos ") || !strings.Contains(stdout, "go1.") {
		t.Errorf("version output missing module/toolchain info:\n%s", stdout)
	}
}

func TestUsageErrorWithoutInput(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != exitUsage {
		t.Fatalf("exit %d, want %d", code, exitUsage)
	}
	if !strings.Contains(stderr, "-in") {
		t.Errorf("usage text not printed:\n%s", stderr)
	}
}

// TestSweepFailureLineNamesPairAndAttempt pins the sweep failure format:
// every failure line carries the pair name and the attempt count, so errors
// in long sweeps are attributable.
func TestSweepFailureLineNamesPairAndAttempt(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set("a/b", faultinject.Fault{Err: errors.New("sensor offline"), Times: 2})

	in := writeCSV(t)
	code, stdout, stderr := runCLI(t, "-in", in, "-all", "-retries", "1", "-smin", "10", "-smax", "60", "-tdmax", "5", "-sigma", "0.3")
	if code != exitFailure {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitFailure, stderr)
	}
	if !strings.Contains(stderr, "tycos: pair a/b (attempt 2): ") {
		t.Errorf("failure line lacks pair name and attempt number:\n%s", stderr)
	}
	if !strings.Contains(stderr, "sensor offline") {
		t.Errorf("failure line lost the cause:\n%s", stderr)
	}
	// The healthy pairs still report their windows.
	if !strings.Contains(stdout, "a / c:") || !strings.Contains(stdout, "b / c:") {
		t.Errorf("surviving pairs missing from output:\n%s", stdout)
	}
}

// TestRetriedSweepSucceedsAfterTransientFault checks the attempt counter on
// the success path: a single transient fault plus -retries 1 must yield a
// clean exit with no failure lines.
func TestRetriedSweepSucceedsAfterTransientFault(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set("a/b", faultinject.Fault{Err: errors.New("blip"), Times: 1})

	in := writeCSV(t)
	code, _, stderr := runCLI(t, "-in", in, "-all", "-retries", "1", "-smin", "10", "-smax", "60", "-tdmax", "5", "-sigma", "0.3")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitOK, stderr)
	}
	if strings.Contains(stderr, "tycos: pair") {
		t.Errorf("clean run printed failure lines:\n%s", stderr)
	}
}

// TestTraceFlagWritesValidJSONL checks the -trace plumbing end to end: every
// line of the produced file is valid JSON with the documented envelope, and
// the stream ends with the counter summary.
func TestTraceFlagWritesValidJSONL(t *testing.T) {
	in := writeCSV(t)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	code, _, stderr := runCLI(t, "-in", in, "-x", "a", "-y", "b", "-trace", tracePath, "-smin", "10", "-smax", "60", "-tdmax", "5", "-sigma", "0.3")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitOK, stderr)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has only %d lines", len(lines))
	}
	kinds := map[string]int{}
	for i, ln := range lines {
		var rec struct {
			TS    string          `json:"ts"`
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		if rec.TS == "" || rec.Event == "" {
			t.Fatalf("line %d missing envelope fields: %s", i, ln)
		}
		kinds[rec.Event]++
	}
	for _, want := range []string{"RestartStarted", "ClimbFinished", "PhaseFinished"} {
		if kinds[want] == 0 {
			t.Errorf("trace contains no %s events", want)
		}
	}
	var last struct {
		Event string `json:"event"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "Counters" {
		t.Errorf("trace does not end with the Counters summary (got %s)", last.Event)
	}
}

// TestProgressFlagRendersLiveLine checks -progress: a sweep emits an
// in-place progress line on stderr and a newline-terminated final state,
// while stdout stays a clean result listing.
func TestProgressFlagRendersLiveLine(t *testing.T) {
	in := writeCSV(t)
	code, stdout, stderr := runCLI(t, "-in", in, "-all", "-progress", "-smin", "10", "-smax", "60", "-tdmax", "5", "-sigma", "0.3")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitOK, stderr)
	}
	if !strings.Contains(stderr, "\rsweep: ") {
		t.Errorf("no in-place progress line on stderr:\n%q", stderr)
	}
	if !strings.Contains(stderr, "3/3 pairs") || !strings.Contains(stderr, "done in") {
		t.Errorf("final progress state missing:\n%q", stderr)
	}
	if strings.Contains(stdout, "sweep: ") {
		t.Errorf("progress leaked onto stdout:\n%q", stdout)
	}
}

// TestProfileFlagsWriteLoadableProfiles checks that -cpuprofile and
// -memprofile produce non-empty pprof files.
func TestProfileFlagsWriteLoadableProfiles(t *testing.T) {
	in := writeCSV(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, stderr := runCLI(t, "-in", in, "-x", "a", "-y", "b", "-cpuprofile", cpu, "-memprofile", mem, "-smin", "10", "-smax", "60", "-tdmax", "5", "-sigma", "0.3")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitOK, stderr)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

// TestPprofFlagServesEndpoints checks the -pprof listener announcement; the
// handlers themselves are stdlib.
func TestPprofFlagServesEndpoints(t *testing.T) {
	in := writeCSV(t)
	code, _, stderr := runCLI(t, "-in", in, "-x", "a", "-y", "b", "-pprof", "127.0.0.1:0", "-smin", "10", "-smax", "60", "-tdmax", "5", "-sigma", "0.3")
	if code != exitOK {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitOK, stderr)
	}
	if !strings.Contains(stderr, "/debug/pprof/") || !strings.Contains(stderr, "/debug/vars") {
		t.Errorf("pprof announcement missing:\n%s", stderr)
	}
}

// TestRestartWorkersFlagDoesNotChangeOutput pins the CLI face of the
// determinism guarantee: -restart-workers only changes how the search is
// scheduled, never what it prints.
func TestRestartWorkersFlagDoesNotChangeOutput(t *testing.T) {
	in := writeCSV(t)
	base := []string{"-in", in, "-x", "a", "-y", "b", "-smin", "10", "-smax", "60", "-tdmax", "5", "-sigma", "0.3", "-stats"}
	code1, out1, err1 := runCLI(t, append([]string{"-restart-workers", "1"}, base...)...)
	code4, out4, err4 := runCLI(t, append([]string{"-restart-workers", "4"}, base...)...)
	if code1 != exitOK || code4 != exitOK {
		t.Fatalf("exits %d/%d, want %d\nstderr1:\n%s\nstderr4:\n%s", code1, code4, exitOK, err1, err4)
	}
	// The phase breakdown is wall-clock and legitimately varies; everything
	// else must match byte for byte.
	dropTiming := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "phases: ") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	out1, out4 = dropTiming(out1), dropTiming(out4)
	if out1 != out4 {
		t.Errorf("-restart-workers changed the output:\nworkers=1:\n%s\nworkers=4:\n%s", out1, out4)
	}
}
