// Command promcheck validates a Prometheus text-exposition payload — the
// format tycosd serves on GET /metrics — read from a file or stdin. CI's
// metrics-scrape job pipes a live scrape through it.
//
// Usage:
//
//	curl -s localhost:8723/metrics | promcheck
//	promcheck scrape.txt
//
// It checks the properties a scraper depends on: HELP/TYPE lines before
// samples, parseable sample lines, non-negative counters, and histogram
// buckets with increasing le bounds, monotone cumulative counts and a +Inf
// bucket matching _count (see internal/obs.CheckExposition).
//
// Optional flags assert content beyond validity: -require name fails unless
// a sample of that metric family is present (repeatable), -min-samples N
// fails on fewer than N samples total.
//
// Exit status: 0 valid, 1 invalid or requirement unmet, 2 usage error.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tycos/internal/obs"
)

// requiredList collects repeated -require flags.
type requiredList []string

func (r *requiredList) String() string     { return strings.Join(*r, ",") }
func (r *requiredList) Set(v string) error { *r = append(*r, v); return nil }

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var required requiredList
	fs.Var(&required, "require", "fail unless this metric family has at least one sample (repeatable)")
	minSamples := fs.Int("min-samples", 1, "fail on fewer than this many samples")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "promcheck: at most one input file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "promcheck:", err)
			return 2
		}
		defer f.Close()
		in = f
	}

	// The payload is read once and checked twice (validity, then -require),
	// so buffer it.
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(stderr, "promcheck:", err)
		return 2
	}
	samples, err := obs.CheckExposition(bytes.NewReader(data))
	if err != nil {
		fmt.Fprintln(stderr, "promcheck: invalid exposition:", err)
		return 1
	}
	if samples < *minSamples {
		fmt.Fprintf(stderr, "promcheck: %d sample(s), want at least %d\n", samples, *minSamples)
		return 1
	}
	for _, name := range required {
		if !hasFamilySample(data, name) {
			fmt.Fprintf(stderr, "promcheck: required metric %s has no samples\n", name)
			return 1
		}
	}
	fmt.Fprintf(stdout, "promcheck: ok (%d samples)\n", samples)
	return 0
}

// hasFamilySample reports whether any sample line belongs to the family:
// the bare name or a histogram suffix, followed by '{', space or tab.
func hasFamilySample(data []byte, family string) bool {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, name := range []string{family, family + "_bucket", family + "_sum", family + "_count"} {
			if strings.HasPrefix(line, name) {
				rest := line[len(name):]
				if rest != "" && (rest[0] == '{' || rest[0] == ' ' || rest[0] == '\t') {
					return true
				}
			}
		}
	}
	return false
}
