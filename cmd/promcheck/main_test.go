package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const valid = `# HELP tycos_x_total x
# TYPE tycos_x_total counter
tycos_x_total 3
# HELP tycos_h_seconds h
# TYPE tycos_h_seconds histogram
tycos_h_seconds_bucket{le="+Inf"} 2
tycos_h_seconds_sum 0.5
tycos_h_seconds_count 2
`

func runWith(t *testing.T, args []string, stdin string) (code int, out, errOut string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code = run(args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunValidStdin(t *testing.T) {
	code, out, errOut := runWith(t, nil, valid)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "ok (4 samples)") {
		t.Errorf("stdout = %q, want sample count", out)
	}
}

func TestRunInvalidPayload(t *testing.T) {
	code, _, errOut := runWith(t, nil, "tycos_x_total 1\n")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "invalid exposition") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestRunRequire(t *testing.T) {
	// Histogram families match through their suffixed samples.
	code, _, _ := runWith(t, []string{"-require", "tycos_x_total", "-require", "tycos_h_seconds"}, valid)
	if code != 0 {
		t.Fatalf("required families present but exit %d", code)
	}
	code, _, errOut := runWith(t, []string{"-require", "tycos_missing"}, valid)
	if code != 1 || !strings.Contains(errOut, "tycos_missing") {
		t.Fatalf("exit %d, stderr %q; want 1 naming the missing family", code, errOut)
	}
}

func TestRunMinSamples(t *testing.T) {
	if code, _, _ := runWith(t, []string{"-min-samples", "4"}, valid); code != 0 {
		t.Fatalf("exit %d with exactly enough samples", code)
	}
	code, _, errOut := runWith(t, []string{"-min-samples", "5"}, valid)
	if code != 1 || !strings.Contains(errOut, "want at least 5") {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
}

func TestRunFileInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scrape.txt")
	if err := os.WriteFile(path, []byte(valid), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runWith(t, []string{path}, ""); code != 0 {
		t.Fatalf("exit %d reading file, stderr %s", code, errOut)
	}
	if code, _, _ := runWith(t, []string{path, path}, ""); code != 2 {
		t.Fatal("two input files accepted")
	}
	if code, _, _ := runWith(t, []string{filepath.Join(t.TempDir(), "absent")}, ""); code != 2 {
		t.Fatal("missing file not a usage error")
	}
}
