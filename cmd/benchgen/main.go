// Command benchgen regenerates every table and figure of the paper's
// evaluation (Section 8) and writes them to the results/ directory as
// aligned text and CSV.
//
// Usage:
//
//	benchgen [-quick] [-exp table1,fig9] [-out results]
//
// Without -exp, every experiment runs (the full set takes tens of minutes;
// -quick reduces workload sizes to a smoke-run scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tycos/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced workload sizes")
		exp   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		out   = flag.String("out", "results", "output directory")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Log: os.Stderr}

	drivers := map[string]func(experiments.Config) *experiments.Table{
		"table1": experiments.Table1,
		"table2": experiments.Table2,
		"table3": experiments.Table3,
		"table4": experiments.Table4,
		"fig4":   experiments.Fig4,
		"fig6":   experiments.Fig6,
		"fig9":   experiments.Fig9,
		"fig10":  experiments.Fig10,
		"fig11":  experiments.Fig11,
		"fig12":  experiments.Fig11, // Fig 12 plots the Fig 11 series together
		"fig13a": experiments.Fig13A,
		"fig13b": experiments.Fig13B,
		"fig13c": experiments.Fig13C,
	}
	order := []string{
		"table1", "table2", "table3", "table4",
		"fig4", "fig6", "fig9", "fig10", "fig11", "fig13a", "fig13b", "fig13c",
	}

	var selected []string
	if *exp == "" {
		selected = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := drivers[id]; !ok {
				fmt.Fprintf(os.Stderr, "benchgen: unknown experiment %q (known: %s)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, id := range selected {
		fmt.Fprintf(os.Stderr, "== running %s ==\n", id)
		t := drivers[id](cfg)
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Println()
		txt := filepath.Join(*out, t.ID+".txt")
		f, err := os.Create(txt)
		if err == nil {
			_, err = t.WriteTo(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err == nil {
			err = os.WriteFile(filepath.Join(*out, t.ID+".csv"), []byte(t.CSV()), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
	}
}
