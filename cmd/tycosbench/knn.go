package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tycos/internal/mi"
)

// runKNN measures the k-NN engine layer behind the KSG estimator: the
// per-estimate cost of every registered engine on the drift corpus, the
// exact-vs-approximate scaling across corpus sizes, and the bounded-MI-error
// acceptance gate. The speedup_vs_exact column is computed against the exact
// kd-tree timed in the same run, so the number is meaningful on any machine;
// the drift columns come from mi.MeasureEngineDrift on the same corpus the
// timings use.
func runKNN(out string, quick bool) {
	const (
		k    = 4
		seed = 42
		// eps is the default drift bound the bounded mode is gated at: the
		// forest's measured worst case is ~0.12 nats on the large corpora,
		// so 0.15 accepts the shipped defaults with headroom while refusing
		// anything that degrades past them.
		eps = 0.15
	)
	// The scaling set starts where the approximate engine is meant to be
	// used: below a few thousand points the exact kd-tree is already cheap
	// (and the forest's fixed budget is a large fraction of the point set,
	// so its drift is at its worst). The cross-engine reference table below
	// still covers the small-m regime.
	sizes := []int{4096, 16384, 65536}
	if quick {
		sizes = []int{2048}
	}

	rep := report{
		Benchmark: "tycosbench -knn (k-NN engine layer)",
		Description: fmt.Sprintf(
			"Per-estimate KSG cost by k-NN engine on the drift corpus (mi.DriftCorpus(seed=%d): gaussians, tied lattice, lognormal; k=%d), "+
				"exact kd-tree vs approximate kd-forest scaling across corpus sizes, and the bounded-MI-error gate "+
				"(mi.NewBoundedKSG at eps=%.2f nats). speedup_vs_exact compares against the exact kd-tree timed in the same run; "+
				"max_abs_drift is the worst |I_engine - I_exact| over the same corpus. The approximate backend's batched "+
				"sweep streams flat SoA windows, so its advantage grows with m while the exact tree degrades with cache pressure.",
			seed, k, eps),
		Date: time.Now().Format("2006-01-02"),
		Runner: runner{
			CPU:        "see go test -bench output on this host",
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note:       "per-estimate rows are one full KSG Estimate (build + queries + marginal counts), averaged over the corpus",
		},
		Benchtime: "1s (testing.Benchmark default)",
		Reproduce: "go run ./cmd/tycosbench -knn -out BENCH_KNN.json (quick smoke: go run ./cmd/tycosbench -knn -quick)",
	}

	// estimateNs times one warm Estimate averaged over the corpus.
	estimateNs := func(est *mi.KSG, corpus []mi.DriftSample) (int64, int64) {
		for _, s := range corpus {
			if _, err := est.Estimate(s.X, s.Y); err != nil {
				fatal(err)
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, s := range corpus {
					if _, err := est.Estimate(s.X, s.Y); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		n := int64(len(corpus))
		return r.NsPerOp() / n, r.AllocsPerOp() / n
	}

	add := func(res result) {
		rep.Results = append(rep.Results, res)
		line := fmt.Sprintf("%-32s %12d ns/op %6d allocs/op", res.Workload, res.NsPerOp, res.AllocsPerOp)
		if res.SpeedupVsExact > 0 {
			line += fmt.Sprintf("  speedup_vs_exact=%.2f", res.SpeedupVsExact)
		}
		if res.MaxAbsDrift > 0 {
			line += fmt.Sprintf("  max_abs_drift=%.4f", res.MaxAbsDrift)
		}
		fmt.Fprintln(os.Stderr, line)
	}

	// Every registered engine on a small corpus: the cross-backend
	// reference table (brute is O(m^2) and only belongs here).
	smallest := 1024
	if quick {
		smallest = sizes[0]
	}
	small := mi.DriftCorpus(seed, smallest)
	for _, engine := range mi.EngineNames() {
		est, err := mi.NewKSGNamed(k, engine, seed)
		if err != nil {
			fatal(err)
		}
		ns, allocs := estimateNs(est, small)
		note := "exact"
		if !est.Exact() {
			note = "approximate (default budget)"
		}
		add(result{
			Workload:    fmt.Sprintf("knn-estimate/%s/m_%d", engine, smallest),
			NsPerOp:     ns,
			AllocsPerOp: allocs,
			Iterations:  len(small),
			Note:        note + ", warm estimator, averaged over the drift corpus",
		})
	}

	// Exact vs approximate scaling: one exact and one forest row per corpus
	// size, speedup and drift measured against each other in the same run.
	for _, m := range sizes {
		corpus := mi.DriftCorpus(seed, m)
		exact := mi.NewKSG(k, mi.BackendKDTree)
		forest, err := mi.NewKSGNamed(k, "forest", seed)
		if err != nil {
			fatal(err)
		}
		exNs, exAllocs := estimateNs(exact, corpus)
		foNs, foAllocs := estimateNs(forest, corpus)
		drift, err := mi.MeasureEngineDrift("forest", k, seed, corpus)
		if err != nil {
			fatal(err)
		}
		add(result{
			Workload:    fmt.Sprintf("knn-scaling/exact/m_%d", m),
			NsPerOp:     exNs,
			AllocsPerOp: exAllocs,
			Iterations:  len(corpus),
			Note:        "exact kd-tree baseline",
		})
		add(result{
			Workload:       fmt.Sprintf("knn-scaling/forest/m_%d", m),
			NsPerOp:        foNs,
			AllocsPerOp:    foAllocs,
			Iterations:     len(corpus),
			SpeedupVsExact: float64(exNs) / float64(foNs),
			MaxAbsDrift:    drift.MaxAbsDrift,
			Epsilon:        eps,
			Note: fmt.Sprintf("approximate, mean_abs_drift=%.4f worst=%s",
				drift.MeanAbsDrift, drift.WorstLabel),
		})
	}

	// Bounded-MI-error gate: the shipped forest defaults must be accepted at
	// the default eps, and a pathologically tight bound must be refused — the
	// harness's whole point is that it can say no.
	gateM := sizes[len(sizes)-1]
	if gateM > 4096 {
		gateM = 4096
	}
	gateCorpus := mi.DriftCorpus(seed, gateM)
	if _, repAccept, err := mi.NewBoundedKSG(k, "forest", seed, eps, gateCorpus); err != nil {
		fatal(fmt.Errorf("bounded-mode gate: forest defaults refused at eps=%.2f: %w", eps, err))
	} else {
		add(result{
			Workload:    fmt.Sprintf("knn-bounded/forest/m_%d", gateM),
			MaxAbsDrift: repAccept.MaxAbsDrift,
			Epsilon:     eps,
			Iterations:  repAccept.Samples,
			Note: fmt.Sprintf("accepted at eps=%.2f (mean_abs_drift=%.4f worst=%s)",
				eps, repAccept.MeanAbsDrift, repAccept.WorstLabel),
		})
	}
	if _, repRefuse, err := mi.NewBoundedKSG(k, "forest", seed, 0.001, gateCorpus); err == nil {
		fatal(fmt.Errorf("bounded-mode gate: forest accepted at eps=0.001 (drift %.4f) — the refusal path is broken", repRefuse.MaxAbsDrift))
	} else {
		add(result{
			Workload:    fmt.Sprintf("knn-bounded/refusal/m_%d", gateM),
			MaxAbsDrift: repRefuse.MaxAbsDrift,
			Epsilon:     0.001,
			Iterations:  repRefuse.Samples,
			Note:        "refused as designed: " + err.Error(),
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d workloads)\n", out, len(rep.Results))
}
