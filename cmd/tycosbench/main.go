// Command tycosbench measures the MI hot path — per-estimate cost and
// allocation behaviour of the KSG batch and incremental estimators, plus an
// end-to-end search per variant — and writes the results as JSON in the same
// shape as BENCH_RESTART_WORKERS.json, so regressions diff as one line per
// workload.
//
// Usage:
//
//	tycosbench [-quick] [-out BENCH_HOTPATH.json]
//	tycosbench -obs [-out BENCH_OBS.json]
//	tycosbench -discovery [-quick] [-out BENCH_DISCOVERY.json]
//
// -quick trims the measurement time for CI smoke runs; the checked-in
// baseline is produced without it. -obs switches to the observer-overhead
// suite: one end-to-end search measured under a nil sink, the Metrics
// aggregator, a discarded JSONL trace, and a trace with span stamping — the
// numbers behind the README's "observability is ≤ a few percent" claim,
// written to BENCH_OBS.json. -discovery measures the anchor→fleet pipeline
// over a 200-candidate fleet, screened against unscreened, written to
// BENCH_DISCOVERY.json — the numbers behind the README's screen-then-confirm
// claim.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	tycos "tycos"
	"tycos/internal/mi"
	"tycos/internal/synth"
)

// report mirrors the shape of BENCH_RESTART_WORKERS.json.
type report struct {
	Benchmark   string   `json:"benchmark"`
	Description string   `json:"description"`
	Date        string   `json:"date"`
	Runner      runner   `json:"runner"`
	Benchtime   string   `json:"benchtime"`
	Results     []result `json:"results"`
	Reproduce   string   `json:"reproduce"`
}

type runner struct {
	CPU        string `json:"cpu"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
}

type result struct {
	Workload    string  `json:"workload"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	Note        string  `json:"note,omitempty"`
	SpeedupVsB  float64 `json:"speedup_vs_baseline,omitempty"`
	// SpeedupVsExact, MaxAbsDrift and Epsilon are the -knn suite's columns:
	// approximate-engine speedup against the exact kd-tree timed in the same
	// run, worst |ΔMI| in nats on the same corpus, and the bound it was
	// gated at.
	SpeedupVsExact float64 `json:"speedup_vs_exact,omitempty"`
	MaxAbsDrift    float64 `json:"max_abs_drift,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
}

// baselines are the pre-optimisation measurements (captured on the same
// single-core Xeon runner before the scratch-reuse work landed); the emitted
// speedup_vs_baseline column contextualises new runs against them.
var baselines = map[string]int64{
	"ksg-estimate/kdtree": 1275910,
	"ksg-estimate/brute":  3035737,
	"ksg-estimate/grid":   1486657,
	"incremental-slide":   62536,
	"search/TYCOS_L":      366422785,
	"search/TYCOS_LMN":    92275012,
	"ksg-window/m_32":     27031,
	"ksg-window/m_128":    167175,
	"ksg-window/m_512":    1162331,
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "smoke run: only the per-estimate and slide workloads (with -discovery: a 40-candidate fleet)")
		out      = flag.String("out", "", "output file (default BENCH_HOTPATH.json, BENCH_OBS.json with -obs, BENCH_DISCOVERY.json with -discovery)")
		obsMode  = flag.Bool("obs", false, "measure observer overhead (nil sink vs Metrics vs trace vs trace+spans) instead of the MI hot path")
		discMode = flag.Bool("discovery", false, "measure the anchor→fleet discovery pipeline, screened vs unscreened")
		knnMode  = flag.Bool("knn", false, "measure the k-NN engine layer: per-estimate cost by engine, exact-vs-forest scaling, bounded-MI-error gate")
	)
	flag.Parse()
	if *out == "" {
		switch {
		case *obsMode:
			*out = "BENCH_OBS.json"
		case *discMode:
			*out = "BENCH_DISCOVERY.json"
		case *knnMode:
			*out = "BENCH_KNN.json"
		default:
			*out = "BENCH_HOTPATH.json"
		}
	}
	if *obsMode {
		runObs(*out)
		return
	}
	if *discMode {
		runDiscovery(*out, *quick)
		return
	}
	if *knnMode {
		runKNN(*out, *quick)
		return
	}

	rep := report{
		Benchmark: "tycosbench (MI hot path)",
		Description: "Per-estimate KSG cost by backend (m=500, gaussian rho=0.6, k=4), " +
			"steady-state incremental slide (w=500 over n=4000), per-window estimation at search sizes, " +
			"and end-to-end Search per variant (synth.CorrelatedAR n=1200, SMin=10 SMax=150 TDMax=10, sigma=0.3, seed=1). " +
			"allocs_per_op on the warm estimator paths is the tentpole guarantee: 0 for kdtree/brute Estimate and the incremental slide.",
		Date: time.Now().Format("2006-01-02"),
		Runner: runner{
			CPU:        "see go test -bench output on this host",
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note:       "search workloads include trajectory work (windows evaluated), not just per-estimate cost",
		},
		Benchtime: "1s (testing.Benchmark default)",
		Reproduce: "go run ./cmd/tycosbench -out BENCH_HOTPATH.json (per-workload equivalents: " +
			"go test -bench BenchmarkKSGEstimate ./internal/mi; go test -bench 'KSGWindow|Fig9Variants' .)",
	}

	add := func(name string, r testing.BenchmarkResult, note string) {
		res := result{
			Workload:    name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Note:        note,
		}
		if base, ok := baselines[name]; ok && r.NsPerOp() > 0 {
			res.SpeedupVsB = float64(base) / float64(r.NsPerOp())
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %8d B/op %6d allocs/op\n",
			name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	bench := func(f func(b *testing.B)) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
	}

	// --- Per-estimate KSG cost by backend (warm estimator). ---
	rng := rand.New(rand.NewSource(1))
	m := 500
	xs := make([]float64, m)
	ys := make([]float64, m)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.6*xs[i] + 0.8*rng.NormFloat64()
	}
	for _, backend := range []mi.Backend{mi.BackendKDTree, mi.BackendBrute, mi.BackendGrid} {
		est := mi.NewKSG(4, backend)
		if _, err := est.Estimate(xs, ys); err != nil {
			fatal(err)
		}
		r := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(xs, ys); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("ksg-estimate/"+backend.String(), r, "warm estimator, m=500")
	}

	// --- Steady-state incremental slide. ---
	n := 4000
	sx := make([]float64, n)
	sy := make([]float64, n)
	srng := rand.New(rand.NewSource(4))
	for i := range sx {
		sx[i] = srng.NormFloat64()
		sy[i] = 0.6*sx[i] + 0.4*srng.NormFloat64()
	}
	w := 500
	inc := mi.NewIncremental(4, 0.3)
	for i := 0; i < w; i++ {
		inc.Insert(i, sx[i], sy[i])
	}
	pos := 0
	r := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pos+w+1 >= n {
				ids := make([]int, w)
				for j := range ids {
					ids[j] = j
				}
				inc.Reload(ids, sx[:w], sy[:w])
				pos = 0
			}
			inc.Remove(pos)
			inc.Insert(pos+w, sx[pos+w], sy[pos+w])
			if _, err := inc.MI(); err != nil {
				b.Fatal(err)
			}
			pos++
		}
	})
	add("incremental-slide", r, "remove+insert+MI, w=500")

	// --- Per-window estimation at the sizes the search visits. ---
	if !*quick {
		runFull(bench, add)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d workloads)\n", *out, len(rep.Results))
}

// runFull runs the cold-path and end-to-end workloads skipped by -quick.
func runFull(bench func(func(b *testing.B)) testing.BenchmarkResult, add func(string, testing.BenchmarkResult, string)) {
	comp, err := synth.CorrelatedAR(4096, 1, 512, 0, 1)
	if err != nil {
		fatal(err)
	}
	for _, wm := range []int{32, 128, 512} {
		wx := comp.Pair.X.Values[:wm]
		wy := comp.Pair.Y.Values[:wm]
		r := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tycos.EstimateMI(wx, wy, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
		add(fmt.Sprintf("ksg-window/m_%d", wm), r, "fresh estimator per call (cold-path cost)")
	}

	// --- End-to-end search per variant. ---
	scomp, err := synth.CorrelatedAR(1200, 2, 100, 10, 1)
	if err != nil {
		fatal(err)
	}
	for _, v := range []tycos.Variant{tycos.VariantL, tycos.VariantLMN} {
		opts := tycos.Options{
			SMin: 10, SMax: 150, TDMax: 10, Sigma: 0.3,
			Normalization: tycos.NormMaxEntropy,
			Variant:       v, Seed: 1,
		}
		res, err := tycos.Search(scomp.Pair, opts)
		if err != nil {
			fatal(err)
		}
		note := fmt.Sprintf("windows_evaluated=%d", res.Stats.WindowsEvaluated)
		r := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tycos.Search(scomp.Pair, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("search/"+v.String(), r, note)
	}
}

// runObs measures the observer-overhead suite: the same end-to-end search
// under increasingly heavy observers. The nil-sink row is the contract —
// observability disabled must cost nothing — and each later row prices one
// step up the telemetry ladder. overhead_vs_nil is computed from this run's
// own nil row, so the column is meaningful on any machine.
func runObs(out string) {
	rep := report{
		Benchmark: "tycosbench -obs (observer overhead)",
		Description: "End-to-end Search (synth.CorrelatedAR n=1200, SMin=10 SMax=150 TDMax=10, sigma=0.3, " +
			"variant=LMN, seed=1) under: nil sink (the free default), the Metrics aggregator, a JSONL " +
			"TraceWriter to io.Discard, and the same TraceWriter with a span in the context so every event " +
			"is trace-stamped. note carries overhead vs the nil row.",
		Date: time.Now().Format("2006-01-02"),
		Runner: runner{
			CPU:        "see go test -bench output on this host",
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note:       "all rows run the identical search; only the observer differs",
		},
		Benchtime: "1s (testing.Benchmark default)",
		Reproduce: "go run ./cmd/tycosbench -obs -out BENCH_OBS.json (per-workload equivalent: " +
			"go test -bench BenchmarkSearchObserver ./internal/core)",
	}

	scomp, err := synth.CorrelatedAR(1200, 2, 100, 10, 1)
	if err != nil {
		fatal(err)
	}
	opts := tycos.Options{
		SMin: 10, SMax: 150, TDMax: 10, Sigma: 0.3,
		Normalization: tycos.NormMaxEntropy,
		Variant:       tycos.VariantLMN, Seed: 1,
	}

	type mode struct {
		name string
		sink func() tycos.Observer
		span bool
	}
	modes := []mode{
		{"search-observer/nil", func() tycos.Observer { return nil }, false},
		{"search-observer/metrics", func() tycos.Observer { return tycos.NewMetrics() }, false},
		{"search-observer/trace-discard", func() tycos.Observer { return tycos.NewTraceWriter(io.Discard) }, false},
		{"search-observer/trace-span", func() tycos.Observer { return tycos.NewTraceWriter(io.Discard) }, true},
	}
	var nilNs int64
	for _, m := range modes {
		o := opts
		o.Observer = m.sink()
		ctx := context.Background()
		if m.span {
			ctx = tycos.ContextWithSpan(ctx, tycos.NewTrace(1, 1))
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tycos.SearchContext(ctx, scomp.Pair, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		note := "baseline (observability off)"
		if nilNs == 0 {
			nilNs = r.NsPerOp()
		} else if nilNs > 0 {
			note = fmt.Sprintf("overhead_vs_nil=%+.1f%%", 100*(float64(r.NsPerOp())/float64(nilNs)-1))
		}
		rep.Results = append(rep.Results, result{
			Workload:    m.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Note:        note,
		})
		fmt.Fprintf(os.Stderr, "%-30s %12d ns/op %8d B/op %6d allocs/op  %s\n",
			m.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp(), note)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d workloads)\n", out, len(rep.Results))
}

// runDiscovery measures the anchor→fleet pipeline: one Discover pass over a
// 200-candidate fleet (10 planted followers, 190 AR(1) decoys) with the
// sliding-PCC pre-screen on, and the same pass with every candidate
// confirmed. Discovery is a single long pass, not a tight loop, so each row
// is one timed run (iterations=1); the screened row's note carries the
// speedup and the prune rate that produced it.
func runDiscovery(out string, quick bool) {
	fleet := 200
	if quick {
		fleet = 40
	}
	rep := report{
		Benchmark: "tycosbench -discovery (screen-then-confirm)",
		Description: fmt.Sprintf("Anchor→fleet Discover over %d candidates (n=480, every 20th a planted "+
			"follower at delay index%%7, the rest AR(1) phi=0.9 decoys), SMin=8 SMax=32 TDMax=8 sigma=0.45, "+
			"variant=LMN, seed=1, topk=10. unscreened confirms the whole fleet; screened prunes with the "+
			"sliding-PCC baseline (window=32, threshold=0.9) first.", fleet),
		Date: time.Now().Format("2006-01-02"),
		Runner: runner{
			CPU:        "see go test -bench output on this host",
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note:       "single-pass wall time per row; both rows rank identical surviving candidates",
		},
		Benchtime: "1 pass",
		Reproduce: "go run ./cmd/tycosbench -discovery -out BENCH_DISCOVERY.json",
	}

	const n = 480
	rng := rand.New(rand.NewSource(1))
	av := make([]float64, n)
	for i := range av {
		av[i] = 0.9*ringAt(av, i-1) + rng.NormFloat64()
	}
	anchor := tycos.NewSeries("anchor", av)
	cands := make([]tycos.Series, fleet)
	for c := range cands {
		v := make([]float64, n)
		if c%20 == 0 {
			delay := c % 7
			for i := range v {
				j := i - delay
				if j < 0 {
					j = 0
				}
				v[i] = av[j] + 0.05*rng.NormFloat64()
			}
		} else {
			var a float64
			for i := range v {
				a = 0.9*a + rng.NormFloat64()
				v[i] = a
			}
		}
		cands[c] = tycos.NewSeries(fmt.Sprintf("cand%03d", c), v)
	}

	opts := tycos.DiscoveryOptions{
		Search: tycos.Options{
			SMin: 8, SMax: 32, TDMax: 8, Sigma: 0.45,
			Normalization: tycos.NormMaxEntropy,
			Variant:       tycos.VariantLMN, Seed: 1,
		},
		TopK:            10,
		ScreenWindow:    32,
		ScreenThreshold: 0.9,
	}

	var unscreenedNs int64
	for _, mode := range []struct {
		name   string
		screen bool
	}{
		{"discover/unscreened", false},
		{"discover/screened", true},
	} {
		o := opts
		o.Screen = mode.screen
		start := time.Now()
		res, err := tycos.Discover(context.Background(), anchor, cands, o)
		elapsed := time.Since(start)
		if err != nil {
			fatal(err)
		}
		note := fmt.Sprintf("ranked=%d evaluated=%d", len(res.Ranked), res.Stats.Evaluated)
		if !mode.screen {
			unscreenedNs = elapsed.Nanoseconds()
		} else if unscreenedNs > 0 && elapsed > 0 {
			note = fmt.Sprintf("pruned %d/%d, speedup_vs_unscreened=%.1fx, %s",
				res.Stats.Pruned, res.Stats.Candidates,
				float64(unscreenedNs)/float64(elapsed.Nanoseconds()), note)
		}
		rep.Results = append(rep.Results, result{
			Workload:   mode.name,
			NsPerOp:    elapsed.Nanoseconds(),
			Iterations: 1,
			Note:       note,
		})
		fmt.Fprintf(os.Stderr, "%-24s %12d ns/pass  %s\n", mode.name, elapsed.Nanoseconds(), note)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d workloads)\n", out, len(rep.Results))
}

// ringAt reads v[i] treating negative indices as zero — the AR(1) seed term.
func ringAt(v []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return v[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tycosbench:", err)
	os.Exit(1)
}
