// Command tycosd is the always-on TYCOS daemon: an HTTP server that ingests
// time series and answers multi-scale time-delay correlation searches, built
// to run unattended under an init system or container runtime.
//
// Usage:
//
//	tycosd -addr :8723 [-journal results.jsonl] [-fsync] \
//	       [-workers N] [-queue N] [-shed reject|degrade] \
//	       [-maxevals N] [-search-timeout 30s] [-drain-timeout 30s] \
//	       [-trace events.jsonl] [-trace-sample 0.1] \
//	       [-slowlog 2s] [-slowlog-file slow.jsonl] [-sample-interval 5s]
//
// Endpoints:
//
//	GET  /healthz    liveness — 200 while the process runs
//	GET  /readyz     readiness — 503 while draining or journal-degraded
//	GET  /statusz    JSON snapshot of queue, series, journal and counters
//	GET  /metrics    Prometheus text exposition (latency/queue histograms,
//	                 counters, runtime gauges) for any standard scraper
//	POST /v1/series  {"name": "rain", "values": [..]} appends points
//	POST /v1/search  {"x": "rain", "y": "collisions", ...} searches a pair
//
// Telemetry: -trace streams every observed search event as JSONL;
// -trace-sample R stamps that fraction of search requests with a
// deterministic trace ID (returned in the X-Tycosd-Trace header and carried
// on every event line the request causes). -slowlog D writes one JSONL line
// with the full span tree of any search request slower than D to
// -slowlog-file (stderr by default). -sample-interval paces the runtime
// gauge sampler (goroutines, heap, GC pause, queue depth).
//
// Search responses carry an X-Tycosd-Source header saying how they were
// produced: "computed" (fresh search), "journal" (crash-safe replay of an
// earlier identical request) or "degraded" (sliding-PCC pre-screen served
// under overload with -shed degrade).
//
// A SIGTERM or SIGINT drains gracefully: the listener stops admitting,
// queued and in-flight searches finish, the journal is flushed, and the
// process exits 0. If the drain exceeds -drain-timeout the process exits 1.
//
// Exit status: 0 after a graceful drain, 1 on startup or drain failure,
// 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tycos/internal/daemon"
	"tycos/internal/faultinject"
	"tycos/internal/obs"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the daemon behind an injectable front, like cmd/tycos: tests drive
// it with custom argv and buffers (the chaos harness additionally forks real
// processes to kill them).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tycosd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8723", "listen address (host:port; :0 picks a free port)")
		journal  = fs.String("journal", "", "journal completed search results to this JSONL file and replay them across restarts")
		fsync    = fs.Bool("fsync", false, "fsync the journal after every record (survives power loss, not just crashes)")
		compact  = fs.Int64("compact-bytes", 0, "auto-compact the journal when it exceeds this size and is mostly garbage (0 = never)")
		workers  = fs.Int("workers", 0, "concurrent search workers (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		shed     = fs.String("shed", "reject", "overload policy: reject (429 + Retry-After) or degrade (sliding-PCC pre-screen)")
		retryAft = fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		attempts = fs.Int("retry-attempts", 3, "attempts for transient journal/ingest errors")
		retryB   = fs.Duration("retry-base", 10*time.Millisecond, "first retry backoff (doubles per attempt, jittered)")
		maxEvals = fs.Int("maxevals", 0, "cap every request's evaluation budget (0 = uncapped)")
		searchTO = fs.Duration("search-timeout", 0, "cap every request's wall-clock budget (0 = uncapped)")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before exiting 1")
		seed     = fs.Int64("seed", 1, "default search seed and retry-jitter seed")
		maxBody  = fs.Int64("max-body", 0, "request body size limit in bytes (0 = 32 MiB)")

		traceOut    = fs.String("trace", "", "write a JSONL trace of observed search events to this file")
		traceSample = fs.Float64("trace-sample", 0, "fraction of search requests stamped with a request trace ID (0..1)")
		slowlog     = fs.Duration("slowlog", 0, "log the span tree of any search request slower than this (0 = off)")
		slowlogFile = fs.String("slowlog-file", "", "slow-search JSONL destination (default stderr)")
		sampleInt   = fs.Duration("sample-interval", 5*time.Second, "runtime gauge sampling interval (negative = startup sample only)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	cfg := daemon.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		RetryAfter:          *retryAft,
		JournalPath:         *journal,
		JournalFsync:        *fsync,
		JournalCompactBytes: *compact,
		RetryAttempts:       *attempts,
		RetryBase:           *retryB,
		Seed:                *seed,
		MaxEvalsCap:         *maxEvals,
		TimeoutCap:          *searchTO,
		MaxBodyBytes:        *maxBody,
		TraceSample:         *traceSample,
		SlowLogThreshold:    *slowlog,
		SampleInterval:      *sampleInt,
	}
	switch *shed {
	case "reject":
		cfg.Shed = daemon.ShedReject
	case "degrade":
		cfg.Shed = daemon.ShedDegrade
	default:
		fmt.Fprintf(stderr, "tycosd: unknown -shed policy %q (want reject or degrade)\n", *shed)
		return exitUsage
	}

	// The trace observer and slow-log destination are files owned by this
	// process; both are flushed/closed on every exit path via defers, which
	// run after the drain has finished the searches that feed them.
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "tycosd:", err)
			return exitFailure
		}
		tw := obs.NewTraceWriter(f)
		cfg.Observer = tw
		defer func() {
			if err := tw.Close(); err != nil {
				fmt.Fprintln(stderr, "tycosd: trace:", err)
			}
			f.Close()
		}()
	}
	if *slowlog > 0 {
		cfg.SlowLog = stderr
		if *slowlogFile != "" {
			f, err := os.Create(*slowlogFile)
			if err != nil {
				fmt.Fprintln(stderr, "tycosd:", err)
				return exitFailure
			}
			cfg.SlowLog = f
			defer f.Close()
		}
	}

	// TYCOS_FAULTS arms the fault-injection registry in a forked process —
	// the chaos harness's only way in. Unset, this is a no-op.
	if err := faultinject.ArmFromEnv("TYCOS_FAULTS"); err != nil {
		fmt.Fprintln(stderr, "tycosd:", err)
		return exitUsage
	}

	srv, err := daemon.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "tycosd:", err)
		return exitFailure
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "tycosd:", err)
		srv.Close()
		return exitFailure
	}
	// The resolved address line is a contract: harnesses passing -addr :0
	// parse it to find the port.
	fmt.Fprintf(stdout, "tycosd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	//lint:allow gopanic net/http recovers handler panics per connection; Serve returns on Shutdown/Close
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful drain: stop admitting (close the listener and refuse new
		// requests), finish queued and in-flight searches, flush the journal.
		stop() // a second signal kills the process the usual way
		fmt.Fprintln(stdout, "tycosd: draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(dctx); err != nil {
			fmt.Fprintln(stderr, "tycosd: shutdown:", err)
			srv.Close()
			return exitFailure
		}
		if err := srv.Drain(dctx); err != nil {
			fmt.Fprintln(stderr, "tycosd:", err)
			return exitFailure
		}
		fmt.Fprintln(stdout, "tycosd: drained, exiting")
		return exitOK
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "tycosd:", err)
			srv.Close()
			return exitFailure
		}
		return exitOK
	}
}
