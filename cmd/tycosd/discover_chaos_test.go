package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"

	"tycos/internal/checkpoint"
)

// ingestDiscoverFleet loads the deterministic discovery fleet: one anchor
// and four candidates, each following the anchor at its own delay so every
// candidate earns a confirmation search and a journal record.
func ingestDiscoverFleet(t *testing.T, base string) {
	t.Helper()
	x, _ := chaosSeries()
	post := func(name string, vals []float64) {
		resp, err := postJSON(t, base+"/v1/series", map[string]any{"name": name, "values": vals})
		if err != nil {
			t.Fatalf("ingest %s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", name, resp.StatusCode)
		}
	}
	post("anchor", x)
	for d := 0; d < 4; d++ {
		v := make([]float64, len(x))
		for i := range v {
			j := i - d
			if j < 0 {
				j = 0
			}
			v[i] = x[j]
		}
		post(fmt.Sprintf("cand%d", d), v)
	}
}

// discoverBody is the request every run replays. Screening is off so all
// four candidates are confirmed (four journal records — the kill point is
// deterministic with the daemon's single in-task discovery worker).
func discoverBody() map[string]any {
	return map[string]any{
		"anchor":     "anchor",
		"candidates": []string{"cand0", "cand1", "cand2", "cand3"},
		"topk":       4,
		"screen":     false,
		"smin":       8, "smax": 16, "tdmax": 4, "sigma": 0.2,
	}
}

// discover posts one discovery and returns (body, searched, replayed, error).
func discover(t *testing.T, base string) ([]byte, int, int, error) {
	t.Helper()
	resp, err := postJSON(t, base+"/v1/discover", discoverBody())
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, 0, 0, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	searched, _ := strconv.Atoi(resp.Header.Get("X-Tycosd-Discovery-Searched"))
	replayed, _ := strconv.Atoi(resp.Header.Get("X-Tycosd-Discovery-Replayed"))
	return b, searched, replayed, nil
}

// TestDiscoverKillResumeByteIdentical is the discovery crash-safety
// acceptance check: a tycosd SIGKILLed mid-discovery (torn per-survivor
// journal append) is restarted on the same journal, replays the finished
// survivors instead of recomputing them, and serves a response
// byte-identical to an uninterrupted golden run.
func TestDiscoverKillResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()

	// Golden: uninterrupted discovery, all four candidates computed.
	g := startDaemon(t, []string{"-journal", filepath.Join(dir, "golden.jsonl")})
	ingestDiscoverFleet(t, g.base)
	golden, searched, replayed, err := discover(t, g.base)
	if err != nil {
		t.Fatalf("golden discover: %v", err)
	}
	if searched != 4 || replayed != 0 {
		t.Fatalf("golden searched/replayed = %d/%d, want 4/0", searched, replayed)
	}
	g.signal(t, syscall.SIGTERM)
	if code := g.waitExit(t); code != exitOK {
		t.Fatalf("golden exit = %d; output:\n%s", code, g.out.String())
	}

	// Chaos: the third per-survivor journal append is torn and the process
	// killed — two survivors are durably journaled, the third's record is a
	// torn line the journal reader must drop on recovery.
	jpath := filepath.Join(dir, "chaos.jsonl")
	c := startDaemon(t, []string{"-journal", jpath},
		"TYCOS_FAULTS=checkpoint/record.torn=kill,after=2")
	ingestDiscoverFleet(t, c.base)
	if _, _, _, err := discover(t, c.base); err == nil {
		t.Fatal("chaos discovery succeeded; the injected kill never fired")
	}
	if code := c.waitExit(t); code == exitOK {
		t.Fatal("killed child reported a clean exit")
	}

	// Resume: same journal, same fleet. The two journaled survivors replay,
	// the rest recompute, and the body matches the golden run byte for byte.
	r := startDaemon(t, []string{"-journal", jpath})
	ingestDiscoverFleet(t, r.base)
	body, searched, replayed, err := discover(t, r.base)
	if err != nil {
		t.Fatalf("resumed discover: %v", err)
	}
	if replayed != 2 {
		t.Errorf("resumed replayed = %d, want 2 (the survivors journaled before the kill)", replayed)
	}
	if searched+replayed != 4 {
		t.Errorf("resumed searched+replayed = %d+%d, want 4", searched, replayed)
	}
	if !bytes.Equal(body, golden) {
		t.Errorf("resumed discovery differs from golden:\n%s\nvs\n%s", body, golden)
	}
	r.signal(t, syscall.SIGTERM)
	if code := r.waitExit(t); code != exitOK {
		t.Fatalf("resumed exit = %d; output:\n%s", code, r.out.String())
	}
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatalf("final journal: %v", err)
	}
	defer j.Close()
	if j.Len() != 4 {
		t.Errorf("final journal holds %d records, want 4", j.Len())
	}
}
