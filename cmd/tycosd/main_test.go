package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tycos/internal/checkpoint"
)

// TestMain doubles as the daemon entry point for forked-process tests: when
// TYCOSD_CHILD is set the test binary becomes tycosd itself, so the chaos
// suite can SIGTERM and SIGKILL a real process rather than a simulation.
func TestMain(m *testing.M) {
	if os.Getenv("TYCOSD_CHILD") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("TYCOSD_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "tycosd test child:", err)
			os.Exit(exitUsage)
		}
		os.Exit(run(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// lockedBuf is a goroutine-safe output collector for the child's streams.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemonProc is one forked tycosd under test.
type daemonProc struct {
	cmd      *exec.Cmd
	base     string // http://host:port
	out      *lockedBuf
	copyDone chan struct{}
}

// startDaemon forks the test binary as tycosd, waits for its "listening on"
// line and returns a handle with the resolved base URL.
func startDaemon(t *testing.T, args []string, env ...string) *daemonProc {
	t.Helper()
	argv, err := json.Marshal(append([]string{"-addr", "127.0.0.1:0"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "TYCOSD_CHILD=1", "TYCOSD_ARGS="+string(argv))
	cmd.Env = append(cmd.Env, env...)
	p := &daemonProc{cmd: cmd, out: &lockedBuf{}, copyDone: make(chan struct{})}
	cmd.Stderr = p.out
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-p.copyDone
			cmd.Wait()
		}
	})

	rd := bufio.NewReader(stdout)
	line, err := rd.ReadString('\n')
	if err != nil {
		<-closeAfterCopy(p, rd)
		cmd.Wait()
		t.Fatalf("tycosd child produced no listening line (err %v); output:\n%s", err, p.out.String())
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected first line %q", line)
	}
	p.base = "http://" + strings.TrimSpace(line[i+len(marker):])
	p.out.Write([]byte(line))
	closeAfterCopy(p, rd)
	return p
}

// closeAfterCopy drains the rest of the child's stdout into the buffer.
func closeAfterCopy(p *daemonProc, rd io.Reader) chan struct{} {
	go func() {
		defer func() { recover() }()
		io.Copy(p.out, rd)
		close(p.copyDone)
	}()
	return p.copyDone
}

// waitExit waits for the child to finish and returns its exit code
// (-1 when killed by a signal).
func (p *daemonProc) waitExit(t *testing.T) int {
	t.Helper()
	select {
	case <-p.copyDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("child stdout never closed; output:\n%s", p.out.String())
	}
	err := p.cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("wait: %v", err)
	return -2
}

func (p *daemonProc) signal(t *testing.T, sig os.Signal) {
	t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		t.Fatalf("signal %v: %v", sig, err)
	}
}

// chaosSeries is the deterministic pair every forked run ingests, so golden
// and resumed runs see identical data.
func chaosSeries() (x, y []float64) {
	const n = 160
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)/7) + 0.1*math.Cos(float64(i)/3)
	}
	for i := range y {
		j := i - 2
		if j < 0 {
			j = 0
		}
		y[i] = x[j]
	}
	return x, y
}

func postJSON(t *testing.T, url string, body any) (*http.Response, error) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return http.Post(url, "application/json", bytes.NewReader(b))
}

func ingestPair(t *testing.T, base string) {
	t.Helper()
	x, y := chaosSeries()
	for name, vals := range map[string][]float64{"x": x, "y": y} {
		resp, err := postJSON(t, base+"/v1/series", map[string]any{"name": name, "values": vals})
		if err != nil {
			t.Fatalf("ingest %s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", name, resp.StatusCode)
		}
	}
}

// searchBodies are the two requests the chaos tests replay; distinct sigmas
// give them distinct journal fingerprints.
func searchBodies() []map[string]any {
	return []map[string]any{
		{"x": "x", "y": "y", "smin": 8, "smax": 16, "tdmax": 4, "sigma": 0.2},
		{"x": "x", "y": "y", "smin": 8, "smax": 16, "tdmax": 4, "sigma": 0.3},
	}
}

// search posts one search and returns (source header, body, error).
func search(t *testing.T, base string, body map[string]any) (string, []byte, error) {
	t.Helper()
	resp, err := postJSON(t, base+"/v1/search", body)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return "", nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	b, err := io.ReadAll(resp.Body)
	return resp.Header.Get("X-Tycosd-Source"), b, err
}

// TestDrainOnSIGTERM is the graceful-lifecycle acceptance check: a SIGTERM
// after real work drains in-flight searches, flushes the journal, logs the
// drain and exits 0, leaving a journal a fresh reader can parse.
func TestDrainOnSIGTERM(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	p := startDaemon(t, []string{"-journal", jpath, "-workers", "2"})

	resp, err := http.Get(p.base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	ingestPair(t, p.base)
	src, _, err := search(t, p.base, searchBodies()[0])
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if src != "computed" {
		t.Fatalf("source = %q, want computed", src)
	}

	p.signal(t, syscall.SIGTERM)
	if code := p.waitExit(t); code != exitOK {
		t.Fatalf("exit = %d, want %d; output:\n%s", code, exitOK, p.out.String())
	}
	out := p.out.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained, exiting") {
		t.Errorf("drain lifecycle not logged:\n%s", out)
	}

	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatalf("reopen journal after drain: %v", err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Errorf("drained journal holds %d records, want 1", j.Len())
	}
}

// TestKillResumeByteIdentical is the crash-safety acceptance check: a
// tycosd SIGKILLed mid-journal-append (via an injected torn write) is
// restarted on the same journal, replays every completed search
// byte-identically to an uninterrupted golden run, and recomputes the torn
// one to the same bytes.
func TestKillResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	bodies := searchBodies()

	// Golden: uninterrupted run, both searches computed.
	golden := make([][]byte, len(bodies))
	g := startDaemon(t, []string{"-journal", filepath.Join(dir, "golden.jsonl")})
	ingestPair(t, g.base)
	for i, b := range bodies {
		src, body, err := search(t, g.base, b)
		if err != nil || src != "computed" {
			t.Fatalf("golden search %d: src=%q err=%v", i, src, err)
		}
		golden[i] = body
	}
	g.signal(t, syscall.SIGTERM)
	if code := g.waitExit(t); code != exitOK {
		t.Fatalf("golden exit = %d; output:\n%s", code, g.out.String())
	}

	// Chaos: the second journal append is killed halfway through the line —
	// the process dies with a torn record for search 2 and a completed one
	// for search 1.
	jpath := filepath.Join(dir, "chaos.jsonl")
	c := startDaemon(t, []string{"-journal", jpath},
		"TYCOS_FAULTS=checkpoint/record.torn=kill,after=1")
	ingestPair(t, c.base)
	src, body, err := search(t, c.base, bodies[0])
	if err != nil || src != "computed" {
		t.Fatalf("chaos search 0: src=%q err=%v", src, err)
	}
	if !bytes.Equal(body, golden[0]) {
		t.Fatalf("chaos search 0 differs from golden before the kill")
	}
	if _, _, err := search(t, c.base, bodies[1]); err == nil {
		t.Fatalf("search 1 succeeded; the injected kill never fired")
	}
	if code := c.waitExit(t); code == exitOK {
		t.Fatalf("killed child reported a clean exit")
	}

	// Resume: same journal, same data. Search 0 must replay from the
	// journal; search 1 (its record was torn) must recompute. Both must be
	// byte-identical to the golden run.
	r := startDaemon(t, []string{"-journal", jpath})
	ingestPair(t, r.base)
	wantSrc := []string{"journal", "computed"}
	for i, b := range bodies {
		src, body, err := search(t, r.base, b)
		if err != nil {
			t.Fatalf("resumed search %d: %v", i, err)
		}
		if src != wantSrc[i] {
			t.Errorf("resumed search %d source = %q, want %q", i, src, wantSrc[i])
		}
		if !bytes.Equal(body, golden[i]) {
			t.Errorf("resumed search %d differs from golden:\n%s\nvs\n%s", i, body, golden[i])
		}
	}
	r.signal(t, syscall.SIGTERM)
	if code := r.waitExit(t); code != exitOK {
		t.Fatalf("resumed exit = %d; output:\n%s", code, r.out.String())
	}
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatalf("final journal: %v", err)
	}
	defer j.Close()
	if j.Len() != len(bodies) {
		t.Errorf("final journal holds %d records, want %d", j.Len(), len(bodies))
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-shed", "politely"}, &out, &errw); code != exitUsage {
		t.Errorf("bad -shed exit = %d, want %d", code, exitUsage)
	}
	if !strings.Contains(errw.String(), "shed") {
		t.Errorf("bad -shed not diagnosed: %s", errw.String())
	}

	errw.Reset()
	t.Setenv("TYCOS_FAULTS", "not a fault spec")
	if code := run(nil, &out, &errw); code != exitUsage {
		t.Errorf("bad TYCOS_FAULTS exit = %d, want %d", code, exitUsage)
	}
}
