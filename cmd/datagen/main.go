// Command datagen generates the reproduction's datasets to CSV files:
// the Table 1 composite relation pairs, the correlated-AR runtime
// workloads, and the simulated energy-home and smart-city feeds.
//
// Usage:
//
//	datagen -kind relations -out relations.csv [-seglen 300] [-seplen 170] [-delay 150]
//	datagen -kind ar        -out ar.csv        [-n 8000] [-segments 4]
//	datagen -kind energy    -out energy.csv    [-days 7]
//	datagen -kind city      -out city.csv      [-days 14]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tycos/internal/dataset"
	"tycos/internal/series"
	"tycos/internal/synth"
)

func main() {
	var (
		kind     = flag.String("kind", "", "dataset kind: relations, ar, energy, city (required)")
		out      = flag.String("out", "", "output CSV path (required)")
		seed     = flag.Int64("seed", 1, "random seed")
		segLen   = flag.Int("seglen", 300, "relations: samples per relation segment")
		sepLen   = flag.Int("seplen", 170, "relations: independent samples between segments")
		delay    = flag.Int("delay", 0, "relations: delay applied to every relation's Y events")
		n        = flag.Int("n", 8000, "ar: series length")
		segments = flag.Int("segments", 4, "ar: number of correlated segments")
		days     = flag.Int("days", 7, "energy/city: simulated days")
	)
	flag.Parse()
	if *kind == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch *kind {
	case "relations":
		var comp synth.Composite
		comp, err = synth.Compose(synth.Relations, *segLen, *sepLen, *delay, *seed)
		if err == nil {
			err = series.SaveCSV(*out, comp.Pair.X, comp.Pair.Y)
			for _, seg := range comp.Segments {
				fmt.Printf("segment %-12s x=[%d,%d] delay=%d\n", seg.Rel, seg.Start, seg.End, seg.Delay)
			}
		}
	case "ar":
		var comp synth.Composite
		comp, err = synth.CorrelatedAR(*n, *segments, *n/10, 10, *seed)
		if err == nil {
			err = series.SaveCSV(*out, comp.Pair.X, comp.Pair.Y)
			for _, seg := range comp.Segments {
				fmt.Printf("segment x=[%d,%d] delay=%d\n", seg.Start, seg.End, seg.Delay)
			}
		}
	case "energy":
		h := dataset.Energy(dataset.EnergyOptions{Days: *days, Seed: *seed})
		err = series.SaveCSV(*out, sorted(h.Series())...)
	case "city":
		c := dataset.SimulateCity(dataset.CityOptions{Days: *days, Seed: *seed})
		err = series.SaveCSV(*out, sorted(c.Series())...)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// sorted flattens a series map into name order for stable CSV columns.
func sorted(m map[string]series.Series) []series.Series {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]series.Series, 0, len(names))
	for _, name := range names {
		out = append(out, m[name])
	}
	return out
}
