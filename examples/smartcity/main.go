// Smart-city example: the weather → accidents scenario of the paper's
// introduction. Two weeks of simulated NYC-style feeds are searched for the
// precipitation → collision correlation (C7 of Table 3), which appears 30
// minutes to 2 hours after rain starts, and the result is contrasted with a
// control series that has no weather coupling.
package main

import (
	"fmt"
	"log"

	"tycos"
	"tycos/internal/dataset"
)

func main() {
	city := dataset.SimulateCity(dataset.CityOptions{Days: 14, Seed: 1})

	opts := tycos.Options{
		SMin:  24, // ≥ 2 hours at the 5-minute feed resolution
		SMax:  96, // ≤ 8 hours (a storm's scale)
		TDMax: 30, // impact delayed up to 2.5 hours
		Sigma: 0.15,
		// Collision counts are small integers: dither to keep the KSG
		// estimator healthy, and require windows to clear a 3-sigma
		// noise-calibrated bar.
		Jitter:            0.01,
		SignificanceLevel: 3,
		Variant:           tycos.VariantLMN,
	}

	report := func(label string, y tycos.Series) {
		pair, err := tycos.NewPair(city.Precipitation, y)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tycos.Search(pair, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d windows\n", label, len(res.Windows))
		for _, w := range res.Windows {
			fmt.Printf("  rain at step %4d..%4d → impact %3.0f min later (score %.3f)\n",
				w.Start, w.End, float64(w.Delay)*5, w.MI)
		}
	}

	report("precipitation ↔ collisions (coupled)", city.Collisions)
	report("precipitation ↔ control traffic (uncoupled)", city.CollisionsBaseline)
}
