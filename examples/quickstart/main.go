// Quickstart: build a small pair with a hidden non-linear, time-delayed
// dependency and let TYCOS find it through the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tycos"
)

func main() {
	// Two sensors: X drifts smoothly; between samples 300 and 500, Y starts
	// reacting to X — non-linearly (a sine response) and 8 steps late.
	rng := rand.New(rand.NewSource(7))
	n := 900
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	drift := 0.0
	for i := 300; i <= 500; i++ {
		drift = 0.9*drift + rng.NormFloat64()
		x[i] = drift
		y[i+8] = 2*math.Sin(drift) + 0.1*rng.NormFloat64()
	}

	pair, err := tycos.NewPair(tycos.NewSeries("sensor_x", x), tycos.NewSeries("sensor_y", y))
	if err != nil {
		log.Fatal(err)
	}

	res, err := tycos.Search(pair, tycos.Options{
		SMin:  12,  // a correlation lasts at least 12 samples
		SMax:  250, // and at most 250
		TDMax: 15,  // Y may lag X by up to 15 samples
		Sigma: 0.3, // keep windows with normalized MI ≥ 0.3
		// Small windows of pure noise can reach deceptively high MI; the
		// significance correction subtracts a calibrated null level so only
		// real structure survives the threshold.
		SignificanceLevel: 3,
		Variant:           tycos.VariantLMN,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("correlated time-delay windows:")
	for _, w := range res.Windows {
		fmt.Printf("  X[%d..%d] ↔ Y[%d..%d]  (delay %d, score %.3f)\n",
			w.Start, w.End, w.Start+w.Delay, w.End+w.Delay, w.Delay, w.MI)
	}
	fmt.Printf("search evaluated %d windows over a space of %d feasible ones\n",
		res.Stats.WindowsEvaluated,
		tycos.SearchSpaceSize(n, tycos.Options{SMin: 12, SMax: 250, TDMax: 15}))
}
