// Estimators example: compare the KSG and histogram mutual-information
// estimators against the analytic ground truth on correlated Gaussians, and
// show why the paper chose KSG — accuracy at small sample sizes, where the
// multi-scale search spends most of its time.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"tycos"
	"tycos/internal/mi"
)

func main() {
	rho := 0.8
	truth := mi.GaussianMI(rho)
	if math.IsInf(truth, 0) {
		// |ρ| ≥ 1 has no finite MI; nothing meaningful to compare against.
		fmt.Printf("bivariate Gaussian ρ=%.1f is degenerate (I = +Inf); pick |ρ| < 1\n", rho)
		return
	}
	fmt.Printf("bivariate Gaussian ρ=%.1f: analytic I = %.4f nats\n\n", rho, truth)
	fmt.Printf("%8s  %10s  %14s\n", "samples", "KSG", "histogram(FD)")

	rng := rand.New(rand.NewSource(1))
	hist := mi.NewHistogram(0)
	for _, n := range []int{50, 100, 500, 2000, 10000} {
		x := make([]float64, n)
		y := make([]float64, n)
		c := math.Sqrt(1 - rho*rho)
		for i := 0; i < n; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			x[i] = a
			y[i] = rho*a + c*b
		}
		ksg, err := tycos.EstimateMI(x, y, 4)
		if err != nil {
			fmt.Println("ksg:", err)
			continue
		}
		hv, err := hist.Estimate(x, y)
		if err != nil {
			fmt.Println("histogram:", err)
			continue
		}
		fmt.Printf("%8d  %10.4f  %14.4f\n", n, ksg, hv)
	}

	fmt.Println("\nnormalized MI of the same dependence at n=2000:")
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	c := math.Sqrt(1 - rho*rho)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = a
		y[i] = rho*a + c*b
	}
	raw, _ := tycos.EstimateMI(x, y, 4)
	fmt.Printf("  raw             %.4f nats\n", raw)
	fmt.Printf("  max-entropy     %.4f\n", tycos.NormalizedMI(raw, x, y, tycos.NormMaxEntropy))
	fmt.Printf("  joint-histogram %.4f\n", tycos.NormalizedMI(raw, x, y, tycos.NormJointHistogram))
}
