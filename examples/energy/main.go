// Energy example: the smart-home scenario from the paper's introduction.
// A week of simulated plug-level consumption (NIST net-zero home style) is
// searched for the kitchen → dish-washer usage pattern, which occurs with a
// 0–4 hour delay — exactly the correlation C1 of the paper's Table 3.
package main

import (
	"fmt"
	"log"

	"tycos"
	"tycos/internal/dataset"
)

func main() {
	home := dataset.Energy(dataset.EnergyOptions{Days: 7, Seed: 1})

	// Work at 5-minute resolution: delays of hours don't need minute grain,
	// and the search space shrinks 25-fold.
	kitchen, err := home.Kitchen.Resample(5)
	if err != nil {
		log.Fatal(err)
	}
	washer, err := home.DishWasher.Resample(5)
	if err != nil {
		log.Fatal(err)
	}
	pair, err := tycos.NewPair(kitchen, washer)
	if err != nil {
		log.Fatal(err)
	}

	res, err := tycos.Search(pair, tycos.Options{
		SMin:  12,  // ≥ 1 hour
		SMax:  240, // ≤ 20 hours
		TDMax: 50,  // the dish washer may follow the kitchen by ≤ ~4 h
		Sigma: 0.15,
		// Plug data has long flat standby stretches; the significance bar
		// keeps spurious small-window matches out of the report.
		Jitter:            0.001,
		SignificanceLevel: 3,
		Variant:           tycos.VariantLMN,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kitchen ↔ dish washer: %d correlated windows\n", len(res.Windows))
	for _, w := range res.Windows {
		startMin := float64(w.Start) * kitchen.Step
		fmt.Printf("  day %d, %02d:%02d  for %3.0f min  delay %3.0f min  score %.3f\n",
			int(startMin)/(24*60),
			(int(startMin)%(24*60))/60, int(startMin)%60,
			float64(w.Size())*kitchen.Step,
			float64(w.Delay)*kitchen.Step,
			w.MI)
	}
}
