package tycos

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden regression fixtures: full search results for two small example
// datasets, committed under testdata/golden. Any drift in the search output —
// window bounds, delays, scores, work counters — fails with a line-per-field
// diff. After an intentional behaviour change, regenerate with
//
//	go test -run TestGolden -update
//
// and review the fixture diff like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from current output")

// goldenWindow is one accepted window as persisted in a fixture.
type goldenWindow struct {
	Start int     `json:"start"`
	End   int     `json:"end"`
	Delay int     `json:"delay"`
	MI    float64 `json:"mi"`
}

// goldenResult is the deterministic portion of a search outcome. Timing is
// wall-clock and excluded by construction.
type goldenResult struct {
	Windows          []goldenWindow `json:"windows"`
	WindowsEvaluated int            `json:"windows_evaluated"`
	MIBatch          int            `json:"mi_batch"`
	MIIncremental    int            `json:"mi_incremental"`
	Restarts         int            `json:"restarts"`
	PrunedDirections int            `json:"pruned_directions"`
	NoiseBlocks      int            `json:"noise_blocks"`
	StopReason       string         `json:"stop_reason"`
}

func toGolden(res Result) goldenResult {
	g := goldenResult{
		WindowsEvaluated: res.Stats.WindowsEvaluated,
		MIBatch:          res.Stats.MIBatch,
		MIIncremental:    res.Stats.MIIncremental,
		Restarts:         res.Stats.Restarts,
		PrunedDirections: res.Stats.PrunedDirections,
		NoiseBlocks:      res.Stats.NoiseBlocks,
		StopReason:       string(res.Stats.StopReason),
	}
	for _, w := range res.Windows {
		g.Windows = append(g.Windows, goldenWindow{Start: w.Start, End: w.End, Delay: w.Delay, MI: w.MI})
	}
	return g
}

// diffGolden renders a readable field-by-field diff between the expected and
// actual results; empty means equal. Window bounds and counters compare
// exactly; MI compares to 1e-9 so the fixture stays robust to harmless
// last-ulp formatting churn while still catching estimator regressions.
func diffGolden(want, got goldenResult) string {
	var b strings.Builder
	line := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	if len(want.Windows) != len(got.Windows) {
		line("window count: want %d, got %d", len(want.Windows), len(got.Windows))
	}
	n := len(want.Windows)
	if len(got.Windows) < n {
		n = len(got.Windows)
	}
	for i := 0; i < n; i++ {
		w, g := want.Windows[i], got.Windows[i]
		if w.Start != g.Start || w.End != g.End || w.Delay != g.Delay {
			line("window %d bounds: want [%d,%d]τ%d, got [%d,%d]τ%d", i, w.Start, w.End, w.Delay, g.Start, g.End, g.Delay)
		}
		if math.Abs(w.MI-g.MI) > 1e-9 {
			line("window %d MI: want %.12f, got %.12f (Δ %.3g)", i, w.MI, g.MI, math.Abs(w.MI-g.MI))
		}
	}
	for i := n; i < len(want.Windows); i++ {
		w := want.Windows[i]
		line("window %d missing: want [%d,%d]τ%d MI %.6f", i, w.Start, w.End, w.Delay, w.MI)
	}
	for i := n; i < len(got.Windows); i++ {
		g := got.Windows[i]
		line("window %d unexpected: got [%d,%d]τ%d MI %.6f", i, g.Start, g.End, g.Delay, g.MI)
	}
	cmp := func(name string, w, g int) {
		if w != g {
			line("%s: want %d, got %d", name, w, g)
		}
	}
	cmp("windows_evaluated", want.WindowsEvaluated, got.WindowsEvaluated)
	cmp("mi_batch", want.MIBatch, got.MIBatch)
	cmp("mi_incremental", want.MIIncremental, got.MIIncremental)
	cmp("restarts", want.Restarts, got.Restarts)
	cmp("pruned_directions", want.PrunedDirections, got.PrunedDirections)
	cmp("noise_blocks", want.NoiseBlocks, got.NoiseBlocks)
	if want.StopReason != got.StopReason {
		line("stop_reason: want %q, got %q", want.StopReason, got.StopReason)
	}
	return b.String()
}

// goldenCase ties one example dataset + options to its fixture file.
type goldenCase struct {
	name    string
	fixture string
	search  func(t *testing.T) Result
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name:    "relations_small",
			fixture: "testdata/golden/relations_small.json",
			search: func(t *testing.T) Result {
				pair, err := LoadPairCSV("examples/data/relations_small.csv", "x", "y")
				if err != nil {
					t.Fatal(err)
				}
				res, err := Search(pair, Options{
					SMin: 20, SMax: 120, TDMax: 5,
					Sigma:   0.25,
					Variant: VariantLMN,
					Seed:    1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		},
		{
			name:    "energy_small",
			fixture: "testdata/golden/energy_small.json",
			search: func(t *testing.T) Result {
				pair, err := LoadPairCSV("examples/data/energy_small.csv", "kitchen", "kitchen_light")
				if err != nil {
					t.Fatal(err)
				}
				res, err := Search(pair, Options{
					SMin: 24, SMax: 144, TDMax: 6,
					Sigma:   0.2,
					Variant: VariantLMN,
					Jitter:  0.01,
					Seed:    1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		},
	}
}

func TestGoldenSearchResults(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := toGolden(tc.search(t))
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(tc.fixture), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(tc.fixture, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d windows)", tc.fixture, len(got.Windows))
				return
			}
			data, err := os.ReadFile(tc.fixture)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			var want goldenResult
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", tc.fixture, err)
			}
			if diff := diffGolden(want, got); diff != "" {
				t.Errorf("search output drifted from %s:\n%s", tc.fixture, diff)
			}
		})
	}
}

// TestGoldenIndependentOfRestartWorkers replays the golden searches with an
// elevated worker count and requires the same fixture to hold — the byte-
// identity guarantee checked against real datasets rather than synthetic
// pairs.
func TestGoldenIndependentOfRestartWorkers(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures being rewritten")
	}
	pair, err := LoadPairCSV("examples/data/relations_small.csv", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{SMin: 20, SMax: 120, TDMax: 5, Sigma: 0.25, Variant: VariantLMN, Seed: 1}
	res1, err := Search(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.RestartWorkers = 8
	res8, err := Search(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	if diff := diffGolden(toGolden(res1), toGolden(res8)); diff != "" {
		t.Errorf("RestartWorkers=8 drifted from RestartWorkers=1 on relations_small:\n%s", diff)
	}
}
