module tycos

go 1.22
