package dataset

import (
	"math"
	"math/rand"

	"tycos/internal/series"
)

// StepsPerDay is the number of samples per simulated day at the smart-city
// feeds' 5-minute resolution.
const StepsPerDay = 24 * 12

// CityOptions configures the smart-city simulation.
type CityOptions struct {
	// Days is the number of simulated days (default 14).
	Days int
	// Seed drives all randomness (default 1).
	Seed int64
}

// City holds the simulated NYC-style weather and collision series, all at
// 5-minute resolution and equal length.
type City struct {
	Precipitation      series.Series // rain intensity (mm/h-ish)
	WindSpeed          series.Series // m/s-ish, AR process with gust events
	Snow               series.Series // occasional snowfall intensity
	Collisions         series.Series // city-wide accident counts (C7, C8)
	PedestrianInjured  series.Series // rain-driven with 30 min–2 h delay (C9)
	MotoristKilled     series.Series // wind-driven with 15–60 min delay (C10)
	CyclistInjured     series.Series // wind-driven, secondary
	CollisionsBaseline series.Series // control: traffic volume with no weather coupling
}

// SimulateCity builds the feeds: weather processes with storm events, and
// incident counts that rise a sampled delay after the driving weather — rain
// affects pedestrians and total collisions after 30 min–2 h, wind affects
// motorists and cyclists after 15–60 min, mirroring the delay ranges the
// paper reports for C7–C10.
func SimulateCity(opts CityOptions) City {
	if opts.Days <= 0 {
		opts.Days = 14
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Days * StepsPerDay

	c := City{
		Precipitation:      series.Series{Name: "precipitation", Step: 5, Values: make([]float64, n)},
		WindSpeed:          series.Series{Name: "wind_speed", Step: 5, Values: make([]float64, n)},
		Snow:               series.Series{Name: "snow", Step: 5, Values: make([]float64, n)},
		Collisions:         series.Series{Name: "collisions", Step: 5, Values: make([]float64, n)},
		PedestrianInjured:  series.Series{Name: "pedestrian_injured", Step: 5, Values: make([]float64, n)},
		MotoristKilled:     series.Series{Name: "motorist_killed", Step: 5, Values: make([]float64, n)},
		CyclistInjured:     series.Series{Name: "cyclist_injured", Step: 5, Values: make([]float64, n)},
		CollisionsBaseline: series.Series{Name: "collisions_baseline", Step: 5, Values: make([]float64, n)},
	}

	// Wind: AR(1) around a diurnal mean with occasional multi-hour gust
	// events.
	wind := 5.0
	for i := 0; i < n; i++ {
		diurnal := 5 + 2*math.Sin(2*math.Pi*float64(i%StepsPerDay)/StepsPerDay)
		wind = 0.95*wind + 0.05*diurnal + 0.6*rng.NormFloat64()
		if wind < 0 {
			wind = 0
		}
		c.WindSpeed.Values[i] = wind
	}
	// Gust events: raise wind for 1–4 hours.
	for e := 0; e < opts.Days/2+1; e++ {
		start := rng.Intn(n)
		dur := 12 + rng.Intn(36)
		boost := 6 + 6*rng.Float64()
		for i := start; i < start+dur && i < n; i++ {
			c.WindSpeed.Values[i] += boost * (0.7 + 0.6*rng.Float64())
		}
	}

	// Rain: storms of 1–6 hours, roughly one every other day; snow: rare
	// longer events.
	for e := 0; e < opts.Days; e++ {
		if rng.Float64() < 0.5 {
			continue
		}
		start := rng.Intn(n)
		dur := 12 + rng.Intn(60)
		peak := 2 + 8*rng.Float64()
		addWeatherEvent(c.Precipitation.Values, start, dur, peak, rng)
	}
	for e := 0; e < opts.Days/5+1; e++ {
		start := rng.Intn(n)
		dur := 48 + rng.Intn(96)
		addWeatherEvent(c.Snow.Values, start, dur, 1.5+2*rng.Float64(), rng)
	}

	// Incidents: Poisson-like baseline modulated by traffic rhythm, plus
	// delayed weather-driven surges.
	for i := 0; i < n; i++ {
		traffic := 1 + 0.8*math.Sin(2*math.Pi*(float64(i%StepsPerDay)/StepsPerDay-0.25))
		if traffic < 0.2 {
			traffic = 0.2
		}
		c.Collisions.Values[i] = poissonish(rng, 1.5*traffic)
		c.CollisionsBaseline.Values[i] = poissonish(rng, 1.5*traffic)
		c.PedestrianInjured.Values[i] = poissonish(rng, 0.4*traffic)
		c.MotoristKilled.Values[i] = poissonish(rng, 0.3*traffic)
		c.CyclistInjured.Values[i] = poissonish(rng, 0.3*traffic)
	}
	// Rain → collisions and pedestrian injuries, delayed 30 min–2 h
	// (6–24 steps).
	rainDelay := 6 + rng.Intn(19)
	pedDelay := 6 + rng.Intn(19)
	for i := 0; i < n; i++ {
		r := c.Precipitation.Values[i]
		if r <= 0.1 {
			continue
		}
		if j := i + rainDelay; j < n {
			c.Collisions.Values[j] += poissonish(rng, 3.0*r)
		}
		if j := i + pedDelay; j < n {
			c.PedestrianInjured.Values[j] += poissonish(rng, 2.5*r)
		}
	}
	// Snow → collisions, delayed 15–60 min (3–12 steps): the (Snow,
	// Collision) pair drives the paper's s_max/td_max convergence study
	// (Fig. 13b/c).
	snowDelay := 3 + rng.Intn(10)
	for i := 0; i < n; i++ {
		s := c.Snow.Values[i]
		if s <= 0.1 {
			continue
		}
		if j := i + snowDelay; j < n {
			c.Collisions.Values[j] += poissonish(rng, 3.5*s)
		}
	}
	// Wind → motorist/cyclist incidents, delayed 15–60 min (3–12 steps);
	// wind also contributes to total collisions.
	windDelay := 3 + rng.Intn(10)
	for i := 0; i < n; i++ {
		w := c.WindSpeed.Values[i]
		if w <= 9 {
			continue // only strong wind matters
		}
		excess := (w - 9) / 2
		if j := i + windDelay; j < n {
			c.MotoristKilled.Values[j] += poissonish(rng, 2.5*excess)
			c.CyclistInjured.Values[j] += poissonish(rng, 2.0*excess)
			c.Collisions.Values[j] += poissonish(rng, 1.5*excess)
		}
	}
	return c
}

// Series returns every feed, keyed by name.
func (c City) Series() map[string]series.Series {
	out := make(map[string]series.Series)
	for _, s := range []series.Series{
		c.Precipitation, c.WindSpeed, c.Snow, c.Collisions,
		c.PedestrianInjured, c.MotoristKilled, c.CyclistInjured,
		c.CollisionsBaseline,
	} {
		out[s.Name] = s
	}
	return out
}

// addWeatherEvent writes a triangular-envelope intensity event.
func addWeatherEvent(v []float64, start, dur int, peak float64, rng *rand.Rand) {
	for i := 0; i < dur; i++ {
		idx := start + i
		if idx >= len(v) {
			return
		}
		frac := float64(i) / float64(dur)
		envelope := 1 - math.Abs(2*frac-1)
		v[idx] += peak * envelope * (0.7 + 0.6*rng.Float64())
	}
}

// poissonish draws a cheap Poisson-like count with the given mean using the
// Knuth method for small means and a normal approximation above 30.
func poissonish(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return math.Round(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
		if k > 1000 {
			return float64(k)
		}
	}
}
