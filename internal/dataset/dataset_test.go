package dataset

import (
	"testing"

	"tycos/internal/baseline"
	"tycos/internal/series"
)

func TestEnergyShape(t *testing.T) {
	h := Energy(EnergyOptions{Days: 3, Seed: 7})
	all := h.Series()
	if len(all) != 9 {
		t.Fatalf("expected 9 device series, got %d", len(all))
	}
	n := 3 * MinutesPerDay
	for name, s := range all {
		if s.Len() != n {
			t.Errorf("%s length %d, want %d", name, s.Len(), n)
		}
		st := s.Stats()
		if st.Min < 0 {
			t.Errorf("%s has negative consumption %v", name, st.Min)
		}
		if st.Max <= st.Min {
			t.Errorf("%s is flat", name)
		}
	}
}

func TestEnergyDeterministic(t *testing.T) {
	a := Energy(EnergyOptions{Days: 2, Seed: 3})
	b := Energy(EnergyOptions{Days: 2, Seed: 3})
	for i, v := range a.Kitchen.Values {
		if b.Kitchen.Values[i] != v {
			t.Fatal("Energy not deterministic")
		}
	}
	c := Energy(EnergyOptions{Days: 2, Seed: 4})
	same := true
	for i, v := range a.Kitchen.Values {
		if c.Kitchen.Values[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// lagPearson returns max |r| of x against y shifted by each lag in
// [0, maxLag], and the argmax lag — a cheap detector for "does a delayed
// dependency exist at the injected scale".
func lagPearson(x, y []float64, maxLag int) (bestR float64, bestLag int) {
	for lag := 0; lag <= maxLag; lag++ {
		r := baseline.Pearson(x[:len(x)-lag], y[lag:])
		if r < 0 {
			r = -r
		}
		if r > bestR {
			bestR, bestLag = r, lag
		}
	}
	return bestR, bestLag
}

func TestEnergyInjectedDelays(t *testing.T) {
	h := Energy(EnergyOptions{Days: 7, Seed: 5})
	// Washer → dryer delayed 10–30 min after a 50–70 min cycle: the lag
	// correlation should peak somewhere past 30 minutes and beat the
	// aligned correlation.
	r, lag := lagPearson(h.ClothesWasher.Values, h.Dryer.Values, 180)
	if r < 0.2 {
		t.Errorf("washer→dryer max lag correlation %.3f too weak", r)
	}
	if lag < 10 {
		t.Errorf("washer→dryer correlation peaks at lag %d, want a delayed peak", lag)
	}
	// Bathroom light → kitchen light delayed 1–5 min.
	r, lag = lagPearson(h.BathroomLight.Values, h.KitchenLight.Values, 30)
	if r < 0.15 {
		t.Errorf("bathroom→kitchen light correlation %.3f too weak", r)
	}
	_ = lag
}

func TestCityShape(t *testing.T) {
	c := SimulateCity(CityOptions{Days: 7, Seed: 11})
	all := c.Series()
	if len(all) != 8 {
		t.Fatalf("expected 8 feeds, got %d", len(all))
	}
	n := 7 * StepsPerDay
	for name, s := range all {
		if s.Len() != n {
			t.Errorf("%s length %d, want %d", name, s.Len(), n)
		}
		for i, v := range s.Values {
			if v < 0 {
				t.Errorf("%s[%d] = %v negative", name, i, v)
				break
			}
		}
	}
}

func TestCityInjectedDelays(t *testing.T) {
	c := SimulateCity(CityOptions{Days: 21, Seed: 13})
	// Rain → collisions must correlate best at a positive lag within 2 h
	// (24 steps).
	r, lag := lagPearson(c.Precipitation.Values, c.Collisions.Values, 36)
	if r < 0.15 {
		t.Errorf("rain→collisions max correlation %.3f too weak", r)
	}
	if lag < 3 || lag > 30 {
		t.Errorf("rain→collisions peak at lag %d, want within the injected 6–24", lag)
	}
	// The control series must not couple to rain.
	r0, _ := lagPearson(c.Precipitation.Values, c.CollisionsBaseline.Values, 36)
	if r0 >= r {
		t.Errorf("control series correlates with rain as much as the coupled one (%.3f vs %.3f)", r0, r)
	}
}

func TestCityCSVRoundTrip(t *testing.T) {
	// The simulators must interoperate with the series CSV layer, since
	// cmd/datagen persists them.
	c := SimulateCity(CityOptions{Days: 2, Seed: 3})
	dir := t.TempDir()
	path := dir + "/city.csv"
	if err := series.SaveCSV(path, c.Precipitation, c.Collisions); err != nil {
		t.Fatal(err)
	}
	p, err := series.LoadPairCSV(path, "precipitation", "collisions")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != c.Precipitation.Len() {
		t.Errorf("round-trip length %d", p.Len())
	}
}
