// Package dataset simulates the two real-world data collections of the
// paper's evaluation, which cannot be downloaded in this offline
// reproduction (see DESIGN.md, "Substitutions"):
//
//   - the NIST Net-Zero Energy Residential Test Facility plug-level series
//     (minute resolution) with the causally delayed device-usage patterns
//     behind Table 3's C1–C6, and
//   - the NYC Open Data weather and collision feeds (5-minute resolution)
//     behind C7–C10.
//
// The simulators inject dependencies with known delay ranges, so the Table 3
// harness can verify the *shape* of the paper's findings: TYCOS extracts the
// delayed correlations, AMIC (no delay dimension) extracts only the aligned
// ones.
package dataset

import (
	"math/rand"

	"tycos/internal/series"
)

// MinutesPerDay is the number of samples per simulated day at minute
// resolution.
const MinutesPerDay = 24 * 60

// EnergyOptions configures the household simulation.
type EnergyOptions struct {
	// Days is the number of simulated days (default 7).
	Days int
	// Seed drives all randomness (default 1).
	Seed int64
}

// EnergyHome holds the simulated plug-level series, all at minute
// resolution and equal length. Device semantics follow Table 3.
type EnergyHome struct {
	Kitchen         series.Series // aggregate kitchen consumption
	DishWasher      series.Series // follows kitchen activity by 0–4 h (C1)
	Microwave       series.Series // follows kitchen activity by 0–60 min (C2)
	ClothesWasher   series.Series
	Dryer           series.Series // follows washer cycles by 10–30 min (C3)
	BathroomLight   series.Series
	KitchenLight    series.Series // follows bathroom light by 1–5 min (C4), precedes microwave by 0–2 min (C5)
	ChildrenLight   series.Series
	LivingRoomLight series.Series // follows children's room light by 15–40 min (C6)
}

// Energy simulates the household. Every device series is a baseline hum
// plus event bursts; dependent devices fire bursts a sampled delay after
// their driver's bursts, which is precisely the structure a time-delay
// window search must recover.
func Energy(opts EnergyOptions) EnergyHome {
	if opts.Days <= 0 {
		opts.Days = 7
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Days * MinutesPerDay

	h := EnergyHome{
		Kitchen:         newDevice("kitchen", n),
		DishWasher:      newDevice("dish_washer", n),
		Microwave:       newDevice("microwave", n),
		ClothesWasher:   newDevice("clothes_washer", n),
		Dryer:           newDevice("dryer", n),
		BathroomLight:   newDevice("bathroom_light", n),
		KitchenLight:    newDevice("kitchen_light", n),
		ChildrenLight:   newDevice("children_room_light", n),
		LivingRoomLight: newDevice("living_room_light", n),
	}
	for _, s := range h.all() {
		fillBaseline(s.Values, rng, 2, 0.5)
	}

	for day := 0; day < opts.Days; day++ {
		base := day * MinutesPerDay

		// Morning routine (C4, C5): bathroom light ~06:00–07:00, kitchen
		// light 1–5 min later, microwave 0–2 min after the kitchen light.
		bath := base + 6*60 + rng.Intn(60)
		burst(h.BathroomLight.Values, bath, 10+rng.Intn(10), 60, rng)
		kLight := bath + 1 + rng.Intn(5)
		burst(h.KitchenLight.Values, kLight, 20+rng.Intn(15), 60, rng)
		burst(h.Microwave.Values, kLight+rng.Intn(3), 3+rng.Intn(4), 1100, rng)

		// Evening cooking (C1, C2): kitchen 16:00–19:00, dish washer 0–4 h
		// later, microwave used again 0–60 min into cooking.
		cook := base + 16*60 + rng.Intn(120)
		burst(h.Kitchen.Values, cook, 45+rng.Intn(60), 800, rng)
		burst(h.DishWasher.Values, cook+rng.Intn(4*60+1), 60+rng.Intn(30), 1200, rng)
		burst(h.Microwave.Values, cook+rng.Intn(31), 8+rng.Intn(8), 1100, rng)
		burst(h.Microwave.Values, cook+30+rng.Intn(31), 8+rng.Intn(8), 1100, rng)
		burst(h.KitchenLight.Values, cook, 120+rng.Intn(60), 60, rng)

		// Laundry (C3) every other day: washer, dryer 10–30 min after the
		// washer finishes.
		if day%2 == 0 {
			wash := base + 10*60 + rng.Intn(5*60)
			washLen := 50 + rng.Intn(20)
			burst(h.ClothesWasher.Values, wash, washLen, 500, rng)
			burst(h.Dryer.Values, wash+washLen+10+rng.Intn(21), 60+rng.Intn(20), 2000, rng)
		}

		// Evening lights (C6): children's room ~19:30, living room 15–40
		// min later.
		child := base + 19*60 + 30 + rng.Intn(45)
		burst(h.ChildrenLight.Values, child, 60+rng.Intn(60), 40, rng)
		burst(h.LivingRoomLight.Values, child+15+rng.Intn(26), 120+rng.Intn(60), 80, rng)
	}
	return h
}

// all returns the device series in a fixed order.
func (h EnergyHome) all() []*series.Series {
	return []*series.Series{
		&h.Kitchen, &h.DishWasher, &h.Microwave, &h.ClothesWasher, &h.Dryer,
		&h.BathroomLight, &h.KitchenLight, &h.ChildrenLight, &h.LivingRoomLight,
	}
}

// Series returns every device series, keyed by name.
func (h EnergyHome) Series() map[string]series.Series {
	out := make(map[string]series.Series)
	for _, s := range h.all() {
		out[s.Name] = *s
	}
	return out
}

func newDevice(name string, n int) series.Series {
	return series.Series{Name: name, Step: 1, Values: make([]float64, n)}
}

// fillBaseline writes standby consumption: a small positive hum with noise.
func fillBaseline(v []float64, rng *rand.Rand, level, jitter float64) {
	for i := range v {
		v[i] = level + jitter*rng.Float64()
	}
}

// burst adds a consumption event of the given duration and magnitude with a
// soft ramp and multiplicative noise, clipped to the series bounds.
func burst(v []float64, start, duration int, magnitude float64, rng *rand.Rand) {
	if start < 0 {
		start = 0
	}
	for i := 0; i < duration; i++ {
		idx := start + i
		if idx >= len(v) {
			return
		}
		ramp := 1.0
		if i == 0 || i == duration-1 {
			ramp = 0.5
		}
		v[idx] += magnitude * ramp * (0.8 + 0.4*rng.Float64())
	}
}
