// Package fft implements the fast Fourier transform machinery required by
// the MASS and MatrixProfile baselines: an iterative radix-2 FFT, Bluestein's
// chirp-z algorithm for arbitrary lengths, convolution, and the FFT-based
// sliding dot product that underlies z-normalised Euclidean distance
// profiles (Rakthanmanon et al. 2012; Yeh et al. 2016).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place-free discrete Fourier transform of x and returns
// the result. Any length is accepted: powers of two use the radix-2
// algorithm directly, other lengths go through Bluestein's algorithm.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		radix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse DFT of x (including the 1/n scaling).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = make([]complex128, n)
		copy(out, x)
		radix2(out, true)
	} else {
		out = bluestein(x, true)
	}
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// radix2 runs the iterative Cooley–Tukey FFT on a power-of-two-length slice,
// in place. inverse selects the conjugate transform (unscaled).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length as a convolution of
// power-of-two length.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w_j = exp(sign·iπ j² / n).
	w := make([]complex128, n)
	for j := 0; j < n; j++ {
		// j² mod 2n avoids precision loss for large j.
		jj := (int64(j) * int64(j)) % int64(2*n)
		w[j] = cmplx.Exp(complex(0, sign*math.Pi*float64(jj)/float64(n)))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		a[j] = x[j] * w[j]
		b[j] = cmplx.Conj(w[j])
	}
	for j := 1; j < n; j++ {
		b[m-j] = cmplx.Conj(w[j])
	}
	radix2(a, false)
	radix2(b, false)
	for j := range a {
		a[j] *= b[j]
	}
	radix2(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for j := 0; j < n; j++ {
		out[j] = a[j] * scale * w[j]
	}
	return out
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)−1) computed via FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := 1
	for m < n {
		m <<= 1
	}
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	out := make([]float64, n)
	scale := 1 / float64(m)
	for i := 0; i < n; i++ {
		out[i] = real(fa[i]) * scale
	}
	return out
}

// SlidingDotProducts returns, for every alignment i in [0, len(ts)−len(q)],
// the dot product Σ_j q[j]·ts[i+j] of the query against the series window
// starting at i, computed in O(n log n) with one convolution (the core trick
// of MASS).
func SlidingDotProducts(q, ts []float64) ([]float64, error) {
	m, n := len(q), len(ts)
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("fft: empty input (|q|=%d, |ts|=%d)", m, n)
	}
	if m > n {
		return nil, fmt.Errorf("fft: query length %d exceeds series length %d", m, n)
	}
	// Convolving ts with the reversed query puts the alignment-i dot product
	// at output index i+m−1.
	rq := make([]float64, m)
	for i, v := range q {
		rq[m-1-i] = v
	}
	conv := Convolve(ts, rq)
	out := make([]float64, n-m+1)
	copy(out, conv[m-1:m-1+len(out)])
	return out, nil
}
