package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-8*float64(n)) {
			t.Errorf("FFT length %d mismatch", n)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 6, 8, 15, 16, 27, 64, 129} {
		x := randComplex(rng, n)
		back := IFFT(FFT(x))
		if !complexClose(back, x, 1e-9*float64(n)) {
			t.Errorf("round trip length %d mismatch", n)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if FFT(nil) != nil || IFFT(nil) != nil {
		t.Error("empty transforms must return nil")
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² = (1/n)·Σ|X|² must hold for any signal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		x := randComplex(rng, n)
		X := FFT(x)
		var e1, e2 float64
		for i := range x {
			e1 += real(x[i] * cmplx.Conj(x[i]))
			e2 += real(X[i] * cmplx.Conj(X[i]))
		}
		e2 /= float64(n)
		return math.Abs(e1-e2) <= 1e-7*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		na, nb := 1+rng.Intn(40), 1+rng.Intn(40)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := Convolve(a, b)
		want := make([]float64, na+nb-1)
		for i := range a {
			for j := range b {
				want[i+j] += a[i] * b[j]
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: conv[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty convolution must be nil")
	}
}

func TestSlidingDotProducts(t *testing.T) {
	q := []float64{1, 2}
	ts := []float64{1, 0, -1, 3, 2}
	got, err := SlidingDotProducts(q, ts)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1*1 + 2*0, 1*0 + 2*-1, -1 + 2*3, 3 + 2*2}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("dot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSlidingDotProductsErrors(t *testing.T) {
	if _, err := SlidingDotProducts(nil, []float64{1}); err == nil {
		t.Error("empty query must fail")
	}
	if _, err := SlidingDotProducts([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("query longer than series must fail")
	}
}

func TestSlidingDotProductsMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(20)
		n := m + rng.Intn(100)
		q := make([]float64, m)
		ts := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range ts {
			ts[i] = rng.NormFloat64()
		}
		got, err := SlidingDotProducts(q, ts)
		if err != nil {
			return false
		}
		for i := 0; i <= n-m; i++ {
			var dot float64
			for j := 0; j < m; j++ {
				dot += q[j] * ts[i+j]
			}
			if math.Abs(got[i]-dot) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
