package knn

import "math"

// SoA is a structure-of-arrays view of a 2-D point set: one flat float64
// array per axis instead of an array of 16-byte Point structs. Linear scans
// (the brute engine, kd-forest leaf ranges) read two sequential streams the
// prefetcher handles perfectly, and per-axis work (marginal counts,
// partitioning) touches half the bytes an AoS scan would.
//
// A SoA may either alias caller-owned slices (zero-copy views, as the brute
// engine does with the estimator's coordinate vectors) or own reusable
// backing arrays filled by Reset (as the kd-forest's leaf-ordered copies
// do).
type SoA struct {
	Xs, Ys []float64
}

// Reset fills the SoA from an array-of-structs point set, reusing the
// backing arrays; a warm SoA refills a same-sized point set without
// allocating.
func (s *SoA) Reset(pts []Point) {
	s.Xs = s.Xs[:0]
	s.Ys = s.Ys[:0]
	for _, p := range pts {
		s.Xs = append(s.Xs, p.X)
		s.Ys = append(s.Ys, p.Y)
	}
}

// Len returns the number of points in the view.
func (s SoA) Len() int { return len(s.Xs) }

// At returns point i as an AoS Point.
func (s SoA) At(i int) Point { return Point{X: s.Xs[i], Y: s.Ys[i]} }

// chebyshevCoords is Chebyshev over unpacked coordinates — the SoA hot-loop
// form, free of struct construction.
func chebyshevCoords(px, py, qx, qy float64) float64 {
	// math.Abs is a branchless compiler intrinsic; spelling the absolute
	// values with sign tests costs two data-dependent branches per call that
	// mispredict on random input.
	dx := math.Abs(px - qx)
	dy := math.Abs(py - qy)
	if dy > dx {
		return dy
	}
	return dx
}
