package knn

import "math"

// Forest is the approximate k-NN engine: a small forest of randomized k-d
// trees (the countrymaam/FLANN family) searched depth-first under a shared
// candidate budget. Leaves hold contiguous runs of a flat SoA coordinate
// copy, so the scan that dominates query time is two sequential float64
// streams.
//
// Approximation model: each tree is searched near-branch-first with the
// usual lower-bound pruning, but far branches are abandoned outright once
// Config.Checks candidates have been examined with k results in hand, so a
// true neighbour whose branch lies past the budget can be missed.
// Everything else is exact — marginal range counts use sorted multisets, and
// candidate ranking uses the same (distance, index) total order as the exact
// engines. Two consequences the tests pin:
//
//   - Determinism: answers are a pure function of (points, Config). Tree
//     shapes derive from Config.Seed through the SplitMix64 idiom, and the
//     traversal order is structural (near then far, trees in index order).
//   - Exactness under budget: when Checks ≥ the point count the budget cut
//     never fires, the traversal degenerates to the standard exact
//     branch-and-bound, and answers equal Brute's bit-for-bit.
//
// The approximation error the KSG estimator inherits — missed neighbours
// inflate nothing but occasionally shrink the kth-neighbour radius seen —
// is quantified by the differential harness in internal/mi (MeasureEngineDrift),
// and the bounded-error constructor refuses configurations whose MI drift
// exceeds the caller's ε.
type Forest struct {
	marginals
	trees  int
	checks int
	seed   int64

	pts []Point
	fts []forestTree
	idx []int32 // build scratch: the permutation being partitioned
	bxs []float64
	bys []float64 // build-time coordinate views (original index order)

	visited []uint64 // query scratch: cross-tree dedupe bitmap
	buf     []Neighbor

	// Batch answer cache: SelfKNearest answers for every indexed point,
	// computed in one leaf-ordered sweep on the first call after Build (the
	// batched-query path — see computeBatch). rowLen is min(k, n−1).
	batch      []Neighbor
	dbuf       []float64 // batch scratch: one window of distances
	batchK     int
	batchValid bool
	rowLen     int

	// Per-query state shared by the recursive search, hoisted here so the
	// recursion passes two words instead of eight. The running k-best set
	// (res) is kept UNSORTED with its worst element tracked by index — every
	// candidate is admitted or rejected by inline compares in the leaf loop,
	// with no per-candidate function calls; the final (distance, index) sort
	// happens once per query.
	q        Point
	want     int
	exclude  int
	budget   int
	checked  int
	multi    bool
	full     bool    // res holds want results
	worst    float64 // res[worstIdx].Dist when full
	worstIdx int
	res      []Neighbor
}

// DefaultForestTrees is the number of randomized trees built when
// Config.Trees is zero. One tree engages the batched self-query sweep (the
// fast path the estimator hits); more trees raise recall for the traversal
// path at proportional cost.
const DefaultForestTrees = 1

// DefaultForestChecks is the per-query candidate budget when Config.Checks
// is zero. Budgets at or above the point count make queries exact.
const DefaultForestChecks = 128

// forestLeafSize is the maximum points per leaf; leaves are scanned linearly
// over the SoA arrays, so they are sized so one leaf roughly covers the
// default candidate budget — the scan is two sequential float64 streams and
// costs far less per point than a traversal step.
const forestLeafSize = 16

// forestTree is one randomized k-d tree: a node arena plus leaf-ordered
// copies of the point ids and coordinates (leaves reference contiguous
// ranges of these arrays).
type forestTree struct {
	nodes  []forestNode
	ids    []int32
	xs, ys []float64
}

// forestNode is an internal split (axis 0/1) or a leaf (axis −1, left/right
// holding the [start, end) range into the tree's leaf-ordered arrays).
type forestNode struct {
	split       float64
	left, right int32
	axis        int8
}

// newForest constructs a Forest with defaults applied.
func newForest(cfg Config) *Forest {
	trees := cfg.Trees
	if trees <= 0 {
		trees = DefaultForestTrees
	}
	checks := cfg.Checks
	if checks <= 0 {
		checks = DefaultForestChecks
	}
	return &Forest{trees: trees, checks: checks, seed: cfg.Seed}
}

// Build implements Engine: it rebuilds every tree over pts, reusing the node
// arenas, permutation scratch and SoA arrays of earlier builds.
func (f *Forest) Build(pts []Point, xs, ys []float64) {
	f.pts = pts
	f.batchValid = false
	f.bxs, f.bys = xs, ys
	f.build(xs, ys)
	if cap(f.fts) < f.trees {
		f.fts = make([]forestTree, f.trees)
	}
	f.fts = f.fts[:f.trees]
	n := len(pts)
	for t := range f.fts {
		ft := &f.fts[t]
		ft.nodes = ft.nodes[:0]
		if cap(f.idx) < n {
			f.idx = make([]int32, n)
		}
		f.idx = f.idx[:n]
		for i := range f.idx {
			f.idx[i] = int32(i)
		}
		if n > 0 {
			rng := sm64{state: forestSeed(f.seed, t)}
			f.buildNode(ft, &rng, 0, n)
		}
		ft.ids = append(ft.ids[:0], f.idx...)
		ft.xs = ft.xs[:0]
		ft.ys = ft.ys[:0]
		for _, id := range f.idx {
			ft.xs = append(ft.xs, xs[id])
			ft.ys = append(ft.ys, ys[id])
		}
	}
}

// splitmix64 is the SplitMix64 finalizer — the repo's seed-derivation
// primitive (the same mixer internal/core uses for restart segments), copied
// here because knn sits below core in the dependency order.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// forestSeed derives tree t's build seed from the root seed through the
// mixer, so nearby roots and tree indices get uncorrelated streams.
func forestSeed(root int64, tree int) uint64 {
	h := splitmix64(uint64(root))
	return splitmix64(h ^ uint64(tree))
}

// sm64 is a SplitMix64 sequence generator: the counter-based PRNG whose
// finalizer is the repo's seed-derivation primitive. It replaces math/rand
// in the build so a warm Forest.Build allocates nothing (rand.New heap-
// allocates its state) and stays trivially deterministic.
type sm64 struct{ state uint64 }

func (r *sm64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildNode partitions idx[lo:hi) and appends the subtree's nodes to the
// arena in preorder, returning the subtree root's node id.
func (f *Forest) buildNode(ft *forestTree, rng *sm64, lo, hi int) int32 {
	id := int32(len(ft.nodes))
	if hi-lo <= forestLeafSize {
		ft.nodes = append(ft.nodes, forestNode{axis: -1, left: int32(lo), right: int32(hi)})
		return id
	}
	axis := f.chooseAxis(rng, lo, hi)
	coords := f.bxs
	if axis == 1 {
		coords = f.bys
	}
	mid := lo + (hi-lo)/2
	f.selectMedian(f.idx[lo:hi], mid-lo, coords)
	ft.nodes = append(ft.nodes, forestNode{axis: int8(axis), split: coords[f.idx[mid]]})
	left := f.buildNode(ft, rng, lo, mid)
	right := f.buildNode(ft, rng, mid, hi)
	ft.nodes[id].left = left
	ft.nodes[id].right = right
	return id
}

// chooseAxis picks the split axis for idx[lo:hi): the wider-span axis, with
// a 1-in-4 randomized flip when both axes have spread — the randomization
// that de-correlates the forest's trees.
func (f *Forest) chooseAxis(rng *sm64, lo, hi int) int {
	minX, maxX := f.bxs[f.idx[lo]], f.bxs[f.idx[lo]]
	minY, maxY := f.bys[f.idx[lo]], f.bys[f.idx[lo]]
	for _, id := range f.idx[lo+1 : hi] {
		if v := f.bxs[id]; v < minX {
			minX = v
		} else if v > maxX {
			maxX = v
		}
		if v := f.bys[id]; v < minY {
			minY = v
		} else if v > maxY {
			maxY = v
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	axis := 0
	if spanY > spanX {
		axis = 1
	}
	if spanX > 0 && spanY > 0 && rng.next()&3 == 0 {
		axis ^= 1
	}
	return axis
}

// selectMedian places the element a full sort under (coord, index) would put
// at position mid, smaller before and larger after — quickselect with
// median-of-three pivots, mirroring the exact kd-tree's build order so tied
// coordinates partition deterministically.
func (f *Forest) selectMedian(idx []int32, mid int, coords []float64) {
	less := func(a, b int32) bool {
		va, vb := coords[a], coords[b]
		//lint:allow floateq exact compare feeds the index tie-break; a tolerant compare would break the strict total order the deterministic build relies on
		if va != vb {
			return va < vb
		}
		return a < b
	}
	lo, hi := 0, len(idx)-1
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && less(idx[j], idx[j-1]); j-- {
					idx[j], idx[j-1] = idx[j-1], idx[j]
				}
			}
			return
		}
		m := lo + (hi-lo)/2
		if less(idx[m], idx[lo]) {
			idx[m], idx[lo] = idx[lo], idx[m]
		}
		if less(idx[hi], idx[lo]) {
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if less(idx[hi], idx[m]) {
			idx[hi], idx[m] = idx[m], idx[hi]
		}
		idx[m], idx[hi-1] = idx[hi-1], idx[m]
		pivot := idx[hi-1]
		i := lo
		for j := lo; j < hi-1; j++ {
			if less(idx[j], pivot) {
				idx[i], idx[j] = idx[j], idx[i]
				i++
			}
		}
		idx[i], idx[hi-1] = idx[hi-1], idx[i]
		switch {
		case i == mid:
			return
		case mid < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
}

// SelfKNearest implements Engine's batched-query path. With a single tree
// (the default) the first call after Build answers EVERY self-query in one
// leaf-ordered sweep (computeBatch) and later calls return cached rows; the
// cached slices stay valid until the next Build, which over-delivers on the
// contract. Multi-tree forests answer per query through the budgeted
// traversal.
func (f *Forest) SelfKNearest(i, k int) []Neighbor {
	if len(f.fts) == 1 {
		if !f.batchValid || f.batchK != k {
			f.computeBatch(k)
		}
		if f.rowLen == 0 {
			return nil
		}
		return f.batch[i*f.rowLen : (i+1)*f.rowLen]
	}
	nn := f.query(f.pts[i], k, i, f.buf)
	f.buf = nn[:0]
	return nn
}

// computeBatch is the batched-query path: one pass over the tree's
// leaf-ordered point array answering the self-query of every member. The
// leaf order is a serialization of the tree's space partition, so a window
// of the array centred on a point is a spatial neighbourhood of it; each
// query scans its own window outward — right then left — so candidates
// arrive in roughly increasing distance, the running worst tightens almost
// immediately, and admissions stay near k. Consecutive queries slide the
// window by one, keeping the whole inner loop in cache. When the budget
// covers the point count the window is the entire array and every answer is
// exact — bit-for-bit with Brute, the property the differential suite pins,
// because k-best under the (distance, index) total order is independent of
// scan order.
func (f *Forest) computeBatch(k int) {
	n := len(f.pts)
	f.batchK = k
	f.batchValid = true
	rowLen := k
	if rowLen > n-1 {
		rowLen = n - 1
	}
	if rowLen < 0 {
		rowLen = 0
	}
	f.rowLen = rowLen
	need := n * rowLen
	if cap(f.batch) < need {
		f.batch = make([]Neighbor, need)
	}
	f.batch = f.batch[:need]
	if rowLen == 0 {
		return
	}
	budget := f.checks
	if budget < k+1 {
		budget = k + 1
	}
	if budget > n {
		budget = n
	}
	ft := &f.fts[0]
	ids, xs, ys := ft.ids, ft.xs, ft.ys
	xs = xs[:len(ids)]
	ys = ys[:len(ids)]
	if cap(f.dbuf) < budget {
		f.dbuf = make([]float64, budget)
	}
	dbuf := f.dbuf[:budget]
	for qj := range ids {
		// Window of `budget` slots centred on the query, clipped at the array
		// ends with the clipped share given to the other side.
		wlo := qj - budget/2
		if wlo < 0 {
			wlo = 0
		} else if wlo > n-budget {
			wlo = n - budget
		}
		qx, qy := xs[qj], ys[qj]
		// Phase 1: distances for the whole window, branch-free. The window
		// slides by one between queries, so these loads are cache-resident.
		wxs := xs[wlo : wlo+budget]
		wys := ys[wlo : wlo+budget]
		for j := range wxs {
			dx := math.Abs(wxs[j] - qx)
			dy := math.Abs(wys[j] - qy)
			dbuf[j] = max(dx, dy)
		}
		// Phase 2: k-best selection, scanning outward from the query — right
		// then left — so distances arrive roughly increasing, the running
		// worst tightens almost immediately, and admissions stay near k.
		base := int(ids[qj]) * rowLen
		res := f.batch[base : base : base+rowLen]
		full := false
		worst := 0.0
		worstIdx := 0
		for j := qj + 1; j < wlo+budget; j++ {
			d := dbuf[j-wlo]
			if full {
				if d > worst {
					continue
				}
				id := int(ids[j])
				//lint:allow floateq exact distance ties break by index under the deterministic (distance, index) total order
				if d == worst && id > res[worstIdx].Index {
					continue
				}
				res[worstIdx] = Neighbor{Index: id, Dist: d}
			} else {
				id := int(ids[j])
				res = append(res, Neighbor{Index: id, Dist: d})
				if len(res) < rowLen {
					continue
				}
				full = true
			}
			worstIdx = 0
			for t := 1; t < len(res); t++ {
				if neighborLess(res[worstIdx], res[t]) {
					worstIdx = t
				}
			}
			worst = res[worstIdx].Dist
		}
		for j := qj - 1; j >= wlo; j-- {
			d := dbuf[j-wlo]
			if full {
				if d > worst {
					continue
				}
				id := int(ids[j])
				//lint:allow floateq exact distance ties break by index under the deterministic (distance, index) total order
				if d == worst && id > res[worstIdx].Index {
					continue
				}
				res[worstIdx] = Neighbor{Index: id, Dist: d}
			} else {
				id := int(ids[j])
				res = append(res, Neighbor{Index: id, Dist: d})
				if len(res) < rowLen {
					continue
				}
				full = true
			}
			worstIdx = 0
			for t := 1; t < len(res); t++ {
				if neighborLess(res[worstIdx], res[t]) {
					worstIdx = t
				}
			}
			worst = res[worstIdx].Dist
		}
		maxHeap(res).sortInPlace()
	}
}

// KNearestInto answers an arbitrary query the same way (the Index-shaped
// entry point used by the differential tests).
func (f *Forest) KNearestInto(q Point, k, exclude int, buf []Neighbor) []Neighbor {
	return f.query(q, k, exclude, buf)
}

// KNearest implements Index.
func (f *Forest) KNearest(q Point, k, exclude int) []Neighbor {
	return f.query(q, k, exclude, nil)
}

// query runs the budgeted depth-first search over all trees: each tree is
// descended near-branch-first, far branches carry the usual L∞ lower bound
// and are pruned when the bound exceeds the current worst — or cut outright
// once the candidate budget is spent with k results held. The plain
// recursion costs a fraction of a best-first priority queue and visits the
// same first leaves (the near path IS the best-first prefix within a tree).
func (f *Forest) query(q Point, k, exclude int, buf []Neighbor) []Neighbor {
	n := len(f.pts)
	if k <= 0 || n == 0 {
		return nil
	}
	avail := n
	if exclude >= 0 && exclude < n {
		avail--
	}
	want := k
	if want > avail {
		want = avail
	}
	if want == 0 {
		return nil
	}
	f.q, f.want, f.exclude = q, want, exclude
	f.budget = f.checks
	if f.budget < want {
		f.budget = want
	}
	f.checked = 0
	f.res = buf[:0]
	f.full = false
	f.worst = 0
	f.worstIdx = 0
	f.multi = len(f.fts) > 1
	if f.multi {
		f.resetVisited(n)
	}
	for t := range f.fts {
		f.searchNode(&f.fts[t], 0, 0)
		if f.checked >= f.budget && f.full {
			break
		}
	}
	h := maxHeap(f.res)
	f.res = nil
	h.sortInPlace()
	return h
}

// searchNode is the recursive branch-and-bound step: bound is the L∞ lower
// bound on the distance from the query to any point under node.
func (f *Forest) searchNode(ft *forestTree, node int32, bound float64) {
	if f.full && bound > f.worst {
		return
	}
	nd := ft.nodes[node]
	if nd.axis >= 0 {
		diff := f.q.X - nd.split
		if nd.axis == 1 {
			diff = f.q.Y - nd.split
		}
		near, far := nd.left, nd.right
		if diff >= 0 {
			near, far = far, near
		}
		f.searchNode(ft, near, bound)
		// The budget cut: once enough candidates have been examined with k
		// results in hand, far branches everywhere up the path are abandoned.
		if f.checked >= f.budget && f.full {
			return
		}
		fb := bound
		if ad := abs64(diff); ad > fb {
			fb = ad
		}
		f.searchNode(ft, far, fb)
		return
	}
	// Leaf scan over the SoA run. Everything stays inline: a candidate is
	// rejected by one float compare against the tracked worst, and an
	// admission replaces the worst element and re-scans the ≤k-element set —
	// k−1 compares, no calls. The selection rule is identical to maxHeap.push:
	// a candidate wins on (distance, index), so exact-budget runs return the
	// same set as the exact engines, bit for bit.
	lo, hi := int(nd.left), int(nd.right)
	ids := ft.ids[lo:hi]
	lxs := ft.xs[lo:hi]
	lys := ft.ys[lo:hi]
	qx, qy := f.q.X, f.q.Y
	exclude, multi := f.exclude, f.multi
	res := f.res
	full, worst, worstIdx := f.full, f.worst, f.worstIdx
	checked, budget := f.checked, f.budget
	for j, id32 := range ids {
		// The budget cut also applies mid-leaf: once enough candidates are
		// examined with k results held, the rest of the run is skipped.
		// Unreachable when Checks ≥ n (exactness under full budget).
		if checked >= budget && full {
			break
		}
		id := int(id32)
		if id == exclude {
			continue
		}
		if multi {
			w, b := id>>6, uint64(1)<<(id&63)
			if f.visited[w]&b != 0 {
				continue
			}
			f.visited[w] |= b
		}
		checked++
		d := chebyshevCoords(lxs[j], lys[j], qx, qy)
		if full {
			//lint:allow floateq exact distance ties break by index under the deterministic (distance, index) total order
			if d > worst || (d == worst && id > res[worstIdx].Index) {
				continue
			}
			res[worstIdx] = Neighbor{Index: id, Dist: d}
		} else {
			res = append(res, Neighbor{Index: id, Dist: d})
			if len(res) < f.want {
				continue
			}
			full = true
		}
		worstIdx = 0
		for t := 1; t < len(res); t++ {
			if neighborLess(res[worstIdx], res[t]) {
				worstIdx = t
			}
		}
		worst = res[worstIdx].Dist
	}
	f.res = res
	f.full, f.worst, f.worstIdx = full, worst, worstIdx
	f.checked = checked
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// resetVisited clears (and sizes) the cross-tree dedupe bitmap for n points.
func (f *Forest) resetVisited(n int) {
	words := (n + 63) / 64
	if cap(f.visited) < words {
		f.visited = make([]uint64, words)
		return
	}
	f.visited = f.visited[:words]
	for i := range f.visited {
		f.visited[i] = 0
	}
}

// Len implements Engine.
func (f *Forest) Len() int { return len(f.pts) }

// Exact implements Engine: forest answers are approximate under budget.
func (f *Forest) Exact() bool { return false }

// Name implements Engine.
func (f *Forest) Name() string { return "forest" }
