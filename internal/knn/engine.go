package knn

import (
	"fmt"
	"sort"
	"sync"
)

// Engine is the formal contract between the KSG estimator and a k-NN
// backend: build over a point set, answer the estimator's batched
// self-queries, and serve the marginal range counts of Eq. (2). It extends
// the raw Index interface with the two things the estimator actually needs —
// a rebuild entry point that reuses internal scratch, and per-axis interval
// counts — so estimator code selects backends by name instead of switching
// over concrete types.
//
// Contracts:
//
//   - Build (re)indexes pts in place, reusing any internal arenas from
//     earlier builds; a warm engine must not allocate on same-sized point
//     sets (the PR-5 hot-path guarantee). xs and ys are the per-axis
//     coordinate views of pts (pts[i] == Point{xs[i], ys[i]}); engines use
//     them for marginal structures without re-deriving. The slices stay
//     valid until the next Build.
//   - SelfKNearest(i, k) is the batched-query path: it answers
//     KNearest(pts[i], k, exclude=i) for the indexed point i, amortizing
//     traversal scratch (result buffers, candidate queues, visited masks)
//     across the calls of one estimation pass. The returned slice is owned
//     by the engine and valid until the next SelfKNearest or Build.
//   - Neighbour lists obey the deterministic (distance, index) total order:
//     ties at the k-th distance are broken by ascending point index, so the
//     selected SET — not just its distances — is identical across exact
//     backends and candidate visit orders (the PR-5 cross-backend property).
//     Approximate engines keep the same order over whatever candidates they
//     examine, and are deterministic functions of (points, Config).
//   - CountX(x, d) returns the number of indexed points p with |p.X − x| ≤ d
//     over the full multiset — including the query point's own coordinate
//     when it is indexed; CountY is the Y-axis analogue. These are exact on
//     every engine, including approximate ones: marginal counts are
//     one-dimensional and cost O(log m), so there is nothing to trade away,
//     and keeping them exact confines approximation drift to the kNN radii.
//   - Exact reports whether SelfKNearest answers are exact. Engines with
//     Exact() == true must agree bit-for-bit with Brute on every query;
//     the differential suite enforces this.
type Engine interface {
	Build(pts []Point, xs, ys []float64)
	SelfKNearest(i, k int) []Neighbor
	CountX(x, d float64) int
	CountY(y, d float64) int
	Len() int
	Exact() bool
	Name() string
}

// Config carries the construction parameters an engine may need. Exact
// engines use K (grid cell tuning); randomized engines derive every internal
// stream from Seed, so equal (points, Config) means equal answers.
type Config struct {
	// K is the neighbour count the engine will serve; backends use it to
	// tune build-time structure (grid cell size, forest leaf capacity).
	K int
	// Seed drives randomized engines (tree shape in the kd-forest). Exact
	// engines ignore it. The engine derives all internal streams from it
	// through the SplitMix64 idiom, so a raw caller seed is safe to pass.
	Seed int64
	// Trees overrides the kd-forest tree count (0 → DefaultForestTrees).
	Trees int
	// Checks overrides the kd-forest per-query candidate budget
	// (0 → DefaultForestChecks). Budgets ≥ the point count make the forest
	// answer exactly.
	Checks int
}

// Spec describes a registered engine: its selection name, whether its
// queries are exact, and its factory.
type Spec struct {
	Name  string
	Exact bool
	New   func(cfg Config) Engine
}

var (
	engineMu sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds an engine to the selection registry. It panics on an empty
// name, a nil factory, or a duplicate registration — engine names are part
// of the public configuration surface (core.Options.KNNEngine, journal
// fingerprints), so collisions must fail loudly at init time.
func Register(s Spec) {
	if s.Name == "" || s.New == nil {
		panic("knn: Register requires a name and a factory")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("knn: engine %q registered twice", s.Name))
	}
	registry[s.Name] = s
}

// NewEngine constructs the named engine. Unknown names return an error
// listing the registered engines.
func NewEngine(name string, cfg Config) (Engine, error) {
	engineMu.RLock()
	s, ok := registry[name]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("knn: unknown engine %q (registered: %v)", name, EngineNames())
	}
	return s.New(cfg), nil
}

// HasEngine reports whether an engine is registered under name.
func HasEngine(name string) bool {
	engineMu.RLock()
	defer engineMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// EngineNames returns the registered engine names in sorted order.
func EngineNames() []string {
	engineMu.RLock()
	names := make([]string, 0, len(registry))
	//lint:allow nodeterm keys are sorted before being returned; the map range cannot leak iteration order
	for name := range registry {
		names = append(names, name)
	}
	engineMu.RUnlock()
	sort.Strings(names)
	return names
}

// EngineSpec returns the registered spec for name.
func EngineSpec(name string) (Spec, bool) {
	engineMu.RLock()
	defer engineMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

func init() {
	Register(Spec{Name: "kdtree", Exact: true, New: func(cfg Config) Engine {
		return &kdtreeEngine{tree: NewKDTree(nil)}
	}})
	Register(Spec{Name: "brute", Exact: true, New: func(cfg Config) Engine {
		return &bruteEngine{}
	}})
	Register(Spec{Name: "grid", Exact: true, New: func(cfg Config) Engine {
		return &gridEngine{grid: NewGrid(1), k: cfg.K}
	}})
	Register(Spec{Name: "forest", Exact: false, New: func(cfg Config) Engine {
		return newForest(cfg)
	}})
}

// marginals holds the per-axis sorted multisets every engine serves interval
// counts from; embedding it gives each engine the exact CountX/CountY pair.
type marginals struct {
	xs, ys *OrderedMultiset
}

func (m *marginals) build(xs, ys []float64) {
	if m.xs == nil {
		m.xs = NewOrderedMultiset(nil)
		m.ys = NewOrderedMultiset(nil)
	}
	m.xs.Reset(xs)
	m.ys.Reset(ys)
}

// CountX implements Engine.
func (m *marginals) CountX(x, d float64) int { return m.xs.CountWithin(x, d) }

// CountY implements Engine.
func (m *marginals) CountY(y, d float64) int { return m.ys.CountWithin(y, d) }

// kdtreeEngine wraps the arena-backed static 2-d tree — the exact default.
type kdtreeEngine struct {
	marginals
	tree *KDTree
	pts  []Point
	buf  []Neighbor
}

func (e *kdtreeEngine) Build(pts []Point, xs, ys []float64) {
	e.pts = pts
	e.tree.Reset(pts)
	e.build(xs, ys)
}

func (e *kdtreeEngine) SelfKNearest(i, k int) []Neighbor {
	nn := e.tree.KNearestInto(e.pts[i], k, i, e.buf)
	e.buf = nn[:0]
	return nn
}

func (e *kdtreeEngine) Len() int     { return len(e.pts) }
func (e *kdtreeEngine) Exact() bool  { return true }
func (e *kdtreeEngine) Name() string { return "kdtree" }

// bruteEngine scans the flat SoA coordinate arrays directly: no pointer
// chasing, two sequential streams, and the same (distance, index) heap as
// every other backend. The SoA views are the caller's xs/ys slices — the
// flat layout costs nothing to adopt.
type bruteEngine struct {
	marginals
	soa SoA
	buf []Neighbor
}

func (e *bruteEngine) Build(pts []Point, xs, ys []float64) {
	e.soa = SoA{Xs: xs, Ys: ys}
	e.build(xs, ys)
}

func (e *bruteEngine) SelfKNearest(i, k int) []Neighbor {
	nn := e.knearest(Point{X: e.soa.Xs[i], Y: e.soa.Ys[i]}, k, i, e.buf)
	e.buf = nn[:0]
	return nn
}

func (e *bruteEngine) knearest(q Point, k, exclude int, buf []Neighbor) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := maxHeap(buf[:0])
	xs, ys := e.soa.Xs, e.soa.Ys
	for i := range xs {
		if i == exclude {
			continue
		}
		h.push(Neighbor{Index: i, Dist: chebyshevCoords(xs[i], ys[i], q.X, q.Y)}, k)
	}
	h.sortInPlace()
	return h
}

func (e *bruteEngine) Len() int     { return e.soa.Len() }
func (e *bruteEngine) Exact() bool  { return true }
func (e *bruteEngine) Name() string { return "brute" }

// gridEngine wraps the dynamic uniform grid, tuned per build with the same
// GridCellFor heuristic the estimator used before the engine layer existed.
type gridEngine struct {
	marginals
	grid *Grid
	k    int
	pts  []Point
	buf  []Neighbor
}

func (e *gridEngine) Build(pts []Point, xs, ys []float64) {
	e.pts = pts
	e.grid.Reset(GridCellFor(pts, e.k))
	for i, p := range pts {
		e.grid.Insert(i, p)
	}
	e.build(xs, ys)
}

func (e *gridEngine) SelfKNearest(i, k int) []Neighbor {
	nn := e.grid.KNearestInto(e.pts[i], k, i, e.buf)
	e.buf = nn[:0]
	return nn
}

func (e *gridEngine) Len() int     { return len(e.pts) }
func (e *gridEngine) Exact() bool  { return true }
func (e *gridEngine) Name() string { return "grid" }
