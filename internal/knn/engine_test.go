package knn

import (
	"math"
	"math/rand"
	"testing"
)

// engineReference computes the exact answer an Engine must (or, for
// approximate engines under full budget, still must) produce: a brute-force
// (distance, index) k-best plus exact marginal interval counts.
func engineReference(pts []Point, q Point, k, exclude int) []Neighbor {
	h := maxHeap(nil)
	for i, p := range pts {
		if i == exclude {
			continue
		}
		h.push(Neighbor{Index: i, Dist: Chebyshev(q, p)}, k)
	}
	h.sortInPlace()
	return h
}

func coordsOf(pts []Point) (xs, ys []float64) {
	xs = make([]float64, len(pts))
	ys = make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	return xs, ys
}

// adversarialSets returns the distributions the differential suite runs
// every engine against: tied lattices (heavy duplicates), collinear points,
// extreme magnitudes near the float64 range, mixed-scale outliers, and
// degenerate all-identical sets.
func adversarialSets(rng *rand.Rand, n int) map[string][]Point {
	lattice := reusePoints(rng, n)
	collinear := make([]Point, n)
	for i := range collinear {
		v := float64(rng.Intn(16)) * 0.5
		collinear[i] = Point{X: v, Y: 2 * v}
	}
	extreme := make([]Point, n)
	for i := range extreme {
		extreme[i] = Point{
			X: (rng.Float64() - 0.5) * 2e300,
			Y: (rng.Float64() - 0.5) * 2e300,
		}
	}
	mixed := make([]Point, n)
	for i := range mixed {
		mixed[i] = Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		if i%7 == 0 {
			mixed[i].X *= 1e250
		}
		if i%11 == 0 {
			mixed[i].Y *= -1e250
		}
	}
	identical := make([]Point, n)
	for i := range identical {
		identical[i] = Point{X: 3.25, Y: -1.5}
	}
	return map[string][]Point{
		"lattice":   lattice,
		"collinear": collinear,
		"extreme":   extreme,
		"mixed":     mixed,
		"identical": identical,
	}
}

// TestEnginesMatchBruteDifferential is the cross-backend property test: on
// every adversarial distribution, every exact engine must return the exact
// (distance, index) k-best set bit-for-bit, and the approximate forest must
// do the same once its candidate budget covers the point set. Marginal
// counts must be exact on all engines, including the forest.
func TestEnginesMatchBruteDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 17, 120} {
		for name, pts := range adversarialSets(rng, n) {
			xs, ys := coordsOf(pts)
			for _, eng := range EngineNames() {
				spec, _ := EngineSpec(eng)
				for _, k := range []int{1, 4, n, n + 3} {
					cfgs := []Config{{K: k, Seed: 42}}
					if !spec.Exact {
						// Full budget makes both approximate paths exact —
						// the answers must equal Brute's bit-for-bit. A
						// single tree exercises the batched sweep, several
						// trees the budgeted traversal with its cross-tree
						// dedupe.
						cfgs = []Config{
							{K: k, Seed: 42, Trees: 1, Checks: n + 1},
							{K: k, Seed: 42, Trees: 3, Checks: n + 1},
						}
					}
					for _, cfg := range cfgs {
						e, err := NewEngine(eng, cfg)
						if err != nil {
							t.Fatalf("NewEngine(%q): %v", eng, err)
						}
						e.Build(pts, xs, ys)
						if e.Len() != n {
							t.Fatalf("%s/%s: Len=%d want %d", eng, name, e.Len(), n)
						}
						for i := range pts {
							want := engineReference(pts, pts[i], k, i)
							got := e.SelfKNearest(i, k)
							if !neighborsEqual(want, got) {
								t.Fatalf("%s/%s n=%d k=%d i=%d: got %v want %v",
									eng, name, n, k, i, got, want)
							}
							d := math.Abs(pts[i].X) / 8
							wantC := 0
							for _, p := range pts {
								if math.Abs(p.X-pts[i].X) <= d {
									wantC++
								}
							}
							if got := e.CountX(pts[i].X, d); got != wantC {
								t.Fatalf("%s/%s: CountX=%d want %d", eng, name, got, wantC)
							}
						}
					}
				}
			}
		}
	}
}

// TestEngineTiedLatticeRounds extends the reuse_test.go tied-lattice rounds
// to the engine interface: engines are built once and rebuilt across rounds
// of fresh lattices (the warm-reuse path), checked against the reference on
// every round.
func TestEngineTiedLatticeRounds(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	rng := rand.New(rand.NewSource(99))
	const k = 4
	engines := map[string]Engine{}
	for _, name := range EngineNames() {
		cfg := Config{K: k, Seed: 11}
		spec, _ := EngineSpec(name)
		if !spec.Exact {
			cfg.Checks = 1 << 20 // full budget: exactness required below
		}
		e, err := NewEngine(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = e
	}
	for round := 0; round < rounds; round++ {
		n := 30 + rng.Intn(200)
		pts := reusePoints(rng, n)
		xs, ys := coordsOf(pts)
		for name, e := range engines {
			e.Build(pts, xs, ys)
			for _, i := range []int{0, n / 3, n - 1} {
				want := engineReference(pts, pts[i], k, i)
				if got := e.SelfKNearest(i, k); !neighborsEqual(want, got) {
					t.Fatalf("round %d %s i=%d: got %v want %v", round, name, i, got, want)
				}
			}
		}
	}
}

// TestForestDeterministic pins the forest's determinism contract: equal
// (points, Config) must produce equal answers across independent instances
// and across rebuilds, including under the default (approximate) budget.
func TestForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := reusePoints(rng, 300)
	xs, ys := coordsOf(pts)
	cfg := Config{K: 4, Seed: 1234}
	a, _ := NewEngine("forest", cfg)
	b, _ := NewEngine("forest", cfg)
	a.Build(pts, xs, ys)
	b.Build(pts, xs, ys)
	b.Build(pts, xs, ys) // rebuild: arena reuse must not change answers
	for i := range pts {
		got, want := a.SelfKNearest(i, 4), b.SelfKNearest(i, 4)
		if !neighborsEqual(want, got) {
			t.Fatalf("i=%d: instances diverge: %v vs %v", i, got, want)
		}
	}
	// A different seed must be allowed to shape different trees, but answers
	// stay within the engine's own determinism: just assert it still returns
	// k results in sorted (distance, index) order.
	c, _ := NewEngine("forest", Config{K: 4, Seed: 77})
	c.Build(pts, xs, ys)
	for i := range pts {
		nn := c.SelfKNearest(i, 4)
		if len(nn) != 4 {
			t.Fatalf("i=%d: got %d results, want 4", i, len(nn))
		}
		for j := 1; j < len(nn); j++ {
			if neighborLess(nn[j], nn[j-1]) {
				t.Fatalf("i=%d: results out of (distance, index) order: %v", i, nn)
			}
		}
	}
}

// TestForestRecallUnderBudget sanity-checks the approximation quality the
// drift harness depends on: with default parameters on a smooth
// distribution, the forest must find the true nearest neighbour for most
// queries and overlap heavily with the exact k-set.
func TestForestRecallUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, k := 1000, 4
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
	}
	xs, ys := coordsOf(pts)
	e, _ := NewEngine("forest", Config{K: k, Seed: 9})
	e.Build(pts, xs, ys)
	overlap, total := 0, 0
	for i := range pts {
		want := engineReference(pts, pts[i], k, i)
		got := e.SelfKNearest(i, k)
		if len(got) != k {
			t.Fatalf("i=%d: got %d results, want %d", i, len(got), k)
		}
		inWant := map[int]bool{}
		for _, nb := range want {
			inWant[nb.Index] = true
		}
		for _, nb := range got {
			if inWant[nb.Index] {
				overlap++
			}
		}
		total += k
	}
	// The default configuration trades recall for throughput — the binding
	// quality gate is MI drift (mi.NewBoundedKSG refuses configurations above
	// the caller's ε), so this bar only guards against the batch sweep
	// silently degenerating.
	if recall := float64(overlap) / float64(total); recall < 0.85 {
		t.Fatalf("forest recall %.3f under default budget, want ≥ 0.85", recall)
	}
}

// TestGridExtremeMagnitudeRegression is the regression test for the
// Grid.key int32 overflow: coordinates beyond ±2³¹ cells used to take an
// implementation-specific float→int32 conversion, silently corrupting cell
// keys. Saturated keys must still answer every query identically to Brute.
func TestGridExtremeMagnitudeRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := []Point{
		{X: 1e300, Y: 1e300},
		{X: -1e300, Y: 1e300},
		{X: 1e300, Y: -1e300},
		{X: -1e300, Y: -1e300},
		{X: 2.5e9, Y: -2.5e9}, // just past the int32 cell range at cell=1
		{X: -2.5e9, Y: 2.5e9},
		{X: math.MaxFloat64, Y: -math.MaxFloat64},
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, Point{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10})
	}
	for _, cell := range []float64{1, 1e-6, 1e290} {
		g := NewGrid(cell)
		for i, p := range pts {
			g.Insert(i, p)
		}
		for i, q := range pts {
			for _, k := range []int{1, 3, len(pts) + 2} {
				want := engineReference(pts, q, k, i)
				got := g.KNearest(q, k, i)
				if !neighborsEqual(want, got) {
					t.Fatalf("cell=%g i=%d k=%d: got %v want %v", cell, i, k, got, want)
				}
			}
		}
		// Removal keeps the (conservative) bounds usable.
		g.Remove(0)
		want := engineReference(pts[1:], pts[1], 3, 0)
		for j := range want {
			want[j].Index++ // reference indexes the slice shifted by one
		}
		if got := g.KNearest(pts[1], 3, 1); !neighborsEqual(want, got) {
			t.Fatalf("cell=%g after remove: got %v want %v", cell, got, want)
		}
	}
}

// TestCellCoordSaturates pins the saturating conversion directly.
func TestCellCoordSaturates(t *testing.T) {
	cases := []struct {
		v, cell float64
		want    int32
	}{
		{v: 5.5, cell: 1, want: 5},
		{v: -0.5, cell: 1, want: -1},
		{v: 1e300, cell: 1, want: math.MaxInt32},
		{v: -1e300, cell: 1, want: math.MinInt32},
		{v: math.Inf(1), cell: 1, want: math.MaxInt32},
		{v: math.Inf(-1), cell: 1, want: math.MinInt32},
		{v: math.NaN(), cell: 1, want: 0},
		{v: 1, cell: 1e-300, want: math.MaxInt32},
		{v: float64(math.MaxInt32) + 10, cell: 1, want: math.MaxInt32},
		{v: float64(math.MinInt32) - 10, cell: 1, want: math.MinInt32},
		{v: float64(math.MinInt32), cell: 1, want: math.MinInt32},
	}
	for _, c := range cases {
		if got := cellCoord(c.v, c.cell); got != c.want {
			t.Errorf("cellCoord(%g, %g) = %d, want %d", c.v, c.cell, got, c.want)
		}
	}
}

// TestGridCellForNaN pins the derivation-time fallback: NaN or infinite
// spans must return the documented fallback of 1 instead of propagating.
func TestGridCellForNaN(t *testing.T) {
	cases := []struct {
		name   string
		sample []Point
	}{
		{"nan-x", []Point{{X: math.NaN(), Y: 0}, {X: 1, Y: 2}}},
		{"nan-y", []Point{{X: 0, Y: math.NaN()}, {X: 1, Y: 2}}},
		{"all-nan", []Point{{X: math.NaN(), Y: math.NaN()}}},
		{"inf-span", []Point{{X: -math.MaxFloat64, Y: 0}, {X: math.MaxFloat64, Y: 0}}},
		{"pos-inf", []Point{{X: math.Inf(1), Y: 0}, {X: 0, Y: 0}}},
	}
	for _, c := range cases {
		if got := GridCellFor(c.sample, 4); got != 1 {
			t.Errorf("%s: GridCellFor = %v, want fallback 1", c.name, got)
		}
	}
	// The healthy path is untouched.
	if got := GridCellFor([]Point{{X: 0, Y: 0}, {X: 8, Y: 0}}, 4); !(got > 0) || math.IsNaN(got) {
		t.Errorf("healthy sample: GridCellFor = %v, want positive finite", got)
	}
}

// TestEngineWarmAllocs pins the engine-layer reuse contract: once warm, a
// Build + full SelfKNearest pass allocates nothing on any engine (grid gets
// the same small slack its KSG backend has: map-internal churn).
func TestEngineWarmAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := reusePoints(rng, 400)
	xs, ys := coordsOf(pts)
	const k = 4
	// Grid keeps map-backed state whose delete/reinsert cycles occasionally
	// allocate internally (see the mi hot-path budgets); ≤8 over a 400-query
	// pass still pins "no per-query allocation growth" at 0.02/query.
	budgets := map[string]float64{"kdtree": 0, "brute": 0, "forest": 0, "grid": 8}
	for _, name := range EngineNames() {
		e, err := NewEngine(name, Config{K: k, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		pass := func() {
			e.Build(pts, xs, ys)
			for i := range pts {
				_ = e.SelfKNearest(i, k)
				_ = e.CountX(xs[i], 0.25)
				_ = e.CountY(ys[i], 0.25)
			}
		}
		pass() // warm-up
		budget, ok := budgets[name]
		if !ok {
			budget = 2
		}
		if avg := testing.AllocsPerRun(20, pass); avg > budget {
			t.Errorf("%s: %.1f allocs per warm pass, budget %g", name, avg, budget)
		}
	}
}

// TestNewEngineUnknown pins the registry error path.
func TestNewEngineUnknown(t *testing.T) {
	if _, err := NewEngine("annoy", Config{}); err == nil {
		t.Fatal("want error for unknown engine")
	}
	if HasEngine("annoy") {
		t.Fatal("HasEngine(annoy) = true")
	}
	for _, name := range []string{"kdtree", "brute", "grid", "forest"} {
		if !HasEngine(name) {
			t.Fatalf("HasEngine(%q) = false", name)
		}
	}
}

// FuzzEngineDifferential cross-checks every engine against the reference on
// fuzzer-chosen point sets: bytes decode to a quantized point set (ties are
// frequent by construction), and every engine must agree with Brute under a
// full budget.
func FuzzEngineDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 128, 7, 7, 7, 7, 9, 200, 13, 5}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, kb uint8) {
		if len(data) < 2 || len(data) > 256 {
			t.Skip()
		}
		n := len(data) / 2
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			// Quantized small-range coordinates: heavy ties, occasional
			// extreme offsets to cross the saturation path.
			x := float64(int(data[2*i])%11) * 0.5
			y := float64(int(data[2*i+1])%11) * 0.5
			if data[2*i]%13 == 0 {
				x += 1e300
			}
			if data[2*i+1]%17 == 0 {
				y -= 1e300
			}
			pts[i] = Point{X: x, Y: y}
		}
		k := int(kb)%8 + 1
		xs, ys := coordsOf(pts)
		for _, name := range EngineNames() {
			e, err := NewEngine(name, Config{K: k, Seed: 1, Checks: n + 1})
			if err != nil {
				t.Fatal(err)
			}
			e.Build(pts, xs, ys)
			for i := range pts {
				want := engineReference(pts, pts[i], k, i)
				if got := e.SelfKNearest(i, k); !neighborsEqual(want, got) {
					t.Fatalf("%s i=%d k=%d: got %v want %v", name, i, k, got, want)
				}
			}
		}
	})
}
