// Package knn provides the 2-D nearest-neighbour and range-counting
// machinery behind the KSG mutual-information estimator: a brute-force
// scanner, a k-d tree (Bentley 1975), and a dynamic uniform grid index
// (Vejmelka & Hlaváčková-Schindler 2007) supporting insertion and removal,
// which backs the incremental MI computation of Section 7 of the paper.
//
// All distances are the Chebyshev (L∞) metric, as required by the KSG
// estimator (paper footnote 1).
package knn

import "math"

// Point is a sample (x_i, y_i) of the joint space of a window.
type Point struct {
	X, Y float64
}

// Chebyshev returns the L∞ distance max(|ax−bx|, |ay−by|).
func Chebyshev(a, b Point) float64 {
	dx := math.Abs(a.X - b.X)
	dy := math.Abs(a.Y - b.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// Neighbor is a kNN query result: the index of a point and its L∞ distance
// from the query point.
type Neighbor struct {
	Index int
	Dist  float64
}

// Index is the interface shared by the kNN backends. KNearest returns the k
// nearest points to q under the L∞ metric, sorted by ascending distance,
// excluding the point with index exclude (pass −1 to exclude nothing). When
// fewer than k other points exist, all of them are returned. KNearestInto is
// KNearest reusing buf's backing array for the result, so hot loops run
// allocation-free; the returned slice aliases buf when it has capacity.
//
// Ties at the k-th distance are broken by ascending point index, so the
// selected neighbour SET — not just its distances — is identical across
// backends and candidate visit orders. The KSG estimator projects the
// selected set onto each axis; without a total order, tied data could yield
// backend-dependent marginal radii and with them backend-dependent MI.
type Index interface {
	KNearest(q Point, k, exclude int) []Neighbor
	KNearestInto(q Point, k, exclude int, buf []Neighbor) []Neighbor
	Len() int
}

// neighborLess is the strict total order (distance, index) that all backends
// keep their k best candidates under.
func neighborLess(a, b Neighbor) bool {
	//lint:allow floateq exact compare feeds the index tie-break: a tolerant compare would make the order intransitive
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Index < b.Index
}

// maxHeap is a bounded max-heap over the (distance, index) total order used
// to keep the k best candidates during a query.
type maxHeap []Neighbor

// worst returns the largest distance currently kept; the heap root is the
// maximum under (distance, index), so its distance is the maximum distance.
func (h maxHeap) worst() float64 { return h[0].Dist }

func (h *maxHeap) push(n Neighbor, k int) {
	if len(*h) < k {
		*h = append(*h, n)
		i := len(*h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !neighborLess((*h)[parent], (*h)[i]) {
				break
			}
			(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
			i = parent
		}
		return
	}
	if !neighborLess(n, (*h)[0]) {
		return
	}
	(*h)[0] = n
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(*h) && neighborLess((*h)[largest], (*h)[l]) {
			largest = l
		}
		if r < len(*h) && neighborLess((*h)[largest], (*h)[r]) {
			largest = r
		}
		if largest == i {
			break
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}

// sortInPlace orders the heap contents by ascending (distance, index). The
// slice holds at most k elements and k is single-digit in practice, so an
// insertion sort wins — and unlike sort.Slice it does not allocate, which
// matters because every kNN query in the KSG hot loop ends here.
func (h maxHeap) sortInPlace() {
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && neighborLess(h[j], h[j-1]); j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
}

// Brute is the O(n) linear-scan backend. It is the reference implementation
// the tree and grid backends are validated against.
type Brute struct {
	pts []Point
}

// NewBrute returns a brute-force index over pts. The slice is not copied.
func NewBrute(pts []Point) *Brute { return &Brute{pts: pts} }

// Reset repoints the index at a new point set. The slice is not copied.
func (b *Brute) Reset(pts []Point) { b.pts = pts }

// Len returns the number of indexed points.
func (b *Brute) Len() int { return len(b.pts) }

// KNearest implements Index by scanning every point.
func (b *Brute) KNearest(q Point, k, exclude int) []Neighbor {
	return b.KNearestInto(q, k, exclude, nil)
}

// KNearestInto implements Index.
func (b *Brute) KNearestInto(q Point, k, exclude int, buf []Neighbor) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := maxHeap(buf[:0])
	for i, p := range b.pts {
		if i == exclude {
			continue
		}
		h.push(Neighbor{Index: i, Dist: Chebyshev(q, p)}, k)
	}
	h.sortInPlace()
	return h
}

// CountWithinX returns the number of points with |x − qx| ≤ d, excluding the
// point with index exclude. This is the marginal count n_x of Eq. (2).
func (b *Brute) CountWithinX(qx, d float64, exclude int) int {
	n := 0
	for i, p := range b.pts {
		if i == exclude {
			continue
		}
		if math.Abs(p.X-qx) <= d {
			n++
		}
	}
	return n
}

// CountWithinY is CountWithinX for the y dimension.
func (b *Brute) CountWithinY(qy, d float64, exclude int) int {
	n := 0
	for i, p := range b.pts {
		if i == exclude {
			continue
		}
		if math.Abs(p.Y-qy) <= d {
			n++
		}
	}
	return n
}
