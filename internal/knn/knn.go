// Package knn provides the 2-D nearest-neighbour and range-counting
// machinery behind the KSG mutual-information estimator: a brute-force
// scanner, a k-d tree (Bentley 1975), and a dynamic uniform grid index
// (Vejmelka & Hlaváčková-Schindler 2007) supporting insertion and removal,
// which backs the incremental MI computation of Section 7 of the paper.
//
// All distances are the Chebyshev (L∞) metric, as required by the KSG
// estimator (paper footnote 1).
package knn

import (
	"math"
	"sort"
)

// Point is a sample (x_i, y_i) of the joint space of a window.
type Point struct {
	X, Y float64
}

// Chebyshev returns the L∞ distance max(|ax−bx|, |ay−by|).
func Chebyshev(a, b Point) float64 {
	dx := math.Abs(a.X - b.X)
	dy := math.Abs(a.Y - b.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// Neighbor is a kNN query result: the index of a point and its L∞ distance
// from the query point.
type Neighbor struct {
	Index int
	Dist  float64
}

// Index is the interface shared by the kNN backends. KNearest returns the k
// nearest points to q under the L∞ metric, sorted by ascending distance,
// excluding the point with index exclude (pass −1 to exclude nothing). When
// fewer than k other points exist, all of them are returned.
type Index interface {
	KNearest(q Point, k, exclude int) []Neighbor
	Len() int
}

// maxHeap is a bounded max-heap over Neighbor distances used to keep the k
// best candidates during a query.
type maxHeap []Neighbor

func (h maxHeap) worst() float64 { return h[0].Dist }

func (h *maxHeap) push(n Neighbor, k int) {
	if len(*h) < k {
		*h = append(*h, n)
		i := len(*h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if (*h)[parent].Dist >= (*h)[i].Dist {
				break
			}
			(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
			i = parent
		}
		return
	}
	if n.Dist >= (*h)[0].Dist {
		return
	}
	(*h)[0] = n
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(*h) && (*h)[l].Dist > (*h)[largest].Dist {
			largest = l
		}
		if r < len(*h) && (*h)[r].Dist > (*h)[largest].Dist {
			largest = r
		}
		if largest == i {
			break
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}

func (h maxHeap) sorted() []Neighbor {
	out := make([]Neighbor, len(h))
	copy(out, h)
	maxHeap(out).sortInPlace()
	return out
}

// sortInPlace orders the heap contents by ascending distance (ties by id).
func (h maxHeap) sortInPlace() {
	sort.Slice(h, func(i, j int) bool {
		//lint:allow floateq exact compare is required: a tolerant tie-break would make the sort order intransitive
		if h[i].Dist != h[j].Dist {
			return h[i].Dist < h[j].Dist
		}
		return h[i].Index < h[j].Index
	})
}

// Brute is the O(n) linear-scan backend. It is the reference implementation
// the tree and grid backends are validated against.
type Brute struct {
	pts []Point
}

// NewBrute returns a brute-force index over pts. The slice is not copied.
func NewBrute(pts []Point) *Brute { return &Brute{pts: pts} }

// Len returns the number of indexed points.
func (b *Brute) Len() int { return len(b.pts) }

// KNearest implements Index by scanning every point.
func (b *Brute) KNearest(q Point, k, exclude int) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := make(maxHeap, 0, k)
	for i, p := range b.pts {
		if i == exclude {
			continue
		}
		h.push(Neighbor{Index: i, Dist: Chebyshev(q, p)}, k)
	}
	return h.sorted()
}

// CountWithinX returns the number of points with |x − qx| ≤ d, excluding the
// point with index exclude. This is the marginal count n_x of Eq. (2).
func (b *Brute) CountWithinX(qx, d float64, exclude int) int {
	n := 0
	for i, p := range b.pts {
		if i == exclude {
			continue
		}
		if math.Abs(p.X-qx) <= d {
			n++
		}
	}
	return n
}

// CountWithinY is CountWithinX for the y dimension.
func (b *Brute) CountWithinY(qy, d float64, exclude int) int {
	n := 0
	for i, p := range b.pts {
		if i == exclude {
			continue
		}
		if math.Abs(p.Y-qy) <= d {
			n++
		}
	}
	return n
}
