package knn

import (
	"math/rand"
	"testing"
)

// reusePoints generates a point set whose coordinates are quantized onto a
// coarse lattice, so duplicate coordinates — and therefore distance ties —
// occur constantly. The (distance, index) total order must make reused and
// fresh indexes agree EXACTLY on such data, not just up to tie permutation.
func reusePoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: float64(rng.Intn(12)) * 0.25,
			Y: float64(rng.Intn(12)) * 0.25,
		}
	}
	return pts
}

// TestResetReuseMatchesFresh is the property test for the scratch-reuse
// contract: an index or multiset that has been Reset onto a new point set
// answers every query exactly like a freshly constructed one, across many
// randomized rounds with heavy ties and varying sizes.
func TestResetReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	reusedTree := NewKDTree(nil)
	reusedBrute := NewBrute(nil)
	reusedGrid := NewGrid(1)
	reusedSet := NewOrderedMultiset(nil)
	var buf []Neighbor

	for round := 0; round < 60; round++ {
		n := 5 + rng.Intn(120)
		k := 1 + rng.Intn(6)
		pts := reusePoints(rng, n)

		reusedTree.Reset(pts)
		freshTree := NewKDTree(pts)
		reusedBrute.Reset(pts)
		freshBrute := NewBrute(pts)
		reusedGrid.Reset(GridCellFor(pts, k))
		freshGrid := NewGridFor(pts, k)
		for i, p := range pts {
			reusedGrid.Insert(i, p)
			freshGrid.Insert(i, p)
		}

		for i := range pts {
			want := freshTree.KNearest(pts[i], k, i)
			for name, got := range map[string][]Neighbor{
				"reused kdtree": reusedTree.KNearestInto(pts[i], k, i, buf),
				"fresh brute":   freshBrute.KNearest(pts[i], k, i),
				"reused brute":  reusedBrute.KNearestInto(pts[i], k, i, nil),
				"fresh grid":    freshGrid.KNearest(pts[i], k, i),
				"reused grid":   reusedGrid.KNearestInto(pts[i], k, i, nil),
			} {
				if !neighborsEqual(want, got) {
					t.Fatalf("round %d query %d (n=%d k=%d): %s = %v, fresh kdtree = %v",
						round, i, n, k, name, got, want)
				}
			}
			buf = reusedTree.KNearestInto(pts[i], k, i, buf)[:0]
		}

		vals := make([]float64, n)
		for i, p := range pts {
			vals[i] = p.X
		}
		reusedSet.Reset(vals)
		freshSet := NewOrderedMultiset(vals)
		if reusedSet.Len() != freshSet.Len() || reusedSet.Min() != freshSet.Min() || reusedSet.Max() != freshSet.Max() {
			t.Fatalf("round %d: multiset shape diverged after Reset", round)
		}
		for q := 0; q < 20; q++ {
			center := rng.Float64() * 3
			d := rng.Float64()
			if got, want := reusedSet.CountWithin(center, d), freshSet.CountWithin(center, d); got != want {
				t.Fatalf("round %d: CountWithin(%v, %v) reused=%d fresh=%d", round, center, d, got, want)
			}
		}
	}
}

// neighborsEqual compares neighbour lists exactly — the deterministic
// (distance, index) tie-break makes the selected set and its order
// well-defined, so Float equality is the contract, not a test fragility.
func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Exact float equality is deliberate: the determinism contract across
		// backends and reuse is bit-identity. (The linter does not parse test
		// files, so no allow directive is needed.)
		if a[i].Index != b[i].Index || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestResetAllocs pins the allocation budget of the Reset-and-refill cycle:
// after one warm-up round, re-using a kd-tree, multiset or grid on a
// same-sized point set must not touch the heap.
func TestResetAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pts := reusePoints(rng, 400)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.X
	}

	tree := NewKDTree(pts)
	var buf []Neighbor
	buf = tree.KNearestInto(pts[0], 4, 0, buf)[:0]
	if got := testing.AllocsPerRun(20, func() {
		tree.Reset(pts)
		buf = tree.KNearestInto(pts[7], 4, 7, buf)[:0]
	}); got != 0 {
		t.Errorf("kd-tree Reset+query allocates %v/run, want 0", got)
	}

	set := NewOrderedMultiset(vals)
	if got := testing.AllocsPerRun(20, func() {
		set.Reset(vals)
		_ = set.CountWithin(0.5, 0.25)
	}); got != 0 {
		t.Errorf("multiset Reset+count allocates %v/run, want 0", got)
	}

	// Warm the cell map and free list. Recycled buckets are matched to cells
	// arbitrarily, so a bucket may need to grow when it lands on a fuller
	// cell than it last served — but capacities only ever grow, so after a
	// few rounds every pooled bucket fits every cell and refills stop
	// allocating.
	grid := NewGridFor(pts, 4)
	for rep := 0; rep < 16; rep++ {
		grid.Reset(GridCellFor(pts, 4))
		for i, p := range pts {
			grid.Insert(i, p)
		}
	}
	// Pinned budget: ≤1 amortized alloc per full reload. The buckets and
	// point map are recycled, but Go map delete/reinsert cycles occasionally
	// allocate an overflow bucket internally, which no caller-side pooling
	// can suppress.
	if got := testing.AllocsPerRun(20, func() {
		grid.Reset(GridCellFor(pts, 4))
		for i, p := range pts {
			grid.Insert(i, p)
		}
	}); got > 1 {
		t.Errorf("grid Reset+refill allocates %v/run, want ≤1", got)
	}
}

func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
	}
	return pts
}

func BenchmarkKDTreeReset(b *testing.B) {
	pts := benchPoints(500)
	tree := NewKDTree(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Reset(pts)
	}
}

func BenchmarkGridReset(b *testing.B) {
	pts := benchPoints(500)
	cell := GridCellFor(pts, 4)
	grid := NewGrid(cell)
	for i, p := range pts {
		grid.Insert(i, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.Reset(cell)
		for j, p := range pts {
			grid.Insert(j, p)
		}
	}
}

func BenchmarkOrderedMultisetReset(b *testing.B) {
	pts := benchPoints(500)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.X
	}
	set := NewOrderedMultiset(vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Reset(vals)
	}
}

func BenchmarkKNearest(b *testing.B) {
	pts := benchPoints(500)
	tree := NewKDTree(pts)
	brute := NewBrute(pts)
	grid := NewGridFor(pts, 4)
	for i, p := range pts {
		grid.Insert(i, p)
	}
	for _, bc := range []struct {
		name string
		idx  Index
	}{{"kdtree", tree}, {"brute", brute}, {"grid", grid}} {
		b.Run(bc.name, func(b *testing.B) {
			var buf []Neighbor
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := i % len(pts)
				buf = bc.idx.KNearestInto(pts[q], 4, q, buf)[:0]
			}
		})
	}
}
