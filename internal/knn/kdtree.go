package knn

// KDTree is a static 2-d tree over a point set, built in O(n log n) expected
// time and answering kNN queries in O(k log n) expected time. It is the
// default backend for batch KSG estimation.
//
// A tree is rebuilt in place with Reset, which reuses the node arena and the
// build scratch of earlier builds — the KSG hot path rebuilds one tree per
// window and must not allocate in steady state.
//
// The build partitions under the total order (axis coordinate, point index),
// so the tree shape — and with it every query answer — is a pure function of
// the point set, independent of the partitioning algorithm and of the
// insertion history of equal coordinates.
type KDTree struct {
	pts   []Point
	nodes []kdNode
	idx   []int // build scratch, retained across Reset for reuse
	root  int
}

type kdNode struct {
	point       int // index into pts
	axis        int // 0 = x, 1 = y
	left, right int // node indices, −1 if absent
}

// NewKDTree builds a balanced 2-d tree over pts. The slice is not copied;
// the tree references points by their index in pts.
func NewKDTree(pts []Point) *KDTree {
	t := &KDTree{root: -1}
	t.Reset(pts)
	return t
}

// Reset rebuilds the tree over pts in place. The node arena and build
// scratch are reused, so a warm tree rebuilds with zero heap allocations
// whenever pts is no larger than any earlier point set.
func (t *KDTree) Reset(pts []Point) {
	t.pts = pts
	t.nodes = t.nodes[:0]
	t.root = -1
	if len(pts) == 0 {
		return
	}
	if cap(t.idx) < len(pts) {
		t.idx = make([]int, len(pts))
	}
	t.idx = t.idx[:len(pts)]
	for i := range t.idx {
		t.idx[i] = i
	}
	if cap(t.nodes) < len(pts) {
		t.nodes = make([]kdNode, 0, len(pts))
	}
	t.root = t.build(t.idx, 0)
}

func (t *KDTree) build(idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % 2
	mid := len(idx) / 2
	// Median selection (not a full sort) is all a k-d tree build needs: the
	// subtree point sets are determined by the partition alone.
	t.selectMedian(idx, mid, axis)
	node := kdNode{point: idx[mid], axis: axis}
	id := len(t.nodes)
	t.nodes = append(t.nodes, node)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// axisLess orders point indices by their coordinate on the given axis with
// the index as tie-break — a strict total order, so partitioning yields the
// same median element as a full stable sort would.
func (t *KDTree) axisLess(a, b, axis int) bool {
	var va, vb float64
	if axis == 0 {
		va, vb = t.pts[a].X, t.pts[b].X
	} else {
		va, vb = t.pts[a].Y, t.pts[b].Y
	}
	//lint:allow floateq exact compare feeds the index tie-break: a tolerant compare would break the strict total order the deterministic build relies on
	if va != vb {
		return va < vb
	}
	return a < b
}

// selectMedian rearranges idx so idx[mid] holds the element a full sort
// under axisLess would place there, with smaller elements before it and
// larger ones after — an in-place quickselect with median-of-three pivots
// and an insertion-sort base case, free of heap allocation.
func (t *KDTree) selectMedian(idx []int, mid, axis int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		if hi-lo < 12 {
			t.insertionSort(idx, lo, hi, axis)
			return
		}
		p := t.partition(idx, lo, hi, axis)
		switch {
		case p == mid:
			return
		case mid < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// partition picks a median-of-three pivot from idx[lo..hi], partitions the
// range around it, and returns the pivot's final position.
func (t *KDTree) partition(idx []int, lo, hi, axis int) int {
	m := lo + (hi-lo)/2
	if t.axisLess(idx[m], idx[lo], axis) {
		idx[m], idx[lo] = idx[lo], idx[m]
	}
	if t.axisLess(idx[hi], idx[lo], axis) {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if t.axisLess(idx[hi], idx[m], axis) {
		idx[hi], idx[m] = idx[m], idx[hi]
	}
	idx[m], idx[hi-1] = idx[hi-1], idx[m]
	pivot := idx[hi-1]
	i := lo
	for j := lo; j < hi-1; j++ {
		if t.axisLess(idx[j], pivot, axis) {
			idx[i], idx[j] = idx[j], idx[i]
			i++
		}
	}
	idx[i], idx[hi-1] = idx[hi-1], idx[i]
	return i
}

// insertionSort fully orders idx[lo..hi] under axisLess (inclusive bounds).
func (t *KDTree) insertionSort(idx []int, lo, hi, axis int) {
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && t.axisLess(idx[j], idx[j-1], axis); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// KNearest implements Index.
func (t *KDTree) KNearest(q Point, k, exclude int) []Neighbor {
	return t.KNearestInto(q, k, exclude, nil)
}

// KNearestInto is KNearest reusing buf's backing array for the result,
// letting hot loops run allocation-free.
func (t *KDTree) KNearestInto(q Point, k, exclude int, buf []Neighbor) []Neighbor {
	if k <= 0 || t.root < 0 {
		return nil
	}
	h := maxHeap(buf[:0])
	t.search(t.root, q, k, exclude, &h)
	h.sortInPlace()
	return h
}

func (t *KDTree) search(id int, q Point, k, exclude int, h *maxHeap) {
	if id < 0 {
		return
	}
	n := t.nodes[id]
	p := t.pts[n.point]
	if n.point != exclude {
		h.push(Neighbor{Index: n.point, Dist: Chebyshev(q, p)}, k)
	}
	var diff float64
	if n.axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, q, k, exclude, h)
	// Under L∞ the splitting-plane distance is |diff|; the far subtree can
	// only matter when |diff| is within the current worst distance (or the
	// heap is not yet full).
	abs := diff
	if abs < 0 {
		abs = -abs
	}
	if len(*h) < k || abs <= h.worst() {
		t.search(far, q, k, exclude, h)
	}
}
