package knn

import "sort"

// KDTree is a static 2-d tree over a point set, built once in O(n log n) and
// answering kNN queries in O(k log n) expected time. It is the default
// backend for batch KSG estimation.
type KDTree struct {
	pts   []Point
	nodes []kdNode
	root  int
}

type kdNode struct {
	point       int // index into pts
	axis        int // 0 = x, 1 = y
	left, right int // node indices, −1 if absent
}

// NewKDTree builds a balanced 2-d tree over pts. The slice is not copied;
// the tree references points by their index in pts.
func NewKDTree(pts []Point) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(idx, 0)
	return t
}

func (t *KDTree) build(idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % 2
	sort.Slice(idx, func(a, b int) bool {
		if axis == 0 {
			return t.pts[idx[a]].X < t.pts[idx[b]].X
		}
		return t.pts[idx[a]].Y < t.pts[idx[b]].Y
	})
	mid := len(idx) / 2
	node := kdNode{point: idx[mid], axis: axis}
	id := len(t.nodes)
	t.nodes = append(t.nodes, node)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// KNearest implements Index.
func (t *KDTree) KNearest(q Point, k, exclude int) []Neighbor {
	if k <= 0 || t.root < 0 {
		return nil
	}
	h := make(maxHeap, 0, k)
	t.search(t.root, q, k, exclude, &h)
	return h.sorted()
}

func (t *KDTree) search(id int, q Point, k, exclude int, h *maxHeap) {
	if id < 0 {
		return
	}
	n := t.nodes[id]
	p := t.pts[n.point]
	if n.point != exclude {
		h.push(Neighbor{Index: n.point, Dist: Chebyshev(q, p)}, k)
	}
	var diff float64
	if n.axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, q, k, exclude, h)
	// Under L∞ the splitting-plane distance is |diff|; the far subtree can
	// only matter when |diff| is within the current worst distance (or the
	// heap is not yet full).
	abs := diff
	if abs < 0 {
		abs = -abs
	}
	if len(*h) < k || abs <= h.worst() {
		t.search(far, q, k, exclude, h)
	}
}
