package knn

import (
	"slices"
	"sort"
)

// OrderedMultiset is a sorted multiset of float64 values supporting
// logarithmic interval counting and linear-shift insert/remove. The KSG
// marginal counts n_x, n_y of Eq. (2) are interval counts over one
// dimension, and the incremental estimator keeps one multiset per axis.
type OrderedMultiset struct {
	vals []float64
}

// NewOrderedMultiset returns a multiset pre-populated with vals.
func NewOrderedMultiset(vals []float64) *OrderedMultiset {
	m := &OrderedMultiset{}
	m.Reset(vals)
	return m
}

// Reset replaces the contents with vals in place, reusing the backing array
// (and allocating nothing when it already has capacity). slices.Sort is the
// generic in-place pdqsort — unlike the sort.Interface path it does not
// allocate, which keeps the KSG marginal rebuild off the heap.
func (m *OrderedMultiset) Reset(vals []float64) {
	m.vals = append(m.vals[:0], vals...)
	slices.Sort(m.vals)
}

// Len returns the number of stored values (with multiplicity).
func (m *OrderedMultiset) Len() int { return len(m.vals) }

// Insert adds v, keeping the set sorted.
func (m *OrderedMultiset) Insert(v float64) {
	i := sort.SearchFloat64s(m.vals, v)
	m.vals = append(m.vals, 0)
	copy(m.vals[i+1:], m.vals[i:])
	m.vals[i] = v
}

// Remove deletes one occurrence of v, reporting whether it was present.
func (m *OrderedMultiset) Remove(v float64) bool {
	i := sort.SearchFloat64s(m.vals, v)
	//lint:allow floateq exact membership is the contract: Remove deletes the same bit pattern Insert stored
	if i >= len(m.vals) || m.vals[i] != v {
		return false
	}
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
	return true
}

// CountWithin returns the number of stored values u with |u − center| ≤ d.
// The two bound searches are open-coded: this is the hottest marginal-count
// path of every KSG estimate (two calls per point per estimate), and the
// sort.Search closure protocol costs roughly 3× an inline loop here. The
// comparisons are identical to sort.SearchFloat64s, so the counts — and the
// estimator goldens built on them — are unchanged.
func (m *OrderedMultiset) CountWithin(center, d float64) int {
	vals := m.vals
	// Lower bound: first index with value ≥ center−d.
	t := center - d
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vals[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	lower := lo
	// Upper bound: first index with value > center+d. It can only lie at or
	// after the lower bound, so the search resumes from there.
	t = center + d
	hi = len(vals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vals[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - lower
}

// Min returns the smallest value; it panics on an empty set.
func (m *OrderedMultiset) Min() float64 { return m.vals[0] }

// Max returns the largest value; it panics on an empty set.
func (m *OrderedMultiset) Max() float64 { return m.vals[len(m.vals)-1] }
