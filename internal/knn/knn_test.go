package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10}
	}
	return pts
}

func TestChebyshev(t *testing.T) {
	if Chebyshev(Point{0, 0}, Point{3, -4}) != 4 {
		t.Error("L∞ distance wrong")
	}
	if Chebyshev(Point{1, 1}, Point{1, 1}) != 0 {
		t.Error("self distance must be 0")
	}
}

func TestBruteKNearestSmall(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {5, 5}, {0.5, 0.5}, {-1, 0}}
	b := NewBrute(pts)
	nn := b.KNearest(pts[0], 2, 0)
	if len(nn) != 2 {
		t.Fatalf("got %d neighbours", len(nn))
	}
	if nn[0].Index != 3 || nn[1].Index != 1 && nn[1].Index != 4 {
		t.Errorf("unexpected neighbours %+v", nn)
	}
	if nn[0].Dist != 0.5 || nn[1].Dist != 1 {
		t.Errorf("distances %+v", nn)
	}
	// k larger than available points returns all others.
	if got := len(b.KNearest(pts[0], 10, 0)); got != 4 {
		t.Errorf("oversized k returned %d", got)
	}
	if b.KNearest(pts[0], 0, 0) != nil {
		t.Error("k=0 must return nil")
	}
}

// distSet extracts the multiset of distances (order-insensitive comparison:
// equidistant neighbours may be returned in any index order).
func distSet(nn []Neighbor) []float64 {
	out := make([]float64, len(nn))
	for i, n := range nn {
		out[i] = n.Dist
	}
	sort.Float64s(out)
	return out
}

func sameDistances(a, b []Neighbor) bool {
	da, db := distSet(a), distSet(b)
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if math.Abs(da[i]-db[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestKDTreeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		pts := randomPoints(rng, n)
		brute := NewBrute(pts)
		tree := NewKDTree(pts)
		if tree.Len() != n {
			t.Fatalf("tree len %d != %d", tree.Len(), n)
		}
		for q := 0; q < 10; q++ {
			i := rng.Intn(n)
			k := 1 + rng.Intn(8)
			bn := brute.KNearest(pts[i], k, i)
			tn := tree.KNearest(pts[i], k, i)
			if !sameDistances(bn, tn) {
				t.Fatalf("trial %d: kd-tree mismatch for point %d k=%d:\nbrute %+v\ntree  %+v", trial, i, k, bn, tn)
			}
		}
	}
}

func TestGridMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		pts := randomPoints(rng, n)
		brute := NewBrute(pts)
		grid := NewGridFor(pts, 4)
		for i, p := range pts {
			grid.Insert(i, p)
		}
		if grid.Len() != n {
			t.Fatalf("grid len %d != %d", grid.Len(), n)
		}
		for q := 0; q < 10; q++ {
			i := rng.Intn(n)
			k := 1 + rng.Intn(8)
			bn := brute.KNearest(pts[i], k, i)
			gn := grid.KNearest(pts[i], k, i)
			if !sameDistances(bn, gn) {
				t.Fatalf("trial %d: grid mismatch for point %d k=%d:\nbrute %+v\ngrid  %+v", trial, i, k, bn, gn)
			}
		}
	}
}

func TestGridInsertRemove(t *testing.T) {
	g := NewGrid(1)
	g.Insert(0, Point{0, 0})
	g.Insert(1, Point{2, 2})
	g.Insert(2, Point{0.5, 0.5})
	if g.Len() != 3 {
		t.Fatal("len after inserts")
	}
	if !g.Remove(2) {
		t.Fatal("remove existing failed")
	}
	if g.Remove(2) {
		t.Fatal("double remove succeeded")
	}
	nn := g.KNearest(Point{0, 0}, 1, 0)
	if len(nn) != 1 || nn[0].Index != 1 {
		t.Errorf("after removal expected neighbour 1, got %+v", nn)
	}
	// Replacing an id moves the point.
	g.Insert(1, Point{10, 10})
	if g.Len() != 2 {
		t.Errorf("len after replace = %d", g.Len())
	}
	p, ok := g.Point(1)
	if !ok || p.X != 10 {
		t.Errorf("replaced point = %+v %v", p, ok)
	}
}

func TestGridDynamicConsistencyProperty(t *testing.T) {
	// After a random interleaving of inserts and removes the grid must agree
	// with a brute-force index over the surviving points.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(2.5)
		live := map[int]Point{}
		nextID := 0
		for op := 0; op < 150; op++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				p := Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
				g.Insert(nextID, p)
				live[nextID] = p
				nextID++
			} else {
				for id := range live {
					g.Remove(id)
					delete(live, id)
					break
				}
			}
		}
		if g.Len() != len(live) {
			return false
		}
		if len(live) < 2 {
			return true
		}
		ids := make([]int, 0, len(live))
		pts := make([]Point, 0, len(live))
		for id, p := range live {
			ids = append(ids, id)
			pts = append(pts, p)
		}
		brute := NewBrute(pts)
		q := pts[0]
		bn := brute.KNearest(q, 3, 0)
		gn := g.KNearest(q, 3, ids[0])
		return sameDistances(bn, gn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGridVisitRectAndCount(t *testing.T) {
	g := NewGrid(1)
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {-1, 2}}
	for i, p := range pts {
		g.Insert(i, p)
	}
	if got := g.CountRect(0, 2, 0, 2); got != 3 {
		t.Errorf("CountRect = %d, want 3", got)
	}
	// Inverted rectangle counts nothing.
	if got := g.CountRect(2, 0, 0, 2); got != 0 {
		t.Errorf("inverted rect count = %d", got)
	}
	// Huge rectangle falls back to map iteration and still counts all.
	if got := g.CountRect(-1e9, 1e9, -1e9, 1e9); got != len(pts) {
		t.Errorf("huge rect count = %d", got)
	}
}

func TestNewGridForDegenerate(t *testing.T) {
	// Identical points produce zero span; grid must still work.
	pts := []Point{{1, 1}, {1, 1}, {1, 1}}
	g := NewGridFor(pts, 2)
	for i, p := range pts {
		g.Insert(i, p)
	}
	nn := g.KNearest(pts[0], 2, 0)
	if len(nn) != 2 || nn[0].Dist != 0 {
		t.Errorf("degenerate kNN = %+v", nn)
	}
	if NewGridFor(nil, 3) == nil {
		t.Error("empty sample must still build a grid")
	}
}

func TestBruteMarginalCounts(t *testing.T) {
	pts := []Point{{0, 0}, {1, 5}, {2, -3}, {-0.5, 0.2}}
	b := NewBrute(pts)
	if got := b.CountWithinX(0, 1, 0); got != 2 { // 1 and -0.5
		t.Errorf("CountWithinX = %d", got)
	}
	if got := b.CountWithinY(0, 1, 0); got != 1 { // 0.2 only
		t.Errorf("CountWithinY = %d", got)
	}
}

func TestOrderedMultiset(t *testing.T) {
	m := NewOrderedMultiset([]float64{3, 1, 2, 2})
	if m.Len() != 4 || m.Min() != 1 || m.Max() != 3 {
		t.Fatalf("init state wrong: %+v", m)
	}
	if got := m.CountWithin(2, 0); got != 2 {
		t.Errorf("duplicates count = %d", got)
	}
	m.Insert(2.5)
	if got := m.CountWithin(2, 0.5); got != 3 {
		t.Errorf("count after insert = %d", got)
	}
	if !m.Remove(2) || m.CountWithin(2, 0) != 1 {
		t.Error("remove of duplicate must delete exactly one")
	}
	if m.Remove(99) {
		t.Error("removing absent value must fail")
	}
}

func TestOrderedMultisetMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var raw []float64
		for i := 0; i < 80; i++ {
			raw = append(raw, math.Round(rng.NormFloat64()*4)/2)
		}
		m := NewOrderedMultiset(raw)
		for trial := 0; trial < 20; trial++ {
			c := raw[rng.Intn(len(raw))]
			d := math.Abs(rng.NormFloat64())
			want := 0
			for _, v := range raw {
				if math.Abs(v-c) <= d {
					want++
				}
			}
			if m.CountWithin(c, d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGridSquareAndStripVisitors(t *testing.T) {
	g := NewGrid(1)
	pts := []Point{{0, 0}, {0.4, 0.4}, {2, 0}, {0, 2}, {-3, -3}, {5, 5}}
	for i, p := range pts {
		g.Insert(i, p)
	}
	count := func(visit func(fn func(id int, p Point))) int {
		n := 0
		visit(func(int, Point) { n++ })
		return n
	}
	if got := count(func(fn func(int, Point)) { g.VisitSquare(Point{0, 0}, 0.5, fn) }); got != 2 {
		t.Errorf("square(0.5) visited %d, want 2", got)
	}
	if got := count(func(fn func(int, Point)) { g.VisitSquare(Point{0, 0}, 2, fn) }); got != 4 {
		t.Errorf("square(2) visited %d, want 4", got)
	}
	if got := count(func(fn func(int, Point)) { g.VisitStripX(-0.1, 0.5, fn) }); got != 3 {
		t.Errorf("stripX visited %d, want 3 (x=0, 0.4, 0)", got)
	}
	if got := count(func(fn func(int, Point)) { g.VisitStripY(1.9, 5.1, fn) }); got != 2 {
		t.Errorf("stripY visited %d, want 2 (y=2, 5)", got)
	}
	// Inverted and empty cases.
	if got := count(func(fn func(int, Point)) { g.VisitStripX(1, 0, fn) }); got != 0 {
		t.Errorf("inverted strip visited %d", got)
	}
	empty := NewGrid(1)
	if got := count(func(fn func(int, Point)) { empty.VisitStripX(-10, 10, fn) }); got != 0 {
		t.Errorf("empty grid strip visited %d", got)
	}
}

func TestGridKNearestInto(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randomPoints(rng, 100)
	g := NewGridFor(pts, 4)
	for i, p := range pts {
		g.Insert(i, p)
	}
	buf := make([]Neighbor, 0, 4)
	a := g.KNearestInto(pts[0], 4, 0, buf)
	b := g.KNearest(pts[0], 4, 0)
	if !sameDistances(a, b) {
		t.Errorf("KNearestInto differs from KNearest: %v vs %v", a, b)
	}
	// The buffer's backing array is reused.
	if cap(a) != cap(buf) && len(buf) == 0 && cap(buf) >= 4 {
		t.Errorf("buffer not reused: cap %d vs %d", cap(a), cap(buf))
	}
}

func TestBackendsHandleDuplicatePoints(t *testing.T) {
	// Tied coordinates are the worst case for spatial structures; all three
	// backends must agree on distances (composition may differ).
	pts := make([]Point, 0, 60)
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 20; i++ {
		p := Point{math.Round(rng.NormFloat64()), math.Round(rng.NormFloat64())}
		pts = append(pts, p, p, p) // triplicate
	}
	brute := NewBrute(pts)
	tree := NewKDTree(pts)
	grid := NewGridFor(pts, 4)
	for i, p := range pts {
		grid.Insert(i, p)
	}
	for q := 0; q < 20; q++ {
		i := rng.Intn(len(pts))
		bn := brute.KNearest(pts[i], 5, i)
		tn := tree.KNearest(pts[i], 5, i)
		gn := grid.KNearest(pts[i], 5, i)
		if !sameDistances(bn, tn) || !sameDistances(bn, gn) {
			t.Fatalf("duplicate-point mismatch at %d:\nbrute %v\ntree  %v\ngrid  %v", i, bn, tn, gn)
		}
	}
}

func TestKDTreeEmptyAndSingle(t *testing.T) {
	if NewKDTree(nil).KNearest(Point{0, 0}, 3, -1) != nil {
		t.Error("empty tree must return nil")
	}
	tr := NewKDTree([]Point{{1, 2}})
	nn := tr.KNearest(Point{0, 0}, 3, -1)
	if len(nn) != 1 || nn[0].Index != 0 {
		t.Errorf("single-point tree query = %v", nn)
	}
	if got := tr.KNearest(Point{0, 0}, 3, 0); got != nil && len(got) != 0 {
		t.Errorf("excluding the only point should return nothing, got %v", got)
	}
}
