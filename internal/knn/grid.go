package knn

import "math"

// Grid is a dynamic uniform-grid index over 2-D points supporting insertion,
// removal, kNN queries and rectangle scans. It is the backend of the
// incremental MI computation (Section 7): when a window slides, only a few
// points enter or leave, and the grid keeps neighbourhood queries local.
//
// Points are identified by caller-chosen non-negative ids. The cell size
// should be on the order of the typical kth-neighbour distance; NewGridFor
// derives one from a sample of the data.
// cellEntry stores a point inline with its id so ring scans touch one map
// bucket per cell instead of one per candidate point.
type cellEntry struct {
	id int
	p  Point
}

type Grid struct {
	cell  float64
	cells map[[2]int32][]cellEntry
	pts   map[int]Point
	// free holds the emptied cell buckets of removed or Reset cells; Insert
	// drains it before allocating, so a warm grid cycles points (and whole
	// window reloads) without heap growth.
	free [][]cellEntry
	// Occupied-cell bounding box, maintained on insert (conservatively kept
	// on remove). It bounds the ring search in O(1) instead of scanning the
	// cell map per query.
	boundsValid  bool
	minCx, maxCx int32
	minCy, maxCy int32
}

// NewGrid returns an empty grid with the given cell size (must be positive;
// non-positive values fall back to 1).
func NewGrid(cellSize float64) *Grid {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		cellSize = 1
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[[2]int32][]cellEntry),
		pts:   make(map[int]Point),
	}
}

// NewGridFor returns an empty grid whose cell size is tuned for the given
// sample of points and neighbour count k: roughly the spacing at which a
// cell holds O(k) points, so ring searches terminate after a few rings.
func NewGridFor(sample []Point, k int) *Grid {
	return NewGrid(GridCellFor(sample, k))
}

// GridCellFor returns the cell size NewGridFor would tune for the sample —
// exposed so callers that Reset a warm grid can re-derive the same tuning
// without constructing a throwaway instance.
func GridCellFor(sample []Point, k int) float64 {
	if len(sample) == 0 {
		return 1
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range sample {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	// !(span > 0) rather than span <= 0: a NaN span (any NaN coordinate in
	// the sample) fails every ordered comparison, so the old form let NaN
	// through and returned a NaN cell size that only Grid.Reset's fallback
	// masked later. An infinite span (coordinates straddling ±huge) would
	// likewise produce a useless infinite cell. Both get the documented
	// fallback of 1 at derivation time.
	span := math.Max(maxX-minX, maxY-minY)
	if !(span > 0) || math.IsInf(span, 1) {
		return 1
	}
	if k < 1 {
		k = 1
	}
	// Aim for ~n/k occupied cells along the dominant span.
	cellsPerAxis := math.Sqrt(float64(len(sample)) / float64(k))
	if cellsPerAxis < 1 {
		cellsPerAxis = 1
	}
	return span / cellsPerAxis
}

// Cell returns the grid's cell size.
func (g *Grid) Cell() float64 { return g.cell }

// Reset empties the grid in place and adopts the given cell size (values
// that NewGrid would reject fall back to 1 the same way). The cell map, its
// buckets and the point map keep their capacity: a warm grid refills a
// comparable point set without heap allocation, which is what lets the KSG
// grid backend and the incremental estimator reload whole windows for free.
func (g *Grid) Reset(cellSize float64) {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		cellSize = 1
	}
	g.cell = cellSize
	//lint:allow nodeterm drain order only permutes interchangeable empty buckets in the free list; contents and counts are unaffected
	for key, bucket := range g.cells {
		g.free = append(g.free, bucket[:0])
		delete(g.cells, key)
	}
	clear(g.pts)
	g.boundsValid = false
}

// Len returns the number of points currently in the grid.
func (g *Grid) Len() int { return len(g.pts) }

// Point returns the point stored under id and whether it exists.
func (g *Grid) Point(id int) (Point, bool) {
	p, ok := g.pts[id]
	return p, ok
}

func (g *Grid) key(p Point) [2]int32 {
	return [2]int32{cellCoord(p.X, g.cell), cellCoord(p.Y, g.cell)}
}

// cellCoord maps a coordinate to its cell index, saturating at the int32
// range. A plain int32(math.Floor(v / cell)) is implementation-specific for
// values beyond ±2³¹ cells (Go spec: the behaviour of out-of-range
// float→int conversions is not defined), which silently corrupted keys for
// extreme-magnitude points or tiny cell sizes. Saturation keeps the mapping
// monotone and 1-Lipschitz in cell units — key distance never exceeds true
// cell distance — so the ring search's termination bound ("everything in
// rings beyond r is at least r·cell away") still holds; far-flung points
// merely collapse into the boundary cells, degrading locality, not
// correctness. NaN coordinates map to cell 0.
func cellCoord(v, cell float64) int32 {
	f := math.Floor(v / cell)
	if math.IsNaN(f) {
		return 0
	}
	if f >= math.MaxInt32 {
		return math.MaxInt32
	}
	if f <= math.MinInt32 {
		return math.MinInt32
	}
	return int32(f)
}

// Insert adds the point under id. Inserting an existing id replaces its
// point.
func (g *Grid) Insert(id int, p Point) {
	if old, ok := g.pts[id]; ok {
		g.removeFromCell(g.key(old), id)
	}
	g.pts[id] = p
	k := g.key(p)
	bucket, ok := g.cells[k]
	if !ok && len(g.free) > 0 {
		bucket = g.free[len(g.free)-1]
		g.free = g.free[:len(g.free)-1]
	}
	g.cells[k] = append(bucket, cellEntry{id: id, p: p})
	if !g.boundsValid {
		g.minCx, g.maxCx, g.minCy, g.maxCy = k[0], k[0], k[1], k[1]
		g.boundsValid = true
		return
	}
	if k[0] < g.minCx {
		g.minCx = k[0]
	}
	if k[0] > g.maxCx {
		g.maxCx = k[0]
	}
	if k[1] < g.minCy {
		g.minCy = k[1]
	}
	if k[1] > g.maxCy {
		g.maxCy = k[1]
	}
}

// Remove deletes the point under id, reporting whether it existed.
func (g *Grid) Remove(id int) bool {
	p, ok := g.pts[id]
	if !ok {
		return false
	}
	g.removeFromCell(g.key(p), id)
	delete(g.pts, id)
	if len(g.pts) == 0 {
		g.boundsValid = false
	}
	return true
}

func (g *Grid) removeFromCell(k [2]int32, id int) {
	bucket := g.cells[k]
	for i := range bucket {
		if bucket[i].id == id {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		g.free = append(g.free, bucket)
		delete(g.cells, k)
	} else {
		g.cells[k] = bucket
	}
}

// KNearest implements Index via an expanding ring search: candidates are
// gathered cell ring by cell ring until the kth-best distance provably beats
// every unvisited ring.
func (g *Grid) KNearest(q Point, k, exclude int) []Neighbor {
	return g.KNearestInto(q, k, exclude, nil)
}

// KNearestInto is KNearest reusing buf's backing array for the result,
// letting hot loops (the incremental MI refreshes) run allocation-free.
func (g *Grid) KNearestInto(q Point, k, exclude int, buf []Neighbor) []Neighbor {
	if k <= 0 || len(g.pts) == 0 {
		return nil
	}
	h := maxHeap(buf[:0])
	center := [2]int64{int64(cellCoord(q.X, g.cell)), int64(cellCoord(q.Y, g.cell))}
	// The bounding box of occupied cells caps the ring search; the box is
	// conservative after removals, but empty rings cost only their perimeter
	// lookups. The distances are computed in int64: the saturated box can
	// legitimately span the whole int32 range, where an int32 subtraction
	// would wrap.
	maxRing := int64(0)
	for _, d := range [4]int64{
		center[0] - int64(g.minCx), int64(g.maxCx) - center[0],
		center[1] - int64(g.minCy), int64(g.maxCy) - center[1],
	} {
		if d > maxRing {
			maxRing = d
		}
	}
	// A ring sweep costs at least one perimeter visit per ring; when the box
	// spans more rings than there are points (extreme-magnitude outliers,
	// tiny cells), a linear scan is strictly cheaper than even the empty
	// rings. k-best under the strict (distance, index) total order is
	// insertion-order independent, so scanning the point map directly returns
	// the same neighbour set the rings would.
	if maxRing > int64(len(g.pts)) {
		//lint:allow nodeterm bounded (distance, index) selection is a commutative fold; map iteration order cannot change the selected set
		for id, p := range g.pts {
			if id == exclude {
				continue
			}
			h.push(Neighbor{Index: id, Dist: Chebyshev(q, p)}, k)
		}
		h.sortInPlace()
		return h
	}
	for r := int64(0); r <= maxRing; r++ {
		g.scanRing(center, r, q, k, exclude, &h)
		// Any point in a ring > r is at least r·cell away (the query point
		// sits somewhere inside the centre cell, so ring r+1 cells start at
		// L∞ distance ≥ r·cell).
		if len(h) >= k && h.worst() <= float64(r)*g.cell {
			break
		}
	}
	h.sortInPlace()
	return h
}

func (g *Grid) scanRing(center [2]int64, r int64, q Point, k, exclude int, h *maxHeap) {
	// Ring coordinates are computed in int64 and clipped to the occupied box
	// before narrowing to a map key: center ± r can exceed the int32 range
	// near the saturation boundary, and an unclipped wraparound would
	// re-visit occupied cells and push duplicate candidates.
	visit := func(cx, cy int64) {
		if cx < int64(g.minCx) || cx > int64(g.maxCx) || cy < int64(g.minCy) || cy > int64(g.maxCy) {
			return
		}
		for _, e := range g.cells[[2]int32{int32(cx), int32(cy)}] {
			if e.id == exclude {
				continue
			}
			h.push(Neighbor{Index: e.id, Dist: Chebyshev(q, e.p)}, k)
		}
	}
	if r == 0 {
		visit(center[0], center[1])
		return
	}
	for dx := -r; dx <= r; dx++ {
		visit(center[0]+dx, center[1]-r)
		visit(center[0]+dx, center[1]+r)
	}
	for dy := -r + 1; dy <= r-1; dy++ {
		visit(center[0]-r, center[1]+dy)
		visit(center[0]+r, center[1]+dy)
	}
}

// VisitRect calls fn for every point id whose coordinates fall inside the
// closed rectangle [xlo,xhi]×[ylo,yhi]. The visit order is unspecified:
// callers needing a reproducible result must fold commutatively (counting,
// max) or sort what they collect.
func (g *Grid) VisitRect(xlo, xhi, ylo, yhi float64, fn func(id int, p Point)) {
	if xlo > xhi || ylo > yhi {
		return
	}
	cx0 := cellCoord(xlo, g.cell)
	cx1 := cellCoord(xhi, g.cell)
	cy0 := cellCoord(ylo, g.cell)
	cy1 := cellCoord(yhi, g.cell)
	// When the rectangle spans more cells than there are points, iterating
	// the point map directly is cheaper. The extents are checked individually
	// before multiplying: each can reach 2³², so their product can overflow
	// even int64.
	w := int64(cx1) - int64(cx0) + 1
	ht := int64(cy1) - int64(cy0) + 1
	n := int64(len(g.pts))
	if w > n || ht > n || w*ht > n {
		// Visit order is unspecified either way (cell-scan order is not id
		// order), so callers must fold commutatively; CountRect, the only
		// non-test caller, counts.
		//lint:allow nodeterm VisitRect documents unspecified visit order; its callers are commutative counting folds
		for id, p := range g.pts {
			if p.X >= xlo && p.X <= xhi && p.Y >= ylo && p.Y <= yhi {
				fn(id, p)
			}
		}
		return
	}
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			for _, e := range g.cells[[2]int32{cx, cy}] {
				if e.p.X >= xlo && e.p.X <= xhi && e.p.Y >= ylo && e.p.Y <= yhi {
					fn(e.id, e.p)
				}
			}
		}
	}
}

// CountRect returns the number of points inside the closed rectangle.
func (g *Grid) CountRect(xlo, xhi, ylo, yhi float64) int {
	n := 0
	g.VisitRect(xlo, xhi, ylo, yhi, func(int, Point) { n++ })
	return n
}

// VisitSquare calls fn for every point within L∞ distance d of q (a closed
// square query).
func (g *Grid) VisitSquare(q Point, d float64, fn func(id int, p Point)) {
	g.VisitRect(q.X-d, q.X+d, q.Y-d, q.Y+d, fn)
}

// VisitStripX calls fn for every point whose X coordinate lies in the closed
// interval [xlo, xhi], regardless of Y. The scan is bounded by the occupied
// cell box.
func (g *Grid) VisitStripX(xlo, xhi float64, fn func(id int, p Point)) {
	if !g.boundsValid || xlo > xhi {
		return
	}
	cx0 := clampCell(int64(floorDiv(xlo, g.cell)), g.minCx, g.maxCx)
	cx1 := clampCell(int64(floorDiv(xhi, g.cell)), g.minCx, g.maxCx)
	for cx := cx0; cx <= cx1; cx++ {
		for cy := g.minCy; cy <= g.maxCy; cy++ {
			for _, e := range g.cells[[2]int32{cx, cy}] {
				if e.p.X >= xlo && e.p.X <= xhi {
					fn(e.id, e.p)
				}
			}
		}
	}
}

// VisitStripY is VisitStripX for the Y dimension.
func (g *Grid) VisitStripY(ylo, yhi float64, fn func(id int, p Point)) {
	if !g.boundsValid || ylo > yhi {
		return
	}
	cy0 := clampCell(int64(floorDiv(ylo, g.cell)), g.minCy, g.maxCy)
	cy1 := clampCell(int64(floorDiv(yhi, g.cell)), g.minCy, g.maxCy)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := g.minCx; cx <= g.maxCx; cx++ {
			for _, e := range g.cells[[2]int32{cx, cy}] {
				if e.p.Y >= ylo && e.p.Y <= yhi {
					fn(e.id, e.p)
				}
			}
		}
	}
}

func floorDiv(v, cell float64) float64 { return math.Floor(v / cell) }

func clampCell(v int64, lo, hi int32) int32 {
	if v < int64(lo) {
		return lo
	}
	if v > int64(hi) {
		return hi
	}
	return int32(v)
}
