package discovery

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"tycos/internal/core"
	"tycos/internal/obs"
	"tycos/internal/series"
)

// testSearchOpts is the shared confirmation-search configuration of the
// suite: small enough to keep N searches fast, LMN so both the incremental
// estimator cache and the noise pruning paths are exercised.
func testSearchOpts() core.Options {
	return core.Options{
		SMin: 8, SMax: 24, TDMax: 6,
		Sigma:   0.25,
		Variant: core.VariantLMN,
		Seed:    7,
	}
}

// testFleet builds an anchor plus nCands candidates of length n. Candidates
// listed in planted carry a delayed, lightly noised copy of the anchor over
// a mid-series segment (the ground-truth hits); all others are independent
// AR(1) noise the screen should prune and the search should score at zero
// windows.
func testFleet(n, nCands int, planted map[int]int, seed int64) (series.Series, []series.Series) {
	rng := rand.New(rand.NewSource(seed))
	ar := func() []float64 {
		v := make([]float64, n)
		var a float64
		for i := range v {
			a = 0.9*a + rng.NormFloat64()
			v[i] = a
		}
		return v
	}
	anchor := series.New("anchor", ar())
	cands := make([]series.Series, nCands)
	segLen := n / 4
	start := n / 4
	for i := range cands {
		v := ar()
		if delay, ok := planted[i]; ok {
			for j := start; j < start+segLen && j+delay < n; j++ {
				v[j+delay] = anchor.Values[j] + 0.05*rng.NormFloat64()
			}
		}
		cands[i] = series.New(fmt.Sprintf("cand%02d", i), v)
	}
	return anchor, cands
}

// independentRanking reproduces the documented Discover contract by hand: N
// independent SearchContext calls with CandidateSeed-derived seeds, scored by
// best accepted window, sorted score-descending with the index tie-break and
// cut to topK.
func independentRanking(t *testing.T, anchor series.Series, cands []series.Series, sOpts core.Options, topK int) []Candidate {
	t.Helper()
	var scored []Candidate
	for i, cand := range cands {
		n := anchor.Len()
		if cand.Len() < n {
			n = cand.Len()
		}
		ax, err := anchor.Slice(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		cx, err := cand.Slice(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		o := sOpts
		o.Seed = CandidateSeed(sOpts.Seed, i)
		o.RestartWorkers = 1
		res, err := core.SearchContext(context.Background(), series.MustPair(ax, cx), o)
		if err != nil {
			t.Fatalf("candidate %d: %v", i, err)
		}
		res.Stats = res.Stats.Deterministic()
		if len(res.Windows) == 0 {
			continue
		}
		best := res.Windows[0].MI
		for _, w := range res.Windows[1:] {
			if w.MI > best {
				best = w.MI
			}
		}
		scored = append(scored, Candidate{Name: cand.Name, Index: i, Score: best, Result: res})
	}
	// Insertion sort keeps the tie-break explicit: score descending, then
	// fleet index ascending.
	for i := 1; i < len(scored); i++ {
		for j := i; j > 0; j-- {
			a, b := scored[j-1], scored[j]
			if b.Score > a.Score || (b.Score == a.Score && b.Index < a.Index) {
				scored[j-1], scored[j] = b, a
			} else {
				break
			}
		}
	}
	if len(scored) > topK {
		scored = scored[:topK]
	}
	return scored
}

// TestDiscoverDifferentialUnscreened is the differential property: with
// screening disabled, Discover must rank exactly as N independent searches
// sorted by score. Because the engine routes every search through one shared
// estimator cache and the reference path uses none, equality here also
// proves the cache's result-invisibility end to end.
func TestDiscoverDifferentialUnscreened(t *testing.T) {
	anchor, cands := testFleet(200, 9, map[int]int{1: 0, 4: 3, 7: 5}, 21)
	sOpts := testSearchOpts()
	got, err := Discover(context.Background(), anchor, cands, Options{
		Search: sOpts, TopK: 5, Screen: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := independentRanking(t, anchor, cands, sOpts, 5)
	if !reflect.DeepEqual(got.Ranked, want) {
		t.Errorf("Discover ranking diverges from independent searches:\n got %+v\nwant %+v", got.Ranked, want)
	}
	if got.Stats.Searched != len(cands) || got.Stats.Screened != 0 || got.Stats.Pruned != 0 {
		t.Errorf("unscreened stats off: %+v", got.Stats)
	}
	if got.Partial {
		t.Error("uncancelled discovery marked partial")
	}
}

// TestDiscoverScreenRecall is the recall property: screening may prune, but
// never a candidate whose confirmed score clears the adaptive threshold. The
// unscreened run defines the ground truth.
func TestDiscoverScreenRecall(t *testing.T) {
	anchor, cands := testFleet(200, 12, map[int]int{0: 0, 3: 2, 6: 4, 10: 6}, 33)
	// A 32-sample screen window at a 0.9 bar: wide enough that AR(1) noise
	// rarely clears it, while the planted near-exact linear segments always
	// do — so the test exercises real pruning. Sigma is raised to 0.45 so
	// the search itself rejects the spurious sub-0.4 MI windows AR(1) noise
	// throws up: the recall contract is about real correlations clearing the
	// adaptive bar, and it can only be stated where the acceptance threshold
	// separates signal from noise.
	opts := Options{Search: testSearchOpts(), TopK: 6, ScreenWindow: 32, ScreenThreshold: 0.9}
	opts.Search.Sigma = 0.45

	opts.Screen = false
	ref, err := Discover(context.Background(), anchor, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Ranked) == 0 {
		t.Fatal("reference discovery found nothing; the fixture is broken")
	}

	opts.Screen = true
	screened, err := Discover(context.Background(), anchor, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if screened.Stats.Pruned == 0 {
		t.Error("screen pruned nothing; the test exercises no pruning")
	}
	byIndex := map[int]Candidate{}
	for _, c := range screened.Ranked {
		byIndex[c.Index] = c
	}
	for _, c := range ref.Ranked {
		if c.Score < ref.Threshold {
			continue
		}
		got, ok := byIndex[c.Index]
		if !ok {
			t.Errorf("screen dropped %s (score %.4f ≥ threshold %.4f)", c.Name, c.Score, ref.Threshold)
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("screened result for %s differs from reference:\n got %+v\nwant %+v", c.Name, got, c)
		}
	}
}

// recordSink captures events and counters for stream comparison. Phase
// timings are recorded by name only — durations are wall-clock.
type recordSink struct {
	mu      sync.Mutex
	entries []string
}

func (r *recordSink) Event(e obs.Event) {
	r.mu.Lock()
	r.entries = append(r.entries, fmt.Sprintf("event %#v", e))
	r.mu.Unlock()
}

func (r *recordSink) Count(name string, delta int64) {
	r.mu.Lock()
	r.entries = append(r.entries, fmt.Sprintf("count %s %d", name, delta))
	r.mu.Unlock()
}

func (r *recordSink) PhaseEnd(p obs.Phase, _ time.Duration) {
	r.mu.Lock()
	r.entries = append(r.entries, fmt.Sprintf("phase %s", p))
	r.mu.Unlock()
}

// TestDiscoverWorkersByteIdentical is the determinism suite: results, the
// full event stream, the counter stream and the phase sequence must be
// byte-identical for every worker count (run under -race in CI).
func TestDiscoverWorkersByteIdentical(t *testing.T) {
	anchor, cands := testFleet(200, 10, map[int]int{2: 0, 5: 4, 8: 6}, 55)
	run := func(workers int) (Result, []string) {
		sink := &recordSink{}
		res, err := Discover(context.Background(), anchor, cands, Options{
			Search: testSearchOpts(), TopK: 4, Screen: true,
			Workers: workers, Observer: sink,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, sink.entries
	}
	refRes, refStream := run(1)
	for _, workers := range []int{2, 8} {
		res, stream := run(workers)
		if !reflect.DeepEqual(res, refRes) {
			t.Errorf("workers=%d result diverges from workers=1:\n got %+v\nwant %+v", workers, res, refRes)
		}
		if !reflect.DeepEqual(stream, refStream) {
			t.Errorf("workers=%d observation stream diverges from workers=1 (%d vs %d entries)", workers, len(stream), len(refStream))
			for i := 0; i < len(stream) && i < len(refStream); i++ {
				if stream[i] != refStream[i] {
					t.Errorf("first divergence at entry %d:\n got %s\nwant %s", i, stream[i], refStream[i])
					break
				}
			}
		}
	}
}

// memJournal is an in-memory SweepCheckpoint for resume tests.
type memJournal struct {
	mu sync.Mutex
	m  map[string]core.Result
}

func newMemJournal() *memJournal { return &memJournal{m: map[string]core.Result{}} }

func (j *memJournal) key(x, y string) string { return x + "\x00" + y }

func (j *memJournal) Lookup(x, y string) (core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.m[j.key(x, y)]
	return r, ok
}

func (j *memJournal) Record(x, y string, r core.Result) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.m[j.key(x, y)] = r
	return nil
}

// TestDiscoverJournalResume proves the resume contract: a second discovery
// over a journal populated by the first replays every survivor — zero new
// searches — and returns a byte-identical ranking.
func TestDiscoverJournalResume(t *testing.T) {
	anchor, cands := testFleet(200, 8, map[int]int{1: 0, 5: 3}, 77)
	journal := newMemJournal()
	opts := Options{Search: testSearchOpts(), TopK: 4, Screen: true, Journal: journal}

	first, err := Discover(context.Background(), anchor, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Searched == 0 || first.Stats.Replayed != 0 {
		t.Fatalf("first run stats off: %+v", first.Stats)
	}

	sink := &recordSink{}
	opts.Observer = sink
	second, err := Discover(context.Background(), anchor, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Replayed != first.Stats.Searched || second.Stats.Searched != 0 {
		t.Errorf("resume did not replay: first %+v, second %+v", first.Stats, second.Stats)
	}
	// Replayed stats differ only in the Searched/Replayed split.
	a, b := first.Stats, second.Stats
	a.Searched, a.Replayed = 0, 0
	b.Searched, b.Replayed = 0, 0
	if a != b {
		t.Errorf("stats beyond the searched/replayed split diverge: %+v vs %+v", first.Stats, second.Stats)
	}
	if !reflect.DeepEqual(first.Ranked, second.Ranked) || first.Threshold != second.Threshold {
		t.Errorf("resumed ranking diverges:\n got %+v\nwant %+v", second.Ranked, first.Ranked)
	}
	replayed := 0
	for _, e := range sink.entries {
		if containsStr(e, "PairFinished") && containsStr(e, "FromCheckpoint:true") {
			replayed++
		}
	}
	if replayed != second.Stats.Replayed {
		t.Errorf("FromCheckpoint events = %d, want %d", replayed, second.Stats.Replayed)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestDiscoverSeedChangesInvalidateJournal: a journal written under one root
// seed must not answer a discovery under another — the fingerprint covers
// the seed.
func TestDiscoverSeedChangesInvalidateJournal(t *testing.T) {
	anchor, cands := testFleet(160, 4, map[int]int{0: 0}, 91)
	journal := newMemJournal()
	opts := Options{Search: testSearchOpts(), TopK: 3, Journal: journal}
	if _, err := Discover(context.Background(), anchor, cands, opts); err != nil {
		t.Fatal(err)
	}
	opts.Search.Seed = 8 // different root seed
	second, err := Discover(context.Background(), anchor, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Replayed != 0 {
		t.Errorf("journal replayed %d results across a seed change", second.Stats.Replayed)
	}
}

// TestDiscoverCancelledIsPartial: a pre-cancelled context resolves nothing
// and marks the result partial, with the whole fleet unfinished.
func TestDiscoverCancelledIsPartial(t *testing.T) {
	anchor, cands := testFleet(160, 6, nil, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Discover(ctx, anchor, cands, Options{Search: testSearchOpts(), Screen: false})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("cancelled discovery not marked partial")
	}
	if res.Stats.Unfinished != len(cands) {
		t.Errorf("Unfinished = %d, want %d", res.Stats.Unfinished, len(cands))
	}
	if len(res.Ranked) != 0 {
		t.Errorf("cancelled discovery ranked %d candidates", len(res.Ranked))
	}
}

// TestDiscoverValidation covers the malformed-input errors and the per-
// candidate failure path.
func TestDiscoverValidation(t *testing.T) {
	anchor, cands := testFleet(160, 3, nil, 17)
	if _, err := Discover(context.Background(), series.New("empty", nil), cands, Options{Search: testSearchOpts()}); err == nil {
		t.Error("empty anchor must fail")
	}
	if _, err := Discover(context.Background(), anchor, nil, Options{Search: testSearchOpts()}); err == nil {
		t.Error("empty fleet must fail")
	}
	// A candidate too short for the search surfaces in Errors, not as a
	// Discover error.
	short := append([]series.Series{}, cands...)
	short[1] = series.New("stub", []float64{1, 2, 3})
	res, err := Discover(context.Background(), anchor, short, Options{Search: testSearchOpts(), Screen: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 1 || len(res.Errors) != 1 || res.Errors[0].Name != "stub" {
		t.Errorf("short candidate not reported: stats %+v errors %+v", res.Stats, res.Errors)
	}
}

// TestCandidateSeedProperties: seeds are stable, index-sensitive and
// independent of anything but (root, index).
func TestCandidateSeedProperties(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 64; i++ {
		s := CandidateSeed(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between candidates %d and %d", prev, i)
		}
		seen[s] = i
		if s != CandidateSeed(7, i) {
			t.Fatalf("seed for candidate %d unstable", i)
		}
	}
	if CandidateSeed(7, 0) == CandidateSeed(8, 0) {
		t.Error("root seed does not reach the candidate seed")
	}
}

// TestScreenDelays: the grid is symmetric, holds delay 0 exactly once and
// never exceeds TDMax.
func TestScreenDelays(t *testing.T) {
	grid := screenDelays(10, 3)
	want := []int{0, 3, -3, 6, -6, 9, -9}
	if !reflect.DeepEqual(grid, want) {
		t.Errorf("screenDelays(10,3) = %v, want %v", grid, want)
	}
	if got := screenDelays(0, 1); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("screenDelays(0,1) = %v, want [0]", got)
	}
}

// TestDelayAlign: the aligned slices pair x[i] with y[i+tau].
func TestDelayAlign(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{10, 11, 12, 13, 14}
	xs, ys := delayAlign(x, y, 2)
	if len(xs) != 3 || xs[0] != 0 || ys[0] != 12 {
		t.Errorf("tau=2 alignment wrong: %v %v", xs, ys)
	}
	xs, ys = delayAlign(x, y, -2)
	if len(xs) != 3 || xs[0] != 2 || ys[0] != 10 {
		t.Errorf("tau=-2 alignment wrong: %v %v", xs, ys)
	}
	if xs, ys = delayAlign(x, y, 7); xs != nil || ys != nil {
		t.Errorf("out-of-range tau must align to nothing, got %v %v", xs, ys)
	}
}

// TestDiscoverScreenPrunesFlatline: a flatlined candidate is degenerate at
// every window and must be pruned without poisoning the stats — the
// baseline's degenerate-window contract surfacing at the discovery layer.
func TestDiscoverScreenPrunesFlatline(t *testing.T) {
	anchor, cands := testFleet(160, 3, map[int]int{0: 0}, 29)
	flat := make([]float64, 160)
	for i := range flat {
		flat[i] = 0.1
	}
	cands[2] = series.New("flatline", flat)
	res, err := Discover(context.Background(), anchor, cands, Options{Search: testSearchOpts(), Screen: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DegenerateWindows == 0 {
		t.Error("flatline candidate produced no degenerate windows")
	}
	for _, c := range res.Ranked {
		if c.Name == "flatline" {
			t.Error("flatline candidate was ranked")
		}
	}
	if res.Stats.Pruned == 0 {
		t.Error("nothing pruned despite the flatline candidate")
	}
}
