package discovery

import (
	"context"
	"fmt"

	"tycos/internal/baseline"
)

// screenOutcome records one candidate's pre-screen pass.
type screenOutcome struct {
	// maxR is the best |r| any sliding window achieved at any grid delay.
	maxR float64
	// windows / degenerate aggregate baseline.SlideStats over the delay grid.
	windows    int
	degenerate int
}

// screenCandidate runs the cheap sliding-PCC statistic over a coarse delay
// grid and decides whether the candidate earns a confirmation search. The
// screen is a pure function of (anchor, candidate, Options): no search state,
// no randomness, so the prune set is identical for every worker count.
//
// The decision is deliberately one-sided: a candidate is pruned only when its
// best |r| across every tested delay and window position stays below the
// threshold. Degenerate (zero-variance) windows never contribute evidence in
// either direction — see the baseline package's degenerate-window contract.
// Cancellation cuts at the scheduler loop: the screen itself is pure compute.
func (e *engine) screenCandidate(_ context.Context, i int) {
	st := &e.slots[i]
	defer func() {
		if r := recover(); r != nil {
			st.err = fmt.Errorf("discovery: screening %s panicked: %v", st.name, r)
			st.screened = true
			st.pruned = false
		}
	}()
	cand := e.cands[i]
	n := e.anchor.Len()
	if cand.Len() < n {
		n = cand.Len()
	}
	if n < e.opts.ScreenWindow {
		st.err = fmt.Errorf("discovery: candidate %s too short to screen (%d < window %d)", st.name, n, e.opts.ScreenWindow)
		st.screened = true
		return
	}
	out, err := screenPair(e.anchor.Values[:n], cand.Values[:n], e.opts)
	if err != nil {
		st.err = err
		st.screened = true
		return
	}
	st.screen = out
	st.screened = true
	st.pruned = out.maxR < e.opts.ScreenThreshold
}

// screenPair computes the screen statistic for one aligned pair: the maximum
// sliding-window |r| over the delay grid 0, ±stride, …, ±TDMax. Threshold 0
// makes SlidingPCCDetail merge every non-degenerate position into runs that
// carry the maximum |r| seen inside — exactly the statistic the prune
// decision needs, for one pass per delay.
func screenPair(x, y []float64, opts Options) (screenOutcome, error) {
	var out screenOutcome
	for _, tau := range screenDelays(opts.Search.TDMax, opts.ScreenStride) {
		xs, ys := delayAlign(x, y, tau)
		if len(xs) < opts.ScreenWindow {
			continue
		}
		runs, stats, err := baseline.SlidingPCCDetail(xs, ys, opts.ScreenWindow, 0)
		if err != nil {
			return out, err
		}
		out.windows += stats.Windows
		out.degenerate += stats.Degenerate
		for _, w := range runs {
			if w.MI > out.maxR {
				out.maxR = w.MI
			}
		}
	}
	return out, nil
}

// screenDelays builds the symmetric delay grid 0, ±stride, ±2·stride, … up
// to tdMax. Delay 0 is always present, so an undelayed correlation can never
// be grid-stepped over.
func screenDelays(tdMax, stride int) []int {
	delays := []int{0}
	for tau := stride; tau <= tdMax; tau += stride {
		delays = append(delays, tau, -tau)
	}
	return delays
}

// delayAlign slices x and y so that x[i] lines up with y[i+tau] in the
// original indexing: the candidate shifted tau steps later than the anchor
// (negative tau: earlier). The overlap shrinks by |tau|.
func delayAlign(x, y []float64, tau int) ([]float64, []float64) {
	n := len(x)
	if tau >= 0 {
		if tau >= n {
			return nil, nil
		}
		return x[:n-tau], y[tau:]
	}
	if -tau >= n {
		return nil, nil
	}
	return x[-tau:], y[:n+tau]
}
