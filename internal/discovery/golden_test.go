package discovery

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tycos/internal/core"
)

// Golden discovery fixture: the ranked top-K over a deterministic 12-series
// fleet (one anchor, twelve candidates), committed under
// testdata/golden/discovery. Any drift — ranking order, scores, window
// bounds, pipeline counters — fails with a field-by-field diff. After an
// intentional behaviour change, regenerate with
//
//	go test -run TestDiscoverGolden -update
//
// and review the fixture diff like any other code change.

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from current output")

type goldenWindow struct {
	Start int     `json:"start"`
	End   int     `json:"end"`
	Delay int     `json:"delay"`
	MI    float64 `json:"mi"`
}

type goldenCandidate struct {
	Name    string         `json:"name"`
	Index   int            `json:"index"`
	Score   float64        `json:"score"`
	Windows []goldenWindow `json:"windows"`
}

type goldenDiscovery struct {
	Anchor     string            `json:"anchor"`
	Threshold  float64           `json:"threshold"`
	Ranked     []goldenCandidate `json:"ranked"`
	Candidates int               `json:"candidates"`
	Screened   int               `json:"screened"`
	Pruned     int               `json:"pruned"`
	Searched   int               `json:"searched"`
	Degenerate int               `json:"degenerate_windows"`
}

func toGoldenDiscovery(res Result) goldenDiscovery {
	g := goldenDiscovery{
		Anchor:     res.Anchor,
		Threshold:  res.Threshold,
		Candidates: res.Stats.Candidates,
		Screened:   res.Stats.Screened,
		Pruned:     res.Stats.Pruned,
		Searched:   res.Stats.Searched,
		Degenerate: res.Stats.DegenerateWindows,
	}
	for _, c := range res.Ranked {
		gc := goldenCandidate{Name: c.Name, Index: c.Index, Score: c.Score}
		for _, w := range c.Result.Windows {
			gc.Windows = append(gc.Windows, goldenWindow{Start: w.Start, End: w.End, Delay: w.Delay, MI: w.MI})
		}
		g.Ranked = append(g.Ranked, gc)
	}
	return g
}

// diffGoldenDiscovery renders a readable diff; empty means equal. Scores and
// MI compare to 1e-9 so the fixture is robust to last-ulp formatting churn
// while still catching estimator or ranking regressions.
func diffGoldenDiscovery(want, got goldenDiscovery) string {
	var b strings.Builder
	line := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	if want.Anchor != got.Anchor {
		line("anchor: want %q, got %q", want.Anchor, got.Anchor)
	}
	if math.Abs(want.Threshold-got.Threshold) > 1e-9 {
		line("threshold: want %.12f, got %.12f", want.Threshold, got.Threshold)
	}
	cmp := func(name string, w, g int) {
		if w != g {
			line("%s: want %d, got %d", name, w, g)
		}
	}
	cmp("candidates", want.Candidates, got.Candidates)
	cmp("screened", want.Screened, got.Screened)
	cmp("pruned", want.Pruned, got.Pruned)
	cmp("searched", want.Searched, got.Searched)
	cmp("degenerate_windows", want.Degenerate, got.Degenerate)
	if len(want.Ranked) != len(got.Ranked) {
		line("ranked count: want %d, got %d", len(want.Ranked), len(got.Ranked))
	}
	n := len(want.Ranked)
	if len(got.Ranked) < n {
		n = len(got.Ranked)
	}
	for i := 0; i < n; i++ {
		w, g := want.Ranked[i], got.Ranked[i]
		if w.Name != g.Name || w.Index != g.Index {
			line("rank %d: want %s[%d], got %s[%d]", i, w.Name, w.Index, g.Name, g.Index)
		}
		if math.Abs(w.Score-g.Score) > 1e-9 {
			line("rank %d score: want %.12f, got %.12f", i, w.Score, g.Score)
		}
		if len(w.Windows) != len(g.Windows) {
			line("rank %d window count: want %d, got %d", i, len(w.Windows), len(g.Windows))
			continue
		}
		for j := range w.Windows {
			ww, gw := w.Windows[j], g.Windows[j]
			if ww.Start != gw.Start || ww.End != gw.End || ww.Delay != gw.Delay {
				line("rank %d window %d bounds: want [%d,%d]τ%d, got [%d,%d]τ%d", i, j, ww.Start, ww.End, ww.Delay, gw.Start, gw.End, gw.Delay)
			}
			if math.Abs(ww.MI-gw.MI) > 1e-9 {
				line("rank %d window %d MI: want %.12f, got %.12f", i, j, ww.MI, gw.MI)
			}
		}
	}
	return b.String()
}

// goldenDiscoveryRun builds the fixture input — one anchor and twelve
// candidates, three carrying planted delayed correlations, one flatlined,
// everything derived from fixed seeds — and discovers over it.
func goldenDiscoveryRun(t *testing.T) Result {
	t.Helper()
	anchor, cands := testFleet(240, 12, map[int]int{2: 0, 5: 3, 9: 6}, 2024)
	flat := make([]float64, 240)
	for i := range flat {
		flat[i] = 0.5
	}
	cands[11].Values = flat
	sOpts := core.Options{
		SMin: 8, SMax: 24, TDMax: 6,
		Sigma:   0.45,
		Variant: core.VariantLMN,
		Seed:    3,
	}
	res, err := Discover(context.Background(), anchor, cands, Options{
		Search: sOpts, TopK: 5, Screen: true,
		ScreenWindow: 32, ScreenThreshold: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const goldenFixture = "testdata/golden/discovery/fleet12.json"

func TestDiscoverGolden(t *testing.T) {
	got := toGoldenDiscovery(goldenDiscoveryRun(t))
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFixture, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d ranked)", goldenFixture, len(got.Ranked))
		return
	}
	data, err := os.ReadFile(goldenFixture)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	var want goldenDiscovery
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt fixture %s: %v", goldenFixture, err)
	}
	if diff := diffGoldenDiscovery(want, got); diff != "" {
		t.Errorf("discovery output drifted from %s:\n%s", goldenFixture, diff)
	}
}
