package discovery

import (
	"testing"

	"tycos/internal/core"
	"tycos/internal/mi"
)

// TestFingerprintUnchangedByDedupe pins the discovery journal fingerprints
// to the exact hex values the pre-dedupe hand-rolled serialization emitted
// (captured before fingerprint was rewired through checkpoint.HashOptions).
// Discovery journals and the committed resume goldens key on these bytes: if
// this test fails, every existing journal entry silently stops replaying.
func TestFingerprintUnchangedByDedupe(t *testing.T) {
	full := core.Options{
		SMin: 6, SMax: 96, TDMax: 30,
		Sigma: 0.25, Epsilon: 0.0625,
		K: 4, Delta: 1, MaxIdle: 5,
		HistoryLength:     7,
		MinImprovement:    0.005,
		Normalization:     mi.NormNone,
		TopK:              3,
		Variant:           core.VariantLMN,
		Jitter:            0.01,
		MaxEvaluations:    1000,
		SignificanceLevel: 2.5,
		Seed:              42,
	}
	cases := []struct {
		name         string
		anchor, cand string
		n, index     int
		opts         core.Options
		want         string
	}{
		{"full", "anchor", "cand", 512, 7, full, "8cb7b31bf228bb36"},
		{"zero", "a", "b", 0, 0, core.Options{}, "47de2f0efee2e7cb"},
		{"seeded", "x", "y", 100, 3, core.Options{Seed: -9}, "5bb5f1868142f65f"},
	}
	for _, tc := range cases {
		if got := fingerprint(tc.anchor, tc.cand, tc.n, tc.index, tc.opts); got != tc.want {
			t.Errorf("%s: fingerprint = %s, want %s (pre-dedupe bytes)", tc.name, got, tc.want)
		}
	}
}
