// Package discovery implements anchor→fleet top-K correlation discovery: one
// anchor series ranked against N candidate series by their strongest delayed
// correlation, through a screen-then-confirm pipeline.
//
// The paper's search answers one pair at a time; the production shape is
// "which of my thousand metrics moved with this one, and at what lag?". The
// engine answers it in two phases:
//
//  1. Screen. Every candidate is scored with the cheap sliding-PCC baseline
//     over a coarse delay grid (internal/baseline, degenerate windows
//     skipped per its contract). Candidates whose best |r| stays below the
//     screen threshold are pruned before any KSG/LAHC budget is spent —
//     the AMIC-style cheap-statistic-then-MI-confirm structure.
//  2. Confirm. Survivors run a full budgeted core.SearchContext against the
//     anchor, sharing one per-anchor estimator cache (the pooled Reload
//     contract of PR 5) so consecutive searches reuse warm estimator
//     allocations. Candidate scores — each one's best accepted window MI —
//     feed the adaptive top-K threshold of Section 6.3.2, and the ranked
//     list is cut there.
//
// Both phases run over a deterministic sharded worker plan (the PR-3
// segment-plan idiom): candidates are cut into fixed shards, per-candidate
// seeds derive from the shard coordinates, workers pull shards and write
// into per-candidate slots, and the merge walks candidates in fleet order.
// The ranked output is therefore byte-identical for every worker count.
//
// With a Journal, each confirmed candidate's result is recorded under a
// fingerprint key as soon as it completes, so a killed discovery resumes by
// replaying finished candidates instead of recomputing them.
package discovery

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tycos/internal/checkpoint"
	"tycos/internal/core"
	"tycos/internal/mi"
	"tycos/internal/obs"
	"tycos/internal/series"
)

// Options configures one Discover call.
type Options struct {
	// Search configures each survivor's confirmation search. Search.Seed is
	// the root seed: every candidate's search derives its own seed from it
	// and the candidate's fleet position (see CandidateSeed), so results are
	// independent of scheduling. Search.Observer and Search.EstimatorCache
	// are managed by the engine and ignored if set; Search.RestartWorkers
	// defaults to 1 here (the engine's parallelism is across candidates —
	// results are identical for every value either way).
	Search core.Options
	// TopK is the number of ranked candidates returned (0 → 10). Distinct
	// from Search.TopK, which selects windows within one candidate's search.
	TopK int
	// Screen enables the sliding-PCC pre-screen; when false every candidate
	// is confirmed.
	Screen bool
	// ScreenThreshold is the |r| bar a candidate's best screened window must
	// meet to survive (0 → 0.2).
	ScreenThreshold float64
	// ScreenWindow is the pre-screen's sliding window size in samples
	// (0 → max(Search.SMin, 8)).
	ScreenWindow int
	// ScreenStride is the delay-grid stride of the pre-screen: delays
	// 0, ±stride, ±2·stride, … up to Search.TDMax are tested
	// (0 → max(1, Search.TDMax/4)).
	ScreenStride int
	// Workers bounds the candidate-level concurrency (≤0 → GOMAXPROCS).
	// Results are byte-identical for every value.
	Workers int
	// Journal, when non-nil, records each confirmed candidate's result under
	// a fingerprint key (anchor, candidate + "\x1f" + fingerprint) and
	// replays matching entries instead of recomputing, making a killed
	// discovery resumable. Record failures degrade durability, not results
	// (counted in Stats.JournalErrors).
	Journal core.SweepCheckpoint
	// Observer, when non-nil, receives every candidate search's events,
	// counters and phase timings plus the discovery-level counters, replayed
	// in fleet order after the fan-out so the stream is byte-identical for
	// every worker count. Must be safe for concurrent use (the progress
	// callback aside, the engine itself serialises emission).
	Observer obs.Sink
	// OnProgress, when non-nil, is called once per resolved candidate, in
	// completion order (schedule-dependent, unlike everything else). For
	// live CLI progress; must be fast and safe for concurrent use.
	OnProgress func(Progress)
}

// withDefaults resolves zero options.
func (o Options) withDefaults() Options {
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.ScreenThreshold <= 0 {
		o.ScreenThreshold = 0.2
	}
	if o.ScreenWindow <= 0 {
		o.ScreenWindow = o.Search.SMin
		if o.ScreenWindow < 8 {
			o.ScreenWindow = 8
		}
	}
	if o.ScreenStride <= 0 {
		o.ScreenStride = o.Search.TDMax / 4
		if o.ScreenStride < 1 {
			o.ScreenStride = 1
		}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Search.RestartWorkers <= 0 {
		o.Search.RestartWorkers = 1
	}
	return o
}

// Progress is one OnProgress notification.
type Progress struct {
	// Phase is "screen" or "confirm".
	Phase string
	// Done counts candidates resolved in this phase so far; Total is the
	// phase's candidate count (the full fleet for screen, survivors for
	// confirm).
	Done, Total int
	// Candidate names the series just resolved; Pruned marks a screen
	// decision against it.
	Candidate string
	Pruned    bool
}

// Candidate is one ranked discovery hit.
type Candidate struct {
	// Name and Index identify the candidate series and its fleet position.
	Name  string `json:"name"`
	Index int    `json:"index"`
	// Score is the candidate's best accepted window MI — the ranking key
	// (ties break toward the lower Index).
	Score float64 `json:"score"`
	// Result is the candidate's full search result (windows, deterministic
	// stats), core.Result-compatible.
	Result core.Result `json:"result"`
}

// CandidateError records one candidate that could not be confirmed.
type CandidateError struct {
	Name  string `json:"name"`
	Index int    `json:"index"`
	Err   string `json:"err"`
}

// Stats counts the pipeline's work. All fields are deterministic for a given
// (input, Options) except the Searched/Replayed split, which reflects
// journal state: a resumed discovery replays what its predecessor confirmed.
type Stats struct {
	// Candidates is the fleet size; Screened counts candidates the
	// pre-screen evaluated, Pruned those it dropped.
	Candidates int `json:"candidates"`
	Screened   int `json:"screened"`
	Pruned     int `json:"pruned"`
	// Searched counts confirmation searches computed; Replayed counts
	// survivors answered from the journal.
	Searched int `json:"searched"`
	Replayed int `json:"replayed"`
	// Failed counts candidates that errored (screen or search); Unfinished
	// counts candidates never reached before cancellation.
	Failed     int `json:"failed"`
	Unfinished int `json:"unfinished"`
	// ScreenWindows and DegenerateWindows aggregate the pre-screen's
	// SlideStats over every candidate and delay.
	ScreenWindows     int `json:"screen_windows"`
	DegenerateWindows int `json:"degenerate_windows"`
	// Evaluated sums WindowsEvaluated over every confirmation search
	// (replayed ones included — their journaled stats count).
	Evaluated int `json:"evaluated"`
	// JournalErrors counts failed journal records (durability lost, results
	// unaffected).
	JournalErrors int `json:"journal_errors"`
}

// Result is one Discover outcome.
type Result struct {
	// Anchor names the anchor series.
	Anchor string `json:"anchor"`
	// Ranked holds the top-K candidates, best first (Score descending,
	// Index ascending on ties). Candidates with no accepted window are
	// never ranked.
	Ranked []Candidate `json:"ranked"`
	// Threshold is the adaptive top-K acceptance bar (Section 6.3.2) after
	// every confirmed score was offered: the K-th best score once K
	// candidates scored, Search.Sigma until then.
	Threshold float64 `json:"threshold"`
	// Partial marks a discovery cut short by cancellation: Ranked covers
	// only the candidates resolved before the stop.
	Partial bool `json:"partial"`
	// Errors lists failed candidates in fleet order.
	Errors []CandidateError `json:"errors,omitempty"`
	Stats  Stats            `json:"stats"`
}

// shardSpan is the fixed candidate-shard width of the worker plan. Like the
// PR-3 segment span it is a pure function of nothing at all — the plan
// depends only on the fleet size, never the worker count.
const shardSpan = 4

// shard is one contiguous candidate index range [from, to).
type shard struct{ from, to int }

// planShards cuts the fleet into fixed-width shards.
func planShards(n int) []shard {
	var shards []shard
	for from := 0; from < n; from += shardSpan {
		to := from + shardSpan
		if to > n {
			to = n
		}
		shards = append(shards, shard{from: from, to: to})
	}
	return shards
}

// splitmix64 is the SplitMix64 finalizer, the same per-coordinate seed mixer
// the core's restart plan uses.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CandidateSeed derives the search seed for the candidate at the given fleet
// index from the root seed (Options.Search.Seed), via the candidate's
// (shard, local) coordinates in the fixed shard plan. The derivation depends
// only on the root seed and the index — not on screening decisions, the
// worker count or the schedule — so a candidate's confirmation search is
// identical whether screening ran, was disabled, or pruned its neighbours.
// Exported so differential tests can reproduce a candidate's search exactly.
func CandidateSeed(root int64, index int) int64 {
	h := splitmix64(uint64(root))
	h = splitmix64(h ^ uint64(index/shardSpan))
	h = splitmix64(h ^ uint64(index%shardSpan))
	return int64(h)
}

// fingerprint hashes everything that determines one candidate's confirmation
// result — the pair identity, the aligned length, the candidate's fleet
// position (it seeds the search) and every result-affecting search option —
// so a journaled result is only replayed for a discovery that would
// recompute it identically.
func fingerprint(anchor, cand string, n, index int, o core.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "discover\x00%s\x00%s\x00%d\x00%d\x00", anchor, cand, n, index)
	checkpoint.HashOptions(h, o)
	return fmt.Sprintf("%016x", h.Sum64())
}

// candState is one candidate's slot: workers write it, the merge reads it in
// fleet order. Exactly one worker ever touches a slot.
type candState struct {
	name        string
	err         error
	screened    bool
	pruned      bool
	screen      screenOutcome
	searched    bool
	replayed    bool
	done        bool
	journalErrs int
	res         core.Result
	buf         *eventBuffer
}

// engine carries one Discover call's shared state.
type engine struct {
	anchor series.Series
	cands  []series.Series
	opts   Options
	cache  *core.EstimatorCache
	slots  []candState

	progressMu   sync.Mutex
	progressDone int

	// lostWorkers counts scheduler workers killed by an escaped panic (see
	// runShards); nonzero forces Partial even when every slot resolved.
	lostWorkers int32
}

// Discover ranks the candidates against the anchor. See the package comment
// for the pipeline; the returned error covers only malformed inputs — per-
// candidate failures land in Result.Errors and cancellation in
// Result.Partial.
func Discover(ctx context.Context, anchor series.Series, candidates []series.Series, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if anchor.Len() == 0 {
		return Result{}, fmt.Errorf("discovery: anchor %q is empty", anchor.Name)
	}
	if len(candidates) == 0 {
		return Result{}, fmt.Errorf("discovery: no candidates")
	}
	e := &engine{
		anchor: anchor,
		cands:  candidates,
		opts:   opts,
		cache:  core.NewEstimatorCache(0),
		slots:  make([]candState, len(candidates)),
	}
	for i := range e.slots {
		e.slots[i].name = candidates[i].Name
		if opts.Observer != nil {
			e.slots[i].buf = &eventBuffer{}
		}
	}
	shards := planShards(len(candidates))

	if opts.Screen {
		e.runShards(ctx, shards, e.screenCandidate, "screen")
	}
	e.resetProgress()
	e.runShards(ctx, shards, e.searchCandidate, "confirm")

	return e.merge(ctx), nil
}

// runShards fans the shard plan over the worker pool: workers atomically
// pull the next shard and process its candidates in index order, writing
// only their own slots. No ordering information leaks from the schedule.
func (e *engine) runShards(ctx context.Context, shards []shard, work func(ctx context.Context, i int), phase string) {
	workers := e.opts.Workers
	if workers > len(shards) {
		workers = len(shards)
	}
	var next int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Last-resort fault isolation: candidate-level panics are
			// recovered inside the work funcs, so anything reaching here
			// escaped them (a user OnProgress callback, say). It loses this
			// worker, never the process — the worker's untouched slots
			// surface as Unfinished and merge reports Partial.
			defer func() {
				if r := recover(); r != nil {
					atomic.AddInt32(&e.lostWorkers, 1)
				}
			}()
			for {
				si := int(atomic.AddInt32(&next, 1)) - 1
				if si >= len(shards) {
					return
				}
				sh := shards[si]
				for i := sh.from; i < sh.to; i++ {
					// The stop check every scheduler iteration is the
					// cancellation contract: a cancelled discovery stops at
					// the next candidate boundary (and the context also rides
					// into the search itself, stopping mid-candidate).
					if ctx.Err() != nil {
						continue
					}
					work(ctx, i)
					e.progress(phase, i)
				}
			}
		}()
	}
	wg.Wait()
}

// searchCandidate confirms one candidate: journal replay when possible,
// otherwise a full search with the candidate's derived seed and the shared
// per-anchor estimator cache. Panics are isolated to the candidate.
func (e *engine) searchCandidate(ctx context.Context, i int) {
	st := &e.slots[i]
	if st.err != nil || st.pruned {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			st.err = fmt.Errorf("discovery: candidate %s panicked: %v", st.name, r)
			st.done = false
			st.searched = false
		}
	}()
	cand := e.cands[i]
	n := e.anchor.Len()
	if cand.Len() < n {
		n = cand.Len()
	}
	sOpts := e.opts.Search
	sOpts.Seed = CandidateSeed(e.opts.Search.Seed, i)
	// Assign the buffer only when one exists: a typed-nil *eventBuffer in the
	// interface would read as an active observer.
	sOpts.Observer = nil
	if st.buf != nil {
		sOpts.Observer = st.buf
	}
	sOpts.EstimatorCache = e.cache

	if e.opts.Journal != nil {
		jx, jy := e.journalKeys(i, n)
		if res, ok := e.opts.Journal.Lookup(jx, jy); ok {
			st.res = res
			st.replayed = true
			st.done = true
			return
		}
	}

	ax, err := e.anchor.Slice(0, n-1)
	if err != nil {
		st.err = err
		return
	}
	cx, err := cand.Slice(0, n-1)
	if err != nil {
		st.err = err
		return
	}
	pair, err := series.NewPair(ax, cx)
	if err != nil {
		st.err = err
		return
	}
	res, err := core.SearchContext(ctx, pair, sOpts)
	if err != nil {
		st.err = err
		return
	}
	// Timings are the one nondeterministic part of a result; strip them so
	// journal replay and worker-count comparisons are byte-identical.
	res.Stats = res.Stats.Deterministic()
	st.res = res
	st.searched = true
	st.done = true
	if e.opts.Journal != nil && !res.Partial {
		jx, jy := e.journalKeys(i, n)
		if err := e.opts.Journal.Record(jx, jy, res); err != nil {
			// Durability lost, result intact: count it and keep going.
			st.journalErrs++
		}
	}
}

// journalKeys builds the candidate's journal key pair.
func (e *engine) journalKeys(i, n int) (string, string) {
	return e.anchor.Name, e.slots[i].name + "\x1f" + fingerprint(e.anchor.Name, e.slots[i].name, n, i, e.opts.Search)
}

// resetProgress restarts the OnProgress counter between phases.
func (e *engine) resetProgress() {
	e.progressMu.Lock()
	e.progressDone = 0
	e.progressMu.Unlock()
}

// progress delivers one OnProgress notification (completion order).
func (e *engine) progress(phase string, i int) {
	if e.opts.OnProgress == nil {
		return
	}
	e.progressMu.Lock()
	e.progressDone++
	done := e.progressDone
	e.progressMu.Unlock()
	total := len(e.cands)
	if phase == "confirm" && e.opts.Screen {
		total = 0
		for j := range e.slots {
			if !e.slots[j].pruned && e.slots[j].err == nil {
				total++
			}
		}
	}
	e.opts.OnProgress(Progress{
		Phase: phase, Done: done, Total: total,
		Candidate: e.slots[i].name, Pruned: e.slots[i].pruned,
	})
}

// merge walks the slots in fleet order: replays buffered events, folds
// stats, offers scores to the adaptive threshold and cuts the ranked list.
func (e *engine) merge(ctx context.Context) Result {
	out := Result{Anchor: e.anchor.Name}
	out.Stats.Candidates = len(e.slots)
	topk := mi.NewTopK(e.opts.TopK, e.opts.Search.Sigma)
	var scored []Candidate
	for i := range e.slots {
		st := &e.slots[i]
		if st.buf != nil {
			e.emitCandidate(i, st)
		}
		out.Stats.ScreenWindows += st.screen.windows
		out.Stats.DegenerateWindows += st.screen.degenerate
		out.Stats.JournalErrors += st.journalErrs
		switch {
		case st.err != nil:
			out.Stats.Failed++
			if st.screened {
				out.Stats.Screened++
			}
			out.Errors = append(out.Errors, CandidateError{Name: st.name, Index: i, Err: st.err.Error()})
			continue
		case st.pruned:
			out.Stats.Screened++
			out.Stats.Pruned++
			continue
		case !st.done:
			out.Stats.Unfinished++
			if st.screened {
				out.Stats.Screened++
			}
			continue
		}
		if st.screened {
			out.Stats.Screened++
		}
		if st.replayed {
			out.Stats.Replayed++
		} else {
			out.Stats.Searched++
		}
		out.Stats.Evaluated += st.res.Stats.WindowsEvaluated
		if st.res.Partial {
			out.Partial = true
		}
		if len(st.res.Windows) == 0 {
			continue
		}
		best := st.res.Windows[0].MI
		for _, w := range st.res.Windows[1:] {
			if w.MI > best {
				best = w.MI
			}
		}
		topk.Offer(best)
		scored = append(scored, Candidate{Name: st.name, Index: i, Score: best, Result: st.res})
	}
	if ctx.Err() != nil || out.Stats.Unfinished > 0 || atomic.LoadInt32(&e.lostWorkers) > 0 {
		out.Partial = true
	}
	sort.SliceStable(scored, func(a, b int) bool {
		//lint:allow floateq ranking needs a total order; exact score equality is precisely when the index tie-break applies
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Index < scored[b].Index
	})
	if len(scored) > e.opts.TopK {
		scored = scored[:e.opts.TopK]
	}
	out.Ranked = scored
	out.Threshold = topk.Threshold()
	e.emitTotals(out.Stats)
	return out
}

// emitCandidate replays one candidate's buffered observations, bracketed by
// the sweep-style pair lifecycle events. Durations are deliberately zero:
// the event stream is part of the byte-identical contract.
func (e *engine) emitCandidate(i int, st *candState) {
	sink := e.opts.Observer
	pairName := e.anchor.Name + "/" + st.name
	sink.Event(obs.PairStarted{Pair: pairName, Attempt: 1, Index: i, Total: len(e.slots)})
	st.buf.replay(sink)
	fin := obs.PairFinished{
		Pair: pairName, Attempt: 1, Index: i, Total: len(e.slots),
		Windows: len(st.res.Windows), Partial: st.res.Partial,
		FromCheckpoint: st.replayed,
	}
	if st.err != nil {
		fin.Err = st.err.Error()
	}
	sink.Event(fin)
}

// emitTotals publishes the discovery-level counters once, after the merge.
func (e *engine) emitTotals(s Stats) {
	sink := e.opts.Observer
	if sink == nil {
		return
	}
	// "fleet_size", not "candidates": the obs.Registry sink derives metric
	// names from counter names, and tycos_discovery_candidates_total is the
	// daemon's pre-registered per-outcome family.
	sink.Count("discovery.fleet_size", int64(s.Candidates))
	sink.Count("discovery.screened", int64(s.Screened))
	sink.Count("discovery.pruned", int64(s.Pruned))
	sink.Count("discovery.searched", int64(s.Searched))
	sink.Count("discovery.replayed", int64(s.Replayed))
	sink.Count("discovery.failed", int64(s.Failed))
	sink.Count("discovery.degenerate_windows", int64(s.DegenerateWindows))
}

// eventBuffer is a single-goroutine obs.Sink capturing one candidate's
// observations for ordered replay.
type eventBuffer struct {
	entries []bufEntry
}

type bufEntry struct {
	event   obs.Event
	count   string
	delta   int64
	phase   obs.Phase
	phaseD  int64
	isCount bool
	isPhase bool
}

func (b *eventBuffer) Event(ev obs.Event) { b.entries = append(b.entries, bufEntry{event: ev}) }
func (b *eventBuffer) Count(name string, delta int64) {
	b.entries = append(b.entries, bufEntry{count: name, delta: delta, isCount: true})
}
func (b *eventBuffer) PhaseEnd(p obs.Phase, d time.Duration) {
	b.entries = append(b.entries, bufEntry{phase: p, phaseD: int64(d), isPhase: true})
}

// replay forwards the buffered observations in arrival order.
func (b *eventBuffer) replay(sink obs.Sink) {
	for _, en := range b.entries {
		switch {
		case en.isCount:
			sink.Count(en.count, en.delta)
		case en.isPhase:
			sink.PhaseEnd(en.phase, time.Duration(en.phaseD))
		default:
			sink.Event(en.event)
		}
	}
}
