package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := Window{Start: 3, End: 7, Delay: 2}
	if w.Size() != 5 {
		t.Errorf("size = %d", w.Size())
	}
	if !w.Valid() {
		t.Error("valid window reported invalid")
	}
	if (Window{Start: 5, End: 4}).Valid() {
		t.Error("reversed window reported valid")
	}
	if w.String() != "([3,7], τ=2)" {
		t.Errorf("String = %q", w.String())
	}
}

func TestContainsAndOverlap(t *testing.T) {
	outer := Window{0, 10, 1}
	inner := Window{2, 5, 1}
	if !outer.Contains(inner) || outer.Contains(Window{2, 5, 0}) {
		t.Error("Contains must respect delay")
	}
	if inner.Contains(outer) {
		t.Error("inner cannot contain outer")
	}
	if got := outer.OverlapX(Window{8, 15, -3}); got != 3 {
		t.Errorf("overlap = %d, want 3", got)
	}
	if got := outer.OverlapX(Window{11, 15, 0}); got != 0 {
		t.Errorf("disjoint overlap = %d", got)
	}
}

func TestConsecutiveConcat(t *testing.T) {
	a := Window{0, 4, 2}
	b := Window{5, 9, 2}
	if !a.Consecutive(b) {
		t.Fatal("a,b should be consecutive")
	}
	if a.Consecutive(Window{5, 9, 1}) {
		t.Error("different delay cannot be consecutive")
	}
	if a.Consecutive(Window{6, 9, 2}) {
		t.Error("gap cannot be consecutive")
	}
	c, err := a.Concat(b)
	if err != nil || c != (Window{0, 9, 2}) {
		t.Errorf("concat = %v, %v", c, err)
	}
	if _, err := b.Concat(a); err == nil {
		t.Error("reverse concat must fail")
	}
}

func TestConstraintsValidate(t *testing.T) {
	good := Constraints{N: 100, SMin: 3, SMax: 40, TDMax: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Constraints{
		{N: 0, SMin: 3, SMax: 4, TDMax: 1},
		{N: 10, SMin: 1, SMax: 4, TDMax: 1},
		{N: 10, SMin: 5, SMax: 4, TDMax: 1},
		{N: 10, SMin: 20, SMax: 30, TDMax: 1},
		{N: 10, SMin: 3, SMax: 4, TDMax: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, c)
		}
	}
}

func TestFeasible(t *testing.T) {
	c := Constraints{N: 20, SMin: 3, SMax: 6, TDMax: 4}
	cases := []struct {
		w    Window
		want bool
	}{
		{Window{0, 2, 0}, true},
		{Window{0, 1, 0}, false},   // too small
		{Window{0, 6, 0}, false},   // too big
		{Window{0, 2, 5}, false},   // delay beyond bound
		{Window{0, 2, -1}, false},  // delayed Y before start
		{Window{15, 19, 0}, true},  // at series tail
		{Window{15, 19, 1}, false}, // delayed Y past end
		{Window{17, 19, -4}, true},
		{Window{18, 22, 0}, false}, // X past end
	}
	for _, cse := range cases {
		if got := c.Feasible(cse.w); got != cse.want {
			t.Errorf("Feasible(%v) = %v, want %v", cse.w, got, cse.want)
		}
	}
}

func TestSearchSpaceSizeMatchesEnumeration(t *testing.T) {
	c := Constraints{N: 40, SMin: 3, SMax: 8, TDMax: 5}
	var brute int64
	for s := 0; s < c.N; s++ {
		for e := s; e < c.N; e++ {
			for tau := -c.TDMax; tau <= c.TDMax; tau++ {
				if c.Feasible(Window{s, e, tau}) {
					brute++
				}
			}
		}
	}
	if got := c.SearchSpaceSize(); got != brute {
		t.Errorf("SearchSpaceSize = %d, brute enumeration = %d", got, brute)
	}
}

func TestApproxSearchSpaceMatchesPaperExample(t *testing.T) {
	// Section 5.2: n=9000, s_max=400, s_min=20, td_max=20 → 136,870,440.
	c := Constraints{N: 9000, SMin: 20, SMax: 400, TDMax: 20}
	if got := c.ApproxSearchSpaceSize(); got != 136870440 {
		t.Errorf("Eq.(4) count = %d, want 136870440", got)
	}
}

func TestSetInsertNonOverlap(t *testing.T) {
	var s Set
	if !s.Insert(Scored{Window{0, 5, 0}, 0.5}) {
		t.Fatal("first insert must succeed")
	}
	// Overlapping, weaker window is rejected.
	if s.Insert(Scored{Window{3, 8, 0}, 0.4}) {
		t.Error("weaker overlapping window must be rejected")
	}
	// Overlapping, stronger window replaces.
	if !s.Insert(Scored{Window{4, 9, 1}, 0.9}) {
		t.Error("stronger overlapping window must replace")
	}
	items := s.Items()
	if len(items) != 1 || items[0].MI != 0.9 {
		t.Fatalf("set items = %+v", items)
	}
	// Disjoint window coexists.
	s.Insert(Scored{Window{20, 25, 0}, 0.3})
	if s.Len() != 2 || s.Covered() != 12 {
		t.Errorf("len=%d covered=%d", s.Len(), s.Covered())
	}
}

func TestSetInvariantProperty(t *testing.T) {
	// After arbitrary insertions, no two set members overlap on X.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		for i := 0; i < 60; i++ {
			start := rng.Intn(200)
			size := 1 + rng.Intn(30)
			s.Insert(Scored{Window{start, start + size, rng.Intn(9) - 4}, rng.Float64()})
		}
		items := s.Items()
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				if items[i].OverlapX(items[j].Window) > 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	a := []Scored{{Window{0, 9, 0}, 1}}
	if got := Similarity(a, a); got != 100 {
		t.Errorf("self similarity = %v", got)
	}
	b := []Scored{{Window{5, 14, 0}, 1}}
	got := Similarity(a, b) // intersection 5, union 15
	if got < 33.2 || got > 33.4 {
		t.Errorf("similarity = %v, want ≈33.3", got)
	}
	if Similarity(nil, nil) != 100 {
		t.Error("two empty sets are identical")
	}
	if Similarity(a, nil) != 0 {
		t.Error("empty vs non-empty should be 0")
	}
}

func TestMergeOverlapping(t *testing.T) {
	in := []Scored{
		{Window{10, 20, 0}, 0.3},
		{Window{0, 5, 0}, 0.2},
		{Window{15, 30, 1}, 0.8},
		{Window{3, 7, 0}, 0.1}, // overlaps [0,5] → merged
	}
	out := MergeOverlapping(in)
	if len(out) != 2 {
		t.Fatalf("merged to %d windows: %+v", len(out), out)
	}
	if out[0].Start != 0 || out[0].End != 7 {
		t.Errorf("first merged = %v", out[0].Window)
	}
	if out[1].Start != 10 || out[1].End != 30 || out[1].MI != 0.8 {
		t.Errorf("second merged = %+v", out[1])
	}
	if MergeOverlapping(nil) != nil {
		t.Error("empty merge should be nil")
	}
}

func TestMatchRate(t *testing.T) {
	ref := []Scored{{Window{0, 99, 0}, 1}, {Window{200, 299, 0}, 1}}
	// Fragments inside the reference regions still count as matches.
	cand := []Scored{{Window{20, 60, 2}, 1}, {Window{210, 230, 0}, 1}}
	if got := MatchRate(ref, cand); got != 100 {
		t.Errorf("fragment match rate = %v, want 100", got)
	}
	if got := MatchRate(ref, nil); got != 0 {
		t.Errorf("empty candidate rate = %v", got)
	}
	if got := MatchRate(nil, cand); got != 100 {
		t.Errorf("empty reference rate = %v", got)
	}
	// A candidate far away matches nothing.
	if got := MatchRate(ref, []Scored{{Window{500, 520, 0}, 1}}); got != 0 {
		t.Errorf("distant candidate rate = %v", got)
	}
	// Symmetric rate penalises extra junk windows in either set.
	junky := append([]Scored{}, cand...)
	junky = append(junky, Scored{Window{700, 720, 0}, 1})
	sym := SymmetricMatchRate(ref, junky)
	if sym >= 100 || sym <= 50 {
		t.Errorf("symmetric rate = %v, want (50,100)", sym)
	}
}

func TestMergeWithin(t *testing.T) {
	in := []Scored{
		{Window{0, 10, 0}, 0.4},
		{Window{14, 30, 1}, 0.6}, // gap 3 ≤ 5 → merged
		{Window{50, 60, 0}, 0.2}, // gap 19 → separate
	}
	out := MergeWithin(in, 5)
	if len(out) != 2 {
		t.Fatalf("merged to %d: %+v", len(out), out)
	}
	if out[0].Start != 0 || out[0].End != 30 || out[0].MI != 0.6 {
		t.Errorf("first merged = %+v", out[0])
	}
	if MergeWithin(nil, 3) != nil {
		t.Error("empty input must merge to nil")
	}
	// gap 0 behaves like MergeOverlapping plus adjacency.
	adj := MergeWithin([]Scored{{Window{0, 4, 0}, 1}, {Window{5, 9, 0}, 1}}, 0)
	if len(adj) != 1 || adj[0].End != 9 {
		t.Errorf("adjacent merge = %+v", adj)
	}
}
