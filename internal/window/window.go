// Package window implements the time-delay window model of TYCOS
// (Definitions 4.2–4.7 of the paper): windows identified by a start index, an
// end index and an integer delay τ, the feasibility constraints of the
// problem statement, consecutiveness and concatenation (Definitions 6.2–6.3),
// result-set semantics (non-overlapping, subsumption-free), and the
// index-coverage similarity used by the paper's accuracy evaluation
// (Section 8.4 B).
package window

import (
	"fmt"
	"sort"
)

// Window is a time-delay window w = ([Start, End], Delay) over a series pair:
// X is observed on [Start, End] and Y on [Start+Delay, End+Delay]. Both
// bounds are inclusive sample indices.
type Window struct {
	Start int
	End   int
	Delay int
}

// Size returns the number of time steps covered, |w| = End − Start + 1.
func (w Window) Size() int { return w.End - w.Start + 1 }

// String renders the window in the paper's ([ts, te], τ) notation.
func (w Window) String() string {
	return fmt.Sprintf("([%d,%d], τ=%d)", w.Start, w.End, w.Delay)
}

// Valid reports whether the window has ordered bounds and positive size.
func (w Window) Valid() bool { return w.Start >= 0 && w.End >= w.Start }

// Contains reports whether w fully contains o on the X axis with the same
// delay; this is the ⊆ relation of the problem statement's subsumption
// constraint.
func (w Window) Contains(o Window) bool {
	return w.Delay == o.Delay && w.Start <= o.Start && o.End <= w.End
}

// OverlapX returns the number of X-axis indices shared by w and o,
// irrespective of delay.
func (w Window) OverlapX(o Window) int {
	lo := max(w.Start, o.Start)
	hi := min(w.End, o.End)
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// Consecutive reports whether o starts right after w ends with the same
// delay (Definition 6.2). w is the "followed" and o the "following" window.
func (w Window) Consecutive(o Window) bool {
	return o.Start == w.End+1 && w.Delay == o.Delay
}

// Concat joins two consecutive windows into one (Definition 6.3). It returns
// an error if the windows are not consecutive.
func (w Window) Concat(o Window) (Window, error) {
	if !w.Consecutive(o) {
		return Window{}, fmt.Errorf("window: %v and %v are not consecutive", w, o)
	}
	return Window{Start: w.Start, End: o.End, Delay: w.Delay}, nil
}

// Constraints captures the feasibility bounds of the TYCOS problem
// statement: window size within [SMin, SMax], |delay| ≤ TDMax, and both the
// X interval and the delayed Y interval inside a series of length N.
type Constraints struct {
	N     int // series length
	SMin  int // minimum window size
	SMax  int // maximum window size
	TDMax int // maximum absolute time delay
}

// Validate reports an error when the constraints themselves are inconsistent.
func (c Constraints) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("window: series length %d must be positive", c.N)
	case c.SMin < 2:
		return fmt.Errorf("window: s_min %d must be ≥ 2 (MI needs at least two samples)", c.SMin)
	case c.SMax < c.SMin:
		return fmt.Errorf("window: s_max %d < s_min %d", c.SMax, c.SMin)
	case c.SMin > c.N:
		return fmt.Errorf("window: s_min %d exceeds series length %d", c.SMin, c.N)
	case c.TDMax < 0:
		return fmt.Errorf("window: td_max %d must be non-negative", c.TDMax)
	}
	return nil
}

// Feasible reports whether w satisfies the constraints: size bounds, delay
// bound, and both intervals inside [0, N).
func (c Constraints) Feasible(w Window) bool {
	if !w.Valid() {
		return false
	}
	if s := w.Size(); s < c.SMin || s > c.SMax {
		return false
	}
	if w.Delay > c.TDMax || w.Delay < -c.TDMax {
		return false
	}
	if w.End >= c.N {
		return false
	}
	if ys := w.Start + w.Delay; ys < 0 {
		return false
	}
	if ye := w.End + w.Delay; ye >= c.N {
		return false
	}
	return true
}

// SearchSpaceSize returns the exact number of feasible windows, the quantity
// bounded by Lemma 1. It enumerates start indices and sizes and counts the
// delays valid at each position, matching Eq. (4) when boundary effects are
// ignored.
func (c Constraints) SearchSpaceSize() int64 {
	var total int64
	for start := 0; start+c.SMin-1 < c.N; start++ {
		maxEnd := start + c.SMax - 1
		if maxEnd > c.N-1 {
			maxEnd = c.N - 1
		}
		for end := start + c.SMin - 1; end <= maxEnd; end++ {
			// Delay must keep [start+τ, end+τ] within [0, N).
			loTau := -start
			if -c.TDMax > loTau {
				loTau = -c.TDMax
			}
			hiTau := c.N - 1 - end
			if c.TDMax < hiTau {
				hiTau = c.TDMax
			}
			if hiTau >= loTau {
				total += int64(hiTau - loTau + 1)
			}
		}
	}
	return total
}

// ApproxSearchSpaceSize returns the paper's Eq. (4) closed form
// (n − s_min + 1)·(s_max − s_min + 1)·2·td_max, which over-counts boundary
// windows but captures the O(n³) growth.
func (c Constraints) ApproxSearchSpaceSize() int64 {
	return int64(c.N-c.SMin+1) * int64(c.SMax-c.SMin+1) * 2 * int64(c.TDMax)
}

// Scored pairs a window with its (normalized) mutual information.
type Scored struct {
	Window
	MI float64
}

// Set is an ordered collection of accepted windows with the result-set
// semantics of the problem statement: no two members may overlap on the X
// axis and none may contain another.
type Set struct {
	items []Scored
}

// Items returns the accepted windows sorted by start index.
func (s *Set) Items() []Scored {
	out := make([]Scored, len(s.items))
	copy(out, s.items)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of accepted windows.
func (s *Set) Len() int { return len(s.items) }

// Insert adds w to the set, enforcing the non-overlap/subsumption rule:
// if w overlaps an existing member the one with higher MI survives.
// It reports whether w was inserted.
func (s *Set) Insert(w Scored) bool {
	for _, e := range s.items {
		if e.OverlapX(w.Window) > 0 && e.MI >= w.MI {
			return false // an existing overlapping window is at least as good
		}
	}
	keep := s.items[:0]
	for _, e := range s.items {
		if e.OverlapX(w.Window) == 0 {
			keep = append(keep, e)
		}
	}
	s.items = append(keep, w)
	return true
}

// Covered returns the total number of distinct X indices covered by the set.
func (s *Set) Covered() int {
	total := 0
	for _, e := range s.items {
		total += e.Size()
	}
	return total
}

// Similarity measures how alike two window sets are using the paper's
// criterion ("two windows are considered to be similar if they cover a
// similar range of indices"): it is the Jaccard index of the X-axis index
// sets covered by a and b, in percent.
func Similarity(a, b []Scored) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 100
	}
	ca, cb := coverage(a), coverage(b)
	inter, union := 0, 0
	n := len(ca)
	if len(cb) > n {
		n = len(cb)
	}
	for i := 0; i < n; i++ {
		ia := i < len(ca) && ca[i]
		ib := i < len(cb) && cb[i]
		if ia && ib {
			inter++
		}
		if ia || ib {
			union++
		}
	}
	if union == 0 {
		return 100
	}
	return 100 * float64(inter) / float64(union)
}

func coverage(ws []Scored) []bool {
	maxEnd := 0
	for _, w := range ws {
		if w.End > maxEnd {
			maxEnd = w.End
		}
	}
	cov := make([]bool, maxEnd+1)
	for _, w := range ws {
		for i := w.Start; i <= w.End && i >= 0; i++ {
			cov[i] = true
		}
	}
	return cov
}

// MergeOverlapping combines overlapping windows (any delay) into maximal
// covering windows, as the paper does before comparing Brute Force output
// against the heuristic ("the generated windows are aggregated and the
// overlapped windows are combined together"). The MI of a merged window is
// the maximum MI of its parts.
func MergeOverlapping(ws []Scored) []Scored {
	if len(ws) == 0 {
		return nil
	}
	sorted := make([]Scored, len(ws))
	copy(sorted, ws)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Scored{sorted[0]}
	for _, w := range sorted[1:] {
		last := &out[len(out)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			if w.MI > last.MI {
				last.MI = w.MI
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MatchRate returns the percentage of windows in ref that have a counterpart
// in cand covering at least half of the smaller of the two windows on the X
// axis — the paper's window-level similarity ("two windows are considered to
// be similar if they cover a similar range of indices"). Two empty sets
// match perfectly; a non-empty ref against an empty cand matches 0%.
func MatchRate(ref, cand []Scored) float64 {
	if len(ref) == 0 {
		return 100
	}
	matched := 0
	for _, r := range ref {
		for _, c := range cand {
			smaller := r.Size()
			if cs := c.Size(); cs < smaller {
				smaller = cs
			}
			if r.OverlapX(c.Window)*2 >= smaller {
				matched++
				break
			}
		}
	}
	return 100 * float64(matched) / float64(len(ref))
}

// SymmetricMatchRate averages MatchRate in both directions.
func SymmetricMatchRate(a, b []Scored) float64 {
	return (MatchRate(a, b) + MatchRate(b, a)) / 2
}

// MergeWithin merges windows whose X-axis gap is at most gap samples into
// covering windows (MergeOverlapping with tolerance): local searches often
// report a contiguous correlated region as two or three fragments, and
// set-level comparisons should treat those as one region, the way the paper
// aggregates Brute Force output.
func MergeWithin(ws []Scored, gap int) []Scored {
	if len(ws) == 0 {
		return nil
	}
	sorted := make([]Scored, len(ws))
	copy(sorted, ws)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Scored{sorted[0]}
	for _, w := range sorted[1:] {
		last := &out[len(out)-1]
		if w.Start <= last.End+gap+1 {
			if w.End > last.End {
				last.End = w.End
			}
			if w.MI > last.MI {
				last.MI = w.MI
			}
			continue
		}
		out = append(out, w)
	}
	return out
}
