package window

import "testing"

// FuzzConstraintsFeasible throws arbitrary constraint/window combinations at
// the feasibility predicates. The contract under fuzzing: never panic, and
// whenever consistent constraints accept a window, that window actually fits
// inside the series with its delayed interval in range.
// Run locally with:
//
//	go test ./internal/window -fuzz FuzzConstraintsFeasible -fuzztime 30s
func FuzzConstraintsFeasible(f *testing.F) {
	f.Add(100, 10, 60, 5, 0, 9, 0)
	f.Add(100, 10, 60, 5, 50, 109, 3)                   // end past series
	f.Add(100, 2, 2, 0, 0, 1, 0)                        // minimal everything
	f.Add(0, 0, 0, 0, 0, 0, 0)                          // all-zero
	f.Add(-5, -2, -1, -3, -4, -4, -2)                   // negatives everywhere
	f.Add(100, 10, 60, 5, 3, 12, -5)                    // delayed interval underflows
	f.Add(1<<30, 2, 1<<29, 1<<20, 5, 1<<28, -(1 << 19)) // huge values
	f.Fuzz(func(t *testing.T, n, smin, smax, tdmax, start, end, delay int) {
		c := Constraints{N: n, SMin: smin, SMax: smax, TDMax: tdmax}
		w := Window{Start: start, End: end, Delay: delay}
		valid := c.Validate() == nil
		feasible := c.Feasible(w)
		if !valid || !feasible {
			return
		}
		if s := w.Size(); s < c.SMin || s > c.SMax {
			t.Fatalf("feasible window %v has size %d outside [%d, %d]", w, s, c.SMin, c.SMax)
		}
		if w.Start < 0 || w.End >= c.N {
			t.Fatalf("feasible window %v outside series [0, %d)", w, c.N)
		}
		if ys, ye := w.Start+w.Delay, w.End+w.Delay; ys < 0 || ye >= c.N {
			t.Fatalf("feasible window %v has delayed interval [%d, %d] outside [0, %d)", w, ys, ye, c.N)
		}
		if w.Delay > c.TDMax || w.Delay < -c.TDMax {
			t.Fatalf("feasible window %v exceeds |τ| ≤ %d", w, c.TDMax)
		}
		// Exact and approximate search-space counts must not panic and the
		// exact count must be positive when a feasible window exists. The
		// enumeration is O(N·SMax), so bound it to keep iterations fast.
		if c.N <= 2048 {
			if got := c.SearchSpaceSize(); got < 1 {
				t.Fatalf("SearchSpaceSize() = %d with feasible window %v", got, w)
			}
		}
	})
}

// FuzzWindowConcat checks Definition 6.3 concatenation on arbitrary window
// pairs: never panic, succeed exactly on consecutive same-delay windows, and
// produce a window covering both parts.
func FuzzWindowConcat(f *testing.F) {
	f.Add(0, 9, 0, 10, 19, 0)
	f.Add(0, 9, 2, 10, 19, 2)
	f.Add(0, 9, 0, 11, 19, 0) // gap
	f.Add(0, 9, 0, 10, 19, 1) // delay mismatch
	f.Add(5, 3, 0, 4, 8, 0)   // inverted bounds
	f.Add(-10, -1, -3, 0, 5, -3)
	f.Fuzz(func(t *testing.T, s1, e1, d1, s2, e2, d2 int) {
		a := Window{Start: s1, End: e1, Delay: d1}
		b := Window{Start: s2, End: e2, Delay: d2}
		joined, err := a.Concat(b)
		consecutive := a.Consecutive(b)
		if (err == nil) != consecutive {
			t.Fatalf("Concat(%v, %v) error=%v but Consecutive=%v", a, b, err, consecutive)
		}
		if err != nil {
			return
		}
		if joined.Start != a.Start || joined.End != b.End || joined.Delay != a.Delay {
			t.Fatalf("Concat(%v, %v) = %v, want [%d, %d] τ=%d", a, b, joined, a.Start, b.End, a.Delay)
		}
		if a.Valid() && b.Valid() && joined.Size() != a.Size()+b.Size() {
			t.Fatalf("Concat(%v, %v) size %d != %d + %d", a, b, joined.Size(), a.Size(), b.Size())
		}
	})
}
