package daemon

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

// ingestFleet loads an anchor plus candidates: cand0 and cand2 carry the
// anchor's signal (cand2 delayed by 3), cand1 and cand3 are unrelated noise
// and candflat is a flatlined sensor.
func ingestFleet(t *testing.T, base string) {
	t.Helper()
	n := 160
	rng := rand.New(rand.NewSource(9))
	anchor := make([]float64, n)
	for i := range anchor {
		anchor[i] = math.Sin(float64(i)/7) + 0.1*math.Cos(float64(i)/3)
	}
	ingest(t, base, "anchor", anchor)
	follow := func(delay int) []float64 {
		v := make([]float64, n)
		for i := range v {
			j := i - delay
			if j < 0 {
				j = 0
			}
			v[i] = anchor[j]
		}
		return v
	}
	ingest(t, base, "cand0", follow(0))
	ingest(t, base, "cand2", follow(3))
	noise := func() []float64 {
		v := make([]float64, n)
		var a float64
		for i := range v {
			a = 0.9*a + rng.NormFloat64()
			v[i] = a
		}
		return v
	}
	ingest(t, base, "cand1", noise())
	ingest(t, base, "cand3", noise())
	flat := make([]float64, n)
	for i := range flat {
		flat[i] = 0.25
	}
	ingest(t, base, "candflat", flat)
}

func discoverBody() map[string]any {
	return map[string]any{
		"anchor": "anchor",
		"topk":   3,
		"smin":   8, "smax": 16, "tdmax": 4, "sigma": 0.2,
	}
}

func decodeDiscover(t *testing.T, resp *http.Response) discoverResponse {
	t.Helper()
	defer resp.Body.Close()
	var out discoverResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode discover response: %v", err)
	}
	return out
}

func TestDiscoverEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	ingestFleet(t, ts.URL)

	resp := postJSON(t, ts.URL+"/v1/discover", discoverBody())
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("discover status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Tycosd-Source"); got != "computed" {
		t.Errorf("X-Tycosd-Source = %q, want computed", got)
	}
	if got := resp.Header.Get("X-Tycosd-Discovery-Searched"); got == "" || got == "0" {
		t.Errorf("X-Tycosd-Discovery-Searched = %q, want nonzero", got)
	}
	out := decodeDiscover(t, resp)
	if out.Anchor != "anchor" {
		t.Errorf("anchor = %q", out.Anchor)
	}
	// The default candidate set is every other ingested series.
	if out.Candidates != 5 {
		t.Errorf("candidates = %d, want 5", out.Candidates)
	}
	if len(out.Ranked) == 0 {
		t.Fatal("discovery ranked nothing over a fleet with planted followers")
	}
	for _, c := range out.Ranked {
		if c.Name == "candflat" {
			t.Error("flatlined candidate was ranked")
		}
		if len(c.Windows) == 0 {
			t.Errorf("ranked candidate %s has no windows", c.Name)
		}
	}
	if out.Ranked[0].Name != "cand0" && out.Ranked[0].Name != "cand2" {
		t.Errorf("top hit = %s, want a planted follower", out.Ranked[0].Name)
	}
	if out.Partial {
		t.Error("unhurried discovery reported partial")
	}
}

func TestDiscoverEndpointExplicitCandidates(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ingestFleet(t, ts.URL)

	body := discoverBody()
	body["candidates"] = []string{"cand2", "cand1"}
	body["screen"] = false
	resp := postJSON(t, ts.URL+"/v1/discover", body)
	out := decodeDiscover(t, resp)
	if out.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", out.Candidates)
	}
	if out.Screened != 0 || out.Pruned != 0 {
		t.Errorf("screen ran despite screen:false: %+v", out)
	}
	found := false
	for _, c := range out.Ranked {
		if c.Name == "cand2" {
			found = true
		}
	}
	if !found {
		t.Error("explicit candidate cand2 not ranked")
	}
}

func TestDiscoverEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ingestFleet(t, ts.URL)
	cases := []struct {
		name string
		body map[string]any
		code int
	}{
		{"missing anchor", map[string]any{"topk": 3}, http.StatusBadRequest},
		{"unknown anchor", map[string]any{"anchor": "nope"}, http.StatusNotFound},
		{"unknown candidate", map[string]any{"anchor": "anchor", "candidates": []string{"nope"}}, http.StatusNotFound},
		{"anchor as candidate", map[string]any{"anchor": "anchor", "candidates": []string{"anchor"}}, http.StatusBadRequest},
		{"bad variant", map[string]any{"anchor": "anchor", "variant": "zzz"}, http.StatusBadRequest},
		{"unknown field", map[string]any{"anchor": "anchor", "bogus": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/discover", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}
}

// TestDiscoverJournalReplayServesIdenticalBytes: a second identical request
// against the same journal replays every survivor and serves the same body.
func TestDiscoverJournalReplayServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, JournalPath: filepath.Join(dir, "journal.jsonl")})
	ingestFleet(t, ts.URL)

	read := func() (string, http.Header) {
		resp := postJSON(t, ts.URL+"/v1/discover", discoverBody())
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("discover status = %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header
	}
	body1, hdr1 := read()
	body2, hdr2 := read()
	if body1 != body2 {
		t.Errorf("journal replay served different bytes:\n%s\nvs\n%s", body1, body2)
	}
	if hdr1.Get("X-Tycosd-Source") != "computed" {
		t.Errorf("first source = %q, want computed", hdr1.Get("X-Tycosd-Source"))
	}
	if hdr2.Get("X-Tycosd-Source") != "journal" {
		t.Errorf("second source = %q, want journal", hdr2.Get("X-Tycosd-Source"))
	}
	if hdr2.Get("X-Tycosd-Discovery-Searched") != "0" {
		t.Errorf("second request searched %s candidates, want 0", hdr2.Get("X-Tycosd-Discovery-Searched"))
	}
}

// TestDiscoverMetricsExposed: the tycos_discovery_* family appears on
// /metrics after a discovery.
func TestDiscoverMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ingestFleet(t, ts.URL)
	postJSON(t, ts.URL+"/v1/discover", discoverBody()).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		"tycos_discovery_requests_total 1",
		`tycos_discovery_candidates_total{outcome="searched"}`,
		`tycos_discovery_candidates_total{outcome="pruned"}`,
		"tycos_discovery_duration_seconds_count 1",
		`tycos_http_requests_total{route="/v1/discover",code="200"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestDiscoverDrainingRejected: a draining server turns discovery away
// before any work is admitted.
func TestDiscoverDrainingRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ingestFleet(t, ts.URL)
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/discover", discoverBody())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}
