package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tycos/internal/obs"
)

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, string(b)
}

// TestMetricsEndpoint is the /metrics acceptance check: after real traffic
// the scrape is a valid Prometheus text exposition and carries the request
// latency and queue wait histograms.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}

	mresp, body := getBody(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	samples, err := obs.CheckExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape is not a valid exposition: %v\n%s", err, body)
	}
	if samples == 0 {
		t.Fatal("scrape has no samples")
	}

	for _, want := range []string{
		"# TYPE tycos_http_request_duration_seconds histogram",
		`tycos_http_request_duration_seconds_count{route="/v1/search"} 1`,
		"# TYPE tycos_queue_wait_seconds histogram",
		"tycos_queue_wait_seconds_count 1",
		`tycos_http_requests_total{route="/v1/search",code="200"} 1`,
		`tycos_http_requests_total{route="/v1/series",code="200"} 2`,
		`tycos_search_events_total{kind="ClimbFinished"}`,
		"tycos_search_phase_duration_seconds_count",
		"tycos_daemon_search_requests_total 1",
		"tycos_runtime_goroutines",
		"tycos_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricsEndpointBeforeTraffic: a scrape on a fresh server is already
// valid, and the latency series for every route exist (count 0) so dashboards
// see the full route set immediately.
func TestMetricsEndpointBeforeTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, body := getBody(t, ts.URL+"/metrics")
	if _, err := obs.CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("fresh scrape invalid: %v\n%s", err, body)
	}
	for _, route := range daemonRoutes {
		want := `tycos_http_request_duration_seconds_count{route="` + route + `"} 0`
		if !strings.Contains(body, want) {
			t.Errorf("fresh scrape missing %q", want)
		}
	}
}

// traceEvent is one parsed line of a TraceWriter JSONL stream.
type traceEvent struct {
	Event  string          `json:"event"`
	Trace  string          `json:"trace"`
	Span   string          `json:"span"`
	Parent string          `json:"parent"`
	Data   json.RawMessage `json:"data"`
}

func parseTrace(t *testing.T, r io.Reader) []traceEvent {
	t.Helper()
	var out []traceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev traceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

// syncBuffer makes a bytes.Buffer safe for the daemon's worker goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestTracePropagation is the tracing acceptance check: with TraceSample=1
// and a TraceWriter observer, one search produces a JSONL stream where every
// stamped line — from the HTTP handler's span through the core search's
// ClimbFinished events — carries the same trace ID the response header
// announced, with the expected parent/child structure.
func TestTracePropagation(t *testing.T) {
	var buf syncBuffer
	tw := obs.NewTraceWriter(&buf)
	const seed = 42
	_, ts := newTestServer(t, Config{Workers: 1, Seed: seed, TraceSample: 1, Observer: tw})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	header := resp.Header.Get("X-Tycosd-Trace")
	if header == "" {
		t.Fatal("sampled search missing X-Tycosd-Trace header")
	}
	// The trace root is a pure function of (seed, request sequence): the
	// header must be reproducible from first principles.
	root := obs.NewTrace(seed, 1)
	if want := strconv.FormatUint(root.TraceID, 16); header != want {
		t.Fatalf("X-Tycosd-Trace = %s, want deterministic root %s", header, want)
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("flush trace: %v", err)
	}

	events := parseTrace(t, bytes.NewReader(buf.Bytes()))
	if len(events) == 0 {
		t.Fatal("no trace lines written")
	}
	spanOf := func(sc obs.SpanContext) string { return strconv.FormatUint(sc.SpanID, 16) }
	searchSpan := root.Child("search:x/y")
	kinds := map[string]int{}
	finished := map[string]traceEvent{} // SpanFinished by name
	for _, ev := range events {
		if ev.Trace != header {
			t.Fatalf("event %s carries trace %q, want %q (every line of the request shares one trace)", ev.Event, ev.Trace, header)
		}
		kinds[ev.Event]++
		if ev.Event == "SpanFinished" {
			var d struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Data, &d); err != nil {
				t.Fatalf("bad SpanFinished data: %v", err)
			}
			finished[d.Name] = ev
		}
	}
	if kinds["ClimbFinished"] == 0 {
		t.Errorf("trace has no ClimbFinished events: %v", kinds)
	}
	if kinds["PhaseFinished"] == 0 {
		t.Errorf("trace has no PhaseFinished events: %v", kinds)
	}
	for _, name := range []string{"http.request", "queue.wait", "search"} {
		if _, ok := finished[name]; !ok {
			t.Errorf("trace missing SpanFinished for %s (have %v)", name, finished)
		}
	}
	if ev := finished["http.request"]; ev.Span != spanOf(root) || ev.Parent != "" {
		t.Errorf("http.request span = %s parent = %q, want root %s with no parent", ev.Span, ev.Parent, spanOf(root))
	}
	if ev := finished["queue.wait"]; ev.Parent != spanOf(root) {
		t.Errorf("queue.wait parent = %s, want root span %s", ev.Parent, spanOf(root))
	}
	if ev := finished["search"]; ev.Span != spanOf(searchSpan) || ev.Parent != spanOf(root) {
		t.Errorf("search span = %s/%s, want %s under %s", ev.Span, ev.Parent, spanOf(searchSpan), spanOf(root))
	}
	// Core events are stamped with the search child span.
	for _, ev := range events {
		if ev.Event == "ClimbFinished" && ev.Span != spanOf(searchSpan) {
			t.Errorf("ClimbFinished span = %s, want search span %s", ev.Span, spanOf(searchSpan))
		}
	}
}

// TestTraceSamplingOff: without sampling (and no slow log) nothing is
// stamped and no trace header is offered.
func TestTraceSamplingOff(t *testing.T) {
	var buf syncBuffer
	tw := obs.NewTraceWriter(&buf)
	_, ts := newTestServer(t, Config{Workers: 1, TraceSample: 0, Observer: tw})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if got := resp.Header.Get("X-Tycosd-Trace"); got != "" {
		t.Errorf("unsampled search answered with X-Tycosd-Trace %q", got)
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("flush trace: %v", err)
	}
	for _, ev := range parseTrace(t, bytes.NewReader(buf.Bytes())) {
		if ev.Trace != "" || ev.Span != "" {
			t.Fatalf("unsampled run produced a stamped line: %+v", ev)
		}
	}
}

// slowLine mirrors telemetry.go's slowEntry for decoding.
type slowLine struct {
	TS          string  `json:"ts"`
	Trace       string  `json:"trace"`
	Pair        string  `json:"pair"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	ThresholdMS float64 `json:"threshold_ms"`
	StopReason  string  `json:"stop_reason"`
	Dropped     int     `json:"dropped"`
	Spans       []struct {
		Span   string          `json:"span"`
		Parent string          `json:"parent"`
		Event  string          `json:"event"`
		Data   json.RawMessage `json:"data"`
	} `json:"spans"`
}

// TestSlowLog: with a threshold every request beats, one search writes one
// JSONL line carrying the full span tree — even though sampling is off.
func TestSlowLog(t *testing.T) {
	var slow syncBuffer
	_, ts := newTestServer(t, Config{
		Workers: 1, Seed: 7,
		SlowLogThreshold: time.Nanosecond,
		SlowLog:          &slow,
	})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	// Slow-log stamping does not imply trace sampling.
	if got := resp.Header.Get("X-Tycosd-Trace"); got != "" {
		t.Errorf("slow-logged search answered with X-Tycosd-Trace %q despite sampling off", got)
	}

	lines := bytes.Split(bytes.TrimSpace(slow.Bytes()), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("slow log holds %d lines, want 1", len(lines))
	}
	var entry slowLine
	if err := json.Unmarshal(lines[0], &entry); err != nil {
		t.Fatalf("bad slow log line: %v\n%s", err, lines[0])
	}
	if entry.Pair != "x/y" {
		t.Errorf("pair = %q, want x/y", entry.Pair)
	}
	root := obs.NewTrace(7, 1)
	if want := strconv.FormatUint(root.TraceID, 16); entry.Trace != want {
		t.Errorf("trace = %q, want %q", entry.Trace, want)
	}
	if entry.ElapsedMS <= 0 || entry.ThresholdMS <= 0 {
		t.Errorf("elapsed/threshold = %v/%v, want both positive", entry.ElapsedMS, entry.ThresholdMS)
	}
	if entry.StopReason != "completed" {
		t.Errorf("stop_reason = %q, want completed", entry.StopReason)
	}
	if len(entry.Spans) == 0 {
		t.Fatal("slow log line has no spans")
	}
	have := map[string]bool{}
	for _, sp := range entry.Spans {
		have[sp.Event] = true
		if sp.Event == "ClimbFinished" && sp.Span == "" {
			t.Error("ClimbFinished span missing from slow log")
		}
	}
	for _, kind := range []string{"ClimbFinished", "PhaseFinished", "SpanFinished"} {
		if !have[kind] {
			t.Errorf("slow log spans missing %s (have %v)", kind, have)
		}
	}
}

// TestSlowLogQuietWhenFast: an unreachable threshold writes nothing.
func TestSlowLogQuietWhenFast(t *testing.T) {
	var slow syncBuffer
	_, ts := newTestServer(t, Config{
		Workers: 1, SlowLogThreshold: time.Hour, SlowLog: &slow,
	})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if got := slow.Bytes(); len(got) != 0 {
		t.Fatalf("fast search wrote a slow log line: %s", got)
	}
}

// TestStatuszGauges: the runtime sampler pre-warms its gauges at startup, so
// a fresh /statusz already shows process levels.
func TestStatuszGauges(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := getBody(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status = %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode statusz: %v", err)
	}
	if st.Gauges["runtime.goroutines"] <= 0 {
		t.Errorf("runtime.goroutines gauge = %d, want > 0", st.Gauges["runtime.goroutines"])
	}
	if _, ok := st.Gauges["runtime.heap_bytes"]; !ok {
		t.Error("runtime.heap_bytes gauge missing")
	}
	if _, ok := st.Gauges["queue_depth"]; !ok {
		t.Error("queue_depth gauge missing")
	}
	if st.Gauges["draining"] != 0 {
		t.Errorf("draining gauge = %d, want 0", st.Gauges["draining"])
	}
}

// TestSamplerTicks: a fast sampler interval refreshes gauges continuously
// and Drain stops the ticker cleanly.
func TestSamplerTicks(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, SampleInterval: time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.metrics.GaugeValue("runtime.goroutines") > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// After Drain the sampler goroutine is gone; its done channel is closed.
	select {
	case <-s.samplerDone:
	default:
		t.Fatal("sampler still running after Drain")
	}
}
