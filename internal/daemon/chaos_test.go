package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"tycos/internal/faultinject"
)

// TestWorkerSurvivesSearchPanic injects a panic into one search: that
// request gets a 500, the worker pool survives, and the very next request
// is served normally.
func TestWorkerSurvivesSearchPanic(t *testing.T) {
	faultinject.Set("daemon/search", faultinject.Fault{Panic: "chaos: search exploded", Times: 1})
	defer faultinject.Clear()
	s, ts := newTestServer(t, Config{Workers: 1})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked search = %d, want 500", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after panic = %d, want 200 (worker must survive)", resp.StatusCode)
	}
	if got := s.Metrics().CounterTotal("daemon.search_failed"); got != 1 {
		t.Errorf("search_failed counter = %d, want 1", got)
	}
	if got := s.Metrics().CounterTotal("daemon.worker_lost"); got != 0 {
		t.Errorf("worker_lost counter = %d, want 0 (panic recovered per task)", got)
	}
}

// TestJournalDegradationAndRecovery breaks the journal past the retry
// budget: the search still answers 200, readyz flips to 503, and once the
// fault clears the next journaled search restores readiness.
func TestJournalDegradationAndRecovery(t *testing.T) {
	faultinject.Set("checkpoint/record", faultinject.Fault{Err: errors.New("disk on fire"), Times: 10})
	defer faultinject.Clear()
	s, ts := newTestServer(t, Config{
		Workers: 1, JournalPath: filepath.Join(t.TempDir(), "j.tycos"),
		RetryAttempts: 2, RetryBase: time.Millisecond,
	})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search with broken journal = %d, want 200 (durability loss must not fail the request)", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with degraded journal = %d, want 503", r.StatusCode)
	}
	if got := s.Metrics().CounterTotal("daemon.journal_degraded"); got != 1 {
		t.Errorf("journal_degraded counter = %d, want 1", got)
	}

	// Fault clears; a different search journals successfully and readiness
	// recovers.
	faultinject.Clear()
	b := searchBody()
	b["sigma"] = 0.3
	resp = postJSON(t, ts.URL+"/v1/search", b)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after journal recovery = %d, want 200", resp.StatusCode)
	}
	r, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("readyz after recovery = %d, want 200", r.StatusCode)
	}
}

// TestTransientJournalErrorIsAbsorbed: a single injected record failure is
// retried within the budget; the journal stays healthy and the record lands.
func TestTransientJournalErrorIsAbsorbed(t *testing.T) {
	faultinject.Set("daemon/journal", faultinject.Fault{Err: errors.New("blip"), Times: 1})
	defer faultinject.Clear()
	s, ts := newTestServer(t, Config{
		Workers: 1, JournalPath: filepath.Join(t.TempDir(), "j.tycos"),
		RetryAttempts: 3, RetryBase: time.Millisecond,
	})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d, want 200", resp.StatusCode)
	}
	if got := s.Metrics().CounterTotal("daemon.journal_degraded"); got != 0 {
		t.Errorf("journal_degraded = %d, want 0 (one blip is inside the retry budget)", got)
	}
	if s.journal.Len() != 1 {
		t.Errorf("journal holds %d records, want 1", s.journal.Len())
	}
}

// TestAbandonedServerResumesByteIdentical simulates a crash by abandoning a
// server mid-life (no drain, no close) and starting a successor on the same
// journal: every result the first server completed is replayed byte-for-byte
// and new work still computes. This is the in-process half of the SIGKILL
// story; cmd/tycosd's chaos test does it with a real kill -9.
func TestAbandonedServerResumesByteIdentical(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.tycos")
	x, y := testSeries(160, 2)
	bodies := []map[string]any{
		searchBody(),
		{"x": "x", "y": "y", "smin": 8, "smax": 16, "tdmax": 4, "sigma": 0.3},
	}

	search := func(ts *httptest.Server, body map[string]any) (string, []byte, int) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST search: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.Header.Get("X-Tycosd-Source"), buf.Bytes(), resp.StatusCode
	}

	// First life: compute both searches, then vanish without cleanup.
	s1, err := New(Config{Workers: 2, JournalPath: jpath})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	ingest(t, ts1.URL, "x", x)
	ingest(t, ts1.URL, "y", y)
	var golden [][]byte
	for _, b := range bodies {
		src, body, code := search(ts1, b)
		if code != http.StatusOK || src != "computed" {
			t.Fatalf("first-life search: code %d source %q", code, src)
		}
		golden = append(golden, body)
	}
	ts1.Close() // abandon s1: workers still running, journal never closed

	// Second life: same journal, same data, same requests.
	s2, err := New(Config{Workers: 2, JournalPath: jpath})
	if err != nil {
		t.Fatalf("New (resumed): %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	ingest(t, ts2.URL, "x", x)
	ingest(t, ts2.URL, "y", y)
	for i, b := range bodies {
		src, body, code := search(ts2, b)
		if code != http.StatusOK {
			t.Fatalf("resumed search %d: code %d", i, code)
		}
		if src != "journal" {
			t.Errorf("resumed search %d recomputed (source %q), want journal replay", i, src)
		}
		if !bytes.Equal(body, golden[i]) {
			t.Errorf("resumed search %d differs from golden:\n%s\nvs\n%s", i, body, golden[i])
		}
	}
	// New work (different options) still computes on the resumed server.
	src, _, code := search(ts2, map[string]any{"x": "x", "y": "y", "smin": 8, "smax": 16, "tdmax": 4, "sigma": 0.25})
	if code != http.StatusOK || src != "computed" {
		t.Errorf("fresh search on resumed server: code %d source %q, want 200/computed", code, src)
	}
}
