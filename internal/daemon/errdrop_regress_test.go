package daemon

import (
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tycos/internal/faultinject"
)

// failWriter models a slow-log destination that stopped accepting bytes
// (full disk, closed pipe).
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestSlowLogWriteFailureCounted is the regression test for the errdrop
// finding in writeSlowLog: a failed slow-log write used to vanish silently;
// it must increment daemon.slowlog_failed so operators can tell an empty log
// from a healthy one.
func TestSlowLogWriteFailureCounted(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, Seed: 7,
		SlowLogThreshold: time.Nanosecond,
		SlowLog:          failWriter{},
	})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	if got := s.Metrics().CounterTotal("daemon.slowlog_failed"); got != 1 {
		t.Errorf("daemon.slowlog_failed = %d, want 1", got)
	}
	// The search itself still counts as slow: the failure counter is an
	// addition, not a replacement.
	if got := s.Metrics().CounterTotal("daemon.slow_searches"); got != 1 {
		t.Errorf("daemon.slow_searches = %d, want 1", got)
	}
}

// TestCloseSurfacesJournalCloseError is the regression test for the errdrop
// finding in Server.Close: when a prior Drain timed out before closing the
// journal, Close performs the first (and only) journal close, and its error
// used to be discarded — the one signal that the final journal bytes may not
// have landed.
func TestCloseSurfacesJournalCloseError(t *testing.T) {
	s, err := New(Config{
		Workers:     1,
		JournalPath: filepath.Join(t.TempDir(), "journal.jsonl"),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Simulate a prior Drain that expired before reaching the journal:
	// draining is latched but the journal is still open.
	s.draining.Store(true)

	faultinject.Set("checkpoint/close", faultinject.Fault{Err: errors.New("close lost"), Times: 1})
	defer faultinject.Clear()

	cerr := s.Close()
	if cerr == nil {
		t.Fatal("Close swallowed the journal close error")
	}
	if !strings.Contains(cerr.Error(), "close lost") {
		t.Fatalf("Close error = %v, want the journal close error", cerr)
	}
}
