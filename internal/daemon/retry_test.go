package daemon

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tycos/internal/faultinject"
)

// recordingSleep replaces the retrier's wait primitive and records every
// requested delay without actually waiting.
type recordingSleep struct {
	delays []time.Duration
	err    error // returned from every sleep when non-nil
}

func (rs *recordingSleep) sleep(ctx context.Context, d time.Duration) error {
	rs.delays = append(rs.delays, d)
	return rs.err
}

func TestRetrierAttemptCounts(t *testing.T) {
	cases := []struct {
		name         string
		attempts     int
		failures     int // leading failures before success
		wantCalls    int
		wantSleeps   int
		wantSucceeds bool
	}{
		{name: "first try", attempts: 3, failures: 0, wantCalls: 1, wantSleeps: 0, wantSucceeds: true},
		{name: "one retry", attempts: 3, failures: 1, wantCalls: 2, wantSleeps: 1, wantSucceeds: true},
		{name: "last chance", attempts: 3, failures: 2, wantCalls: 3, wantSleeps: 2, wantSucceeds: true},
		{name: "gives up", attempts: 3, failures: 5, wantCalls: 3, wantSleeps: 2, wantSucceeds: false},
		{name: "single attempt", attempts: 1, failures: 1, wantCalls: 1, wantSleeps: 0, wantSucceeds: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRetrier(tc.attempts, time.Millisecond, 7)
			rs := &recordingSleep{}
			r.sleep = rs.sleep
			calls := 0
			err := r.Do(context.Background(), "daemon/test", func() error {
				calls++
				if calls <= tc.failures {
					return errors.New("transient")
				}
				return nil
			})
			if calls != tc.wantCalls {
				t.Errorf("calls = %d, want %d", calls, tc.wantCalls)
			}
			if len(rs.delays) != tc.wantSleeps {
				t.Errorf("sleeps = %d, want %d", len(rs.delays), tc.wantSleeps)
			}
			if (err == nil) != tc.wantSucceeds {
				t.Errorf("err = %v, wantSucceeds = %v", err, tc.wantSucceeds)
			}
			if err != nil && !strings.Contains(err.Error(), "gave up after") {
				t.Errorf("give-up error should say how many attempts were spent, got %v", err)
			}
		})
	}
}

// TestRetrierJitterBounds pins the backoff contract: retry k waits in
// [base·2^(k−1), 2·base·2^(k−1)).
func TestRetrierJitterBounds(t *testing.T) {
	base := 10 * time.Millisecond
	r := newRetrier(5, base, 42)
	for k := 1; k <= 4; k++ {
		lo := base << (k - 1)
		hi := 2 * lo
		for i := 0; i < 200; i++ {
			d := r.backoff(k)
			if d < lo || d >= hi {
				t.Fatalf("backoff(%d) = %v outside [%v, %v)", k, d, lo, hi)
			}
		}
	}
}

// TestRetrierDeterministicDelays: same seed, same failure pattern → the
// exact same delay sequence, so chaos runs replay bit-for-bit.
func TestRetrierDeterministicDelays(t *testing.T) {
	run := func() []time.Duration {
		r := newRetrier(4, 5*time.Millisecond, 99)
		rs := &recordingSleep{}
		r.sleep = rs.sleep
		r.Do(context.Background(), "daemon/test", func() error { return errors.New("always") })
		return rs.delays
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 backoffs per run, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs across seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetrierContextCancelDuringBackoff(t *testing.T) {
	r := newRetrier(3, time.Millisecond, 1)
	rs := &recordingSleep{err: context.Canceled}
	r.sleep = rs.sleep
	calls := 0
	err := r.Do(context.Background(), "daemon/test", func() error {
		calls++
		return errors.New("transient")
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancelled before the retry ran)", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestRetrierFaultInjection: the faultinject hook at the retry boundary
// counts as a failed attempt and is retried like any other error.
func TestRetrierFaultInjection(t *testing.T) {
	faultinject.Set("daemon/test-fi", faultinject.Fault{Err: errors.New("injected"), Times: 2})
	defer faultinject.Clear()
	r := newRetrier(3, time.Millisecond, 1)
	rs := &recordingSleep{}
	r.sleep = rs.sleep
	calls := 0
	err := r.Do(context.Background(), "daemon/test-fi", func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v (injected faults should be absorbed by retries)", err)
	}
	if calls != 1 {
		t.Errorf("f ran %d times, want 1 (two injected failures never reach f)", calls)
	}
	if len(rs.delays) != 2 {
		t.Errorf("sleeps = %d, want 2", len(rs.delays))
	}
}
