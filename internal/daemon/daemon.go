// Package daemon is the always-on TYCOS service behind cmd/tycosd: an HTTP
// server (stdlib net/http only) that ingests series appends and answers
// delayed-correlation search requests through core.SearchContext, and is
// built to stay correct under the three failure classes a long-running
// process meets:
//
//   - Overload. Searches pass through admission control — a bounded work
//     queue drained by a fixed worker pool. A full queue never grows; the
//     server sheds load with 429 + Retry-After, or (ShedDegrade) answers
//     with the cheap internal/baseline sliding-PCC pre-screen instead of
//     queueing KSG work it cannot afford.
//   - Crashes. Completed searches are journaled through internal/checkpoint
//     (opt-in fsync, auto-compaction); after a kill -9 a restarted daemon
//     serves every journaled result byte-identically instead of recomputing
//     it. Transient journal and ingest errors are retried with jittered
//     exponential backoff; a journal that stays broken degrades readiness
//     instead of crashing the server.
//   - Shutdown. Drain stops admission, lets in-flight searches finish,
//     flushes the journal and only then returns, so SIGTERM under an
//     orchestrator loses nothing.
//
// Liveness (/healthz), readiness (/readyz) and a JSON status snapshot
// (/statusz) are backed by an internal/obs Metrics sink; every admission
// decision and failure is counted there and mirrored to any extra Observer.
package daemon

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tycos/internal/checkpoint"
	"tycos/internal/obs"
)

// ShedPolicy says what a saturated daemon does with a search it cannot
// queue.
type ShedPolicy int

const (
	// ShedReject answers 429 with a Retry-After hint — the caller owns the
	// retry. This is the default: it never spends CPU the queue bound was
	// meant to protect.
	ShedReject ShedPolicy = iota
	// ShedDegrade answers immediately with the internal/baseline
	// sliding-PCC pre-screen — a linear-dependence-only approximation that
	// costs microseconds where KSG costs seconds. Responses carry
	// "degraded": true and an X-Tycosd-Source: degraded header so callers
	// can tell the cheap answer from the real one.
	ShedDegrade
)

// Config tunes a Server. The zero value serves with GOMAXPROCS workers, a
// 4×workers queue, ShedReject, and no journal.
type Config struct {
	// Workers is the number of concurrent search workers (≤0 → GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (≤0 → 4×Workers). Queue plus
	// workers is the hard cap on admitted-but-unanswered searches.
	QueueDepth int
	// Shed selects the saturation behaviour (default ShedReject).
	Shed ShedPolicy
	// RetryAfter is the hint returned with 429/503 responses (0 → 1s).
	RetryAfter time.Duration
	// JournalPath, when non-empty, persists completed search results to a
	// checkpoint journal so a restarted daemon serves them from disk.
	JournalPath string
	// JournalFsync upgrades journal appends to fsync-per-record
	// (checkpoint.Options.Fsync).
	JournalFsync bool
	// JournalCompactBytes enables journal auto-compaction past this size
	// (checkpoint.Options.AutoCompactBytes).
	JournalCompactBytes int64
	// RetryAttempts is the total number of attempts for transient journal
	// and ingest errors (0 → 3); RetryBase is the first backoff delay
	// (0 → 10ms). Backoff doubles per attempt with jitter in [d, 2d).
	RetryAttempts int
	RetryBase     time.Duration
	// Seed drives the retry jitter and is the default search seed for
	// requests that omit one (0 → 1).
	Seed int64
	// MaxEvalsCap bounds every request's MaxEvaluations budget; requests
	// that omit a budget get the cap. 0 leaves requests uncapped.
	MaxEvalsCap int
	// TimeoutCap bounds every request's wall-clock timeout the same way.
	TimeoutCap time.Duration
	// MaxBodyBytes bounds a request body (0 → 32 MiB).
	MaxBodyBytes int64
	// Observer, when non-nil, receives every event/counter/gauge the
	// daemon's internal Metrics sink sees (fanned out with obs.Multi).
	Observer obs.Sink
	// TraceSample is the fraction of search requests stamped with a
	// request-scoped trace (deterministic head sampling on the trace ID;
	// 0 → none, 1 → all). Sampled requests answer with an X-Tycosd-Trace
	// header, and every search event they cause carries the trace ID.
	TraceSample float64
	// SlowLogThreshold, with SlowLog, enables the slow-search log: any
	// search whose request takes at least this long writes one JSONL line
	// with its full span tree to SlowLog. While enabled, every search is
	// span-stamped (regardless of TraceSample) so a slow line is never
	// missing its tree.
	SlowLogThreshold time.Duration
	// SlowLog is the slow-search log destination (writes are serialised by
	// the server). Nil disables the slow log.
	SlowLog io.Writer
	// SampleInterval is the runtime sampler's tick (goroutines, heap, GC
	// pause, queue-depth gauges). 0 → 5s; negative disables the ticker —
	// gauges are still sampled once at startup.
	SampleInterval time.Duration
}

// withDefaults returns cfg with zero fields replaced.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = 5 * time.Second
	}
	return cfg
}

// Server is one daemon instance. Create with New, serve its Handler, stop
// with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	sink    obs.Sink
	journal *checkpoint.Journal

	store store

	// admitMu serialises enqueue attempts against the queue close in
	// Drain: admitters hold it shared, Drain exclusively, so a send on a
	// closed queue cannot happen.
	admitMu  sync.RWMutex
	draining atomic.Bool
	queue    chan *task
	wg       sync.WaitGroup

	inflight  atomic.Int64
	journalOK atomic.Bool
	retry     *retrier
	mux       *http.ServeMux

	// Telemetry (telemetry.go): the Prometheus registry behind /metrics,
	// pre-registered route/queue instruments, the deterministic trace
	// sampler and per-request sequence, the slow-search log, and the
	// runtime-gauge sampler's lifecycle.
	registry     *obs.Registry
	httpLatency  *obs.Vec    // tycos_http_request_duration_seconds{route}
	httpRequests *obs.Vec    // tycos_http_requests_total{route,code}
	queueWait    *obs.Series // tycos_queue_wait_seconds

	// Discovery instruments (discovery.go): request counter, end-to-end
	// duration histogram and the per-outcome candidate counter.
	discoveryRequests   *obs.Series // tycos_discovery_requests_total
	discoveryDuration   *obs.Series // tycos_discovery_duration_seconds
	discoveryCandidates *obs.Vec    // tycos_discovery_candidates_total{outcome}
	sampler             obs.Sampler
	reqSeq              atomic.Uint64
	slowMu              sync.Mutex
	samplerStop         chan struct{}
	samplerDone         chan struct{}
}

// New builds a Server, opens its journal (when configured) and starts its
// worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: obs.NewMetrics(),
		store:   store{series: make(map[string][]float64)},
		queue:   make(chan *task, cfg.QueueDepth),
		mux:     http.NewServeMux(),
	}
	s.initTelemetry()
	// The registry sits in the same fan-out as the Metrics sink, so every
	// counter, gauge and event the daemon already emits becomes a scrapeable
	// series with no second instrumentation site.
	s.sink = obs.Multi(s.metrics, s.registry, cfg.Observer)
	s.retry = newRetrier(cfg.RetryAttempts, cfg.RetryBase, cfg.Seed)
	s.journalOK.Store(true)
	if cfg.JournalPath != "" {
		j, err := checkpoint.OpenOptions(cfg.JournalPath, checkpoint.Options{
			Fsync:            cfg.JournalFsync,
			AutoCompactBytes: cfg.JournalCompactBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("daemon: %w", err)
		}
		s.journal = j
	}
	s.routes()
	s.startWorkers()
	s.startSampler()
	return s, nil
}

// Handler returns the daemon's HTTP handler (see routes in handlers.go).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the daemon's internal aggregation sink, which the status
// endpoints are built on.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// store holds the ingested series: append-only float64 columns keyed by
// name. Appends may grow (reallocate) a column, but existing elements are
// never rewritten, so a snapshot slice header taken under the read lock
// stays valid and immutable afterwards.
type store struct {
	mu     sync.RWMutex
	series map[string][]float64
}

// Append extends (or creates) the named series and returns its new length.
func (st *store) Append(name string, values []float64) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.series[name] = append(st.series[name], values...)
	return len(st.series[name])
}

// Get returns an immutable snapshot of the named series.
func (st *store) Get(name string) ([]float64, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := st.series[name]
	return v, ok
}

// Names returns the stored series names and lengths, sorted by name.
func (st *store) Names() []seriesInfo {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]seriesInfo, 0, len(st.series))
	for name, v := range st.series {
		out = append(out, seriesInfo{Name: name, Len: len(v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// seriesInfo is one row of the status endpoint's series table.
type seriesInfo struct {
	Name string `json:"name"`
	Len  int    `json:"len"`
}
