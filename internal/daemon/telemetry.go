package daemon

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"tycos/internal/core"
	"tycos/internal/obs"
)

// daemonRoutes are the served route patterns, used as the route label of the
// HTTP instruments. Latency series are pre-created for all of them so a
// scrape taken before any traffic still shows the full route set.
var daemonRoutes = []string{
	"/healthz", "/readyz", "/statusz", "/metrics", "/v1/series", "/v1/search",
	"/v1/discover",
}

// initTelemetry builds the Prometheus registry and its pre-registered
// instruments, and configures the trace sampler. Runs before routes() so the
// middleware can capture its series handles.
func (s *Server) initTelemetry() {
	s.registry = obs.NewRegistry()
	s.httpLatency = s.registry.HistogramVec("tycos_http_request_duration_seconds",
		"HTTP request latency by route, in seconds.", "route")
	s.httpRequests = s.registry.CounterVec("tycos_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	s.queueWait = s.registry.Histogram("tycos_queue_wait_seconds",
		"Time admitted search tasks spent queued before a worker picked them up.")
	s.discoveryRequests = s.registry.Counter("tycos_discovery_requests_total",
		"Discovery requests accepted for processing.")
	s.discoveryDuration = s.registry.Histogram("tycos_discovery_duration_seconds",
		"End-to-end discovery pipeline duration, in seconds.")
	s.discoveryCandidates = s.registry.CounterVec("tycos_discovery_candidates_total",
		"Discovery candidates by pipeline outcome.", "outcome")
	for _, outcome := range []string{"screened", "pruned", "searched", "replayed", "failed"} {
		s.discoveryCandidates.With(outcome)
	}
	for _, route := range daemonRoutes {
		s.httpLatency.With(route)
	}
	s.sampler = obs.NewSampler(s.cfg.TraceSample)
}

// statusWriter captures the response status code for the request counter;
// an unset code means the handler wrote a body (or nothing) without
// WriteHeader, which net/http treats as 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps one route handler with the per-route latency histogram
// and the route+code request counter.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.httpLatency.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		lat.ObserveDuration(time.Since(start))
		s.httpRequests.With(route, strconv.Itoa(code)).Inc()
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry.WritePrometheus(w)
}

// hexID renders a trace/span ID the way trace lines do.
func hexID(id uint64) string { return strconv.FormatUint(id, 16) }

// slowLogEnabled reports whether slow-search logging is configured.
func (s *Server) slowLogEnabled() bool {
	return s.cfg.SlowLogThreshold > 0 && s.cfg.SlowLog != nil
}

// slowSpan is one captured observation inside a slow-search log line.
type slowSpan struct {
	Span   string    `json:"span,omitempty"`
	Parent string    `json:"parent,omitempty"`
	Event  string    `json:"event"`
	Data   obs.Event `json:"data,omitempty"`
}

// slowEntry is one line of the slow-search JSONL log: the request identity,
// how slow it was, and the full span tree its recorder captured.
type slowEntry struct {
	TS          string     `json:"ts"`
	Trace       string     `json:"trace,omitempty"`
	Pair        string     `json:"pair"`
	ElapsedMS   float64    `json:"elapsed_ms"`
	ThresholdMS float64    `json:"threshold_ms"`
	StopReason  string     `json:"stop_reason,omitempty"`
	Partial     bool       `json:"partial,omitempty"`
	Dropped     int        `json:"dropped,omitempty"`
	Spans       []slowSpan `json:"spans"`
}

// writeSlowLog emits one slow-search line. It runs before the HTTP response
// is written, so once a caller sees a slow response the log line is already
// durable in order.
func (s *Server) writeSlowLog(pair string, root obs.SpanContext, elapsed time.Duration, res core.Result, rec *obs.SpanRecorder) {
	events, dropped := rec.Events()
	entry := slowEntry{
		TS:          time.Now().UTC().Format(time.RFC3339Nano),
		Trace:       hexID(root.TraceID),
		Pair:        pair,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		ThresholdMS: float64(s.cfg.SlowLogThreshold) / float64(time.Millisecond),
		StopReason:  string(res.Stats.StopReason),
		Partial:     res.Partial,
		Dropped:     dropped,
		Spans:       make([]slowSpan, 0, len(events)),
	}
	for _, ev := range events {
		sp := slowSpan{Event: ev.Event.Kind(), Data: ev.Event}
		if ev.Span.Valid() {
			sp.Span = hexID(ev.Span.SpanID)
			if ev.Span.Parent != 0 {
				sp.Parent = hexID(ev.Span.Parent)
			}
		}
		entry.Spans = append(entry.Spans, sp)
	}
	b, err := json.Marshal(entry)
	if err != nil {
		return
	}
	s.slowMu.Lock()
	_, werr := s.cfg.SlowLog.Write(append(b, '\n'))
	s.slowMu.Unlock()
	if werr != nil {
		// The slow log is the audit trail for latency regressions; if lines
		// stop landing (full disk, closed pipe) that has to be visible, not
		// silent, or an operator debugging slowness trusts an empty log.
		s.sink.Count("daemon.slowlog_failed", 1)
	}
	s.sink.Count("daemon.slow_searches", 1)
}

// sampleRuntime publishes one round of process-level gauges. It runs once at
// startup (so /statusz and /metrics show gauges before the first tick) and
// then on the sampler ticker.
func (s *Server) sampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	obs.SetGauge(s.sink, "runtime.goroutines", int64(runtime.NumGoroutine()))
	obs.SetGauge(s.sink, "runtime.heap_bytes", int64(ms.HeapAlloc))
	obs.SetGauge(s.sink, "runtime.gc_pause_total_ns", int64(ms.PauseTotalNs))
	obs.SetGauge(s.sink, "runtime.gc_cycles", int64(ms.NumGC))
	obs.SetGauge(s.sink, "queue_depth", int64(len(s.queue)))
	obs.SetGauge(s.sink, "inflight", s.inflight.Load())
	if s.draining.Load() {
		obs.SetGauge(s.sink, "draining", 1)
	} else {
		obs.SetGauge(s.sink, "draining", 0)
	}
}

// startSampler pre-warms the gauges and, unless disabled, starts the ticker
// goroutine. Drain stops it.
func (s *Server) startSampler() {
	s.sampleRuntime()
	if s.cfg.SampleInterval < 0 {
		return
	}
	s.samplerStop = make(chan struct{})
	s.samplerDone = make(chan struct{})
	go func() {
		defer close(s.samplerDone)
		defer func() {
			if r := recover(); r != nil {
				s.sink.Count("daemon.sampler_lost", 1)
			}
		}()
		t := time.NewTicker(s.cfg.SampleInterval)
		defer t.Stop()
		for {
			select {
			case <-s.samplerStop:
				return
			case <-t.C:
				s.sampleRuntime()
			}
		}
	}()
}

// stopSampler stops the ticker goroutine and waits for it to exit. Called at
// most once, from Drain's CAS-guarded section.
func (s *Server) stopSampler() {
	if s.samplerStop == nil {
		return
	}
	close(s.samplerStop)
	<-s.samplerDone
}
