package daemon

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"tycos/internal/checkpoint"
	"tycos/internal/faultinject"
)

// testSeries builds a pair with a planted delayed linear correlation, long
// enough for the default smin but short enough to search fast.
func testSeries(n, delay int) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)/7) + 0.1*math.Cos(float64(i)/3)
	}
	for i := range y {
		j := i - delay
		if j < 0 {
			j = 0
		}
		y[i] = x[j]
	}
	return x, y
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func ingest(t *testing.T, base, name string, values []float64) {
	t.Helper()
	resp := postJSON(t, base+"/v1/series", ingestRequest{Name: name, Values: values})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: status %d", name, resp.StatusCode)
	}
}

// searchBody is the standard fast request used across the tests.
func searchBody() map[string]any {
	return map[string]any{
		"x": "x", "y": "y",
		"smin": 8, "smax": 16, "tdmax": 4, "sigma": 0.2,
	}
}

func decodeSearch(t *testing.T, resp *http.Response) searchResponse {
	t.Helper()
	defer resp.Body.Close()
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode search response: %v", err)
	}
	return out
}

func TestIngestAndSearch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Tycosd-Source"); got != "computed" {
		t.Errorf("X-Tycosd-Source = %q, want computed", got)
	}
	out := decodeSearch(t, resp)
	if out.Partial {
		t.Errorf("unhurried search reported partial (stop reason %s)", out.StopReason)
	}
	if out.StopReason != "completed" {
		t.Errorf("stop_reason = %q, want completed", out.StopReason)
	}
	if len(out.Windows) == 0 {
		t.Errorf("planted correlation found no windows")
	}
	if out.N != 160 {
		t.Errorf("n = %d, want 160", out.N)
	}
	if out.Stats.Timing.Total != 0 {
		t.Errorf("response stats carry wall-clock timing %v; must be deterministic", out.Stats.Timing.Total)
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body any
	}{
		{"missing name", map[string]any{"values": []float64{1, 2}}},
		{"missing values", map[string]any{"name": "x"}},
		{"nan value", map[string]any{"name": "x", "values": []any{1.0, "NaN"}}},
		{"unknown field", map[string]any{"name": "x", "values": []float64{1}, "bogus": 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/series", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestSearchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	x, _ := testSeries(64, 0)
	ingest(t, ts.URL, "x", x)

	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"unknown series", map[string]any{"x": "x", "y": "nope"}, http.StatusNotFound},
		{"missing names", map[string]any{"smin": 8}, http.StatusBadRequest},
		{"bad variant", map[string]any{"x": "x", "y": "x", "variant": "turbo"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/search", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func TestHealthAndStatusEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JournalPath: filepath.Join(t.TempDir(), "j.tycos")})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	x, _ := testSeries(64, 0)
	ingest(t, ts.URL, "a", x)

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode statusz: %v", err)
	}
	resp.Body.Close()
	if st.Workers != 2 {
		t.Errorf("statusz workers = %d, want 2", st.Workers)
	}
	if len(st.Series) != 1 || st.Series[0].Name != "a" || st.Series[0].Len != 64 {
		t.Errorf("statusz series = %+v, want [{a 64}]", st.Series)
	}
	if st.Journal == nil || !st.Journal.Healthy {
		t.Errorf("statusz journal = %+v, want healthy", st.Journal)
	}
	if st.Counters["daemon.ingest_points"] != 64 {
		t.Errorf("ingest_points = %d, want 64", st.Counters["daemon.ingest_points"])
	}
}

func TestReadyzReportsDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining readyz missing Retry-After")
	}

	// Search and ingest are refused too.
	sr := postJSON(t, ts.URL+"/v1/search", searchBody())
	sr.Body.Close()
	if sr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("search while draining = %d, want 503", sr.StatusCode)
	}
	ir := postJSON(t, ts.URL+"/v1/series", ingestRequest{Name: "x", Values: []float64{1}})
	ir.Body.Close()
	if ir.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest while draining = %d, want 503", ir.StatusCode)
	}
}

func TestJournalReplayServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.tycos")
	x, y := testSeries(160, 2)

	body, _ := json.Marshal(searchBody())

	run := func() (string, []byte) {
		s, err := New(Config{Workers: 1, JournalPath: jpath})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close()
		ingest(t, ts.URL, "x", x)
		ingest(t, ts.URL, "y", y)
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST search: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status = %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.Header.Get("X-Tycosd-Source"), buf.Bytes()
	}

	src1, body1 := run()
	if src1 != "computed" {
		t.Fatalf("first run source = %q, want computed", src1)
	}
	src2, body2 := run()
	if src2 != "journal" {
		t.Fatalf("second run source = %q, want journal (replayed across restart)", src2)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("journal replay differs from computed response:\n%s\nvs\n%s", body1, body2)
	}
}

func TestJournalKeyDistinguishesDataAndOptions(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.tycos")
	s, ts := newTestServer(t, Config{Workers: 1, JournalPath: jpath})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}

	// Different σ → different fingerprint → computed, not replayed.
	b := searchBody()
	b["sigma"] = 0.3
	resp = postJSON(t, ts.URL+"/v1/search", b)
	resp.Body.Close()
	if got := resp.Header.Get("X-Tycosd-Source"); got != "computed" {
		t.Errorf("changed options replayed stale journal entry (source %q)", got)
	}

	// More data → different fingerprint too.
	ingest(t, ts.URL, "x", []float64{1, 2, 3})
	ingest(t, ts.URL, "y", []float64{1, 2, 3})
	resp = postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()
	if got := resp.Header.Get("X-Tycosd-Source"); got != "computed" {
		t.Errorf("appended data replayed stale journal entry (source %q)", got)
	}

	if s.journal.Len() != 3 {
		t.Errorf("journal holds %d entries, want 3 distinct fingerprints", s.journal.Len())
	}
}

func TestDrainFlushesJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.tycos")
	s, ts := newTestServer(t, Config{Workers: 2, JournalPath: jpath})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	resp.Body.Close()

	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The journal must be complete and parseable by a fresh reader.
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatalf("reopen drained journal: %v", err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Errorf("drained journal holds %d results, want 1", j.Len())
	}
}

func TestDrainIsIdempotent(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	for i := 0; i < 3; i++ {
		if err := s.Drain(t.Context()); err != nil {
			t.Fatalf("Drain #%d: %v", i+1, err)
		}
	}
}

// saturate stalls the single worker with a delayed search and fills the
// 1-slot queue, so the next admission attempt must be shed. It returns after
// the server is verifiably saturated.
func saturate(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	// The first two searches absorb the worker (stalled by the injected
	// delay) and the queue slot.
	for i := 0; i < 2; i++ {
		go func() {
			resp := postJSON(t, ts.URL+"/v1/search", searchBody())
			resp.Body.Close()
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.inflight.Load() == 1 && len(s.queue) == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server failed to saturate: inflight=%d queued=%d", s.inflight.Load(), len(s.queue))
}

func TestSaturationRejectWith429(t *testing.T) {
	faultinject.Set("daemon/search", faultinject.Fault{Delay: 500 * time.Millisecond, Times: 2})
	defer faultinject.Clear()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	saturate(t, s, ts)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated search = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
}

func TestSaturationDegradesToPCC(t *testing.T) {
	faultinject.Set("daemon/search", faultinject.Fault{Delay: 500 * time.Millisecond, Times: 2})
	defer faultinject.Clear()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Shed: ShedDegrade})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)
	saturate(t, s, ts)

	resp := postJSON(t, ts.URL+"/v1/search", searchBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Tycosd-Source"); got != "degraded" {
		t.Errorf("X-Tycosd-Source = %q, want degraded", got)
	}
	out := decodeSearch(t, resp)
	if !out.Degraded || !out.Partial {
		t.Errorf("degraded response flags = {degraded:%v partial:%v}, want both true", out.Degraded, out.Partial)
	}
	if out.StopReason != "degraded-pcc" {
		t.Errorf("stop_reason = %q, want degraded-pcc", out.StopReason)
	}
	for _, w := range out.Windows {
		if w.Delay != 0 {
			t.Errorf("PCC pre-screen produced delay %d, must be 0", w.Delay)
		}
	}
}

// TestFloodNeverDeadlocks throws far more concurrent searches at a tiny
// server than it can queue; every request must come back as either a result
// or a shed, and the server must still drain cleanly. Run with -race this is
// the "shedding keeps the queue bounded and deadlock-free" acceptance check.
func TestFloodNeverDeadlocks(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	x, y := testSeries(160, 2)
	ingest(t, ts.URL, "x", x)
	ingest(t, ts.URL, "y", y)

	const flood = 40
	codes := make(chan int, flood)
	for i := 0; i < flood; i++ {
		go func() {
			resp := postJSON(t, ts.URL+"/v1/search", searchBody())
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	counts := map[int]int{}
	for i := 0; i < flood; i++ {
		select {
		case c := <-codes:
			counts[c]++
		case <-time.After(60 * time.Second):
			t.Fatalf("flood deadlocked: only %d/%d responses (%v)", i, flood, counts)
		}
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != flood {
		t.Errorf("unexpected status mix: %v", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("flood produced no successful searches: %v", counts)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("drain after flood: %v", err)
	}
}
