package daemon

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tycos/internal/faultinject"
)

// retrier runs transient-failure-prone operations (journal appends, ingest
// side effects) with jittered exponential backoff. The jitter source is a
// seeded PRNG so tests pin the exact delay sequence; jitter decorrelates
// concurrent retriers in production, where many workers may hit the same
// failing disk at once.
type retrier struct {
	attempts int           // total attempts, ≥ 1
	base     time.Duration // backoff before attempt 2; doubles each attempt

	mu  sync.Mutex
	rng *rand.Rand

	// sleep is the wait primitive, injectable so tests measure delays
	// without waiting them out.
	sleep func(ctx context.Context, d time.Duration) error
}

// newRetrier builds a retrier; attempts ≤ 0 means one attempt (no retries).
func newRetrier(attempts int, base time.Duration, seed int64) *retrier {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	return &retrier{
		attempts: attempts,
		base:     base,
		rng:      rand.New(rand.NewSource(seed)),
		sleep:    sleepCtx,
	}
}

// backoff returns the pre-attempt delay for retry number k (1-based count
// of retries, i.e. before attempt k+1): base·2^(k−1) plus jitter drawn
// uniformly from one more interval of the same size, so the delay lies in
// [d, 2d).
func (r *retrier) backoff(k int) time.Duration {
	d := r.base << (k - 1)
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)))
	r.mu.Unlock()
	return d + j
}

// Do runs f until it succeeds, attempts are exhausted, or ctx is cancelled
// mid-backoff. The faultinject key lets chaos tests fail or kill the
// operation at its retry boundary; the error reports how many attempts were
// spent.
func (r *retrier) Do(ctx context.Context, key string, f func() error) error {
	var err error
	for attempt := 1; attempt <= r.attempts; attempt++ {
		if attempt > 1 {
			if serr := r.sleep(ctx, r.backoff(attempt-1)); serr != nil {
				return fmt.Errorf("daemon: %s: %w after %d attempts (last: %v)", key, serr, attempt-1, err)
			}
		}
		if err = faultinject.Fire(key); err == nil {
			err = f()
		}
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("daemon: %s: gave up after %d attempts: %w", key, r.attempts, err)
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
