package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"tycos/internal/discovery"
	"tycos/internal/faultinject"
	"tycos/internal/obs"
	"tycos/internal/series"
)

// POST /v1/discover — anchor→fleet top-K discovery over ingested series.
//
// The request names one anchor and (optionally) a candidate list; an absent
// list means every other ingested series, in name order. The task runs on
// the same admission-controlled worker pool as /v1/search — a saturated
// queue answers 429 (discovery has no degraded mode: a pre-screen-only
// answer is exactly what the pipeline's first phase already is). Each
// confirmed survivor is journaled individually under a fingerprint key, so
// a killed discovery resumes by replaying finished candidates.
//
// The response body is a pure function of (ingested data, request): the
// resume-dependent Searched/Replayed split travels in the
// X-Tycosd-Discovery-Searched and X-Tycosd-Discovery-Replayed headers
// instead, which is what lets the kill/resume chaos harness compare body
// bytes directly.

// discoverRequest is the /v1/discover body. The search parameter block
// matches /v1/search (same names, same defaults, same caps); "topk" is the
// ranked-candidate count, "search_topk" the per-search window top-K.
type discoverRequest struct {
	Anchor     string   `json:"anchor"`
	Candidates []string `json:"candidates"`
	TopK       int      `json:"topk"`
	// Screen defaults to true; explicit false disables the pre-screen.
	Screen          *bool   `json:"screen"`
	ScreenThreshold float64 `json:"screen_threshold"`
	ScreenWindow    int     `json:"screen_window"`
	ScreenStride    int     `json:"screen_stride"`
	// Workers bounds the candidate-level fan-out inside this task's worker
	// slot (default 1: the daemon's parallelism is its worker pool).
	Workers int `json:"workers"`

	SMin       int     `json:"smin"`
	SMax       int     `json:"smax"`
	TDMax      int     `json:"tdmax"`
	Sigma      float64 `json:"sigma"`
	Epsilon    float64 `json:"epsilon"`
	K          int     `json:"k"`
	Delta      int     `json:"delta"`
	MaxIdle    int     `json:"maxidle"`
	SearchTopK int     `json:"search_topk"`
	Variant    string  `json:"variant"`
	Seed       int64   `json:"seed"`

	MaxEvaluations int   `json:"max_evaluations"`
	TimeoutMS      int64 `json:"timeout_ms"`
}

// searchRequest translates the shared parameter block so the /v1/search
// defaulting, caps and variant parsing apply verbatim.
func (req *discoverRequest) searchRequest() searchRequest {
	return searchRequest{
		SMin: req.SMin, SMax: req.SMax, TDMax: req.TDMax,
		Sigma: req.Sigma, Epsilon: req.Epsilon, K: req.K,
		Delta: req.Delta, MaxIdle: req.MaxIdle, TopK: req.SearchTopK,
		Variant: req.Variant, Seed: req.Seed,
		MaxEvaluations: req.MaxEvaluations, TimeoutMS: req.TimeoutMS,
	}
}

// rankedCandidate is the wire form of one discovery hit.
type rankedCandidate struct {
	Name    string         `json:"name"`
	Index   int            `json:"index"`
	Score   float64        `json:"score"`
	Windows []scoredWindow `json:"windows"`
}

// discoverResponse is the /v1/discover body. Stats deliberately omits the
// Searched/Replayed split (see the endpoint comment).
type discoverResponse struct {
	Anchor     string                     `json:"anchor"`
	Candidates int                        `json:"candidates"`
	Threshold  float64                    `json:"threshold"`
	Ranked     []rankedCandidate          `json:"ranked"`
	Partial    bool                       `json:"partial"`
	Errors     []discovery.CandidateError `json:"errors,omitempty"`
	Screened   int                        `json:"screened"`
	Pruned     int                        `json:"pruned"`
	Failed     int                        `json:"failed"`
	Unfinished int                        `json:"unfinished"`
	Degenerate int                        `json:"degenerate_windows"`
	Evaluated  int                        `json:"evaluated"`
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req discoverRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		httpError(w, http.StatusBadRequest, "discover: %v", err)
		return
	}
	if req.Anchor == "" {
		httpError(w, http.StatusBadRequest, "discover: anchor is required")
		return
	}
	if s.draining.Load() {
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	sr := req.searchRequest()
	sr.applyDefaults(s.cfg)
	sOpts, err := sr.options()
	if err != nil {
		httpError(w, http.StatusBadRequest, "discover: %v", err)
		return
	}
	av, ok := s.store.Get(req.Anchor)
	if !ok {
		httpError(w, http.StatusNotFound, "discover: unknown series %q", req.Anchor)
		return
	}
	anchor := series.New(req.Anchor, av)
	names := req.Candidates
	if len(names) == 0 {
		for _, info := range s.store.Names() {
			if info.Name != req.Anchor {
				names = append(names, info.Name)
			}
		}
	}
	if len(names) == 0 {
		httpError(w, http.StatusUnprocessableEntity, "discover: no candidate series ingested")
		return
	}
	cands := make([]series.Series, 0, len(names))
	for _, name := range names {
		if name == req.Anchor {
			httpError(w, http.StatusBadRequest, "discover: anchor %q listed as its own candidate", name)
			return
		}
		v, ok := s.store.Get(name)
		if !ok {
			httpError(w, http.StatusNotFound, "discover: unknown series %q", name)
			return
		}
		cands = append(cands, series.New(name, v))
	}

	s.sink.Count("daemon.discover_requests", 1)
	s.discoveryRequests.Inc()

	ctx := r.Context()
	if sr.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(sr.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Same deterministic trace-root scheme as /v1/search: sampled requests
	// answer with X-Tycosd-Trace and every replayed search event carries the
	// derived span.
	root := obs.NewTrace(s.cfg.Seed, s.reqSeq.Add(1))
	sampled := s.sampler.Sampled(root.TraceID)
	if sampled {
		ctx = obs.ContextWithSpan(ctx, root)
		w.Header().Set("X-Tycosd-Trace", hexID(root.TraceID))
	}

	dOpts := discovery.Options{
		Search:          sOpts,
		TopK:            req.TopK,
		ScreenThreshold: req.ScreenThreshold,
		ScreenWindow:    req.ScreenWindow,
		ScreenStride:    req.ScreenStride,
		Workers:         req.Workers,
		Observer:        s.sink,
		Screen:          req.Screen == nil || *req.Screen,
	}
	if dOpts.Workers <= 0 {
		dOpts.Workers = 1
	}
	if s.journal != nil {
		dOpts.Journal = s.journal
	}

	t := &task{
		ctx:      ctx,
		pairName: req.Anchor + "/*",
		enqueued: time.Now(),
		sink:     s.sink,
		disc: &discoverJob{
			anchor: anchor,
			cands:  cands,
			opts:   dOpts,
			done:   make(chan discoverOut, 1),
		},
	}
	if sampled {
		t.span = root
	}
	switch s.admit(t) {
	case admitDraining:
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "draining")
	case admitSaturated:
		// No degraded mode for discovery: a screen-only ranking would
		// misrepresent the confirm phase. Shed with a retry hint, always.
		s.sink.Count("daemon.shed", 1)
		s.retryAfter(w)
		httpError(w, http.StatusTooManyRequests, "queue full (%d queued, %d in flight)", len(s.queue), s.inflight.Load())
	case admitted:
		out := <-t.disc.done
		if out.err != nil {
			httpError(w, http.StatusInternalServerError, "discover: %v", out.err)
			return
		}
		s.writeDiscoverResponse(w, out.res)
	}
}

// writeDiscoverResponse renders the result; the resume-dependent split goes
// to headers, everything deterministic to the body.
func (s *Server) writeDiscoverResponse(w http.ResponseWriter, res discovery.Result) {
	source := "computed"
	if res.Stats.Searched == 0 && res.Stats.Replayed > 0 {
		source = "journal"
	}
	w.Header().Set("X-Tycosd-Source", source)
	w.Header().Set("X-Tycosd-Discovery-Searched", fmt.Sprint(res.Stats.Searched))
	w.Header().Set("X-Tycosd-Discovery-Replayed", fmt.Sprint(res.Stats.Replayed))
	w.Header().Set("Content-Type", "application/json")
	resp := discoverResponse{
		Anchor:     res.Anchor,
		Candidates: res.Stats.Candidates,
		Threshold:  res.Threshold,
		Ranked:     make([]rankedCandidate, 0, len(res.Ranked)),
		Partial:    res.Partial,
		Errors:     res.Errors,
		Screened:   res.Stats.Screened,
		Pruned:     res.Stats.Pruned,
		Failed:     res.Stats.Failed,
		Unfinished: res.Stats.Unfinished,
		Degenerate: res.Stats.DegenerateWindows,
		Evaluated:  res.Stats.Evaluated,
	}
	for _, c := range res.Ranked {
		resp.Ranked = append(resp.Ranked, rankedCandidate{
			Name: c.Name, Index: c.Index, Score: c.Score,
			Windows: toWire(c.Result.Windows),
		})
	}
	json.NewEncoder(w).Encode(resp)
}

// discoverJob is the discovery payload of an admitted task.
type discoverJob struct {
	anchor series.Series
	cands  []series.Series
	opts   discovery.Options
	done   chan discoverOut
}

// discoverOut is what the worker hands back to the waiting handler.
type discoverOut struct {
	res discovery.Result
	err error
}

// runDiscoverTask executes one admitted discovery on a pool worker: run it
// (panic-isolated), translate journal degradation into readiness, publish
// the tycos_discovery_* metrics and deliver the outcome.
func (s *Server) runDiscoverTask(t *task) {
	start := time.Now()
	res, err := s.discoverOne(t)
	if err == nil {
		s.discoveryDuration.ObserveDuration(time.Since(start))
		s.discoveryCandidates.With("screened").Add(int64(res.Stats.Screened))
		s.discoveryCandidates.With("pruned").Add(int64(res.Stats.Pruned))
		s.discoveryCandidates.With("searched").Add(int64(res.Stats.Searched))
		s.discoveryCandidates.With("replayed").Add(int64(res.Stats.Replayed))
		s.discoveryCandidates.With("failed").Add(int64(res.Stats.Failed))
		if res.Stats.JournalErrors > 0 {
			// Same durability semantics as the search path: the result is
			// valid, its persistence is not — degrade readiness.
			s.journalOK.Store(false)
			s.sink.Count("daemon.journal_degraded", 1)
		}
	} else {
		s.sink.Count("daemon.discover_failed", 1)
	}
	t.disc.done <- discoverOut{res: res, err: err}
}

// discoverOne is the panic isolation boundary around one discovery; the
// faultinject point lets the chaos suite fail or stall it without reaching
// into the engine.
func (s *Server) discoverOne(t *task) (res discovery.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("daemon: discover %s panicked: %v\n%s", t.pairName, r, debug.Stack())
		}
	}()
	if err := faultinject.Fire("daemon/discover"); err != nil {
		return discovery.Result{}, err
	}
	return discovery.Discover(t.ctx, t.disc.anchor, t.disc.cands, t.disc.opts)
}
