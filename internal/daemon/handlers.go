package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tycos/internal/baseline"
	"tycos/internal/checkpoint"
	"tycos/internal/core"
	"tycos/internal/obs"
	"tycos/internal/series"
	"tycos/internal/window"
)

// routes wires the daemon's endpoint set:
//
//	GET  /healthz    — liveness: 200 while the process runs
//	GET  /readyz     — readiness: 503 while draining or journal-degraded
//	GET  /statusz    — JSON snapshot: queue, series, journal, metrics
//	GET  /metrics    — Prometheus text exposition of the telemetry registry
//	POST /v1/series  — append points to a named series (creates it)
//	POST /v1/search  — delayed-correlation search over two ingested series
//	POST /v1/discover — anchor→fleet top-K discovery (screen then confirm)
//
// Every route passes through instrument (telemetry.go), which feeds the
// per-route latency histogram and the route+code request counter.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /statusz", s.instrument("/statusz", s.handleStatusz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /v1/series", s.instrument("/v1/series", s.handleIngest))
	s.mux.HandleFunc("POST /v1/search", s.instrument("/v1/search", s.handleSearch))
	s.mux.HandleFunc("POST /v1/discover", s.instrument("/v1/discover", s.handleDiscover))
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfter stamps the Retry-After hint (whole seconds, minimum 1).
func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.retryAfter(w)
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.journalOK.Load():
		s.retryAfter(w)
		http.Error(w, "journal degraded", http.StatusServiceUnavailable)
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}
}

// journalStatus is the /statusz journal block.
type journalStatus struct {
	Path    string `json:"path"`
	Pairs   int    `json:"pairs"`
	Bytes   int64  `json:"bytes"`
	Healthy bool   `json:"healthy"`
}

// statusResponse is the /statusz body.
type statusResponse struct {
	Draining   bool             `json:"draining"`
	Workers    int              `json:"workers"`
	QueueCap   int              `json:"queue_cap"`
	QueueDepth int              `json:"queue_depth"`
	Inflight   int64            `json:"inflight"`
	Series     []seriesInfo     `json:"series"`
	Journal    *journalStatus   `json:"journal,omitempty"`
	Events     map[string]int64 `json:"events"`
	Counters   map[string]int64 `json:"counters"`
	Gauges     map[string]int64 `json:"gauges"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	resp := statusResponse{
		Draining:   s.draining.Load(),
		Workers:    s.cfg.Workers,
		QueueCap:   s.cfg.QueueDepth,
		QueueDepth: len(s.queue),
		Inflight:   s.inflight.Load(),
		Series:     s.store.Names(),
		Events:     snap.Events,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
	}
	if s.journal != nil {
		resp.Journal = &journalStatus{
			Path:    s.journal.Path(),
			Pairs:   s.journal.Len(),
			Bytes:   s.journal.SizeBytes(),
			Healthy: s.journalOK.Load(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// ingestRequest appends points to a named series.
type ingestRequest struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		httpError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	if req.Name == "" || len(req.Values) == 0 {
		httpError(w, http.StatusBadRequest, "ingest: name and values are required")
		return
	}
	for i, v := range req.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			httpError(w, http.StatusBadRequest, "ingest: values[%d] is not finite", i)
			return
		}
	}
	if s.draining.Load() {
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// The retry wraps the transient-failure window of the append path; the
	// faultinject key is the chaos suite's handle on ingest durability.
	if err := s.retry.Do(r.Context(), "daemon/ingest", func() error { return nil }); err != nil {
		s.sink.Count("daemon.ingest_failed", 1)
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	n := s.store.Append(req.Name, req.Values)
	s.sink.Count("daemon.ingest_points", int64(len(req.Values)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"name": req.Name, "len": n})
}

// searchRequest is the /v1/search body: a pair of ingested series plus the
// paper's search parameters and the per-request budgets. Zero fields take
// the documented defaults; budgets are additionally capped by the server's
// MaxEvalsCap/TimeoutCap.
type searchRequest struct {
	X string `json:"x"`
	Y string `json:"y"`

	SMin    int     `json:"smin"`
	SMax    int     `json:"smax"`
	TDMax   int     `json:"tdmax"`
	Sigma   float64 `json:"sigma"`
	Epsilon float64 `json:"epsilon"`
	K       int     `json:"k"`
	Delta   int     `json:"delta"`
	MaxIdle int     `json:"maxidle"`
	TopK    int     `json:"topk"`
	Variant string  `json:"variant"`
	Seed    int64   `json:"seed"`

	MaxEvaluations int   `json:"max_evaluations"`
	TimeoutMS      int64 `json:"timeout_ms"`
	RestartWorkers int   `json:"restart_workers"`
}

// applyDefaults fills zero fields; it must run before fingerprinting so
// spelled-out and defaulted requests share a journal entry.
func (req *searchRequest) applyDefaults(cfg Config) {
	if req.SMin <= 0 {
		req.SMin = 6
	}
	if req.SMax <= 0 {
		req.SMax = 96
	}
	if req.TDMax <= 0 {
		req.TDMax = 30
	}
	//lint:allow floateq exact zero means the JSON field was absent, not a computed value
	if req.Sigma == 0 {
		req.Sigma = 0.25
	}
	if req.Variant == "" {
		req.Variant = "lmn"
	}
	if req.Seed == 0 {
		req.Seed = cfg.Seed
	}
	if cfg.MaxEvalsCap > 0 && (req.MaxEvaluations <= 0 || req.MaxEvaluations > cfg.MaxEvalsCap) {
		req.MaxEvaluations = cfg.MaxEvalsCap
	}
	capMS := int64(cfg.TimeoutCap / time.Millisecond)
	if capMS > 0 && (req.TimeoutMS <= 0 || req.TimeoutMS > capMS) {
		req.TimeoutMS = capMS
	}
	if req.RestartWorkers <= 0 {
		// One restart worker per search: the daemon's parallelism lives in
		// its worker pool, and results are identical for every value anyway.
		req.RestartWorkers = 1
	}
}

// options translates the request into core.Options.
func (req *searchRequest) options() (core.Options, error) {
	opts := core.Options{
		SMin: req.SMin, SMax: req.SMax, TDMax: req.TDMax,
		Sigma: req.Sigma, Epsilon: req.Epsilon, K: req.K,
		Delta: req.Delta, MaxIdle: req.MaxIdle, TopK: req.TopK,
		Seed:           req.Seed,
		MaxEvaluations: req.MaxEvaluations,
		RestartWorkers: req.RestartWorkers,
	}
	switch strings.ToLower(req.Variant) {
	case "l":
		opts.Variant = core.VariantL
	case "ln":
		opts.Variant = core.VariantLN
	case "lm":
		opts.Variant = core.VariantLM
	case "lmn":
		opts.Variant = core.VariantLMN
	default:
		return opts, fmt.Errorf("unknown variant %q (want l, ln, lm or lmn)", req.Variant)
	}
	return opts, nil
}

// fingerprint hashes everything that determines a search's result — the
// pair, the data version (append-only, so the lengths), and every
// result-affecting option — into the journal key, so a journaled result is
// only ever replayed for a request that would recompute it identically.
// The option fields are serialized by checkpoint.HashOptions, the one
// canonical enumeration shared with the discovery engine, so a new
// result-affecting option cannot be threaded into one journal key and
// forgotten in the other. Wall-clock timeouts are excluded by construction:
// HashOptions skips Deadline, and a timeout either leaves the result
// untouched or makes it partial, and partial results are never journaled.
func (req *searchRequest) fingerprint(n int, opts core.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00", req.X, req.Y, n)
	checkpoint.HashOptions(h, opts)
	return fmt.Sprintf("%016x", h.Sum64())
}

// scoredWindow is the wire form of one accepted window.
type scoredWindow struct {
	Start int     `json:"start"`
	End   int     `json:"end"`
	Delay int     `json:"delay"`
	Score float64 `json:"score"`
}

// searchResponse is the /v1/search body. For non-degraded responses it is a
// pure function of (ingested data, request), so chaos harnesses compare the
// bytes of resumed and uninterrupted runs directly.
type searchResponse struct {
	X          string         `json:"x"`
	Y          string         `json:"y"`
	N          int            `json:"n"` // samples searched (min of the two lengths)
	Windows    []scoredWindow `json:"windows"`
	Stats      core.Stats     `json:"stats"`
	Partial    bool           `json:"partial"`
	StopReason string         `json:"stop_reason"`
	Degraded   bool           `json:"degraded,omitempty"`
}

// toWire converts accepted windows; the empty slice (not null) keeps the
// JSON stable between zero-hit and missing.
func toWire(ws []window.Scored) []scoredWindow {
	out := make([]scoredWindow, 0, len(ws))
	for _, w := range ws {
		out = append(out, scoredWindow{Start: w.Start, End: w.End, Delay: w.Delay, Score: w.MI})
	}
	return out
}

func (s *Server) writeSearchResponse(w http.ResponseWriter, req *searchRequest, n int, res core.Result, source string) {
	w.Header().Set("X-Tycosd-Source", source)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(searchResponse{
		X: req.X, Y: req.Y, N: n,
		Windows:    toWire(res.Windows),
		Stats:      res.Stats.Deterministic(),
		Partial:    res.Partial,
		StopReason: string(res.Stats.StopReason),
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	var req searchRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		httpError(w, http.StatusBadRequest, "search: %v", err)
		return
	}
	if req.X == "" || req.Y == "" {
		httpError(w, http.StatusBadRequest, "search: x and y are required")
		return
	}
	if s.draining.Load() {
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req.applyDefaults(s.cfg)
	opts, err := req.options()
	if err != nil {
		httpError(w, http.StatusBadRequest, "search: %v", err)
		return
	}
	xv, ok := s.store.Get(req.X)
	if !ok {
		httpError(w, http.StatusNotFound, "search: unknown series %q", req.X)
		return
	}
	yv, ok := s.store.Get(req.Y)
	if !ok {
		httpError(w, http.StatusNotFound, "search: unknown series %q", req.Y)
		return
	}
	// The two series may have drifted apart in length under live ingest;
	// search their common prefix.
	n := min(len(xv), len(yv))
	pair, err := series.NewPair(series.New(req.X, xv[:n]), series.New(req.Y, yv[:n]))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "search: %v", err)
		return
	}

	jx, jy := req.X, req.Y+"\x1f"+req.fingerprint(n, opts)
	s.sink.Count("daemon.search_requests", 1)
	if s.journal != nil {
		if res, ok := s.journal.Lookup(jx, jy); ok {
			s.sink.Count("daemon.journal_hits", 1)
			s.writeSearchResponse(w, &req, n, res, "journal")
			return
		}
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Per-request telemetry. Every computed search gets a deterministic
	// trace root (a pure function of the server seed and the request
	// sequence number). Stamping is active when the sampler accepts the
	// trace ID or the slow log is on — the root span rides the context into
	// core.SearchContext, which stamps every event with a derived child
	// span. Sampled requests additionally answer with X-Tycosd-Trace so
	// callers can grep their trace out of the event stream.
	root := obs.NewTrace(s.cfg.Seed, s.reqSeq.Add(1))
	sampled := s.sampler.Sampled(root.TraceID)
	reqSink := s.sink
	var recorder *obs.SpanRecorder
	if s.slowLogEnabled() {
		recorder = obs.NewSpanRecorder(0)
		reqSink = obs.Multi(s.sink, recorder)
	}
	stamping := sampled || recorder != nil
	if stamping {
		ctx = obs.ContextWithSpan(ctx, root)
	}
	if sampled {
		w.Header().Set("X-Tycosd-Trace", hexID(root.TraceID))
	}
	opts.Observer = reqSink

	t := &task{
		ctx: ctx, pair: pair, opts: opts,
		jkeyX: jx, jkeyY: jy,
		done:     make(chan taskResult, 1),
		pairName: req.X + "/" + req.Y,
		enqueued: time.Now(),
		sink:     reqSink,
	}
	if stamping {
		t.span = root
	}
	switch s.admit(t) {
	case admitDraining:
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "draining")
	case admitSaturated:
		s.sink.Count("daemon.shed", 1)
		if s.cfg.Shed == ShedDegrade {
			s.degradedSearch(w, &req, xv[:n], yv[:n])
			return
		}
		s.retryAfter(w)
		httpError(w, http.StatusTooManyRequests, "queue full (%d queued, %d in flight)", len(s.queue), s.inflight.Load())
	case admitted:
		// Block until the worker answers: cancellation (client gone,
		// timeout) propagates through t.ctx into the search itself, which
		// then returns promptly with a partial result.
		out := <-t.done
		if out.err != nil {
			httpError(w, http.StatusInternalServerError, "search: %v", out.err)
			return
		}
		elapsed := time.Since(reqStart)
		if stamping {
			// The request span closes here, after the search and before the
			// response — the last stamped event of the trace.
			obs.WithSpan(reqSink, root).Event(obs.SpanFinished{Name: "http.request", DurationNS: int64(elapsed)})
		}
		if recorder != nil && elapsed >= s.cfg.SlowLogThreshold {
			// The slow line is written before the response so a caller that
			// saw a slow answer can always find its trace in the log.
			s.writeSlowLog(t.pairName, root, elapsed, out.res, recorder)
		}
		s.writeSearchResponse(w, &req, n, out.res, "computed")
	}
}

// degradedSearch answers a saturated-queue request with the sliding-PCC
// pre-screen: delay-0 linear correlation over smin-sized windows. It is a
// pre-screen, not a KSG result — scores are |r|, delays are always 0 and
// non-linear correlation is invisible — which is exactly the trade the
// ShedDegrade policy buys capacity with.
func (s *Server) degradedSearch(w http.ResponseWriter, req *searchRequest, xv, yv []float64) {
	wins, err := baseline.SlidingPCC(xv, yv, req.SMin, req.Sigma)
	if err != nil {
		s.retryAfter(w)
		httpError(w, http.StatusTooManyRequests, "queue full and degraded pre-screen unavailable: %v", err)
		return
	}
	s.sink.Count("daemon.degraded", 1)
	w.Header().Set("X-Tycosd-Source", "degraded")
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(searchResponse{
		X: req.X, Y: req.Y, N: len(xv),
		Windows:    toWire(wins),
		Partial:    true,
		StopReason: "degraded-pcc",
		Degraded:   true,
	})
}

// decodeJSON decodes a size-bounded JSON body, rejecting unknown fields so
// a typo'd option fails loudly instead of silently defaulting.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}
