package daemon

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"tycos/internal/core"
	"tycos/internal/faultinject"
	"tycos/internal/obs"
	"tycos/internal/series"
)

// task is one admitted search: the prepared pair and options, the request
// context (cancelled when the client goes away or the request deadline
// expires), and a buffered result channel so the worker never blocks on a
// handler that already left. The telemetry fields carry the request's
// observer fan-out, its trace root (zero when the request is unstamped) and
// the admission timestamp the queue-wait histogram measures from.
type task struct {
	ctx      context.Context
	pair     series.Pair
	opts     core.Options
	jkeyX    string // journal key halves ("" when journaling is off)
	jkeyY    string
	done     chan taskResult
	pairName string
	enqueued time.Time
	sink     obs.Sink
	span     obs.SpanContext
	// disc marks a /v1/discover task; the search fields above are unused
	// then and the result travels on disc.done instead (discovery.go).
	disc *discoverJob
}

// taskResult is what a worker hands back to the waiting handler.
type taskResult struct {
	res core.Result
	err error
}

// admitOutcome classifies one admission attempt.
type admitOutcome int

const (
	admitted admitOutcome = iota
	admitDraining
	admitSaturated
)

// admit tries to enqueue the task without ever blocking: a full queue is an
// admission decision, not a wait. The shared lock orders the attempt against
// Drain's exclusive queue close.
func (s *Server) admit(t *task) admitOutcome {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return admitDraining
	}
	select {
	case s.queue <- t:
		obs.SetGauge(s.sink, "queue_depth", int64(len(s.queue)))
		return admitted
	default:
		return admitSaturated
	}
}

// startWorkers launches the fixed worker pool. Each worker survives
// arbitrary task panics: runTask recovers per task, and the loop carries a
// backstop recover so an escaped panic degrades one worker instead of
// killing the process.
func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					s.sink.Count("daemon.worker_lost", 1)
				}
			}()
			for t := range s.queue {
				s.runTask(t)
			}
		}()
	}
}

// runTask executes one admitted search end to end: run it (panic-isolated),
// journal a complete result (with retries; a journal that stays broken
// degrades readiness, not the response), and deliver the outcome.
func (s *Server) runTask(t *task) {
	s.inflight.Add(1)
	obs.SetGauge(s.sink, "inflight", s.inflight.Load())
	obs.SetGauge(s.sink, "queue_depth", int64(len(s.queue)))
	if !t.enqueued.IsZero() {
		wait := time.Since(t.enqueued)
		s.queueWait.ObserveDuration(wait)
		if t.span.Valid() && t.sink != nil {
			// The queue wait is its own span under the request root, so a
			// slow trace shows whether time went to queueing or searching.
			t.sink.Event(obs.Traced{
				Span:  t.span.Child("queue.wait"),
				Event: obs.SpanFinished{Name: "queue.wait", DurationNS: int64(wait)},
			})
		}
	}
	defer func() {
		s.inflight.Add(-1)
		obs.SetGauge(s.sink, "inflight", s.inflight.Load())
	}()

	if t.disc != nil {
		s.runDiscoverTask(t)
		return
	}

	res, err := s.searchOne(t)
	if err == nil {
		// Wall-clock timings are the one nondeterministic part of a result;
		// strip them so journal replay and chaos-harness golden comparisons
		// are byte-identical (core.Stats.Deterministic).
		res.Stats = res.Stats.Deterministic()
	}
	if err == nil && !res.Partial && s.journal != nil {
		rerr := s.retry.Do(t.ctx, "daemon/journal", func() error {
			return s.journal.Record(t.jkeyX, t.jkeyY, res)
		})
		if rerr != nil {
			// The search result is still valid — only its durability is
			// gone. Serve it, mark the journal degraded (readyz reports it)
			// and count the loss.
			s.journalOK.Store(false)
			s.sink.Count("daemon.journal_degraded", 1)
		} else {
			s.journalOK.Store(true)
		}
	}
	if err != nil {
		s.sink.Count("daemon.search_failed", 1)
	}
	t.done <- taskResult{res: res, err: err}
}

// searchOne is the panic isolation boundary around one search; the
// faultinject points let the chaos suite panic, fail or stall a search
// without reaching into the core.
func (s *Server) searchOne(t *task) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("daemon: search %s panicked: %v\n%s", t.pairName, r, debug.Stack())
		}
	}()
	if err := faultinject.Fire("daemon/search"); err != nil {
		return core.Result{}, err
	}
	if err := faultinject.Fire("daemon/search/" + t.pairName); err != nil {
		return core.Result{}, err
	}
	return core.SearchContext(t.ctx, t.pair, t.opts)
}

// Drain performs the graceful shutdown sequence: stop admitting (readyz and
// new searches turn away immediately), let queued and in-flight searches
// finish, flush and close the journal, then return. A second Drain is a
// no-op. If ctx expires first, Drain returns its error with workers still
// running — the caller decides whether to hard-exit.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	obs.SetGauge(s.sink, "draining", 1)
	s.stopSampler()
	s.admitMu.Lock()
	close(s.queue)
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		defer func() {
			recover() // Wait cannot panic; keep the lint-visible backstop anyway
		}()
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("daemon: drain: %w", ctx.Err())
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			return fmt.Errorf("daemon: drain: %w", err)
		}
	}
	return nil
}

// Close is Drain without a deadline, for tests and defer-style cleanup; it
// additionally closes the journal even when a prior Drain already ran. When
// that close is the journal's first (a prior Drain timed out before reaching
// it), its error is the only signal that the final journal bytes may not
// have landed, so it is surfaced rather than swallowed.
func (s *Server) Close() error {
	err := s.Drain(context.Background())
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("daemon: close journal: %w", cerr)
		}
	}
	return err
}
