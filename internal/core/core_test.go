package core

import (
	"math/rand"
	"testing"

	"tycos/internal/series"
	"tycos/internal/window"
)

// testPair builds a pair of length n that is independent noise except for a
// strongly dependent segment [segStart, segEnd] where y[i+delay] = x[i] plus
// small noise.
func testPair(seed int64, n, segStart, segEnd, delay int) series.Pair {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := segStart; i <= segEnd; i++ {
		x[i] = rng.NormFloat64() * 2
		y[i+delay] = x[i] + 0.05*rng.NormFloat64()
	}
	return series.MustPair(series.New("x", x), series.New("y", y))
}

func defaultOpts() Options {
	return Options{
		SMin:    10,
		SMax:    60,
		TDMax:   5,
		Sigma:   0.25,
		MaxIdle: 3,
		Seed:    1,
	}
}

func overlapsSegment(ws []window.Scored, segStart, segEnd int) bool {
	seg := window.Window{Start: segStart, End: segEnd}
	for _, w := range ws {
		if w.OverlapX(seg) > (segEnd-segStart)/3 {
			return true
		}
	}
	return false
}

func TestSearchFindsEmbeddedCorrelationAllVariants(t *testing.T) {
	p := testPair(3, 300, 120, 180, 0)
	for _, v := range []Variant{VariantL, VariantLN, VariantLM, VariantLMN} {
		opts := defaultOpts()
		opts.Variant = v
		res, err := Search(p, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Windows) == 0 {
			t.Errorf("%v: no windows found", v)
			continue
		}
		if !overlapsSegment(res.Windows, 120, 180) {
			t.Errorf("%v: windows %v miss the embedded segment [120,180]", v, res.Windows)
		}
		for _, w := range res.Windows {
			if w.MI < opts.Sigma {
				t.Errorf("%v: window %v below σ", v, w)
			}
			if !opts.constraints(p.Len()).Feasible(w.Window) {
				t.Errorf("%v: infeasible window %v", v, w)
			}
		}
	}
}

func TestSearchRecoversTimeDelay(t *testing.T) {
	// The driving signal inside the segment is autocorrelated (AR(1)), as
	// real phenomena are; partial alignments then carry partial MI, giving
	// the climb a gradient in the delay dimension. With an i.i.d. driver
	// there is no such gradient and no local search can find the delay.
	const trueDelay = 4
	rng := rand.New(rand.NewSource(7))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	ar := 0.0
	for i := 100; i <= 180; i++ {
		ar = 0.9*ar + rng.NormFloat64()
		x[i] = ar
		y[i+trueDelay] = x[i] + 0.05*rng.NormFloat64()
	}
	p := series.MustPair(series.New("x", x), series.New("y", y))
	opts := defaultOpts()
	opts.MaxIdle = 5
	opts.Variant = VariantLMN
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Windows {
		if w.OverlapX(window.Window{Start: 100, End: 180}) > 25 && w.Delay >= trueDelay-2 && w.Delay <= trueDelay+2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no window recovered delay ≈ %d: %v", trueDelay, res.Windows)
	}
}

func TestSearchDeterministicForSeed(t *testing.T) {
	p := testPair(11, 300, 100, 160, 2)
	opts := defaultOpts()
	opts.Variant = VariantLN
	a, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("non-deterministic window count: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Errorf("window %d differs: %v vs %v", i, a.Windows[i], b.Windows[i])
		}
	}
}

func TestSearchNoFalsePositivesOnIndependentData(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	p := series.MustPair(series.New("x", x), series.New("y", y))
	opts := defaultOpts()
	opts.SMin = 20
	opts.Sigma = 0.45
	opts.Variant = VariantLMN
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) > 1 {
		t.Errorf("independent noise produced %d windows: %v", len(res.Windows), res.Windows)
	}
}

func TestSearchResultNonOverlapping(t *testing.T) {
	p := testPair(23, 450, 80, 150, 0)
	// Add a second correlated segment.
	rng := rand.New(rand.NewSource(29))
	for i := 280; i <= 360; i++ {
		p.X.Values[i] = rng.NormFloat64() * 2
		p.Y.Values[i] = -p.X.Values[i] + 0.05*rng.NormFloat64()
	}
	opts := defaultOpts()
	opts.Variant = VariantLMN
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(res.Windows); i++ {
		for j := i + 1; j < len(res.Windows); j++ {
			if res.Windows[i].OverlapX(res.Windows[j].Window) > 0 {
				t.Errorf("overlapping results: %v and %v", res.Windows[i], res.Windows[j])
			}
		}
	}
	if !overlapsSegment(res.Windows, 80, 150) || !overlapsSegment(res.Windows, 280, 360) {
		t.Errorf("missed a segment: %v", res.Windows)
	}
}

func TestBruteForceAgainstSearchSimilarity(t *testing.T) {
	p := testPair(31, 140, 50, 95, 0)
	opts := Options{SMin: 8, SMax: 40, TDMax: 2, Sigma: 0.3, MaxIdle: 3, Seed: 1}
	bf, err := BruteForce(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Windows) == 0 {
		t.Fatal("brute force found nothing")
	}
	if !overlapsSegment(bf.Windows, 50, 95) {
		t.Errorf("brute force missed segment: %v", bf.Windows)
	}
	opts.Variant = VariantLMN
	heur, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim := window.SymmetricMatchRate(bf.Windows, heur.Windows)
	if sim < 50 {
		t.Errorf("match rate TYCOS vs BruteForce = %.1f%%, windows bf=%v heur=%v", sim, bf.Windows, heur.Windows)
	}
}

func TestSearchSpaceSizeReporting(t *testing.T) {
	opts := Options{SMin: 20, SMax: 400, TDMax: 20}
	got := SearchSpaceSize(9000, opts)
	// Eq. (4) counts 2·td_max delays per window; the exact enumeration also
	// counts τ = 0 but loses boundary windows, so the two agree within ~1%.
	const eq4 = 136870440
	if got < eq4*99/100 || got > eq4*101/100 {
		t.Errorf("search space = %d, want within 1%% of Eq.(4) = %d", got, eq4)
	}
}

func TestOptionsValidation(t *testing.T) {
	p := testPair(1, 100, 10, 40, 0)
	bad := []Options{
		{SMin: 0, SMax: 10, TDMax: 1, Sigma: 0.3},               // s_min too small
		{SMin: 20, SMax: 10, TDMax: 1, Sigma: 0.3},              // s_max < s_min
		{SMin: 8, SMax: 20, TDMax: -1, Sigma: 0.3},              // negative delay — caught by withDefaults? no: validate
		{SMin: 8, SMax: 20, TDMax: 1, Sigma: -0.1},              // negative sigma
		{SMin: 8, SMax: 20, TDMax: 1, Sigma: 0.3, Epsilon: 0.4}, // ε ≥ σ
		{SMin: 3, SMax: 20, TDMax: 1, Sigma: 0.3, K: 4},         // s_min ≤ k
	}
	for i, o := range bad {
		if _, err := Search(p, o); err == nil {
			t.Errorf("case %d should fail: %+v", i, o)
		}
		if _, err := BruteForce(p, o); err == nil {
			t.Errorf("brute case %d should fail: %+v", i, o)
		}
	}
}

func TestTopKFiltering(t *testing.T) {
	p := testPair(37, 450, 60, 130, 0)
	rng := rand.New(rand.NewSource(41))
	for i := 200; i <= 270; i++ {
		p.Y.Values[i] = p.X.Values[i]*0.8 + 0.3*rng.NormFloat64()
	}
	for i := 330; i <= 400; i++ {
		p.Y.Values[i] = -p.X.Values[i] + 0.05*rng.NormFloat64()
	}
	opts := defaultOpts()
	opts.Sigma = 0 // threshold comes from the top-K list
	opts.TopK = 2
	opts.Variant = VariantLMN
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) > 2 {
		t.Errorf("top-2 returned %d windows: %v", len(res.Windows), res.Windows)
	}
	if len(res.Windows) == 0 {
		t.Error("top-K returned nothing")
	}
}

func TestVariantStrings(t *testing.T) {
	names := map[Variant]string{
		VariantL: "TYCOS_L", VariantLN: "TYCOS_LN",
		VariantLM: "TYCOS_LM", VariantLMN: "TYCOS_LMN",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	p := testPair(43, 250, 80, 140, 0)
	opts := defaultOpts()
	opts.Variant = VariantLMN
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WindowsEvaluated == 0 {
		t.Error("no windows evaluated recorded")
	}
	if res.Stats.Restarts == 0 {
		t.Error("no restarts recorded")
	}
	if res.Stats.MIIncremental == 0 {
		t.Error("incremental variant recorded no incremental moves")
	}
	opts.Variant = VariantL
	res, err = Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MIIncremental != 0 {
		t.Error("batch variant recorded incremental moves")
	}
	if res.Stats.MIBatch == 0 {
		t.Error("batch variant recorded no batch estimations")
	}
}

func TestSearchAll(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 250
	mk := func(name string) series.Series {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return series.New(name, v)
	}
	a := mk("a")
	b := mk("b")
	c := mk("c")
	// Couple only (a, c) so exactly one pair should fire.
	for i := 60; i < 140; i++ {
		c.Values[i] = a.Values[i] + 0.05*rng.NormFloat64()
	}
	opts := defaultOpts()
	opts.SMin = 16
	opts.Sigma = 0.4
	opts.Variant = VariantLMN
	results := SearchAll([]series.Series{a, b, c}, opts, 2)
	if len(results) != 3 {
		t.Fatalf("expected 3 pairs, got %d", len(results))
	}
	found := map[string]int{}
	for _, pr := range results {
		if pr.Err != nil {
			t.Fatalf("pair (%s,%s): %v", pr.XName, pr.YName, pr.Err)
		}
		found[pr.XName+"/"+pr.YName] = len(pr.Result.Windows)
	}
	if found["a/c"] == 0 {
		t.Errorf("coupled pair found no windows: %v", found)
	}
	if found["a/b"] > 1 || found["b/c"] > 1 {
		t.Errorf("uncoupled pairs over-fire: %v", found)
	}
	// Determinism across parallelism levels.
	seq := SearchAll([]series.Series{a, b, c}, opts, 1)
	for i := range results {
		if len(results[i].Result.Windows) != len(seq[i].Result.Windows) {
			t.Errorf("pair %d differs across parallelism", i)
		}
	}
	// Mismatched lengths produce a per-pair error, not a panic.
	short := series.New("short", make([]float64, 10))
	mixed := SearchAll([]series.Series{a, short}, opts, 0)
	if len(mixed) != 1 || mixed[0].Err == nil {
		t.Errorf("length mismatch not reported: %+v", mixed)
	}
	if SearchAll(nil, opts, 0) != nil {
		t.Error("no series must produce no results")
	}
}
