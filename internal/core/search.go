package core

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"time"

	"tycos/internal/lahc"
	"tycos/internal/mi"
	"tycos/internal/series"
	"tycos/internal/window"
)

// searcher carries the state of one Search invocation.
type searcher struct {
	pair   series.Pair
	opts   Options
	cons   window.Constraints
	scorer scorer
	rng    *rand.Rand
	stats  Stats
	ctx    context.Context
	stop   StopReason // first triggered stop condition ("" while running)
}

// Search runs TYCOS over the pair with the configured variant and returns
// the accepted non-overlapping windows, scored with the configured
// normalization, sorted by start index.
//
// The search is Algorithm 1 (plus Algorithm 2 for the noise variants): LAHC
// climbs from an initial window, exploring δ-neighbourhoods that widen while
// no improvement is found; when T_maxIdle explorations in a row fail to
// improve, the local optimum is recorded and the search restarts on the
// unscanned remainder until the pair is covered.
func Search(p series.Pair, opts Options) (Result, error) {
	return SearchContext(context.Background(), p, opts)
}

// SearchContext is Search with cooperative cancellation. The context is
// checked at restart and climb-iteration boundaries; on cancellation (or an
// exceeded Options budget) the search returns the windows accepted so far
// with Result.Partial set and Stats.StopReason recording the cause, rather
// than an error — partial results from a cancelled search remain valid,
// prefix-consistent output.
func SearchContext(ctx context.Context, p series.Pair, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(p.Len()); err != nil {
		return Result{}, err
	}
	if err := p.CheckFinite(); err != nil {
		return Result{}, errors.New("core: " + err.Error() + " (clean the input with series.FillMissing)")
	}
	p = jitterPair(p, opts.Jitter, opts.Seed)
	s := &searcher{
		pair: p,
		opts: opts,
		cons: opts.constraints(p.Len()),
		rng:  rand.New(rand.NewSource(opts.Seed)),
		ctx:  ctx,
	}
	var null *nullModel
	if opts.SignificanceLevel > 0 {
		// A dedicated RNG keeps the calibration from perturbing the walk.
		null = buildNullModel(p, opts, rand.New(rand.NewSource(opts.Seed+0x5eed)))
	}
	if opts.Variant.incremental() {
		sc := newIncScorer(p, opts.K, opts.Normalization, opts.SMax)
		sc.null = null
		s.scorer = sc
	} else {
		sc := newBatchScorer(p, opts.K, opts.Normalization)
		sc.null = null
		s.scorer = sc
	}

	var candidates []window.Scored
	var topk *mi.TopK

	scanFrom := 0
	n := p.Len()
	for scanFrom+opts.SMin <= n {
		if s.checkStop() {
			break
		}
		w0, ok := s.initialWindow(scanFrom)
		if !ok {
			break
		}
		best, bestScore, completed := s.climb(w0)
		if !completed {
			// The interrupted climb's best-so-far may differ from what the
			// full climb would have settled on; dropping it keeps partial
			// results a prefix of the uninterrupted run.
			break
		}
		if null != nil {
			// The reported and thresholded score is the significance-
			// corrected one; the climb's internal score is uncorrected.
			if corrected, err := s.scorer.finalScore(best); err == nil {
				bestScore = corrected
			}
		}
		if topk == nil && opts.TopK > 0 {
			topk = mi.NewTopK(opts.TopK, bestScore)
		}
		candidates = append(candidates, window.Scored{Window: best, MI: bestScore})
		if opts.onCandidate != nil {
			opts.onCandidate(window.Scored{Window: best, MI: bestScore})
		}
		if topk != nil {
			topk.Offer(bestScore)
		}
		s.stats.Restarts++
		next := best.End + 1
		if min := scanFrom + opts.SMin; next < min {
			next = min
		}
		scanFrom = next
	}

	threshold := opts.Sigma
	if topk != nil {
		threshold = topk.Threshold()
	}
	var set window.Set
	for _, c := range candidates {
		if c.MI >= threshold {
			set.Insert(c)
		}
	}
	items := set.Items()
	if topk != nil && len(items) > opts.TopK {
		sort.Slice(items, func(i, j int) bool { return items[i].MI > items[j].MI })
		items = items[:opts.TopK]
		sort.Slice(items, func(i, j int) bool { return items[i].Start < items[j].Start })
	}
	s.stats.MIBatch, s.stats.MIIncremental = s.scorer.stats()
	if s.stop == "" {
		s.stop = StopCompleted
	}
	s.stats.StopReason = s.stop
	return Result{Windows: items, Stats: s.stats, Partial: s.stop != StopCompleted}, nil
}

// checkStop records the first exceeded budget or cancellation and reports
// whether the search must stop. It is called at restart and climb-iteration
// boundaries only, so a stop never interrupts a neighbourhood evaluation —
// that keeps the stop point, and hence the returned windows, deterministic
// for the deterministic budgets. The evaluation budget is checked before the
// context so that a run configured with both stops identically whether or
// not the context also fired.
func (s *searcher) checkStop() bool {
	if s.stop != "" {
		return true
	}
	if s.opts.MaxEvaluations > 0 && s.stats.WindowsEvaluated >= s.opts.MaxEvaluations {
		s.stop = StopBudget
		return true
	}
	select {
	case <-s.ctx.Done():
		if errors.Is(s.ctx.Err(), context.DeadlineExceeded) {
			s.stop = StopDeadline
		} else {
			s.stop = StopCancelled
		}
		return true
	default:
	}
	if !s.opts.Deadline.IsZero() && !time.Now().Before(s.opts.Deadline) {
		s.stop = StopDeadline
		return true
	}
	return false
}

// initialWindow picks the starting solution for a climb: the plain variants
// start at the minimal window at the scan position (Algorithm 1, line 2);
// the noise variants run the Section 6.2.1 hierarchical construction.
func (s *searcher) initialWindow(from int) (window.Window, bool) {
	if s.opts.Variant.noise() {
		return s.initialNoisePruning(from)
	}
	w := window.Window{Start: from, End: from + s.opts.SMin - 1, Delay: 0}
	return w, s.cons.Feasible(w)
}

// climb runs one LAHC ascent from w0 and returns the best feasible window
// seen with its score. completed is false when a stop condition interrupted
// the ascent before its idle budget ran out.
func (s *searcher) climb(w0 window.Window) (best window.Window, bestScore float64, completed bool) {
	cur := w0
	curScore := s.mustScore(cur)
	best, bestScore = cur, curScore

	acceptor := lahc.New(s.opts.HistoryLength, curScore, s.rng)
	idle := 0
	level := 1
	var pruned map[direction]bool
	if s.opts.Variant.noise() {
		pruned = s.prunedDirections(cur)
	}

	// Hard ceiling against pathological wandering; in practice the idle
	// budget stops the climb long before this.
	maxIters := 100*s.opts.MaxIdle + 2*s.opts.SMax/s.opts.Delta

	for iter := 0; idle < s.opts.MaxIdle && iter < maxIters; iter++ {
		if s.checkStop() {
			return best, bestScore, false
		}
		neighbors := neighborhood(cur, s.opts.Delta, level, s.cons, pruned)
		if len(neighbors) == 0 {
			idle++
			level++
			continue
		}
		bestnb := neighbors[0]
		bestnbScore := s.mustScore(bestnb)
		for _, nb := range neighbors[1:] {
			if sc := s.mustScore(nb); sc > bestnbScore {
				bestnb, bestnbScore = nb, sc
			}
		}
		newCur, accepted := acceptor.Consider(curScore, bestnbScore)
		if accepted {
			cur, curScore = bestnb, newCur
			if s.opts.Variant.noise() {
				pruned = s.prunedDirections(cur)
			}
		}
		// The idle budget counts explorations that fail to push the climb's
		// best solution meaningfully forward. Resetting on any accepted move
		// would let LAHC's late acceptance cycle (drop, re-improve, …)
		// forever, and resetting on any new best would let estimator noise
		// across thousands of visited windows trickle microscopic records;
		// progress therefore requires beating the best by MinImprovement.
		progressed := accepted && curScore > bestScore+s.opts.MinImprovement
		if accepted && curScore > bestScore {
			best, bestScore = cur, curScore
		}
		if progressed {
			idle = 0
			level = 1
		} else {
			idle++
			level++
		}
	}
	return best, bestScore, true
}

// mustScore scores a window, mapping estimation failures (degenerate or
// undersized windows) to 0 — such windows carry no usable evidence of
// correlation.
func (s *searcher) mustScore(w window.Window) float64 {
	sc, err := s.scorer.score(w)
	if err != nil {
		return 0
	}
	s.stats.WindowsEvaluated++
	return sc
}
