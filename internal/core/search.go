package core

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"time"

	"tycos/internal/lahc"
	"tycos/internal/mi"
	"tycos/internal/obs"
	"tycos/internal/series"
	"tycos/internal/window"
)

// searcher carries the state of one Search invocation.
type searcher struct {
	pair   series.Pair
	opts   Options
	cons   window.Constraints
	scorer scorer
	rng    *rand.Rand
	stats  Stats
	ctx    context.Context
	stop   StopReason // first triggered stop condition ("" while running)

	obs       obs.Sink // Options.Observer; nil disables all emission
	pairName  string   // "x/y" event label, "" for unnamed series
	clockTick int      // deadline clock sampling counter (checkStop)
}

// obsWindow converts a search window into its observability mirror.
func obsWindow(w window.Window) obs.Window {
	return obs.Window{Start: w.Start, End: w.End, Delay: w.Delay}
}

// pairLabel names a pair for events; unnamed series yield "".
func pairLabel(p series.Pair) string {
	if p.X.Name == "" && p.Y.Name == "" {
		return ""
	}
	return p.X.Name + "/" + p.Y.Name
}

// Search runs TYCOS over the pair with the configured variant and returns
// the accepted non-overlapping windows, scored with the configured
// normalization, sorted by start index.
//
// The search is Algorithm 1 (plus Algorithm 2 for the noise variants): LAHC
// climbs from an initial window, exploring δ-neighbourhoods that widen while
// no improvement is found; when T_maxIdle explorations in a row fail to
// improve, the local optimum is recorded and the search restarts on the
// unscanned remainder until the pair is covered.
func Search(p series.Pair, opts Options) (Result, error) {
	return SearchContext(context.Background(), p, opts)
}

// SearchContext is Search with cooperative cancellation. The context is
// checked at restart and climb-iteration boundaries; on cancellation (or an
// exceeded Options budget) the search returns the windows accepted so far
// with Result.Partial set and Stats.StopReason recording the cause, rather
// than an error — partial results from a cancelled search remain valid,
// prefix-consistent output.
func SearchContext(ctx context.Context, p series.Pair, opts Options) (Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := opts.validate(p.Len()); err != nil {
		return Result{}, err
	}
	if err := p.CheckFinite(); err != nil {
		return Result{}, errors.New("core: " + err.Error() + " (clean the input with series.FillMissing)")
	}
	p = jitterPair(p, opts.Jitter, opts.Seed)
	s := &searcher{
		pair:     p,
		opts:     opts,
		cons:     opts.constraints(p.Len()),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		ctx:      ctx,
		obs:      opts.Observer,
		pairName: pairLabel(p),
	}
	s.stats.Timing.Validate = time.Since(start)
	if s.obs != nil {
		s.obs.PhaseEnd(obs.PhaseValidate, s.stats.Timing.Validate)
	}
	var null *nullModel
	if opts.SignificanceLevel > 0 {
		// A dedicated RNG keeps the calibration from perturbing the walk.
		nmStart := time.Now()
		null = buildNullModel(p, opts, rand.New(rand.NewSource(opts.Seed+0x5eed)))
		s.stats.Timing.NullModel = time.Since(nmStart)
		if s.obs != nil {
			s.obs.PhaseEnd(obs.PhaseNullModel, s.stats.Timing.NullModel)
		}
	}
	if opts.Variant.incremental() {
		sc := newIncScorer(p, opts.K, opts.Normalization, opts.SMax)
		sc.null = null
		s.scorer = sc
	} else {
		sc := newBatchScorer(p, opts.K, opts.Normalization)
		sc.null = null
		s.scorer = sc
	}

	var candidates []window.Scored
	var topk *mi.TopK

	climbStart := time.Now()
	scanFrom := 0
	n := p.Len()
	for scanFrom+opts.SMin <= n {
		if s.checkStop() {
			break
		}
		if s.obs != nil {
			s.obs.Event(obs.RestartStarted{Pair: s.pairName, Restart: s.stats.Restarts, ScanFrom: scanFrom})
		}
		evalsBefore := s.stats.WindowsEvaluated
		w0, ok := s.initialWindow(scanFrom)
		if !ok {
			break
		}
		best, bestScore, iters, completed := s.climb(w0)
		if !completed {
			// The interrupted climb's best-so-far may differ from what the
			// full climb would have settled on; dropping it keeps partial
			// results a prefix of the uninterrupted run.
			break
		}
		if null != nil {
			// The reported and thresholded score is the significance-
			// corrected one; the climb's internal score is uncorrected.
			if corrected, err := s.scorer.finalScore(best); err == nil {
				bestScore = corrected
			}
		}
		if s.obs != nil {
			s.obs.Event(obs.ClimbFinished{
				Pair:        s.pairName,
				Restart:     s.stats.Restarts,
				Window:      obsWindow(best),
				Score:       bestScore,
				Iterations:  iters,
				Evaluations: s.stats.WindowsEvaluated - evalsBefore,
			})
		}
		if topk == nil && opts.TopK > 0 {
			topk = mi.NewTopK(opts.TopK, bestScore)
		}
		candidates = append(candidates, window.Scored{Window: best, MI: bestScore})
		if opts.onCandidate != nil {
			opts.onCandidate(window.Scored{Window: best, MI: bestScore})
		}
		if topk != nil {
			topk.Offer(bestScore)
		}
		s.stats.Restarts++
		next := best.End + 1
		if min := scanFrom + opts.SMin; next < min {
			next = min
		}
		scanFrom = next
	}
	s.stats.Timing.Climb = time.Since(climbStart)
	if s.obs != nil {
		s.obs.PhaseEnd(obs.PhaseClimb, s.stats.Timing.Climb)
	}

	finStart := time.Now()
	threshold := opts.Sigma
	if topk != nil {
		threshold = topk.Threshold()
	}
	var set window.Set
	for _, c := range candidates {
		if c.MI >= threshold {
			set.Insert(c)
		}
	}
	items := set.Items()
	if topk != nil && len(items) > opts.TopK {
		sort.Slice(items, func(i, j int) bool { return items[i].MI > items[j].MI })
		items = items[:opts.TopK]
		sort.Slice(items, func(i, j int) bool { return items[i].Start < items[j].Start })
	}
	s.stats.MIBatch, s.stats.MIIncremental = s.scorer.stats()
	if s.stop == "" {
		s.stop = StopCompleted
	}
	s.stats.StopReason = s.stop
	s.stats.Timing.Finalize = time.Since(finStart)
	s.stats.Timing.Total = time.Since(start)
	if secs := s.stats.Timing.Total.Seconds(); secs > 0 {
		s.stats.Timing.EvalsPerSec = float64(s.stats.WindowsEvaluated) / secs
	}
	if s.obs != nil {
		s.obs.PhaseEnd(obs.PhaseFinalize, s.stats.Timing.Finalize)
		// One CandidateAccepted per returned window, in output order.
		for _, it := range items {
			s.obs.Event(obs.CandidateAccepted{Pair: s.pairName, Window: obsWindow(it.Window), Score: it.MI})
		}
		s.emitCounters()
	}
	return Result{Windows: items, Stats: s.stats, Partial: s.stop != StopCompleted}, nil
}

// emitCounters publishes the search's final counter totals to the observer.
// Totals are emitted once per search rather than per increment, so counters
// never touch the climb's hot path.
func (s *searcher) emitCounters() {
	s.obs.Count("windows_evaluated", int64(s.stats.WindowsEvaluated))
	s.obs.Count("restarts", int64(s.stats.Restarts))
	s.obs.Count("mi_batch", int64(s.stats.MIBatch))
	s.obs.Count("mi_incremental", int64(s.stats.MIIncremental))
	if s.opts.Variant.noise() {
		s.obs.Count("pruned_directions", int64(s.stats.PrunedDirections))
		s.obs.Count("noise_blocks", int64(s.stats.NoiseBlocks))
	}
	for _, c := range s.scorer.counters() {
		s.obs.Count(c.name, c.value)
	}
}

// deadlineCheckPeriod is how many checkStop calls pass between samples of
// the wall clock for the Options.Deadline test. A climb's checkStop runs per
// iteration, so on fast workloads an every-call time.Now() is the hottest
// non-MI syscall in the loop; sampling every N calls bounds the overshoot to
// N climb iterations while keeping the common path clock-free.
const deadlineCheckPeriod = 32

// checkStop records the first exceeded budget or cancellation and reports
// whether the search must stop. It is called at restart and climb-iteration
// boundaries only, so a stop never interrupts a neighbourhood evaluation —
// that keeps the stop point, and hence the returned windows, deterministic
// for the deterministic budgets. The evaluation budget is checked before the
// context so that a run configured with both stops identically whether or
// not the context also fired. The Options.Deadline clock is only sampled
// every deadlineCheckPeriod calls (the first call included, so an already
// expired deadline stops the search before any work): wall-clock stops are
// inherently non-deterministic, so coarser sampling costs nothing, while the
// deterministic MaxEvaluations budget above is still checked every call.
func (s *searcher) checkStop() bool {
	if s.stop != "" {
		return true
	}
	if s.opts.MaxEvaluations > 0 && s.stats.WindowsEvaluated >= s.opts.MaxEvaluations {
		s.stop = StopBudget
		return true
	}
	select {
	case <-s.ctx.Done():
		if errors.Is(s.ctx.Err(), context.DeadlineExceeded) {
			s.stop = StopDeadline
		} else {
			s.stop = StopCancelled
		}
		return true
	default:
	}
	if !s.opts.Deadline.IsZero() {
		sample := s.clockTick%deadlineCheckPeriod == 0
		s.clockTick++
		if sample && !time.Now().Before(s.opts.Deadline) {
			s.stop = StopDeadline
			return true
		}
	}
	return false
}

// initialWindow picks the starting solution for a climb: the plain variants
// start at the minimal window at the scan position (Algorithm 1, line 2);
// the noise variants run the Section 6.2.1 hierarchical construction.
func (s *searcher) initialWindow(from int) (window.Window, bool) {
	if s.opts.Variant.noise() {
		return s.initialNoisePruning(from)
	}
	w := window.Window{Start: from, End: from + s.opts.SMin - 1, Delay: 0}
	return w, s.cons.Feasible(w)
}

// climb runs one LAHC ascent from w0 and returns the best feasible window
// seen with its score, along with the number of loop iterations it ran.
// completed is false when a stop condition interrupted the ascent before its
// idle budget ran out.
func (s *searcher) climb(w0 window.Window) (best window.Window, bestScore float64, iters int, completed bool) {
	cur := w0
	curScore := s.mustScore(cur)
	best, bestScore = cur, curScore

	acceptor := lahc.New(s.opts.HistoryLength, curScore, s.rng)
	idle := 0
	level := 1
	var pruned map[direction]bool
	if s.opts.Variant.noise() {
		pruned = s.prunedDirections(cur)
	}

	// Hard ceiling against pathological wandering; in practice the idle
	// budget stops the climb long before this.
	maxIters := 100*s.opts.MaxIdle + 2*s.opts.SMax/s.opts.Delta

	for iter := 0; idle < s.opts.MaxIdle && iter < maxIters; iter++ {
		iters = iter + 1
		if s.checkStop() {
			return best, bestScore, iters, false
		}
		neighbors := neighborhood(cur, s.opts.Delta, level, s.cons, pruned)
		if len(neighbors) == 0 {
			idle++
			level++
			continue
		}
		bestnb := neighbors[0]
		bestnbScore := s.mustScore(bestnb)
		for _, nb := range neighbors[1:] {
			if sc := s.mustScore(nb); sc > bestnbScore {
				bestnb, bestnbScore = nb, sc
			}
		}
		newCur, accepted := acceptor.Consider(curScore, bestnbScore)
		if accepted {
			cur, curScore = bestnb, newCur
			if s.opts.Variant.noise() {
				pruned = s.prunedDirections(cur)
			}
		}
		// The idle budget counts explorations that fail to push the climb's
		// best solution meaningfully forward. Resetting on any accepted move
		// would let LAHC's late acceptance cycle (drop, re-improve, …)
		// forever, and resetting on any new best would let estimator noise
		// across thousands of visited windows trickle microscopic records;
		// progress therefore requires beating the best by MinImprovement.
		progressed := accepted && curScore > bestScore+s.opts.MinImprovement
		if accepted && curScore > bestScore {
			best, bestScore = cur, curScore
		}
		if progressed {
			idle = 0
			level = 1
		} else {
			idle++
			level++
		}
	}
	return best, bestScore, iters, true
}

// mustScore scores a window, mapping estimation failures (degenerate or
// undersized windows) to 0 — such windows carry no usable evidence of
// correlation.
func (s *searcher) mustScore(w window.Window) float64 {
	sc, err := s.scorer.score(w)
	if err != nil {
		return 0
	}
	s.stats.WindowsEvaluated++
	return sc
}
