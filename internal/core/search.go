package core

import (
	"math/rand"
	"sort"

	"tycos/internal/lahc"
	"tycos/internal/mi"
	"tycos/internal/series"
	"tycos/internal/window"
)

// searcher carries the state of one Search invocation.
type searcher struct {
	pair   series.Pair
	opts   Options
	cons   window.Constraints
	scorer scorer
	rng    *rand.Rand
	stats  Stats
}

// Search runs TYCOS over the pair with the configured variant and returns
// the accepted non-overlapping windows, scored with the configured
// normalization, sorted by start index.
//
// The search is Algorithm 1 (plus Algorithm 2 for the noise variants): LAHC
// climbs from an initial window, exploring δ-neighbourhoods that widen while
// no improvement is found; when T_maxIdle explorations in a row fail to
// improve, the local optimum is recorded and the search restarts on the
// unscanned remainder until the pair is covered.
func Search(p series.Pair, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(p.Len()); err != nil {
		return Result{}, err
	}
	p = jitterPair(p, opts.Jitter, opts.Seed)
	s := &searcher{
		pair: p,
		opts: opts,
		cons: opts.constraints(p.Len()),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	var null *nullModel
	if opts.SignificanceLevel > 0 {
		// A dedicated RNG keeps the calibration from perturbing the walk.
		null = buildNullModel(p, opts, rand.New(rand.NewSource(opts.Seed+0x5eed)))
	}
	if opts.Variant.incremental() {
		sc := newIncScorer(p, opts.K, opts.Normalization, opts.SMax)
		sc.null = null
		s.scorer = sc
	} else {
		sc := newBatchScorer(p, opts.K, opts.Normalization)
		sc.null = null
		s.scorer = sc
	}

	var candidates []window.Scored
	var topk *mi.TopK

	scanFrom := 0
	n := p.Len()
	for scanFrom+opts.SMin <= n {
		w0, ok := s.initialWindow(scanFrom)
		if !ok {
			break
		}
		best, bestScore := s.climb(w0)
		if null != nil {
			// The reported and thresholded score is the significance-
			// corrected one; the climb's internal score is uncorrected.
			if corrected, err := s.scorer.finalScore(best); err == nil {
				bestScore = corrected
			}
		}
		if topk == nil && opts.TopK > 0 {
			topk = mi.NewTopK(opts.TopK, bestScore)
		}
		candidates = append(candidates, window.Scored{Window: best, MI: bestScore})
		if topk != nil {
			topk.Offer(bestScore)
		}
		s.stats.Restarts++
		next := best.End + 1
		if min := scanFrom + opts.SMin; next < min {
			next = min
		}
		scanFrom = next
	}

	threshold := opts.Sigma
	if topk != nil {
		threshold = topk.Threshold()
	}
	var set window.Set
	for _, c := range candidates {
		if c.MI >= threshold {
			set.Insert(c)
		}
	}
	items := set.Items()
	if topk != nil && len(items) > opts.TopK {
		sort.Slice(items, func(i, j int) bool { return items[i].MI > items[j].MI })
		items = items[:opts.TopK]
		sort.Slice(items, func(i, j int) bool { return items[i].Start < items[j].Start })
	}
	s.stats.MIBatch, s.stats.MIIncremental = s.scorer.stats()
	return Result{Windows: items, Stats: s.stats}, nil
}

// initialWindow picks the starting solution for a climb: the plain variants
// start at the minimal window at the scan position (Algorithm 1, line 2);
// the noise variants run the Section 6.2.1 hierarchical construction.
func (s *searcher) initialWindow(from int) (window.Window, bool) {
	if s.opts.Variant.noise() {
		return s.initialNoisePruning(from)
	}
	w := window.Window{Start: from, End: from + s.opts.SMin - 1, Delay: 0}
	return w, s.cons.Feasible(w)
}

// climb runs one LAHC ascent from w0 and returns the best feasible window
// seen with its score.
func (s *searcher) climb(w0 window.Window) (window.Window, float64) {
	cur := w0
	curScore := s.mustScore(cur)
	best, bestScore := cur, curScore

	acceptor := lahc.New(s.opts.HistoryLength, curScore, s.rng)
	idle := 0
	level := 1
	var pruned map[direction]bool
	if s.opts.Variant.noise() {
		pruned = s.prunedDirections(cur)
	}

	// Hard ceiling against pathological wandering; in practice the idle
	// budget stops the climb long before this.
	maxIters := 100*s.opts.MaxIdle + 2*s.opts.SMax/s.opts.Delta

	for iter := 0; idle < s.opts.MaxIdle && iter < maxIters; iter++ {
		neighbors := neighborhood(cur, s.opts.Delta, level, s.cons, pruned)
		if len(neighbors) == 0 {
			idle++
			level++
			continue
		}
		bestnb := neighbors[0]
		bestnbScore := s.mustScore(bestnb)
		for _, nb := range neighbors[1:] {
			if sc := s.mustScore(nb); sc > bestnbScore {
				bestnb, bestnbScore = nb, sc
			}
		}
		newCur, accepted := acceptor.Consider(curScore, bestnbScore)
		if accepted {
			cur, curScore = bestnb, newCur
			if s.opts.Variant.noise() {
				pruned = s.prunedDirections(cur)
			}
		}
		// The idle budget counts explorations that fail to push the climb's
		// best solution meaningfully forward. Resetting on any accepted move
		// would let LAHC's late acceptance cycle (drop, re-improve, …)
		// forever, and resetting on any new best would let estimator noise
		// across thousands of visited windows trickle microscopic records;
		// progress therefore requires beating the best by MinImprovement.
		progressed := accepted && curScore > bestScore+s.opts.MinImprovement
		if accepted && curScore > bestScore {
			best, bestScore = cur, curScore
		}
		if progressed {
			idle = 0
			level = 1
		} else {
			idle++
			level++
		}
	}
	return best, bestScore
}

// mustScore scores a window, mapping estimation failures (degenerate or
// undersized windows) to 0 — such windows carry no usable evidence of
// correlation.
func (s *searcher) mustScore(w window.Window) float64 {
	sc, err := s.scorer.score(w)
	if err != nil {
		return 0
	}
	s.stats.WindowsEvaluated++
	return sc
}
