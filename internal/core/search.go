package core

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"time"

	"tycos/internal/lahc"
	"tycos/internal/mi"
	"tycos/internal/obs"
	"tycos/internal/series"
	"tycos/internal/window"
)

// searcher carries the worker-local state of one restart segment's scan:
// chained LAHC restarts over the segment's scan positions with a private
// scorer, private stats, private candidate list and a private event buffer,
// so segments can run on concurrent workers without any shared mutable state
// (see parallel.go for the decomposition and its determinism rules).
type searcher struct {
	pair   series.Pair
	opts   Options
	cons   window.Constraints
	scorer scorer
	null   *nullModel
	rng    *rand.Rand // current restart's acceptor RNG, re-seeded per restart
	stats  Stats
	ctx    context.Context
	stop   StopReason // first triggered stop condition ("" while running)
	seg    segment

	// evalBase is the evaluation count charged by earlier segments; the
	// deterministic MaxEvaluations budget compares against evalBase plus this
	// segment's own count (sequential execution only — parallel runs never
	// carry a budget, see restartWorkers).
	evalBase int

	observing bool        // Options.Observer != nil: buffer events for replay
	events    []obs.Event // worker-local buffer, replayed in merge order
	cands     []window.Scored
	pairName  string // "x/y" event label, "" for unnamed series
	clockTick int    // deadline clock sampling counter (checkStop)
}

// obsWindow converts a search window into its observability mirror.
func obsWindow(w window.Window) obs.Window {
	return obs.Window{Start: w.Start, End: w.End, Delay: w.Delay}
}

// pairLabel names a pair for events; unnamed series yield "".
func pairLabel(p series.Pair) string {
	if p.X.Name == "" && p.Y.Name == "" {
		return ""
	}
	return p.X.Name + "/" + p.Y.Name
}

// emit buffers an event for ordered replay by the coordinator. Workers never
// touch Options.Observer directly: replaying buffered events in segment order
// keeps the trace identical for every RestartWorkers value.
func (s *searcher) emit(e obs.Event) {
	if s.observing {
		s.events = append(s.events, e)
	}
}

// Search runs TYCOS over the pair with the configured variant and returns
// the accepted non-overlapping windows, scored with the configured
// normalization, sorted by start index.
//
// The search is Algorithm 1 (plus Algorithm 2 for the noise variants): LAHC
// climbs from an initial window, exploring δ-neighbourhoods that widen while
// no improvement is found; when T_maxIdle explorations in a row fail to
// improve, the local optimum is recorded and the search restarts on the
// unscanned remainder until the pair is covered. Restarts are decomposed
// into fixed segments fanned over Options.RestartWorkers workers; results
// are byte-identical for every worker count (see parallel.go).
func Search(p series.Pair, opts Options) (Result, error) {
	return SearchContext(context.Background(), p, opts)
}

// SearchContext is Search with cooperative cancellation. The context is
// checked at restart and climb-iteration boundaries; on cancellation (or an
// exceeded Options budget) the search returns the windows accepted so far
// with Result.Partial set and Stats.StopReason recording the cause, rather
// than an error — partial results from a cancelled search remain valid,
// prefix-consistent output (work done by restart workers past the first
// stopped segment is discarded to keep it so).
func SearchContext(ctx context.Context, p series.Pair, opts Options) (Result, error) {
	start := clockNow()
	opts = opts.withDefaults()
	if err := opts.validate(p.Len()); err != nil {
		return Result{}, err
	}
	if err := p.CheckFinite(); err != nil {
		return Result{}, errors.New("core: " + err.Error() + " (clean the input with series.FillMissing)")
	}
	p = jitterPair(p, opts.Jitter, opts.Seed)
	sink := opts.Observer
	pairName := pairLabel(p)
	// When the caller put a trace span in the context (e.g. the daemon's
	// per-request root span), every observation of this search is stamped
	// with a deterministic child span: the observer is wrapped once here, so
	// worker event buffers stay raw and the byte-identical merge contract is
	// untouched. The child is qualified by the pair so a sweep's searches get
	// distinct spans under one request. With no span in the context (or no
	// observer) this is a no-op and the nil-sink hot path stays free.
	var searchSpan obs.SpanContext
	if sink != nil {
		if sc, ok := obs.SpanFromContext(ctx); ok {
			name := "search"
			if pairName != "" {
				name += ":" + pairName
			}
			searchSpan = sc.Child(name)
			sink = obs.WithSpan(sink, searchSpan)
		}
	}
	var timing Timing
	timing.Validate = clockSince(start)
	if sink != nil {
		sink.PhaseEnd(obs.PhaseValidate, timing.Validate)
	}
	var null *nullModel
	if opts.SignificanceLevel > 0 {
		// A dedicated RNG keeps the calibration from perturbing the walk; the
		// model is built once, before the fan-out, and is read-only shared
		// state from then on.
		nmStart := clockNow()
		//lint:allow seedflow fixed pre-idiom domain offset; committed goldens and EXPERIMENTS results pin this stream
		null = buildNullModel(p, opts, rand.New(rand.NewSource(opts.Seed+0x5eed)))
		timing.NullModel = clockSince(nmStart)
		if sink != nil {
			sink.PhaseEnd(obs.PhaseNullModel, timing.NullModel)
		}
	}

	cons := opts.constraints(p.Len())
	segs := planSegments(p.Len(), opts)
	workers := restartWorkers(opts, len(segs))

	climbStart := clockNow()
	var segResults []segmentResult
	if workers <= 1 {
		segResults = runSegmentsSequential(ctx, p, opts, cons, null, pairName, segs)
	} else {
		segResults = runSegmentsParallel(ctx, p, opts, cons, null, pairName, segs, workers)
	}

	// Merge in segment order — never completion order. Everything after the
	// first stopped segment is discarded: in sequential mode those segments
	// never ran, and reconstructing exactly that prefix here is what keeps
	// partial results deterministic and mode-independent.
	var (
		stats        Stats
		candidates   []window.Scored
		stop         StopReason
		counterNames []string
		counterVals  map[string]int64
	)
	restartOffset := 0
	for _, sr := range segResults {
		if sink != nil {
			for _, e := range sr.events {
				// Restart indices are worker-local; renumber into the global
				// merge order so traces read like one sequential search.
				switch ev := e.(type) {
				case obs.RestartStarted:
					ev.Restart += restartOffset
					sink.Event(ev)
				case obs.ClimbFinished:
					ev.Restart += restartOffset
					sink.Event(ev)
				default:
					sink.Event(e)
				}
			}
		}
		candidates = append(candidates, sr.cands...)
		addStats(&stats, sr.stats)
		restartOffset += sr.stats.Restarts
		for _, c := range sr.counters {
			if counterVals == nil {
				counterVals = make(map[string]int64)
			}
			if _, seen := counterVals[c.name]; !seen {
				counterNames = append(counterNames, c.name)
			}
			counterVals[c.name] += c.value
		}
		if sr.stop != "" {
			stop = sr.stop
			break
		}
	}
	timing.Climb = clockSince(climbStart)
	if sink != nil {
		sink.PhaseEnd(obs.PhaseClimb, timing.Climb)
	}

	finStart := clockNow()
	var topk *mi.TopK
	for _, c := range candidates {
		if opts.onCandidate != nil {
			opts.onCandidate(c)
		}
		if topk == nil && opts.TopK > 0 {
			topk = mi.NewTopK(opts.TopK, c.MI)
		}
		if topk != nil {
			topk.Offer(c.MI)
		}
	}
	threshold := opts.Sigma
	if topk != nil {
		threshold = topk.Threshold()
	}
	var set window.Set
	for _, c := range candidates {
		if c.MI >= threshold {
			set.Insert(c)
		}
	}
	items := set.Items()
	if topk != nil && len(items) > opts.TopK {
		sort.Slice(items, func(i, j int) bool { return items[i].MI > items[j].MI })
		items = items[:opts.TopK]
		sort.Slice(items, func(i, j int) bool { return items[i].Start < items[j].Start })
	}
	if stop == "" {
		stop = StopCompleted
	}
	stats.StopReason = stop
	timing.Finalize = clockSince(finStart)
	timing.Total = clockSince(start)
	if secs := timing.Total.Seconds(); secs > 0 {
		timing.EvalsPerSec = float64(stats.WindowsEvaluated) / secs
	}
	stats.Timing = timing
	if sink != nil {
		sink.PhaseEnd(obs.PhaseFinalize, timing.Finalize)
		// One CandidateAccepted per returned window, in output order.
		for _, it := range items {
			sink.Event(obs.CandidateAccepted{Pair: pairName, Window: obsWindow(it.Window), Score: it.MI})
		}
		emitCounters(sink, opts, stats, counterNames, counterVals)
		if searchSpan.Valid() {
			sink.Event(obs.SpanFinished{Name: "search", DurationNS: int64(timing.Total)})
		}
	}
	return Result{Windows: items, Stats: stats, Partial: stop != StopCompleted}, nil
}

// emitCounters publishes the search's final counter totals to the observer.
// Totals are emitted once per search rather than per increment, so counters
// never touch the climb's hot path; scorer-level counters arrive pre-merged
// across segments in first-seen order.
func emitCounters(sink obs.Sink, opts Options, stats Stats, names []string, vals map[string]int64) {
	sink.Count("windows_evaluated", int64(stats.WindowsEvaluated))
	sink.Count("restarts", int64(stats.Restarts))
	sink.Count("mi_batch", int64(stats.MIBatch))
	sink.Count("mi_incremental", int64(stats.MIIncremental))
	if opts.Variant.noise() {
		sink.Count("pruned_directions", int64(stats.PrunedDirections))
		sink.Count("noise_blocks", int64(stats.NoiseBlocks))
	}
	for _, name := range names {
		sink.Count(name, vals[name])
	}
}

// run executes the segment's chained restart loop: climb, record the local
// optimum, restart on the unscanned remainder, until the segment's scan
// positions are exhausted or a stop condition fires. Restart indices in
// buffered events are segment-local; the coordinator renumbers them.
func (s *searcher) run() {
	scanFrom := s.seg.from
	for scanFrom < s.seg.limit {
		if s.checkStop() {
			break
		}
		restart := s.stats.Restarts
		s.rng = rand.New(rand.NewSource(restartSeed(s.opts.Seed, s.seg.index, restart)))
		s.emit(obs.RestartStarted{Pair: s.pairName, Restart: restart, ScanFrom: scanFrom})
		evalsBefore := s.stats.WindowsEvaluated
		w0, ok := s.initialWindow(scanFrom)
		if !ok {
			break
		}
		best, bestScore, iters, completed := s.climb(w0)
		if !completed {
			// The interrupted climb's best-so-far may differ from what the
			// full climb would have settled on; dropping it keeps partial
			// results a prefix of the uninterrupted run.
			break
		}
		if s.null != nil {
			// The reported and thresholded score is the significance-
			// corrected one; the climb's internal score is uncorrected.
			if corrected, err := s.scorer.finalScore(best); err == nil {
				bestScore = corrected
			}
		}
		s.emit(obs.ClimbFinished{
			Pair:        s.pairName,
			Restart:     restart,
			Window:      obsWindow(best),
			Score:       bestScore,
			Iterations:  iters,
			Evaluations: s.stats.WindowsEvaluated - evalsBefore,
		})
		s.cands = append(s.cands, window.Scored{Window: best, MI: bestScore})
		s.stats.Restarts++
		next := best.End + 1
		if min := scanFrom + s.opts.SMin; next < min {
			next = min
		}
		scanFrom = next
	}
	s.stats.MIBatch, s.stats.MIIncremental = s.scorer.stats()
}

// deadlineCheckPeriod is how many checkStop calls pass between samples of
// the wall clock for the Options.Deadline test. A climb's checkStop runs per
// iteration, so on fast workloads an every-call time.Now() is the hottest
// non-MI syscall in the loop; sampling every N calls bounds the overshoot to
// N climb iterations while keeping the common path clock-free.
const deadlineCheckPeriod = 32

// checkStop records the first exceeded budget or cancellation and reports
// whether the search must stop. It is called at restart and climb-iteration
// boundaries only, so a stop never interrupts a neighbourhood evaluation —
// that keeps the stop point, and hence the returned windows, deterministic
// for the deterministic budgets. The evaluation budget is checked before the
// context so that a run configured with both stops identically whether or
// not the context also fired; it counts evalBase (earlier segments' work) on
// top of this segment's own, which is only meaningful because a budgeted
// search runs its segments sequentially. The Options.Deadline clock is only
// sampled every deadlineCheckPeriod calls (the first call included, so an
// already expired deadline stops the search before any work): wall-clock
// stops are inherently non-deterministic, so coarser sampling costs nothing,
// while the deterministic MaxEvaluations budget above is still checked every
// call.
func (s *searcher) checkStop() bool {
	if s.stop != "" {
		return true
	}
	if s.opts.MaxEvaluations > 0 && s.evalBase+s.stats.WindowsEvaluated >= s.opts.MaxEvaluations {
		s.stop = StopBudget
		return true
	}
	select {
	case <-s.ctx.Done():
		if errors.Is(s.ctx.Err(), context.DeadlineExceeded) {
			s.stop = StopDeadline
		} else {
			s.stop = StopCancelled
		}
		return true
	default:
	}
	if !s.opts.Deadline.IsZero() {
		sample := s.clockTick%deadlineCheckPeriod == 0
		s.clockTick++
		//lint:allow nodeterm Options.Deadline is an explicitly wall-clock budget; sampling is throttled to every deadlineCheckPeriod calls
		if sample && !time.Now().Before(s.opts.Deadline) {
			s.stop = StopDeadline
			return true
		}
	}
	return false
}

// initialWindow picks the starting solution for a climb: the plain variants
// start at the minimal window at the scan position (Algorithm 1, line 2);
// the noise variants run the Section 6.2.1 hierarchical construction.
func (s *searcher) initialWindow(from int) (window.Window, bool) {
	if s.opts.Variant.noise() {
		return s.initialNoisePruning(from)
	}
	w := window.Window{Start: from, End: from + s.opts.SMin - 1, Delay: 0}
	return w, s.cons.Feasible(w)
}

// climb runs one LAHC ascent from w0 and returns the best feasible window
// seen with its score, along with the number of loop iterations it ran.
// completed is false when a stop condition interrupted the ascent before its
// idle budget ran out.
func (s *searcher) climb(w0 window.Window) (best window.Window, bestScore float64, iters int, completed bool) {
	cur := w0
	curScore := s.mustScore(cur)
	best, bestScore = cur, curScore

	acceptor := lahc.New(s.opts.HistoryLength, curScore, s.rng)
	idle := 0
	level := 1
	var pruned map[direction]bool
	if s.opts.Variant.noise() {
		pruned = s.prunedDirections(cur)
	}

	// Hard ceiling against pathological wandering; in practice the idle
	// budget stops the climb long before this.
	maxIters := 100*s.opts.MaxIdle + 2*s.opts.SMax/s.opts.Delta

	for iter := 0; idle < s.opts.MaxIdle && iter < maxIters; iter++ {
		iters = iter + 1
		if s.checkStop() {
			return best, bestScore, iters, false
		}
		neighbors := neighborhood(cur, s.opts.Delta, level, s.cons, pruned)
		if len(neighbors) == 0 {
			idle++
			level++
			continue
		}
		bestnb := neighbors[0]
		bestnbScore := s.mustScore(bestnb)
		//lint:allow ctxflow the neighbourhood is bounded (≤26 windows); stopping only at climb-iteration boundaries keeps the stop point deterministic
		for _, nb := range neighbors[1:] {
			if sc := s.mustScore(nb); sc > bestnbScore {
				bestnb, bestnbScore = nb, sc
			}
		}
		newCur, accepted := acceptor.Consider(curScore, bestnbScore)
		if accepted {
			cur, curScore = bestnb, newCur
			if s.opts.Variant.noise() {
				pruned = s.prunedDirections(cur)
			}
		}
		// The idle budget counts explorations that fail to push the climb's
		// best solution meaningfully forward. Resetting on any accepted move
		// would let LAHC's late acceptance cycle (drop, re-improve, …)
		// forever, and resetting on any new best would let estimator noise
		// across thousands of visited windows trickle microscopic records;
		// progress therefore requires beating the best by MinImprovement.
		progressed := accepted && curScore > bestScore+s.opts.MinImprovement
		if accepted && curScore > bestScore {
			best, bestScore = cur, curScore
		}
		if progressed {
			idle = 0
			level = 1
		} else {
			idle++
			level++
		}
	}
	return best, bestScore, iters, true
}

// mustScore scores a window, mapping estimation failures (degenerate or
// undersized windows) to 0 — such windows carry no usable evidence of
// correlation.
func (s *searcher) mustScore(w window.Window) float64 {
	sc, err := s.scorer.score(w)
	if err != nil {
		return 0
	}
	s.stats.WindowsEvaluated++
	return sc
}
