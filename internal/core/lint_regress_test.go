package core

// Regression tests for real invariant violations surfaced by tycoslint
// (cmd/tycoslint): a sweep-worker goroutine with no recover around the
// observer/checkpoint code paths, and the Brute Force enumeration having no
// cancellation path at all.

import (
	"context"
	"strings"
	"testing"
	"time"

	"tycos/internal/obs"
)

// panicSink panics inside the search's own goroutine when the armed event
// kind arrives — modelling a buggy user-provided observer, which runs
// outside searchPairOnce's per-attempt recover.
type panicSink struct {
	pair string
}

func (s *panicSink) Event(e obs.Event) {
	if ps, ok := e.(obs.PairStarted); ok && ps.Pair == s.pair {
		panic("observer exploded on " + ps.Pair)
	}
}
func (s *panicSink) Count(string, int64)               {}
func (s *panicSink) PhaseEnd(obs.Phase, time.Duration) {}

// TestSearchAllObserverPanicIsolated pins the gopanic fix: before the sweep
// workers got their own recover, a panic raised by an observer callback (or
// checkpoint journaling) escaped the worker goroutine and killed the whole
// process — this test would not fail but crash the test binary.
func TestSearchAllObserverPanicIsolated(t *testing.T) {
	ss := sweepSeries("a", "b", "c")
	opts := defaultOpts()
	opts.Observer = &panicSink{pair: "a/b"}
	res := SearchAllContext(context.Background(), ss, opts, SweepOptions{Parallelism: 2})
	if len(res) != 3 {
		t.Fatalf("got %d pair results, want 3", len(res))
	}
	var failed, succeeded int
	for _, pr := range res {
		name := pr.XName + "/" + pr.YName
		if name == "a/b" {
			if pr.Err == nil {
				t.Fatalf("pair %s: want a captured panic error, got nil", name)
			}
			if !strings.Contains(pr.Err.Error(), "panic outside search isolation") {
				t.Errorf("pair %s: error %q does not name the isolation path", name, pr.Err)
			}
			failed++
			continue
		}
		if pr.Err != nil {
			t.Errorf("pair %s: unexpected error: %v", name, pr.Err)
			continue
		}
		succeeded++
	}
	if failed != 1 || succeeded != 2 {
		t.Errorf("failed=%d succeeded=%d, want 1 failed / 2 succeeded", failed, succeeded)
	}
}

// TestBruteForceContextCancelled pins the ctxflow fix: BruteForce's O(n³)
// enumeration used to be uninterruptible; it now honours the same
// cancellation contract as SearchContext.
func TestBruteForceContextCancelled(t *testing.T) {
	p := testPair(7, 120, 30, 90, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BruteForceContext(ctx, p, defaultOpts())
	if err != nil {
		t.Fatalf("cancelled brute force must not error: %v", err)
	}
	if !res.Partial || res.Stats.StopReason != StopCancelled {
		t.Errorf("Partial=%v StopReason=%q, want partial cancelled", res.Partial, res.Stats.StopReason)
	}
	if res.Stats.WindowsEvaluated != 0 {
		t.Errorf("pre-cancelled run evaluated %d windows, want 0", res.Stats.WindowsEvaluated)
	}
}

// TestBruteForceContextBudget verifies the deterministic evaluation budget
// stops the enumeration at an exact, reproducible point.
func TestBruteForceContextBudget(t *testing.T) {
	p := testPair(7, 120, 30, 90, 2)
	opts := defaultOpts()
	opts.MaxEvaluations = 25
	res, err := BruteForceContext(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Stats.StopReason != StopBudget {
		t.Errorf("Partial=%v StopReason=%q, want partial budget", res.Partial, res.Stats.StopReason)
	}
	if res.Stats.WindowsEvaluated > opts.MaxEvaluations {
		t.Errorf("evaluated %d windows past the %d budget", res.Stats.WindowsEvaluated, opts.MaxEvaluations)
	}
	again, err := BruteForceContext(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.WindowsEvaluated != res.Stats.WindowsEvaluated {
		t.Errorf("budget stop is not deterministic: %d vs %d evaluations",
			again.Stats.WindowsEvaluated, res.Stats.WindowsEvaluated)
	}
}

// TestBruteForceCompletedUnchanged pins the uninterrupted path: no budget,
// no cancellation — complete result, StopCompleted, not partial.
func TestBruteForceCompletedUnchanged(t *testing.T) {
	p := testPair(7, 90, 20, 70, 1)
	res, err := BruteForce(p, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Stats.StopReason != StopCompleted {
		t.Errorf("Partial=%v StopReason=%q, want complete", res.Partial, res.Stats.StopReason)
	}
	if res.Stats.WindowsEvaluated == 0 {
		t.Error("complete brute force evaluated no windows")
	}
}
