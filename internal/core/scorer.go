package core

import (
	"fmt"
	"math"
	"math/rand"

	"tycos/internal/mi"
	"tycos/internal/series"
	"tycos/internal/window"
)

// scorer evaluates the (normalized) MI of time-delay windows. The batch
// implementation estimates every window from scratch (TYCOS_L/LN); the
// incremental implementation keeps KSG state across calls and applies only
// the point-level differences between consecutive windows (TYCOS_LM/LMN).
type scorer interface {
	// score returns the normalized MI of w, or an error for infeasible or
	// degenerate windows.
	score(w window.Window) (float64, error)
	// both returns the raw KSG estimate alongside the normalized score. The
	// noise theory needs the raw value: Theorem 6.1 bounds raw MI under
	// mixing, and normalized scores shrink with window size by construction,
	// which would make every concatenation look like a decrease.
	both(w window.Window) (raw, norm float64, err error)
	// finalScore is score with the significance correction applied (when a
	// null model is configured): the calibrated null level for the window's
	// size is subtracted from the raw MI before normalization. The climb
	// runs on uncorrected scores — subtracting during the walk would flatten
	// the very gradients it follows — and only the acceptance decision uses
	// the corrected value.
	finalScore(w window.Window) (float64, error)
	// stats exposes the work counters accumulated so far.
	stats() (batch, incremental int)
	// counters exposes the estimator-level work counters beneath stats()
	// (KSG estimations, incremental point operations) for the observability
	// layer. Called once per search, at the end.
	counters() []counter
	// release hands reusable estimator state back to a shared
	// Options.EstimatorCache, if one is configured. Called after counters(),
	// when the scorer is done; the scorer must not be used afterwards.
	release()
}

// counter is one named estimator-level work total.
type counter struct {
	name  string
	value int64
}

// batchScorer re-estimates every window independently.
type batchScorer struct {
	pair    series.Pair
	est     *mi.KSG
	norm    mi.Normalization
	null    *nullModel
	nBatch  int
	nWindow int
}

func newBatchScorer(p series.Pair, k int, norm mi.Normalization) *batchScorer {
	return &batchScorer{pair: p, est: mi.NewKSG(k, mi.BackendKDTree), norm: norm}
}

// newBatchScorerEngine is newBatchScorer with the k-NN engine chosen by
// registry name; an empty name keeps the exact default. Options.validate
// rejects unknown names before any scorer is built, so construction cannot
// fail here.
func newBatchScorerEngine(p series.Pair, k int, norm mi.Normalization, engine string, seed int64) *batchScorer {
	if engine == "" {
		return newBatchScorer(p, k, norm)
	}
	est, err := mi.NewKSGNamed(k, engine, seed)
	if err != nil {
		panic(fmt.Sprintf("core: scorer for validated engine: %v", err))
	}
	return &batchScorer{pair: p, est: est, norm: norm}
}

func (s *batchScorer) score(w window.Window) (float64, error) {
	_, norm, err := s.scoreNull(w, nil)
	return norm, err
}

func (s *batchScorer) both(w window.Window) (float64, float64, error) {
	return s.scoreNull(w, nil)
}

func (s *batchScorer) finalScore(w window.Window) (float64, error) {
	_, norm, err := s.scoreNull(w, s.null)
	return norm, err
}

func (s *batchScorer) scoreNull(w window.Window, null *nullModel) (float64, float64, error) {
	xs, ys, err := s.pair.DelaySlice(w.Start, w.End, w.Delay)
	if err != nil {
		return 0, 0, err
	}
	raw, err := s.est.Estimate(xs, ys)
	if err != nil {
		return 0, 0, err
	}
	s.nBatch++
	// No floor at 0: near-unbiased KSG estimates on noise are slightly
	// negative, and their ordering is the gradient texture the climb uses.
	// The σ acceptance threshold keeps negative scores out of the results.
	adj := raw - null.at(len(xs))
	return raw, mi.Normalize(adj, xs, ys, s.norm), nil
}

func (s *batchScorer) stats() (int, int) { return s.nBatch, 0 }

// release is a no-op: the batch scorer holds no poolable incremental state.
func (s *batchScorer) release() {}

func (s *batchScorer) counters() []counter {
	return []counter{{"mi.ksg_estimates", int64(s.est.Estimates())}}
}

// incScorer keeps incremental KSG estimators positioned at recently scored
// windows, one per time delay, and diffs each scored window against the
// estimator of its delay. Same-delay moves are applied as edge
// insertions/removals; a window at a delay with no cached estimator pays one
// rebuild, after which that τ-plane is explored incrementally. The small
// per-delay cache is what makes the LAHC neighbourhood — which mixes three
// delays per exploration — profitable to evaluate incrementally; with a
// single estimator every delay change would force a rebuild and TYCOS_LM
// would run slower than TYCOS_L.
type incScorer struct {
	pair series.Pair
	k    int
	norm mi.Normalization
	null *nullModel
	cell float64 // grid cell size, fixed for the whole search

	states map[int]*incState // keyed by delay
	tick   int               // LRU clock

	nBatch int // rebuilds
	nInc   int // incremental moves

	// retired accumulates the op counters of estimators dropped from the
	// cache (evicted or replaced), so counters() reports the whole search's
	// point-level work, not just the survivors'.
	retired mi.IncrementalOps

	// pool recycles the estimators of dropped cache entries: a rebuild takes
	// one from here and Reloads it — same counters and results as a fresh
	// NewIncrementalBulk, but reusing the grid, multiset and point-state
	// allocations. ids is the matching reusable id scratch.
	pool []*mi.Incremental
	ids  []int

	// shared, when non-nil, is the cross-search estimator cache
	// (Options.EstimatorCache): rebuilds with an empty local pool draw from
	// it, and release() returns every estimator to it when the search ends.
	shared *EstimatorCache
}

// incState is one cached estimator and the window it is positioned at.
type incState struct {
	inc     *mi.Incremental
	cur     window.Window
	lastUse int
}

// maxIncStates bounds the per-delay estimator cache. A neighbourhood touches
// three delays; a few extra slots cover the climb's recent τ history.
const maxIncStates = 6

// newIncScorer sizes the grid cell once from the full series span and the
// maximum window population, so estimators rebuilt for tiny windows (e.g.
// noise partitions) still index later, larger windows efficiently — a
// per-window cell size can be orders of magnitude too small for the next
// window and make ring searches explode.
func newIncScorer(p series.Pair, k int, norm mi.Normalization, sMax int) *incScorer {
	if sMax < 1 {
		sMax = 1
	}
	cell := gridCellFor(p.X.Values, p.Y.Values, k, sMax)
	return &incScorer{pair: p, k: k, norm: norm, cell: cell, states: make(map[int]*incState)}
}

func (s *incScorer) score(w window.Window) (float64, error) {
	_, norm, err := s.scoreNull(w, nil)
	return norm, err
}

func (s *incScorer) both(w window.Window) (float64, float64, error) {
	return s.scoreNull(w, nil)
}

func (s *incScorer) finalScore(w window.Window) (float64, error) {
	_, norm, err := s.scoreNull(w, s.null)
	return norm, err
}

func (s *incScorer) scoreNull(w window.Window, null *nullModel) (float64, float64, error) {
	st, err := s.moveTo(w)
	if err != nil {
		return 0, 0, err
	}
	raw, err := st.inc.MI()
	if err != nil {
		return 0, 0, err
	}
	// As in batchScorer.scoreNull: no floor at 0, the climb needs the
	// ordering among near-zero scores.
	adj := raw - null.at(w.Size())
	return raw, s.normalize(adj, w), nil
}

func (s *incScorer) normalize(raw float64, w window.Window) float64 {
	switch s.norm {
	case mi.NormNone:
		return raw
	case mi.NormMaxEntropy:
		m := w.Size()
		if m < 2 {
			return 0
		}
		v := raw / math.Log(float64(m))
		if v > 1 {
			return 1
		}
		return v
	default:
		// Denominators that need the window contents fall back to slicing;
		// this costs O(m) but keeps all normalizations available.
		xs, ys, err := s.pair.DelaySlice(w.Start, w.End, w.Delay)
		if err != nil {
			return 0
		}
		return mi.Normalize(raw, xs, ys, s.norm)
	}
}

// moveTo returns the estimator for w's delay positioned at w, diffing from
// its previous window or rebuilding when no usable state exists.
func (s *incScorer) moveTo(w window.Window) (*incState, error) {
	s.tick++
	st := s.states[w.Delay]
	if st == nil {
		return s.rebuild(w)
	}
	st.lastUse = s.tick
	if w == st.cur {
		return st, nil
	}
	// Same delay: apply the index-range difference. Ids are X indices.
	old, next := st.cur, w
	if next.Start > old.End || next.End < old.Start {
		// Disjoint ranges: cheaper to rebuild.
		return s.rebuild(w)
	}
	// A large diff cascades more neighbourhood refreshes than a one-pass
	// bulk reload costs; rebuild past a third of the window.
	diff := abs(next.Start-old.Start) + abs(next.End-old.End)
	if limit := next.Size() / 3; diff > limit && diff > 8 {
		return s.rebuild(w)
	}
	x := s.pair.X.Values
	y := s.pair.Y.Values
	for i := old.Start; i < next.Start; i++ {
		st.inc.Remove(i)
	}
	for i := next.End + 1; i <= old.End; i++ {
		st.inc.Remove(i)
	}
	for i := next.Start; i < old.Start; i++ {
		st.inc.Insert(i, x[i], y[i+w.Delay])
	}
	for i := old.End + 1; i <= next.End; i++ {
		st.inc.Insert(i, x[i], y[i+w.Delay])
	}
	st.cur = w
	s.nInc++
	return st, nil
}

func (s *incScorer) rebuild(w window.Window) (*incState, error) {
	xs, ys, err := s.pair.DelaySlice(w.Start, w.End, w.Delay)
	if err != nil {
		return nil, err
	}
	// Points are keyed by their X index so same-delay moves can diff ranges.
	s.ids = s.ids[:0]
	for i := 0; i < w.Size(); i++ {
		s.ids = append(s.ids, w.Start+i)
	}
	// Free cache slots before taking an estimator, in the same order as the
	// original always-fresh path (evict LRU, then retire the replaced entry):
	// eviction order is observable through the event stream and counters, so
	// pooling must not perturb it.
	if len(s.states) >= maxIncStates {
		s.evictLRU()
	}
	if old := s.states[w.Delay]; old != nil {
		// Replaced in place (same delay, disjoint or large move): keep its
		// work on the books.
		s.retire(old)
	}
	var inc *mi.Incremental
	if n := len(s.pool); n > 0 {
		inc = s.pool[n-1]
		s.pool = s.pool[:n-1]
		inc.Reload(s.ids, xs, ys)
	} else if inc = s.shared.take(s.k, s.cell); inc != nil {
		// A cache hit arrives Reconfigured to this scorer's (k, cell) —
		// bit-identical to a fresh estimator, warm allocations and all.
		inc.Reload(s.ids, xs, ys)
	} else {
		inc = mi.NewIncrementalBulk(s.k, s.cell, s.ids, xs, ys)
	}
	st := &incState{inc: inc, cur: w, lastUse: s.tick}
	s.states[w.Delay] = st
	s.nBatch++
	return st, nil
}

// retire folds a dropped estimator's op counters into the running totals and
// returns its estimator to the pool for the next rebuild to Reload.
func (s *incScorer) retire(st *incState) {
	ops := st.inc.Ops()
	s.retired.Inserts += ops.Inserts
	s.retired.Removes += ops.Removes
	s.retired.Refreshes += ops.Refreshes
	s.pool = append(s.pool, st.inc)
}

// evictLRU drops the least recently used cached estimator. lastUse values
// are unique (moveTo advances the tick before stamping exactly one state),
// but the smallest-delay tie-break makes the choice provably independent of
// map iteration order rather than relying on that argument.
func (s *incScorer) evictLRU() {
	oldestDelay, oldestUse := 0, int(^uint(0)>>1)
	found := false
	//lint:allow nodeterm argmin with a total-order tie-break; the selected entry is the same for every iteration order
	for d, st := range s.states {
		if !found || st.lastUse < oldestUse || (st.lastUse == oldestUse && d < oldestDelay) {
			oldestDelay, oldestUse = d, st.lastUse
			found = true
		}
	}
	s.retire(s.states[oldestDelay])
	delete(s.states, oldestDelay)
}

func (s *incScorer) stats() (int, int) { return s.nBatch, s.nInc }

// release drains every estimator — pooled and live — into the shared
// cross-search cache. Without a shared cache it is a no-op: the scorer is
// about to be garbage-collected with its pool.
func (s *incScorer) release() {
	if s.shared == nil {
		return
	}
	s.shared.put(s.pool...)
	s.pool = s.pool[:0]
	//lint:allow nodeterm drain order only permutes interchangeable estimators in the shared pool; the map ends empty either way
	for d, st := range s.states {
		s.shared.put(st.inc)
		delete(s.states, d)
	}
}

func (s *incScorer) counters() []counter {
	total := s.retired
	//lint:allow nodeterm integer-sum fold; addition commutes, so the totals are iteration-order independent
	for _, st := range s.states {
		ops := st.inc.Ops()
		total.Inserts += ops.Inserts
		total.Removes += ops.Removes
		total.Refreshes += ops.Refreshes
	}
	return []counter{
		{"mi.inc_inserts", int64(total.Inserts)},
		{"mi.inc_removes", int64(total.Removes)},
		{"mi.inc_refreshes", int64(total.Refreshes)},
	}
}

// gridCellFor tunes a grid cell size so a window of up to m points spread
// over the joint span of xs and ys holds O(k) points per occupied cell.
func gridCellFor(xs, ys []float64, k, m int) float64 {
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	for _, v := range ys {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	span := maxV - minV
	if !(span > 0) {
		return 1
	}
	if k < 1 {
		k = 1
	}
	cellsPerAxis := math.Sqrt(float64(m) / float64(k))
	if cellsPerAxis < 1 {
		cellsPerAxis = 1
	}
	return span / cellsPerAxis
}

// jitterPair returns the pair with deterministic uniform dither of amplitude
// jitter·std added to each series (see Options.Jitter); a non-positive
// jitter returns the pair unchanged.
func jitterPair(p series.Pair, jitter float64, seed int64) series.Pair {
	if jitter <= 0 {
		return p
	}
	//lint:allow seedflow fixed pre-idiom domain offset; committed goldens and EXPERIMENTS results pin this stream
	rng := rand.New(rand.NewSource(seed + 0xd17e))
	dither := func(s series.Series) series.Series {
		st := s.Stats()
		scale := jitter * st.Std
		if scale <= 0 {
			scale = jitter
		}
		out := s.Clone()
		for i := range out.Values {
			out.Values[i] += scale * (rng.Float64() - 0.5) * 2
		}
		return out
	}
	return series.Pair{X: dither(p.X), Y: dither(p.Y)}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
