package core

import (
	"context"
	"math/rand"

	"tycos/internal/series"
	"tycos/internal/window"
)

// BruteForce enumerates every feasible window (the O(n³) search space of
// Lemma 1), scores each with the configured estimator (the O(m log m) kNN
// cost of Lemma 2), and returns all windows whose score meets σ, aggregated
// into maximal non-overlapping windows the way the paper post-processes the
// Brute Force output for the accuracy evaluation ("the generated windows are
// aggregated and the overlapped windows are combined together").
//
// It is exact and therefore exponentially slower than Search; use it only on
// small inputs (the paper's 9,000-sample example takes >12 hours in C++).
func BruteForce(p series.Pair, opts Options) (Result, error) {
	return BruteForceContext(context.Background(), p, opts)
}

// BruteForceContext is BruteForce with cooperative cancellation — essential
// for an enumeration whose uninterrupted running time is measured in hours.
// The stop conditions (context cancellation, Options.MaxEvaluations,
// Options.Deadline) are checked once per evaluated window; on a stop the
// windows aggregated so far are returned with Result.Partial set and
// Stats.StopReason recording the cause, mirroring SearchContext's contract.
func BruteForceContext(ctx context.Context, p series.Pair, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(p.Len()); err != nil {
		return Result{}, err
	}
	p = jitterPair(p, opts.Jitter, opts.Seed)
	s := &searcher{
		pair: p,
		opts: opts,
		cons: opts.constraints(p.Len()),
		ctx:  ctx,
	}
	sc := newBatchScorer(p, opts.K, opts.Normalization)
	if opts.SignificanceLevel > 0 {
		// The offset matches search.go so both engines calibrate on the same
		// null distribution and the differential tests stay byte-identical.
		//lint:allow seedflow fixed pre-idiom domain offset; committed goldens and EXPERIMENTS results pin this stream
		sc.null = buildNullModel(p, opts, rand.New(rand.NewSource(opts.Seed+0x5eed)))
	}
	s.scorer = sc

	var hits []window.Scored
	n := p.Len()
scan:
	for start := 0; start+opts.SMin-1 < n; start++ {
		maxEnd := start + opts.SMax - 1
		if maxEnd > n-1 {
			maxEnd = n - 1
		}
		for end := start + opts.SMin - 1; end <= maxEnd; end++ {
			for tau := -opts.TDMax; tau <= opts.TDMax; tau++ {
				// Per-window stop check: each evaluation is an O(m log m)
				// kNN pass, so the check is cheap relative to the work it
				// bounds, and a budget stop lands on a deterministic window.
				if s.checkStop() {
					break scan
				}
				w := window.Window{Start: start, End: end, Delay: tau}
				if !s.cons.Feasible(w) {
					continue
				}
				sc, err := s.scorer.finalScore(w)
				if err != nil {
					continue
				}
				s.stats.WindowsEvaluated++
				if sc >= opts.Sigma {
					hits = append(hits, window.Scored{Window: w, MI: sc})
				}
			}
		}
	}
	merged := window.MergeOverlapping(hits)
	s.stats.MIBatch, s.stats.MIIncremental = s.scorer.stats()
	if s.stop == "" {
		s.stop = StopCompleted
	}
	s.stats.StopReason = s.stop
	return Result{Windows: merged, Stats: s.stats, Partial: s.stop != StopCompleted}, nil
}

// SearchSpaceSize reports the exact number of feasible windows for the
// options over a series of length n (Lemma 1).
func SearchSpaceSize(n int, opts Options) int64 {
	opts = opts.withDefaults()
	return opts.constraints(n).SearchSpaceSize()
}
