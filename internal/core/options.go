// Package core implements the TYCOS search itself: the problem statement of
// Section 4, the Brute Force reference search (Lemmas 1–2), the LAHC-based
// search TYCOS_L (Algorithm 1), the noise theory of Section 6 (TYCOS_LN,
// Algorithm 2), and the incremental-MI variants TYCOS_LM and TYCOS_LMN that
// reuse k-NN state across neighbouring windows (Section 7).
package core

import (
	"fmt"
	"time"

	"tycos/internal/mi"
	"tycos/internal/obs"
	"tycos/internal/window"
)

// Variant selects which TYCOS optimisations are active, matching the four
// versions compared in the paper's efficiency evaluation (Section 8.4).
type Variant int

const (
	// VariantL is plain LAHC search with from-scratch MI per window.
	VariantL Variant = iota
	// VariantLN adds the noise theory (initial pruning + direction pruning).
	VariantLN
	// VariantLM adds the incremental MI computation.
	VariantLM
	// VariantLMN applies both optimisations (the flagship configuration).
	VariantLMN
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantL:
		return "TYCOS_L"
	case VariantLN:
		return "TYCOS_LN"
	case VariantLM:
		return "TYCOS_LM"
	case VariantLMN:
		return "TYCOS_LMN"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// noise reports whether the variant applies the Section 6 noise theory.
func (v Variant) noise() bool { return v == VariantLN || v == VariantLMN }

// incremental reports whether the variant uses the Section 7 incremental MI.
func (v Variant) incremental() bool { return v == VariantLM || v == VariantLMN }

// Options configures a TYCOS search. The five paper parameters (σ, ε, s_min,
// s_max, td_max — Section 8.2) plus the search hyper-parameters.
type Options struct {
	// SMin and SMax bound the window size (samples).
	SMin, SMax int
	// TDMax bounds the absolute time delay (samples).
	TDMax int
	// Sigma is the correlation threshold σ on the normalized score.
	Sigma float64
	// Epsilon is the noise threshold ε (0 ≤ ε < σ). Zero selects the
	// paper's recommended ε = σ/4.
	Epsilon float64
	// K is the KSG neighbour count (0 → mi.DefaultK).
	K int
	// Delta is the base δ moving step of the neighbourhood (0 → 1).
	Delta int
	// MaxIdle is T_maxIdle, the number of consecutive non-improving
	// neighbourhood explorations tolerated before stopping (0 → 5). Each
	// idle round also widens the explored neighbourhood (N₁, N₂, …).
	MaxIdle int
	// HistoryLength is the LAHC history size L_h (0 → lahc default).
	HistoryLength int
	// MinImprovement is the score gain required to count an exploration as
	// progress for the idle counter (0 → 0.005). Without it, estimator
	// fluctuation across the huge number of visited windows produces a
	// trickle of microscopic "improvements" that keeps climbs alive far
	// past any real structure.
	MinImprovement float64
	// Normalization selects the score scaling (default NormMaxEntropy; see
	// mi.Normalization).
	Normalization mi.Normalization
	// TopK, when positive, replaces the fixed σ with the adaptive top-K
	// threshold of Section 6.3.2.
	TopK int
	// Variant selects the optimisation set (default VariantLMN).
	Variant Variant
	// Jitter, when positive, adds deterministic uniform noise of amplitude
	// Jitter·std(series) to each series before searching. KSG degrades on
	// heavily tied data (e.g. small-integer event counts): tied coordinates
	// collapse the kth-neighbour distances and the marginal counts explode.
	// Dithering at a scale far below the data's resolution breaks the ties
	// without adding measurable information; 0.01 is a good value for count
	// data. 0 disables (default).
	Jitter float64
	// MaxEvaluations, when positive, bounds the number of scored windows: the
	// search stops deterministically at the first restart or climb-iteration
	// boundary at or past the budget, returning the windows accepted so far
	// with Partial set and StopReason = StopBudget. 0 disables the budget.
	MaxEvaluations int
	// Deadline, when non-zero, bounds the search's wall-clock time the same
	// way (StopReason = StopDeadline). Context cancellation (SearchContext)
	// is independent of — and composes with — both budgets.
	Deadline time.Time
	// SignificanceLevel, when positive, subtracts a calibrated null level
	// (mean + SignificanceLevel·std of the KSG estimate on shuffled data of
	// the same window size) from every raw MI before normalization. This
	// suppresses the spurious small-window maxima a search over thousands
	// of candidates otherwise surfaces. 0 disables the correction (the
	// paper-faithful behaviour); 2–3 is a reasonable level when enabled.
	SignificanceLevel float64
	// Seed drives all randomness; equal seeds give identical searches.
	Seed int64
	// KNNEngine, when non-empty, selects the k-NN engine backing the batch
	// KSG estimator by registry name (mi.EngineNames lists them: "kdtree",
	// "brute", "grid", "forest"). Empty keeps the exact kd-tree default, so
	// existing configurations — and their checkpoint fingerprints — are
	// unchanged. Approximate engines (the randomized kd-forest) trade a
	// bounded MI error for per-estimate throughput; mi.NewBoundedKSG
	// quantifies the drift and refuses configurations above a caller ε. The
	// engine is seeded from Seed, so equal seeds still give identical
	// searches. Incompatible with the incremental variants (TYCOS_LM/LMN),
	// whose window-sliding estimator owns its k-NN state; validate rejects
	// the combination. The null-model calibration always uses the exact
	// estimator regardless of this setting — the noise threshold must not
	// inherit approximation bias.
	KNNEngine string
	// RestartWorkers bounds the concurrency of the restart/climb loop inside
	// this one search: the scan positions are decomposed into fixed restart
	// segments fanned over this many workers, each owning its own scorer and
	// estimator caches (≤0 → GOMAXPROCS). Results are schedule-independent:
	// RestartWorkers: 1 and RestartWorkers: N return byte-identical windows,
	// stats and event streams for the same seed. A positive MaxEvaluations
	// forces sequential execution regardless of this value — a deterministic
	// budget stop is only well-defined when evaluations accrue in one order.
	RestartWorkers int
	// EstimatorCache, when non-nil, pools warm incremental estimators across
	// searches: each search's scorers draw their first rebuilds from the
	// cache and return their estimators when the search ends. Sharing a
	// cache across the per-candidate searches of a fleet workload (see
	// internal/discovery) removes the per-search grid/multiset/point-state
	// allocations. Purely a performance hint — cached estimators are
	// reconfigured to bit-identical-to-fresh state before use, so results,
	// events and counters are unchanged. Only the incremental variants
	// (TYCOS_LM/LMN) consult it.
	EstimatorCache *EstimatorCache
	// Observer, when non-nil, receives the search's typed events
	// (restarts, climbs, accepted candidates, noise prunes), phase timings
	// and end-of-search counter totals — see internal/obs for the event
	// schema and the provided sinks. The default nil observer costs one nil
	// check on the hot path; a SearchAll sweep shares the observer across
	// its workers, so implementations must be safe for concurrent use.
	// Observability never alters the search: results and Stats are
	// identical with and without an observer.
	Observer obs.Sink

	// onCandidate, when set (package tests only), observes each completed
	// climb's local optimum in acceptance order. The prefix-consistency
	// tests use it to verify that an interrupted search's candidates are
	// exactly a prefix of the uninterrupted run's.
	onCandidate func(window.Scored)
}

// withDefaults returns a copy of o with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = mi.DefaultK
	}
	if o.Delta <= 0 {
		o.Delta = 1
	}
	if o.MaxIdle <= 0 {
		o.MaxIdle = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = o.Sigma / 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 0.005
	}
	return o
}

// constraints builds the feasibility constraints for a series of length n.
func (o Options) constraints(n int) window.Constraints {
	return window.Constraints{N: n, SMin: o.SMin, SMax: o.SMax, TDMax: o.TDMax}
}

// validate reports an error for inconsistent options over a series of
// length n. It expects defaults to be applied already.
func (o Options) validate(n int) error {
	if err := o.constraints(n).Validate(); err != nil {
		return err
	}
	if o.Sigma < 0 {
		return fmt.Errorf("core: σ = %v must be non-negative", o.Sigma)
	}
	if o.Epsilon >= o.Sigma && o.Sigma > 0 {
		return fmt.Errorf("core: ε = %v must be below σ = %v", o.Epsilon, o.Sigma)
	}
	if o.SMin <= o.K {
		return fmt.Errorf("core: s_min = %d must exceed KSG k = %d", o.SMin, o.K)
	}
	if o.KNNEngine != "" {
		if !mi.HasEngine(o.KNNEngine) {
			return fmt.Errorf("core: unknown k-NN engine %q (registered: %v)", o.KNNEngine, mi.EngineNames())
		}
		if o.Variant.incremental() {
			return fmt.Errorf("core: k-NN engine %q cannot back variant %s: the incremental estimator owns its k-NN state", o.KNNEngine, o.Variant)
		}
	}
	return nil
}

// StopReason records why a search stopped.
type StopReason string

const (
	// StopCompleted marks a search that covered the whole pair.
	StopCompleted StopReason = "completed"
	// StopCancelled marks a search cut short by context cancellation.
	StopCancelled StopReason = "cancelled"
	// StopDeadline marks a search cut short by Options.Deadline or a
	// context/pair deadline expiring.
	StopDeadline StopReason = "deadline"
	// StopBudget marks a search cut short by Options.MaxEvaluations.
	StopBudget StopReason = "budget"
)

// Stats counts the work a search performed; the efficiency evaluation
// reports these alongside wall-clock time.
type Stats struct {
	// WindowsEvaluated counts scored windows (including revisits).
	WindowsEvaluated int
	// MIBatch counts from-scratch MI estimations.
	MIBatch int
	// MIIncremental counts incremental window moves.
	MIIncremental int
	// Restarts counts LAHC restarts on unscanned remainders.
	Restarts int
	// PrunedDirections counts exploration directions cut by noise theory.
	PrunedDirections int
	// NoiseBlocks counts s_min blocks discarded by initial noise pruning.
	NoiseBlocks int
	// StopReason records why the search stopped (StopCompleted when it
	// covered the whole pair).
	StopReason StopReason
	// Timing is the wall-clock breakdown of the search. Unlike the counters
	// above it is not deterministic across runs; comparisons that assert
	// bit-exact Stats repeatability must zero it first.
	Timing Timing
}

// Deterministic returns a copy of the stats with the wall-clock Timing
// zeroed, leaving only the fields that are a pure function of (input,
// Options). Anything that persists or replays results byte-for-byte — the
// daemon's journal, the chaos harness's golden comparisons — stores this
// form, so a resumed run can be compared against an uninterrupted one.
func (s Stats) Deterministic() Stats {
	s.Timing = Timing{}
	return s
}

// Timing is the wall-clock phase breakdown of one search, mirroring the
// obs.Phase* timers: validation (input checks + jitter), null-model
// calibration (zero when significance correction is off), the restart/climb
// loop, and finalisation (thresholding, top-K, overlap resolution).
type Timing struct {
	// Validate, NullModel, Climb and Finalize are the per-phase durations.
	Validate  time.Duration
	NullModel time.Duration
	Climb     time.Duration
	Finalize  time.Duration
	// Total is the end-to-end duration of the search call.
	Total time.Duration
	// EvalsPerSec is WindowsEvaluated divided by Total — the search's
	// throughput in scored windows per second.
	EvalsPerSec float64
}

// Result is the outcome of a search: the accepted windows (scored with the
// configured normalization) and the work statistics.
type Result struct {
	Windows []window.Scored
	Stats   Stats
	// Partial marks a result cut short by cancellation, a deadline or an
	// evaluation budget. The windows are still valid accepted correlations:
	// they are exactly what an uninterrupted run would have produced over
	// the region scanned before the stop (Stats.StopReason says why). Only
	// climbs that finished contribute; an in-flight climb is discarded so
	// partial results stay prefix-consistent and deterministic.
	Partial bool
}
