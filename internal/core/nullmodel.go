package core

import (
	"math"
	"math/rand"
	"sort"

	"tycos/internal/mi"
	"tycos/internal/series"
)

// nullModel captures the finite-sample bias of the KSG estimator on
// independent data as a function of window size. Small windows produce
// substantial spurious MI (the estimator's variance shrinks like ~1/√m),
// and a search that maximises over many thousands of candidate windows
// experiences the extreme values of that noise. Subtracting a calibrated
// null level before thresholding suppresses those false positives.
//
// This is an extension over the paper (which thresholds the normalized MI
// directly); it is off by default and enabled with
// Options.SignificanceLevel. See DESIGN.md, "Design choices worth ablating".
type nullModel struct {
	sizes  []int     // ascending window sizes
	levels []float64 // null MI level (mean + λ·std on shuffled data) per size
}

// nullReplicates is the number of shuffled replicates per calibrated size.
const nullReplicates = 24

// buildNullModel estimates the null MI level at a geometric grid of window
// sizes by shuffling subsamples of the actual pair (destroying any
// dependence while keeping the marginals) and estimating their MI.
func buildNullModel(p series.Pair, opts Options, rng *rand.Rand) *nullModel {
	est := mi.NewKSG(opts.K, mi.BackendKDTree)
	nm := &nullModel{}
	n := p.Len()
	for m := opts.SMin; ; m *= 2 {
		if m > opts.SMax {
			m = opts.SMax
		}
		if m > n {
			m = n
		}
		level := nullLevelAt(p, est, m, opts.SignificanceLevel, rng)
		nm.sizes = append(nm.sizes, m)
		nm.levels = append(nm.levels, level)
		if m >= opts.SMax || m >= n {
			break
		}
	}
	return nm
}

// nullLevelAt estimates mean + λ·std of the KSG MI over shuffled windows of
// size m drawn from the pair.
func nullLevelAt(p series.Pair, est *mi.KSG, m int, lambda float64, rng *rand.Rand) float64 {
	n := p.Len()
	if m > n {
		m = n
	}
	xs := make([]float64, m)
	ys := make([]float64, m)
	var vals []float64
	for r := 0; r < nullReplicates; r++ {
		start := 0
		if n > m {
			start = rng.Intn(n - m)
		}
		copy(xs, p.X.Values[start:start+m])
		copy(ys, p.Y.Values[start:start+m])
		// Shuffling one side breaks the joint dependence while keeping both
		// marginal distributions — the exact null the threshold compares to.
		rng.Shuffle(m, func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
		v, err := est.Estimate(xs, ys)
		if err != nil {
			continue
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(vals)))
	return mean + lambda*std
}

// at interpolates the null level for window size m (log-linear between the
// calibrated grid points, clamped at the ends).
func (nm *nullModel) at(m int) float64 {
	if nm == nil || len(nm.sizes) == 0 {
		return 0
	}
	if m <= nm.sizes[0] {
		return nm.levels[0]
	}
	last := len(nm.sizes) - 1
	if m >= nm.sizes[last] {
		return nm.levels[last]
	}
	i := sort.SearchInts(nm.sizes, m)
	// nm.sizes[i-1] < m < nm.sizes[i]
	lo, hi := nm.sizes[i-1], nm.sizes[i]
	frac := (math.Log(float64(m)) - math.Log(float64(lo))) /
		(math.Log(float64(hi)) - math.Log(float64(lo)))
	return nm.levels[i-1]*(1-frac) + nm.levels[i]*frac
}
