package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"tycos/internal/faultinject"
	"tycos/internal/obs"
	"tycos/internal/series"
)

// PairResult is the outcome of one pair's search within a multi-pair run.
type PairResult struct {
	// XName and YName identify the pair.
	XName, YName string
	// Result is the search outcome; valid when Err is nil. It may be
	// partial (Result.Partial) when the sweep was cancelled or the pair hit
	// its time budget mid-search.
	Result Result
	// Err records a per-pair failure (the sweep continues past it). A panic
	// inside the pair's search is captured here with its stack trace.
	Err error
	// Attempts counts search attempts made for this pair; 0 when the result
	// was restored from a checkpoint or the pair never started.
	Attempts int
	// FromCheckpoint marks a result restored from SweepOptions.Checkpoint
	// instead of being recomputed.
	FromCheckpoint bool
}

// SweepCheckpoint persists completed pair results across process restarts so
// a killed sweep can resume where it left off. Implementations must be safe
// for concurrent use; internal/checkpoint provides the JSONL-backed one
// (exposed publicly as tycos.Checkpoint).
type SweepCheckpoint interface {
	// Lookup returns the journaled result for the named pair, if any.
	Lookup(xName, yName string) (Result, bool)
	// Record journals a completed pair result.
	Record(xName, yName string, r Result) error
}

// SweepOptions configures the robustness envelope of a SearchAllContext
// sweep; the zero value runs every pair once on GOMAXPROCS workers with no
// time budget and no checkpoint.
type SweepOptions struct {
	// Parallelism caps concurrent pair searches (≤ 0 → GOMAXPROCS); the
	// sweep never spawns more workers than there are pairs.
	Parallelism int
	// Retries is the number of extra attempts after a failed pair (panics
	// included), for riding out transient failures; 0 fails the pair on its
	// first error. Attempts stop early when the sweep context is cancelled.
	Retries int
	// PairTimeout bounds each pair's wall-clock search time. A pair that
	// exceeds it returns the windows found so far (Result.Partial,
	// StopReason = StopDeadline) rather than an error. 0 disables.
	PairTimeout time.Duration
	// Checkpoint, when non-nil, is consulted before each pair — journaled
	// pairs are restored, not recomputed — and updated as pairs complete.
	// Partial results are never journaled, so an interrupted pair is
	// recomputed in full on resume.
	Checkpoint SweepCheckpoint
}

// SearchAll runs TYCOS over every ordered pair of distinct series — the
// paper's cross-domain workflow ("we create pairwise time series from 72
// plugs, and apply TYCOS ... on each time series pair") — fanning the pairs
// across parallelism workers (0 → GOMAXPROCS). Each pair gets an
// independent, deterministic search (the configured seed), so results do
// not depend on scheduling. Pairs are ordered (x, y) with x before y in the
// input slice; the delay dimension already covers both directions of
// influence, so the reverse pairs would be redundant.
//
// Results arrive sorted by input position. Series of mismatched lengths
// produce a per-pair error rather than failing the sweep.
func SearchAll(ss []series.Series, opts Options, parallelism int) []PairResult {
	return SearchAllContext(context.Background(), ss, opts, SweepOptions{Parallelism: parallelism})
}

// SearchAllContext is SearchAll with cancellation and fault isolation. Each
// pair runs under recover(), so one panicking pair becomes a PairResult.Err
// (with stack trace) instead of killing the sweep; failed pairs are retried
// up to sw.Retries extra times. Cancelling ctx stops dispatching new pairs
// — undispatched pairs report ctx's error, in-flight pairs return their
// partial results — and a SweepCheckpoint makes the sweep resumable across
// process restarts. Results remain ordered by input position.
func SearchAllContext(ctx context.Context, ss []series.Series, opts Options, sw SweepOptions) []PairResult {
	parallelism := sw.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	type job struct {
		pos  int
		x, y series.Series
	}
	var jobs []job
	for i := 0; i < len(ss); i++ {
		for j := i + 1; j < len(ss); j++ {
			jobs = append(jobs, job{pos: len(jobs), x: ss[i], y: ss[j]})
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	if opts.RestartWorkers <= 0 {
		// Divide the cores between pair-level and restart-level parallelism
		// instead of letting every pair worker spawn GOMAXPROCS restart
		// workers of its own. Purely a scheduling decision: restart
		// decomposition is schedule-independent, so results are unchanged.
		rw := runtime.GOMAXPROCS(0) / parallelism
		if rw < 1 {
			rw = 1
		}
		opts.RestartWorkers = rw
	}
	out := make([]PairResult, len(jobs))
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range ch {
				// searchPairOnce isolates panics from the search itself, but
				// observer callbacks and checkpoint journaling run outside
				// that recover; without this worker-level net a panic there
				// would escape the goroutine and kill the whole process,
				// voiding the sweep's per-pair fault isolation.
				func() {
					defer func() {
						if r := recover(); r != nil {
							out[jb.pos] = PairResult{XName: jb.x.Name, YName: jb.y.Name,
								Err: fmt.Errorf("core: pair (%s, %s): panic outside search isolation: %v\n%s",
									jb.x.Name, jb.y.Name, r, debug.Stack())}
						}
					}()
					out[jb.pos] = searchPair(ctx, jb.x, jb.y, opts, sw, jb.pos, len(jobs))
				}()
			}
		}()
	}
	fed := len(jobs)
feed:
	for i, jb := range jobs {
		select {
		case ch <- jb:
		case <-ctx.Done():
			fed = i
			break feed
		}
	}
	close(ch)
	wg.Wait()
	// Pairs never handed to a worker report the cancellation.
	for i := fed; i < len(jobs); i++ {
		out[i] = PairResult{XName: jobs[i].x.Name, YName: jobs[i].y.Name, Err: ctx.Err()}
	}
	return out
}

// searchPair resolves one pair: checkpoint restore, then up to 1+Retries
// isolated attempts, then journaling of a completed result. Every resolution
// — searched, restored or failed — emits exactly one obs.PairFinished; each
// search attempt emits one obs.PairStarted first.
func searchPair(ctx context.Context, x, y series.Series, opts Options, sw SweepOptions, pos, total int) PairResult {
	pr := PairResult{XName: x.Name, YName: y.Name}
	o := opts.Observer
	pairName := x.Name + "/" + y.Name
	start := clockNow()
	finish := func() {
		if o == nil {
			return
		}
		errMsg := ""
		if pr.Err != nil {
			errMsg = pr.Err.Error()
		}
		o.Event(obs.PairFinished{
			Pair:           pairName,
			Attempt:        pr.Attempts,
			Index:          pos,
			Total:          total,
			Windows:        len(pr.Result.Windows),
			Partial:        pr.Result.Partial,
			FromCheckpoint: pr.FromCheckpoint,
			Err:            errMsg,
			Duration:       clockSince(start),
		})
	}
	if sw.Checkpoint != nil {
		if res, ok := sw.Checkpoint.Lookup(x.Name, y.Name); ok {
			pr.Result = res
			pr.FromCheckpoint = true
			finish()
			return pr
		}
	}
	attempts := 1 + sw.Retries
	if attempts < 1 {
		attempts = 1
	}
	for try := 1; try <= attempts; try++ {
		if err := ctx.Err(); err != nil {
			if pr.Err == nil {
				pr.Err = fmt.Errorf("core: pair (%s, %s): %w", x.Name, y.Name, err)
			}
			finish()
			return pr
		}
		pr.Attempts = try
		if o != nil {
			o.Event(obs.PairStarted{Pair: pairName, Attempt: try, Index: pos, Total: total})
		}
		res, err := searchPairOnce(ctx, x, y, opts, sw.PairTimeout)
		if err == nil {
			pr.Result, pr.Err = res, nil
			break
		}
		pr.Err = fmt.Errorf("core: pair (%s, %s): %w", x.Name, y.Name, err)
	}
	if pr.Err == nil && !pr.Result.Partial && sw.Checkpoint != nil {
		if err := sw.Checkpoint.Record(x.Name, y.Name, pr.Result); err != nil {
			pr.Err = fmt.Errorf("core: pair (%s, %s): checkpoint: %w", x.Name, y.Name, err)
		}
	}
	finish()
	return pr
}

// searchPairOnce runs a single isolated attempt: panics become errors
// carrying the stack, and the per-pair time budget is layered onto ctx.
func searchPairOnce(ctx context.Context, x, y series.Series, opts Options, timeout time.Duration) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := faultinject.Fire(x.Name + "/" + y.Name); err != nil {
		return Result{}, err
	}
	p, err := series.NewPair(x, y)
	if err != nil {
		return Result{}, err
	}
	return SearchContext(ctx, p, opts)
}
