package core

import (
	"fmt"
	"runtime"
	"sync"

	"tycos/internal/series"
)

// PairResult is the outcome of one pair's search within a multi-pair run.
type PairResult struct {
	// XName and YName identify the pair.
	XName, YName string
	// Result is the search outcome; valid when Err is nil.
	Result Result
	// Err records a per-pair failure (the sweep continues past it).
	Err error
}

// SearchAll runs TYCOS over every ordered pair of distinct series — the
// paper's cross-domain workflow ("we create pairwise time series from 72
// plugs, and apply TYCOS ... on each time series pair") — fanning the pairs
// across parallelism workers (0 → GOMAXPROCS). Each pair gets an
// independent, deterministic search (the configured seed), so results do
// not depend on scheduling. Pairs are ordered (x, y) with x before y in the
// input slice; the delay dimension already covers both directions of
// influence, so the reverse pairs would be redundant.
//
// Results arrive sorted by input position. Series of mismatched lengths
// produce a per-pair error rather than failing the sweep.
func SearchAll(ss []series.Series, opts Options, parallelism int) []PairResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	type job struct {
		pos  int
		x, y series.Series
	}
	var jobs []job
	for i := 0; i < len(ss); i++ {
		for j := i + 1; j < len(ss); j++ {
			jobs = append(jobs, job{pos: len(jobs), x: ss[i], y: ss[j]})
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	out := make([]PairResult, len(jobs))
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range ch {
				pr := PairResult{XName: jb.x.Name, YName: jb.y.Name}
				p, err := series.NewPair(jb.x, jb.y)
				if err == nil {
					pr.Result, err = Search(p, opts)
				}
				if err != nil {
					pr.Err = fmt.Errorf("core: pair (%s, %s): %w", jb.x.Name, jb.y.Name, err)
				}
				out[jb.pos] = pr
			}
		}()
	}
	for _, jb := range jobs {
		ch <- jb
	}
	close(ch)
	wg.Wait()
	return out
}
