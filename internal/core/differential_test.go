package core

import (
	"math"
	"math/rand"
	"testing"

	"tycos/internal/mi"
	"tycos/internal/series"
	"tycos/internal/window"
)

// Differential suite: the incremental scorer — IR/IMR update cascade, per-
// delay estimator cache, range diffing, rebuild heuristics — must agree with
// a from-scratch batch KSG recomputation to 1e-9 on every window of any move
// sequence a climb can produce. Sequences are randomized but seeded; a
// failing sequence is shrunk to the minimal failing suffix before reporting,
// so a regression prints a small reproducible trace instead of 60 windows.

const diffTolerance = 1e-9

// moveKind labels the four LAHC move types the climb generates.
type moveKind int

const (
	moveGrow moveKind = iota
	moveShrink
	moveShift
	moveDelay
	numMoveKinds
)

func (m moveKind) String() string {
	return [...]string{"grow", "shrink", "shift", "delay-change"}[m]
}

// randomMove perturbs w with one feasible move of the given kind, or returns
// false when no feasible perturbation of that kind exists.
func randomMove(rng *rand.Rand, w window.Window, kind moveKind, cons window.Constraints) (window.Window, bool) {
	amt := 1 + rng.Intn(4)
	cands := make([]window.Window, 0, 4)
	switch kind {
	case moveGrow:
		cands = append(cands,
			window.Window{Start: w.Start - amt, End: w.End, Delay: w.Delay},
			window.Window{Start: w.Start, End: w.End + amt, Delay: w.Delay})
	case moveShrink:
		cands = append(cands,
			window.Window{Start: w.Start + amt, End: w.End, Delay: w.Delay},
			window.Window{Start: w.Start, End: w.End - amt, Delay: w.Delay})
	case moveShift:
		cands = append(cands,
			window.Window{Start: w.Start - amt, End: w.End - amt, Delay: w.Delay},
			window.Window{Start: w.Start + amt, End: w.End + amt, Delay: w.Delay})
	case moveDelay:
		d := 1 + rng.Intn(2)
		cands = append(cands,
			window.Window{Start: w.Start, End: w.End, Delay: w.Delay - d},
			window.Window{Start: w.Start, End: w.End, Delay: w.Delay + d})
	}
	// Try the candidates in random order; first feasible wins.
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	for _, c := range cands {
		if c != w && cons.Feasible(c) {
			return c, true
		}
	}
	return w, false
}

// genMoveSequence builds a random feasible window trajectory of the given
// length, mixing all four move kinds.
func genMoveSequence(rng *rand.Rand, cons window.Constraints, length int) []window.Window {
	start := rng.Intn(cons.N - cons.SMin)
	w := window.Window{Start: start, End: start + cons.SMin - 1, Delay: 0}
	if !cons.Feasible(w) {
		w = window.Window{Start: 0, End: cons.SMin - 1, Delay: 0}
	}
	seq := []window.Window{w}
	for len(seq) < length {
		next, ok := randomMove(rng, w, moveKind(rng.Intn(int(numMoveKinds))), cons)
		if !ok {
			continue
		}
		w = next
		seq = append(seq, w)
	}
	return seq
}

// batchReference computes the from-scratch KSG raw estimate for w — the
// ground truth the incremental path must reproduce.
func batchReference(t *testing.T, p series.Pair, k int, w window.Window) (float64, bool) {
	t.Helper()
	xs, ys, err := p.DelaySlice(w.Start, w.End, w.Delay)
	if err != nil {
		t.Fatalf("reference slice for %+v: %v", w, err)
	}
	raw, err := mi.NewKSG(k, mi.BackendKDTree).Estimate(xs, ys)
	if err != nil {
		return 0, false
	}
	return raw, true
}

// replaySequence plays the windows through a fresh incremental scorer and
// returns the index of the first window whose raw MI diverges from the batch
// reference beyond tolerance (-1 when none does).
func replaySequence(t *testing.T, p series.Pair, opts Options, seq []window.Window) (failIdx int, got, want float64) {
	t.Helper()
	sc := newIncScorer(p, opts.K, opts.Normalization, opts.SMax)
	for i, w := range seq {
		raw, _, err := sc.both(w)
		wantRaw, ok := batchReference(t, p, opts.K, w)
		if err != nil {
			if ok {
				t.Fatalf("window %d (%+v): incremental errored (%v) where batch succeeded", i, w, err)
			}
			continue
		}
		if !ok {
			t.Fatalf("window %d (%+v): batch errored where incremental succeeded", i, w)
		}
		if math.Abs(raw-wantRaw) > diffTolerance {
			return i, raw, wantRaw
		}
	}
	return -1, 0, 0
}

// shrinkSequence minimises a failing sequence: it drops windows from the
// front as long as the shortened replay still fails, returning the minimal
// failing suffix (the estimator state that provokes the divergence is built
// by the retained prefix, so suffixes preserve failures far more often than
// arbitrary subsequences).
func shrinkSequence(t *testing.T, p series.Pair, opts Options, seq []window.Window, failIdx int) []window.Window {
	t.Helper()
	minimal := seq[:failIdx+1]
	for from := 1; from <= failIdx; from++ {
		cand := seq[from : failIdx+1]
		if idx, _, _ := replaySequence(t, p, opts, cand); idx >= 0 {
			minimal = cand[:idx+1]
			failIdx = from + idx
		}
	}
	return minimal
}

// TestIncrementalScorerMatchesBatchOnRandomTrajectories is the property test:
// 1e-9 agreement between the incremental scorer and batch KSG recomputation
// over seeded random grow/shrink/shift/delay-change sequences.
func TestIncrementalScorerMatchesBatchOnRandomTrajectories(t *testing.T) {
	p := testPair(7, 400, 120, 220, 2)
	opts := Options{SMin: 10, SMax: 60, TDMax: 5, K: mi.DefaultK, Normalization: mi.NormMaxEntropy}
	length := 60
	trials := 20
	if testing.Short() {
		trials = 6
	}
	cons := opts.constraints(p.Len())
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		seq := genMoveSequence(rng, cons, length)
		failIdx, got, want := replaySequence(t, p, opts, seq)
		if failIdx < 0 {
			continue
		}
		minimal := shrinkSequence(t, p, opts, seq, failIdx)
		t.Errorf("seed %d: incremental diverged from batch by %g (got %.12f, want %.12f)\nminimal failing sequence (%d windows):",
			seed, math.Abs(got-want), got, want, len(minimal))
		for i, w := range minimal {
			t.Errorf("  %2d: %+v", i, w)
		}
		return // one shrunk counterexample is enough output
	}
}

// TestIncrementalScorerMatchesBatchPerMoveKind isolates each move kind: long
// single-kind runs stress the corresponding IR/IMR update paths (grow →
// inserts, shrink → removes, shift → mixed, delay-change → cache/rebuild).
func TestIncrementalScorerMatchesBatchPerMoveKind(t *testing.T) {
	p := testPair(8, 400, 100, 200, 1)
	opts := Options{SMin: 10, SMax: 60, TDMax: 5, K: mi.DefaultK, Normalization: mi.NormMaxEntropy}
	cons := opts.constraints(p.Len())
	for kind := moveKind(0); kind < numMoveKinds; kind++ {
		rng := rand.New(rand.NewSource(int64(50 + kind)))
		w := window.Window{Start: 150, End: 150 + opts.SMin - 1, Delay: 0}
		seq := []window.Window{w}
		for len(seq) < 40 {
			next, ok := randomMove(rng, w, kind, cons)
			if !ok {
				// Single-kind walks hit constraint walls (e.g. pure grow
				// reaches SMax); bounce with a shift to keep going.
				next, ok = randomMove(rng, w, moveShift, cons)
				if !ok {
					break
				}
			}
			w = next
			seq = append(seq, w)
		}
		if failIdx, got, want := replaySequence(t, p, opts, seq); failIdx >= 0 {
			t.Errorf("%v: window %d (%+v) diverged: got %.12f, want %.12f", kind, failIdx, seq[failIdx], got, want)
		}
	}
}

// TestIncrementalScorerNormalizedAgreement extends the property to the
// normalized score — what the climb actually thresholds — across all three
// normalizations.
func TestIncrementalScorerNormalizedAgreement(t *testing.T) {
	p := testPair(9, 300, 80, 160, 0)
	for _, norm := range []mi.Normalization{mi.NormNone, mi.NormMaxEntropy, mi.NormJointHistogram} {
		opts := Options{SMin: 10, SMax: 60, TDMax: 5, K: mi.DefaultK, Normalization: norm}
		cons := opts.constraints(p.Len())
		rng := rand.New(rand.NewSource(99))
		seq := genMoveSequence(rng, cons, 40)
		incSc := newIncScorer(p, opts.K, norm, opts.SMax)
		batchSc := newBatchScorer(p, opts.K, norm)
		for i, w := range seq {
			gotNorm, err1 := incSc.score(w)
			wantNorm, err2 := batchSc.score(w)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("norm %v window %d (%+v): error mismatch: inc=%v batch=%v", norm, i, w, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if math.Abs(gotNorm-wantNorm) > diffTolerance {
				t.Errorf("norm %v window %d (%+v): normalized score diverged: got %.12f, want %.12f", norm, i, w, gotNorm, wantNorm)
			}
		}
	}
}
