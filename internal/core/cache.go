package core

import (
	"sync"

	"tycos/internal/mi"
)

// EstimatorCache pools warm incremental KSG estimators across searches.
//
// One search already recycles its own retired estimators (the incScorer pool
// of PR 5), but a fleet workload — the discovery engine confirming dozens of
// candidates against one anchor — builds and tears down a scorer per
// candidate, losing every grid, multiset and point-state allocation between
// searches. Passing a shared cache through Options.EstimatorCache lets the
// next search's first rebuilds start from a warm estimator instead of the
// heap.
//
// The cache is result-invisible by construction: a cached estimator is
// Reconfigured (empty, re-tuned cell, counters zeroed) before use, and the
// Reload/Reconfigure contract makes that bit-identical to a fresh
// NewIncrementalBulk. Which searches hit or miss the cache varies with
// scheduling, but since hits and misses produce identical estimates, events
// and counters, byte-identical output guarantees are unaffected.
//
// All methods are safe for concurrent use.
type EstimatorCache struct {
	mu   sync.Mutex
	pool []*mi.Incremental
	max  int

	gets, hits int64
}

// defaultEstimatorCacheMax bounds an unbounded cache: enough for a worker
// pool's worth of per-delay caches (maxIncStates each) without pinning
// arbitrary memory.
const defaultEstimatorCacheMax = 64

// NewEstimatorCache returns a cache retaining at most max estimators
// (max ≤ 0 → 64). Estimators put back beyond the bound are dropped for the
// garbage collector.
func NewEstimatorCache(max int) *EstimatorCache {
	if max <= 0 {
		max = defaultEstimatorCacheMax
	}
	return &EstimatorCache{max: max}
}

// take pops a pooled estimator re-tuned to (k, cell), or returns nil when the
// pool is empty and the caller must construct one.
func (c *EstimatorCache) take(k int, cell float64) *mi.Incremental {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.gets++
	n := len(c.pool)
	if n == 0 {
		c.mu.Unlock()
		return nil
	}
	inc := c.pool[n-1]
	c.pool = c.pool[:n-1]
	c.hits++
	c.mu.Unlock()
	inc.Reconfigure(k, cell)
	return inc
}

// put returns retired estimators to the pool, dropping any beyond the bound.
func (c *EstimatorCache) put(incs ...*mi.Incremental) {
	if c == nil || len(incs) == 0 {
		return
	}
	c.mu.Lock()
	for _, inc := range incs {
		if inc == nil {
			continue
		}
		if len(c.pool) >= c.max {
			break
		}
		c.pool = append(c.pool, inc)
	}
	c.mu.Unlock()
}

// Len reports the number of pooled estimators.
func (c *EstimatorCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pool)
}

// Hits reports the cache's take/hit totals, for tests and capacity tuning.
func (c *EstimatorCache) Hits() (gets, hits int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets, c.hits
}
