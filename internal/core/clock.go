package core

import "time"

// Observability timings — Stats.Timing phase durations, events-per-second,
// PairFinished durations — are the one sanctioned use of the wall clock in
// this package: they only describe a run, they never influence what the
// search computes. Routing every timing read through these two helpers keeps
// the nodeterm allowlist to a single site per form, so any new clock read
// that creeps into search logic surfaces as a tycoslint finding instead of
// hiding among the timings. The other sanctioned clock is the throttled
// Options.Deadline sample in (*searcher).checkStop, allowlisted where it
// happens because there the clock deliberately does affect when the search
// stops.

// clockNow returns the current wall time for observability timings.
func clockNow() time.Time {
	return time.Now() //lint:allow nodeterm observability timing only; never influences search decisions or results
}

// clockSince returns the elapsed wall time since start for observability
// timings.
func clockSince(start time.Time) time.Duration {
	return time.Since(start) //lint:allow nodeterm observability timing only; never influences search decisions or results
}
