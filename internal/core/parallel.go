package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"tycos/internal/faultinject"
	"tycos/internal/obs"
	"tycos/internal/series"
	"tycos/internal/window"
)

// In-pair parallelism: the restart/climb loop — where a search spends nearly
// all of its time — is decomposed into restart segments that concurrent
// workers can process independently and a deterministic merge recombines.
//
// The decomposition must not introduce schedule dependence anywhere, or the
// budget/cancellation contract (and reproducibility itself) falls apart. Four
// rules keep it out:
//
//  1. The segment plan is a pure function of (series length, Options): fixed
//     spans of scan positions, independent of the worker count.
//  2. Every worker owns all of its mutable state — scorer, incremental-MI
//     estimators, k-NN structures, stats, event buffer. The only shared
//     inputs (the jittered pair, the constraints, the calibrated null model)
//     are read-only after construction.
//  3. Each restart's LAHC acceptor is seeded from a per-(segment, restart)
//     split of the root seed, never from a shared stream.
//  4. Workers never publish results; the coordinator merges segment outputs
//     in segment order (not completion order) through the result-set
//     semantics, renumbering restart indices as it goes.
//
// Under these rules RestartWorkers: 1 and RestartWorkers: N produce
// byte-identical windows, stats and event streams for the same seed.

// segment is one contiguous slice of restart scan positions: chained LAHC
// restarts begin at positions in [from, limit). Climbs may grow their windows
// past limit — only the restart *start* positions are bounded — so
// correlations straddling a segment boundary are still reachable, and the
// overlap-resolving merge deduplicates whatever two adjacent segments both
// find.
type segment struct {
	index int
	from  int
	limit int
}

// segmentSpanFactor sizes restart segments as a multiple of SMax. Spans must
// be a pure function of the options (rule 1 above): smaller spans expose more
// parallelism but duplicate more boundary work, since a segment rescans up to
// one window length that its predecessor's final climb may already cover.
const segmentSpanFactor = 4

// planSegments cuts the feasible scan positions [0, n−SMin] into fixed-span
// segments. The plan depends only on n and the options — never on the worker
// count — so every RestartWorkers value walks the identical restart
// decomposition. A single segment (small inputs) degenerates to the paper's
// fully sequential restart chain.
func planSegments(n int, opts Options) []segment {
	span := segmentSpanFactor * opts.SMax
	lastStart := n - opts.SMin
	var segs []segment
	for from := 0; from <= lastStart; from += span {
		limit := from + span
		if limit > lastStart+1 {
			limit = lastStart + 1
		}
		segs = append(segs, segment{index: len(segs), from: from, limit: limit})
	}
	return segs
}

// restartWorkers resolves Options.RestartWorkers against the plan: ≤0 means
// GOMAXPROCS, never more workers than segments, and a deterministic
// evaluation budget forces sequential execution — a budget stop depends on
// the cumulative evaluation count, which is schedule-dependent the moment two
// workers accrue evaluations concurrently (see Options.MaxEvaluations).
func restartWorkers(opts Options, numSegments int) int {
	w := opts.RestartWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if opts.MaxEvaluations > 0 {
		w = 1
	}
	if w > numSegments {
		w = numSegments
	}
	if w < 1 {
		w = 1
	}
	return w
}

// splitmix64 is the SplitMix64 finalizer — a cheap, high-quality bijective
// mixer used to derive independent per-restart seeds from the root seed.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// restartSeed derives the LAHC acceptor seed for one restart from the root
// seed and the restart's (segment, local index) coordinates. Deriving per
// restart — rather than threading one RNG through the whole search — is what
// makes the walk schedule-independent: a restart's randomness depends only on
// where it is in the plan, not on which worker ran how many restarts before
// it.
func restartSeed(root int64, seg, restart int) int64 {
	h := splitmix64(uint64(root))
	h = splitmix64(h ^ uint64(seg))
	h = splitmix64(h ^ uint64(restart))
	return int64(h)
}

// segmentResult is one segment's contribution, produced worker-locally and
// merged by the coordinator in segment order.
type segmentResult struct {
	cands    []window.Scored
	stats    Stats
	events   []obs.Event
	counters []counter
	stop     StopReason
}

// segmentFaultKey names a segment for the faultinject registry; robustness
// tests arm panics against it to prove that a fault inside a restart worker
// surfaces on the search's own goroutine (where the sweep-level isolation can
// catch it) instead of killing the process. Only panic/delay faults are
// meaningful here — a segment has no error return path.
func segmentFaultKey(pairName string, seg int) string {
	return fmt.Sprintf("segment:%s:%d", pairName, seg)
}

// runSegmentsSequential processes segments in order on the calling
// goroutine, chaining the evaluation count through evalBase so a
// deterministic MaxEvaluations budget is charged against the whole search,
// not per segment. Segments after a stop never run — exactly the prefix the
// merge of a parallel run reconstructs by discarding post-stop segments.
func runSegmentsSequential(ctx context.Context, p series.Pair, opts Options, cons window.Constraints, null *nullModel, pairName string, segs []segment) []segmentResult {
	results := make([]segmentResult, 0, len(segs))
	evalBase := 0
	for _, seg := range segs {
		sr := runSegment(ctx, p, opts, cons, null, pairName, seg, evalBase)
		results = append(results, sr)
		if sr.stop != "" {
			break
		}
		evalBase += sr.stats.WindowsEvaluated
	}
	return results
}

// workerPanic wraps a panic captured on a restart worker so it can be
// rethrown on the search's goroutine with the worker's stack attached.
type workerPanic struct {
	value any
	stack []byte
}

func (w *workerPanic) String() string {
	return fmt.Sprintf("%v\n\nrestart worker stack:\n%s", w.value, w.stack)
}

// runSegmentsParallel fans the segments out over a pool of workers. Workers
// pull the next unprocessed segment index (work stealing keeps long segments
// from serialising the tail) and write results into the per-segment slot, so
// no ordering information leaks from the schedule. A panic inside a segment
// is captured with its stack and rethrown on the calling goroutine after the
// pool drains — same crash semantics as the sequential path, which is what
// the sweep-level fault isolation relies on.
func runSegmentsParallel(ctx context.Context, p series.Pair, opts Options, cons window.Constraints, null *nullModel, pairName string, segs []segment, workers int) []segmentResult {
	results := make([]segmentResult, len(segs))
	panics := make([]*workerPanic, len(segs))
	var next int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(segs) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &workerPanic{value: r, stack: debug.Stack()}
						}
					}()
					results[i] = runSegment(ctx, p, opts, cons, null, pairName, segs[i], 0)
				}()
			}
		}()
	}
	wg.Wait()
	for _, pv := range panics {
		if pv != nil {
			panic(pv)
		}
	}
	return results
}

// runSegment runs one segment's chained restart loop with fully private
// state: its own scorer (and with it all incremental-MI and k-NN caches), its
// own stats, candidates and event buffer. evalBase charges evaluations spent
// by earlier segments against this segment's deterministic budget (sequential
// mode only; parallel runs never carry a budget).
func runSegment(ctx context.Context, p series.Pair, opts Options, cons window.Constraints, null *nullModel, pairName string, seg segment, evalBase int) segmentResult {
	if err := faultinject.Fire(segmentFaultKey(pairName, seg.index)); err != nil {
		panic(err)
	}
	s := &searcher{
		pair:      p,
		opts:      opts,
		cons:      cons,
		scorer:    newScorer(p, opts, null),
		null:      null,
		ctx:       ctx,
		seg:       seg,
		evalBase:  evalBase,
		observing: opts.Observer != nil,
		pairName:  pairName,
	}
	s.run()
	sr := segmentResult{
		cands:    s.cands,
		stats:    s.stats,
		events:   s.events,
		counters: s.scorer.counters(),
		stop:     s.stop,
	}
	// The scorer is done: counters are captured, so its estimators can flow
	// back to a shared cross-search cache (no-op without one).
	s.scorer.release()
	return sr
}

// newScorer builds the variant's scorer over the pair, sharing the read-only
// null model.
func newScorer(p series.Pair, opts Options, null *nullModel) scorer {
	if opts.Variant.incremental() {
		sc := newIncScorer(p, opts.K, opts.Normalization, opts.SMax)
		sc.null = null
		sc.shared = opts.EstimatorCache
		return sc
	}
	sc := newBatchScorerEngine(p, opts.K, opts.Normalization, opts.KNNEngine, opts.Seed)
	sc.null = null
	return sc
}

// addStats folds one segment's work counters into the search totals. Timing
// and StopReason are coordinator-owned and excluded.
func addStats(dst *Stats, s Stats) {
	dst.WindowsEvaluated += s.WindowsEvaluated
	dst.MIBatch += s.MIBatch
	dst.MIIncremental += s.MIIncremental
	dst.Restarts += s.Restarts
	dst.PrunedDirections += s.PrunedDirections
	dst.NoiseBlocks += s.NoiseBlocks
}
