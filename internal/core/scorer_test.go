package core

import (
	"math"
	"math/rand"
	"testing"

	"tycos/internal/mi"
	"tycos/internal/series"
	"tycos/internal/window"
)

func scorerPair(seed int64, n int) series.Pair {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	ar := 0.0
	for i := range x {
		ar = 0.8*ar + rng.NormFloat64()
		x[i] = ar
		y[i] = 0.6*ar + 0.5*rng.NormFloat64()
	}
	return series.MustPair(series.New("x", x), series.New("y", y))
}

func TestBatchAndIncrementalScorersAgree(t *testing.T) {
	p := scorerPair(3, 400)
	batch := newBatchScorer(p, 4, mi.NormMaxEntropy)
	inc := newIncScorer(p, 4, mi.NormMaxEntropy, 120)
	windows := []window.Window{
		{Start: 10, End: 60, Delay: 0},
		{Start: 12, End: 66, Delay: 0}, // same-delay diff
		{Start: 12, End: 66, Delay: 3}, // delay change
		{Start: 15, End: 70, Delay: 3}, // diff at new delay
		{Start: 12, End: 66, Delay: 0}, // back to cached delay 0
		{Start: 200, End: 320, Delay: -5},
	}
	for _, w := range windows {
		b, errB := batch.score(w)
		i, errI := inc.score(w)
		if (errB == nil) != (errI == nil) {
			t.Fatalf("%v: error mismatch %v vs %v", w, errB, errI)
		}
		if errB != nil {
			continue
		}
		if math.Abs(b-i) > 1e-9 {
			t.Errorf("%v: batch %.12f != incremental %.12f", w, b, i)
		}
		rb, nb, err := batch.both(w)
		if err != nil {
			t.Fatal(err)
		}
		ri, ni, err := inc.both(w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rb-ri) > 1e-9 || math.Abs(nb-ni) > 1e-9 {
			t.Errorf("%v: both() mismatch (%v,%v) vs (%v,%v)", w, rb, nb, ri, ni)
		}
	}
	nBatch, nInc := inc.stats()
	if nInc == 0 {
		t.Error("incremental scorer performed no incremental moves")
	}
	if nBatch == 0 {
		t.Error("incremental scorer performed no rebuilds")
	}
}

func TestIncScorerLRUEviction(t *testing.T) {
	p := scorerPair(5, 300)
	inc := newIncScorer(p, 4, mi.NormMaxEntropy, 60)
	// Touch more delays than the cache holds.
	for d := -5; d <= 5; d++ {
		if _, err := inc.score(window.Window{Start: 50, End: 100, Delay: d}); err != nil {
			t.Fatal(err)
		}
	}
	if len(inc.states) > maxIncStates {
		t.Errorf("cache grew to %d > %d", len(inc.states), maxIncStates)
	}
	// Evicted delays still score correctly (through a rebuild).
	b, _ := newBatchScorer(p, 4, mi.NormMaxEntropy).score(window.Window{Start: 50, End: 100, Delay: -5})
	i, err := inc.score(window.Window{Start: 50, End: 100, Delay: -5})
	if err != nil || math.Abs(b-i) > 1e-9 {
		t.Errorf("evicted delay rescores wrong: %v vs %v (%v)", b, i, err)
	}
}

func TestNullModelInterpolation(t *testing.T) {
	nm := &nullModel{sizes: []int{10, 40, 160}, levels: []float64{0.8, 0.4, 0.1}}
	if nm.at(5) != 0.8 || nm.at(10) != 0.8 {
		t.Error("clamp below first size failed")
	}
	if nm.at(160) != 0.1 || nm.at(1000) != 0.1 {
		t.Error("clamp above last size failed")
	}
	mid := nm.at(20) // log-midpoint of [10,40]
	if mid <= 0.4 || mid >= 0.8 {
		t.Errorf("interpolated level %v out of (0.4, 0.8)", mid)
	}
	if nm.at(40) != 0.4 {
		t.Errorf("exact grid point = %v", nm.at(40))
	}
	var nilModel *nullModel
	if nilModel.at(50) != 0 {
		t.Error("nil model must be zero")
	}
}

func TestBuildNullModelDecreasesWithSize(t *testing.T) {
	p := scorerPair(7, 600)
	opts := Options{SMin: 10, SMax: 160, TDMax: 4, Sigma: 0.3, SignificanceLevel: 2}.withDefaults()
	nm := buildNullModel(p, opts, rand.New(rand.NewSource(1)))
	if len(nm.sizes) < 3 {
		t.Fatalf("too few calibration sizes: %v", nm.sizes)
	}
	// KSG algorithm 2 is near-unbiased on independent data, so null levels
	// sit close to zero — sometimes slightly below, since boundary effects
	// at tiny m can push the estimate negative. What shrinks with sample
	// count is the MAGNITUDE of the spurious level, not necessarily a
	// positive bias.
	first, last := nm.levels[0], nm.levels[len(nm.levels)-1]
	if math.Abs(last) >= math.Abs(first) {
		t.Errorf("null level magnitude did not shrink: %v → %v (%v)", first, last, nm.levels)
	}
	for _, l := range nm.levels {
		if l < -1 || l > 1 {
			t.Errorf("implausible null level %v", l)
		}
	}
}

func TestJitterPair(t *testing.T) {
	p := scorerPair(9, 200)
	same := jitterPair(p, 0, 1)
	if &same.X.Values[0] != &p.X.Values[0] {
		t.Error("zero jitter must return the pair unchanged")
	}
	j1 := jitterPair(p, 0.01, 1)
	j2 := jitterPair(p, 0.01, 1)
	moved := false
	for i := range p.X.Values {
		if j1.X.Values[i] != j2.X.Values[i] {
			t.Fatal("jitter must be deterministic for equal seeds")
		}
		if j1.X.Values[i] != p.X.Values[i] {
			moved = true
		}
		// Amplitude bounded by jitter·std (std ≈ 1.6 here).
		if math.Abs(j1.X.Values[i]-p.X.Values[i]) > 0.05 {
			t.Fatalf("jitter too large at %d: %v vs %v", i, j1.X.Values[i], p.X.Values[i])
		}
	}
	if !moved {
		t.Error("jitter changed nothing")
	}
	// Constant series still get dithered (absolute fallback scale).
	c := series.MustPair(series.New("cx", make([]float64, 50)), series.New("cy", make([]float64, 50)))
	jc := jitterPair(c, 0.01, 2)
	if jc.X.Values[0] == 0 && jc.X.Values[1] == 0 {
		t.Error("constant series not dithered")
	}
}

func TestNoiseVerdictOnKnownStructure(t *testing.T) {
	// A pair correlated on [0,99] and independent on [100,199]: the forward
	// partition after the correlated anchor must be judged noise; a
	// partition inside the correlated region must not.
	rng := rand.New(rand.NewSource(11))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		if i < 100 {
			y[i] = x[i] + 0.1*rng.NormFloat64()
		} else {
			y[i] = rng.NormFloat64()
		}
	}
	p := series.MustPair(series.New("x", x), series.New("y", y))
	opts := Options{SMin: 16, SMax: 150, TDMax: 2, Sigma: 0.3}.withDefaults()
	s := &searcher{pair: p, opts: opts, cons: opts.constraints(n)}
	s.scorer = newBatchScorer(p, opts.K, mi.NormMaxEntropy)

	anchor := window.Window{Start: 40, End: 99, Delay: 0}
	anchorRaw, _, err := s.scorer.both(anchor)
	if err != nil {
		t.Fatal(err)
	}
	noisePart := window.Window{Start: 100, End: 115, Delay: 0}
	if !s.noiseVerdict(anchor, anchorRaw, noisePart, true) {
		t.Error("independent continuation should be judged noise")
	}
	inner := window.Window{Start: 40, End: 79, Delay: 0}
	innerRaw, _, err := s.scorer.both(inner)
	if err != nil {
		t.Fatal(err)
	}
	goodPart := window.Window{Start: 80, End: 99, Delay: 0}
	if s.noiseVerdict(inner, innerRaw, goodPart, true) {
		t.Error("correlated continuation should not be judged noise")
	}
}

func TestGridCellForDegenerate(t *testing.T) {
	if gridCellFor([]float64{1, 1}, []float64{1, 1}, 4, 100) != 1 {
		t.Error("zero span must fall back to 1")
	}
	if c := gridCellFor([]float64{0, 10}, []float64{0, 10}, 0, 0); !(c > 0) {
		t.Errorf("degenerate parameters produced cell %v", c)
	}
}
