package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tycos/internal/faultinject"
	"tycos/internal/series"
	"tycos/internal/window"
)

// sweepSeries builds named independent-noise series for sweep tests.
func sweepSeries(names ...string) []series.Series {
	ss := make([]series.Series, len(names))
	for i, name := range names {
		p := testPair(int64(100+i), 250, 60, 140, 0)
		ss[i] = series.New(name, p.X.Values)
	}
	return ss
}

func TestSearchContextCancelledImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := testPair(3, 300, 120, 180, 0)
	res, err := SearchContext(ctx, p, defaultOpts())
	if err != nil {
		t.Fatalf("cancelled search must not error: %v", err)
	}
	if !res.Partial {
		t.Error("cancelled search must report Partial")
	}
	if res.Stats.StopReason != StopCancelled {
		t.Errorf("StopReason = %q, want %q", res.Stats.StopReason, StopCancelled)
	}
	if len(res.Windows) != 0 {
		t.Errorf("search cancelled before any climb returned windows: %v", res.Windows)
	}
}

func TestSearchContextDeadlineExceeded(t *testing.T) {
	p := testPair(3, 300, 120, 180, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	res, err := SearchContext(ctx, p, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Stats.StopReason != StopDeadline {
		t.Errorf("expired context: Partial=%v StopReason=%q, want partial deadline", res.Partial, res.Stats.StopReason)
	}

	opts := defaultOpts()
	opts.Deadline = time.Now().Add(-time.Second)
	res, err = Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Stats.StopReason != StopDeadline {
		t.Errorf("past Options.Deadline: Partial=%v StopReason=%q, want partial deadline", res.Partial, res.Stats.StopReason)
	}
}

func TestMaxEvaluationsPrefixConsistent(t *testing.T) {
	p := testPair(23, 600, 80, 150, 0)
	opts := defaultOpts()
	opts.Variant = VariantLMN
	var fullCands []window.Scored
	opts.onCandidate = func(w window.Scored) { fullCands = append(fullCands, w) }
	full, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial || full.Stats.StopReason != StopCompleted {
		t.Fatalf("uninterrupted run reported Partial=%v StopReason=%q", full.Partial, full.Stats.StopReason)
	}
	sawPartial := false
	for _, budget := range []int{40, 200, 1000, 5000} {
		o := opts
		o.MaxEvaluations = budget
		var cands []window.Scored
		o.onCandidate = func(w window.Scored) { cands = append(cands, w) }
		a, err := Search(p, o)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		o.onCandidate = nil
		b, err := Search(p, o)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		// Timing is wall-clock and varies run to run; the counters must not.
		a.Stats.Timing, b.Stats.Timing = Timing{}, Timing{}
		if len(a.Windows) != len(b.Windows) || a.Stats != b.Stats {
			t.Errorf("budget %d: non-deterministic stop (windows %d vs %d, stats %+v vs %+v)",
				budget, len(a.Windows), len(b.Windows), a.Stats, b.Stats)
		}
		// Prefix consistency: the interrupted run accepts exactly the climb
		// outcomes the uninterrupted run accepts over the scanned region —
		// no extra, reordered or mutated candidates from the early stop.
		if len(cands) > len(fullCands) {
			t.Fatalf("budget %d: more candidates (%d) than the full run (%d)", budget, len(cands), len(fullCands))
		}
		for i := range cands {
			if cands[i] != fullCands[i] {
				t.Errorf("budget %d: candidate %d = %v, full run has %v", budget, i, cands[i], fullCands[i])
			}
		}
		switch a.Stats.StopReason {
		case StopBudget:
			sawPartial = true
			if !a.Partial {
				t.Errorf("budget %d: StopBudget without Partial", budget)
			}
			if a.Stats.WindowsEvaluated < budget {
				t.Errorf("budget %d: stopped at %d evaluations, before the budget", budget, a.Stats.WindowsEvaluated)
			}
		case StopCompleted:
			if a.Partial {
				t.Errorf("budget %d: completed run marked Partial", budget)
			}
			if len(a.Windows) != len(full.Windows) {
				t.Errorf("budget %d: completed run differs from unbudgeted run", budget)
			}
		default:
			t.Errorf("budget %d: unexpected stop reason %q", budget, a.Stats.StopReason)
		}
	}
	if !sawPartial {
		t.Errorf("no tested budget cut the search short; full run used %d evaluations", full.Stats.WindowsEvaluated)
	}
}

// The incremental scorer once accumulated its digamma sum in map-iteration
// order, which made VariantLM/LMN trajectories drift across runs at the ulp
// level — and with them every Stats counter. Bit-exact repeatability is what
// the budget/cancellation contract stands on, so it gets its own regression.
func TestSearchDeterministicIncrementalVariant(t *testing.T) {
	p := testPair(23, 600, 80, 150, 0)
	opts := defaultOpts()
	opts.Variant = VariantLMN
	a, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, err := Search(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Timing is wall-clock and varies run to run; the counters must not.
		a.Stats.Timing, b.Stats.Timing = Timing{}, Timing{}
		if a.Stats != b.Stats {
			t.Fatalf("run %d stats differ: %+v vs %+v", i, a.Stats, b.Stats)
		}
		if len(a.Windows) != len(b.Windows) {
			t.Fatalf("run %d window count differs", i)
		}
		for j := range a.Windows {
			if a.Windows[j] != b.Windows[j] {
				t.Fatalf("run %d window %d differs: %v vs %v", i, j, a.Windows[j], b.Windows[j])
			}
		}
	}
}

func TestSearchRejectsNonFiniteInput(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		p := testPair(7, 100, 20, 60, 0)
		p.Y.Values[42] = bad
		_, err := Search(p, defaultOpts())
		if err == nil {
			t.Fatalf("value %v accepted", bad)
		}
		for _, want := range []string{"index 42", "FillMissing", `"y"`} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %s", err, want)
			}
		}
	}
}

func TestSearchAllContextPanicIsolation(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set("a/c", faultinject.Fault{Panic: "boom"})
	ss := sweepSeries("a", "b", "c")
	results := SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{Parallelism: 2})
	if len(results) != 3 {
		t.Fatalf("want 3 pairs, got %d", len(results))
	}
	for _, pr := range results {
		name := pr.XName + "/" + pr.YName
		if name == "a/c" {
			if pr.Err == nil {
				t.Fatal("panicking pair reported no error")
			}
			if !strings.Contains(pr.Err.Error(), "boom") || !strings.Contains(pr.Err.Error(), "goroutine") {
				t.Errorf("panic error lacks message or stack: %v", pr.Err)
			}
			continue
		}
		if pr.Err != nil {
			t.Errorf("healthy pair %s failed: %v", name, pr.Err)
		}
		if pr.Result.Stats.StopReason != StopCompleted {
			t.Errorf("healthy pair %s did not complete: %q", name, pr.Result.Stats.StopReason)
		}
	}
}

func TestSearchAllContextRetriesTransientFailure(t *testing.T) {
	defer faultinject.Clear()
	transient := errors.New("transient")
	ss := sweepSeries("a", "b")

	faultinject.Set("a/b", faultinject.Fault{Err: transient, Times: 1})
	res := SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{Retries: 2})
	if res[0].Err != nil {
		t.Fatalf("retry did not recover the transient failure: %v", res[0].Err)
	}
	if res[0].Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res[0].Attempts)
	}

	// Without retries the same fault fails the pair — once.
	faultinject.Set("a/b", faultinject.Fault{Err: transient, Times: 1})
	res = SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{})
	if res[0].Err == nil || !errors.Is(res[0].Err, transient) {
		t.Fatalf("unretried transient failure not surfaced: %v", res[0].Err)
	}
	if res[0].Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", res[0].Attempts)
	}
}

func TestSearchAllContextPairTimeoutReturnsPartial(t *testing.T) {
	ss := sweepSeries("a", "b")
	res := SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{PairTimeout: time.Nanosecond})
	if res[0].Err != nil {
		t.Fatalf("timed-out pair must not error: %v", res[0].Err)
	}
	if !res[0].Result.Partial || res[0].Result.Stats.StopReason != StopDeadline {
		t.Errorf("timed-out pair: Partial=%v StopReason=%q, want partial deadline",
			res[0].Result.Partial, res[0].Result.Stats.StopReason)
	}
}

func TestSearchAllContextCancelMidSweep(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set("a/b", faultinject.Fault{Delay: 200 * time.Millisecond})
	ss := sweepSeries("a", "b", "c", "d")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	results := SearchAllContext(ctx, ss, defaultOpts(), SweepOptions{Parallelism: 1})
	if len(results) != 6 {
		t.Fatalf("want 6 pairs, got %d", len(results))
	}
	// The in-flight pair finished its (empty) search under the cancelled
	// context; every undispatched pair reports the cancellation.
	first := results[0]
	if first.Err != nil || !first.Result.Partial || first.Result.Stats.StopReason != StopCancelled {
		t.Errorf("in-flight pair: Err=%v Partial=%v StopReason=%q", first.Err, first.Result.Partial, first.Result.Stats.StopReason)
	}
	for _, pr := range results[1:] {
		if !errors.Is(pr.Err, context.Canceled) {
			t.Errorf("undispatched pair (%s,%s): Err=%v, want context.Canceled", pr.XName, pr.YName, pr.Err)
		}
	}
}

func TestSearchAllContextWorkerCapAndNoLeak(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set("a/b", faultinject.Fault{Delay: 150 * time.Millisecond})
	ss := sweepSeries("a", "b")
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() {
		defer close(done)
		SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{Parallelism: 64})
	}()
	time.Sleep(50 * time.Millisecond)
	// One job → one worker, regardless of the requested parallelism.
	if during := runtime.NumGoroutine(); during > before+4 {
		t.Errorf("goroutines during 1-pair sweep: %d (baseline %d); worker cap not applied", during, before)
	}
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// memCheckpoint is an in-memory SweepCheckpoint for core-level tests (the
// JSONL journal lives in internal/checkpoint, which imports this package).
type memCheckpoint struct {
	mu   sync.Mutex
	done map[string]Result
}

func (m *memCheckpoint) Lookup(x, y string) (Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.done[x+"/"+y]
	return r, ok
}

func (m *memCheckpoint) Record(x, y string, r Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done == nil {
		m.done = make(map[string]Result)
	}
	m.done[x+"/"+y] = r
	return nil
}

func TestSearchAllContextDoesNotCheckpointPartialResults(t *testing.T) {
	ss := sweepSeries("a", "b")
	ck := &memCheckpoint{}
	res := SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{
		PairTimeout: time.Nanosecond,
		Checkpoint:  ck,
	})
	if !res[0].Result.Partial {
		t.Fatal("expected a partial pair")
	}
	if len(ck.done) != 0 {
		t.Errorf("partial result was journaled: %v", ck.done)
	}
	// A completed pair is journaled and restored on the next sweep.
	res = SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{Checkpoint: ck})
	if res[0].Err != nil || res[0].FromCheckpoint {
		t.Fatalf("first completed run: Err=%v FromCheckpoint=%v", res[0].Err, res[0].FromCheckpoint)
	}
	res = SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{Checkpoint: ck})
	if !res[0].FromCheckpoint || res[0].Attempts != 0 {
		t.Errorf("journaled pair recomputed: FromCheckpoint=%v Attempts=%d", res[0].FromCheckpoint, res[0].Attempts)
	}
}

func TestConcurrentSweepsWithFaultInjection(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set("a/b", faultinject.Fault{Panic: "races"})
	ss := sweepSeries("a", "b", "c")
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results := SearchAllContext(context.Background(), ss, defaultOpts(), SweepOptions{Parallelism: 3, Retries: 1})
			for _, pr := range results {
				if pr.XName == "a" && pr.YName == "b" {
					continue // always panics; both attempts fail by design
				}
				if pr.Err != nil {
					t.Errorf("pair (%s,%s): %v", pr.XName, pr.YName, pr.Err)
				}
			}
		}()
	}
	wg.Wait()
}
