package core

import (
	"reflect"
	"strings"
	"testing"
)

// TestSearchKNNEngineSelection covers the Options.KNNEngine plumbing: the
// explicit exact engine is byte-identical to the default, the approximate
// forest still finds the embedded correlation, and invalid configurations
// are rejected with named errors.
func TestSearchKNNEngineSelection(t *testing.T) {
	p := testPair(3, 300, 120, 180, 0)

	base := defaultOpts()
	base.Variant = VariantL
	want, err := Search(p, base)
	if err != nil {
		t.Fatal(err)
	}

	// Explicit "kdtree" must run the identical arithmetic in the identical
	// order — same windows, same stats, bit for bit.
	exact := base
	exact.KNNEngine = "kdtree"
	got, err := Search(p, exact)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Windows, got.Windows) {
		t.Fatalf("kdtree engine windows differ from default:\n got %v\nwant %v", got.Windows, want.Windows)
	}
	if want.Stats.Deterministic() != got.Stats.Deterministic() {
		t.Fatalf("kdtree engine stats differ from default:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}

	// The approximate forest trades bounded MI error for throughput; it must
	// still surface the embedded segment.
	forest := base
	forest.KNNEngine = "forest"
	fres, err := Search(p, forest)
	if err != nil {
		t.Fatal(err)
	}
	if !overlapsSegment(fres.Windows, 120, 180) {
		t.Errorf("forest engine windows %v miss the embedded segment [120,180]", fres.Windows)
	}
	// And stay deterministic for a fixed seed.
	fres2, err := Search(p, forest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fres.Windows, fres2.Windows) {
		t.Fatalf("forest engine not deterministic for fixed seed:\n%v\nvs\n%v", fres.Windows, fres2.Windows)
	}
}

func TestSearchKNNEngineValidation(t *testing.T) {
	p := testPair(3, 120, 40, 80, 0)

	bad := defaultOpts()
	bad.Variant = VariantL
	bad.KNNEngine = "no-such-engine"
	if _, err := Search(p, bad); err == nil {
		t.Error("want error for unknown engine")
	} else if !strings.Contains(err.Error(), "no-such-engine") || !strings.Contains(err.Error(), "kdtree") {
		t.Errorf("error should name the engine and list registered ones: %v", err)
	}

	inc := defaultOpts()
	inc.Variant = VariantLMN
	inc.KNNEngine = "forest"
	if _, err := Search(p, inc); err == nil {
		t.Error("want error for engine + incremental variant")
	} else if !strings.Contains(err.Error(), "TYCOS_LMN") {
		t.Errorf("error should name the variant: %v", err)
	}
}
