package core

import (
	"tycos/internal/obs"
	"tycos/internal/window"
)

// The noise theory (Section 6, Theorem 6.1): mixing a window with data that
// is independent of the dependence structure can only dilute the mutual
// information, I(Z;W) = θη·I(X;Y) ≤ I(X;Y). Definition 6.4 operationalises
// it: a following window w' is noise w.r.t. a followed window w iff
//
//	Ĩ(w') < ε   and   I_raw(w ⊙ w') < I_raw(w).
//
// The ε clause is evaluated on the same normalized scale as σ; the
// concatenation clause must use RAW MI — normalized scores shrink with
// window size by construction, which would brand every extension as noise.

// noiseVerdict evaluates Definition 6.4 for concatenating the partition
// after (forward=true) or before (forward=false) the anchor window.
func (s *searcher) noiseVerdict(anchor window.Window, anchorRaw float64, partition window.Window, forward bool) bool {
	partNorm, err := s.scorer.score(partition)
	if err != nil {
		partNorm = 0 // below the KSG sample minimum: no measurable information
	} else {
		s.stats.WindowsEvaluated++
	}
	if partNorm >= s.opts.Epsilon {
		return false
	}
	var concat window.Window
	if forward {
		concat, err = anchor.Concat(partition)
	} else {
		concat, err = partition.Concat(anchor)
	}
	if err != nil || !s.cons.Feasible(concat) {
		return false
	}
	concatRaw, _, err := s.scorer.both(concat)
	if err != nil {
		return false
	}
	s.stats.WindowsEvaluated++
	return concatRaw < anchorRaw
}

// partitionLen sizes the data partition the noise test scores: at least
// s_min so the KSG estimate is meaningful (a δ-sized sliver cannot be
// estimated and would reduce the test to a coin flip on estimator noise).
func (s *searcher) partitionLen() int {
	p := s.opts.Delta
	if p < s.opts.SMin {
		p = s.opts.SMin
	}
	return p
}

// prunedDirections implements Section 6.2.2: for the current window w, test
// whether the partitions that forward-end and backward-start exploration
// would concatenate are noise; pruned directions are skipped when generating
// neighbourhoods until the search moves.
func (s *searcher) prunedDirections(w window.Window) map[direction]bool {
	rawW, _, err := s.scorer.both(w)
	if err != nil {
		return nil
	}
	s.stats.WindowsEvaluated++
	pruned := make(map[direction]bool, 2)
	p := s.partitionLen()
	fwd := window.Window{Start: w.End + 1, End: w.End + p, Delay: w.Delay}
	if s.cons.Feasible(window.Window{Start: w.Start, End: w.End + p, Delay: w.Delay}) &&
		s.noiseVerdict(w, rawW, fwd, true) {
		pruned[dirEndForward] = true
		s.stats.PrunedDirections++
		s.emit(obs.DirectionPruned{Pair: s.pairName, Window: obsWindow(w), Direction: "end-forward"})
	}
	back := window.Window{Start: w.Start - p, End: w.Start - 1, Delay: w.Delay}
	if s.cons.Feasible(window.Window{Start: w.Start - p, End: w.End, Delay: w.Delay}) &&
		s.noiseVerdict(w, rawW, back, false) {
		pruned[dirStartBackward] = true
		s.stats.PrunedDirections++
		s.emit(obs.DirectionPruned{Pair: s.pairName, Window: obsWindow(w), Direction: "start-backward"})
	}
	return pruned
}

// initialNoisePruning implements Section 6.2.1 (Fig. 7): starting at from,
// the pair is cut into consecutive s_min blocks at τ = 0, which are combined
// hierarchically until a window whose normalized score reaches ε emerges.
// Blocks identified as noise (raw-MI dilution, Theorem 6.1) are discarded
// together with the accumulation they poisoned. It returns the chosen
// initial window and true, or false when no block fits in the remainder.
func (s *searcher) initialNoisePruning(from int) (window.Window, bool) {
	blockAt := func(start int) (window.Window, bool) {
		w := window.Window{Start: start, End: start + s.opts.SMin - 1, Delay: 0}
		return w, s.cons.Feasible(w)
	}
	cur, ok := blockAt(from)
	if !ok {
		return window.Window{}, false
	}
	curRaw, curNorm, err := s.scorer.both(cur)
	if err != nil {
		curRaw, curNorm = 0, 0
	} else {
		s.stats.WindowsEvaluated++
	}
	// The scan is bounded: if no examined window reaches ε within
	// maxInitialBlocks blocks, the best one seen anchors the climb anyway.
	// An unbounded scan would let a long stretch of τ=0-quiet data swallow
	// the whole remainder in one restart and hide any correlations that are
	// only visible at non-zero delays.
	best, bestNorm := cur, curNorm
	for blocks := 0; blocks < maxInitialBlocks; blocks++ {
		if curNorm >= s.opts.Epsilon {
			return cur, true
		}
		if curNorm > bestNorm {
			best, bestNorm = cur, curNorm
		}
		next, ok := blockAt(cur.End + 1)
		if !ok {
			// No further blocks: start from the best we have.
			return best, true
		}
		nextRaw, nextNorm, err := s.scorer.both(next)
		if err != nil {
			nextRaw, nextNorm = 0, 0
		} else {
			s.stats.WindowsEvaluated++
		}
		concat, cerr := cur.Concat(next)
		if cerr != nil || !s.cons.Feasible(concat) {
			// Concatenation infeasible (size cap reached): restart from next.
			cur, curRaw, curNorm = next, nextRaw, nextNorm
			continue
		}
		concatRaw, concatNorm, err := s.scorer.both(concat)
		if err != nil {
			cur, curRaw, curNorm = next, nextRaw, nextNorm
			continue
		}
		s.stats.WindowsEvaluated++
		if concatRaw < curRaw && nextNorm < s.opts.Epsilon {
			// next is noise w.r.t. cur (Theorem 6.1): drop both the
			// poisoned accumulation and restart from next (Fig. 7, steps
			// 3.3–4).
			s.stats.NoiseBlocks++
			s.emit(obs.NoiseBlockSkipped{Pair: s.pairName, Block: obsWindow(next)})
			cur, curRaw, curNorm = next, nextRaw, nextNorm
			continue
		}
		// Keep the best of the three by normalized score (Fig. 7, step 2),
		// with a progress guarantee: a stuck accumulation moves on to next.
		switch {
		case concatNorm >= curNorm && concatNorm >= nextNorm:
			cur, curRaw, curNorm = concat, concatRaw, concatNorm
		case nextNorm >= curNorm:
			cur, curRaw, curNorm = next, nextRaw, nextNorm
		default:
			cur, curRaw, curNorm = next, nextRaw, nextNorm
		}
	}
	if bestNorm > curNorm {
		return best, true
	}
	return cur, true
}

// maxInitialBlocks bounds the §6.2.1 hierarchical scan per restart.
const maxInitialBlocks = 8
