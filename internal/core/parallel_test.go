package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tycos/internal/faultinject"
	"tycos/internal/series"
	"tycos/internal/window"
)

// parallelTestOpts spans several restart segments (span = 4·SMax = 240 scan
// positions) so worker counts > 1 actually exercise concurrent segments.
func parallelTestOpts() Options {
	o := defaultOpts()
	o.Variant = VariantLMN
	return o
}

// parallelTestPair embeds two correlated regions far apart so distinct
// segments both produce candidates. Both couplings are written directly into
// one noise pair (rather than mixing two single-region pairs, which dilutes
// each region's correlation below what an unbiased estimator can separate
// from noise).
func parallelTestPair(n int) series.Pair {
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	// AR(1) drivers, as in TestSearchRecoversTimeDelay: autocorrelated
	// signals give partial alignments partial MI, so the climb has a
	// gradient toward the true non-zero delays.
	ar := 0.0
	for i := 150; i <= 230; i++ {
		ar = 0.9*ar + rng.NormFloat64()
		x[i] = ar
		y[i+2] = x[i] + 0.1*rng.NormFloat64()
	}
	ar = 0.0
	for i := n - 300; i <= n-220; i++ {
		ar = 0.9*ar + rng.NormFloat64()
		x[i] = ar
		y[i-1] = -x[i] + 0.1*rng.NormFloat64()
	}
	return series.MustPair(series.New("x", x), series.New("y", y))
}

// TestPlanSegmentsCoversScanPositions pins the segment plan's invariants: it
// is a pure function of (n, options), segments tile [0, lastStart] without
// gaps or overlap, and small inputs degenerate to a single segment.
func TestPlanSegmentsCoversScanPositions(t *testing.T) {
	opts := parallelTestOpts().withDefaults()
	for _, n := range []int{70, 250, 1000, 1501, 5000} {
		segs := planSegments(n, opts)
		if len(segs) == 0 {
			t.Fatalf("n=%d: empty plan", n)
		}
		lastStart := n - opts.SMin
		if segs[0].from != 0 {
			t.Errorf("n=%d: first segment starts at %d", n, segs[0].from)
		}
		for i, s := range segs {
			if s.index != i {
				t.Errorf("n=%d: segment %d has index %d", n, i, s.index)
			}
			if i > 0 && s.from != segs[i-1].limit {
				t.Errorf("n=%d: gap/overlap between segments %d and %d", n, i-1, i)
			}
			if s.from >= s.limit {
				t.Errorf("n=%d: empty segment %d [%d, %d)", n, i, s.from, s.limit)
			}
		}
		if got := segs[len(segs)-1].limit; got != lastStart+1 {
			t.Errorf("n=%d: plan ends at %d, want %d", n, got, lastStart+1)
		}
	}
	if segs := planSegments(70, opts); len(segs) != 1 {
		t.Errorf("small input: got %d segments, want 1", len(segs))
	}
}

func TestRestartWorkersResolution(t *testing.T) {
	opts := parallelTestOpts().withDefaults()
	opts.RestartWorkers = 8
	if got := restartWorkers(opts, 3); got != 3 {
		t.Errorf("clamp to segments: got %d, want 3", got)
	}
	opts.MaxEvaluations = 100
	if got := restartWorkers(opts, 3); got != 1 {
		t.Errorf("budget must force sequential: got %d, want 1", got)
	}
	opts.MaxEvaluations = 0
	opts.RestartWorkers = 0
	if got := restartWorkers(opts, 1); got != 1 {
		t.Errorf("one segment: got %d workers, want 1", got)
	}
}

// TestRestartWorkersByteIdentical is the tentpole guarantee: for the same
// seed, every RestartWorkers value returns byte-identical windows, stats and
// observer event streams.
func TestRestartWorkersByteIdentical(t *testing.T) {
	p := parallelTestPair(1500)
	type outcome struct {
		res    Result
		events []string
		counts map[string]int64
	}
	run := func(workers int) outcome {
		opts := parallelTestOpts()
		opts.RestartWorkers = workers
		sink := newCollectSink()
		opts.Observer = sink
		res, err := Search(p, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res.Stats.Timing = Timing{}
		evs := make([]string, len(sink.events))
		for i, e := range sink.events {
			evs[i] = fmt.Sprintf("%s%+v", e.Kind(), e)
		}
		return outcome{res: res, events: evs, counts: sink.counts}
	}
	base := run(1)
	if len(base.res.Windows) < 2 {
		t.Fatalf("want ≥2 windows from the two embedded regions, got %d", len(base.res.Windows))
	}
	if segs := planSegments(p.Len(), parallelTestOpts().withDefaults()); len(segs) < 4 {
		t.Fatalf("test needs ≥4 segments to be meaningful, plan has %d", len(segs))
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.res, base.res) {
			t.Errorf("workers=%d: result differs from workers=1\n got: %+v\nwant: %+v", workers, got.res, base.res)
		}
		if !reflect.DeepEqual(got.events, base.events) {
			t.Errorf("workers=%d: event stream differs from workers=1 (%d vs %d events)", workers, len(got.events), len(base.events))
			for i := range got.events {
				if i < len(base.events) && got.events[i] != base.events[i] {
					t.Errorf("first divergence at event %d:\n got: %s\nwant: %s", i, got.events[i], base.events[i])
					break
				}
			}
		}
		if !reflect.DeepEqual(got.counts, base.counts) {
			t.Errorf("workers=%d: counters differ from workers=1\n got: %v\nwant: %v", workers, got.counts, base.counts)
		}
	}
}

// TestRestartWorkersByteIdenticalAllVariants runs the byte-identity check
// across every variant — the incremental scorers carry the most per-worker
// state and are the likeliest to leak schedule dependence.
func TestRestartWorkersByteIdenticalAllVariants(t *testing.T) {
	p := parallelTestPair(900)
	for _, v := range []Variant{VariantL, VariantLN, VariantLM, VariantLMN} {
		opts := parallelTestOpts()
		opts.Variant = v
		opts.RestartWorkers = 1
		base, err := Search(p, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		base.Stats.Timing = Timing{}
		opts.RestartWorkers = 4
		got, err := Search(p, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		got.Stats.Timing = Timing{}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("%v: workers=4 differs from workers=1\n got: %+v\nwant: %+v", v, got, base)
		}
	}
}

// TestSweepDeterministicAcrossSchedules crosses pair-level Parallelism with
// in-pair RestartWorkers and requires the full sweep output to be invariant.
func TestSweepDeterministicAcrossSchedules(t *testing.T) {
	ss := []series.Series{
		testPair(21, 400, 100, 170, 1).X,
		testPair(21, 400, 100, 170, 1).Y,
		testPair(22, 400, 200, 280, -2).Y,
	}
	ss[0].Name, ss[1].Name, ss[2].Name = "a", "b", "c"
	opts := parallelTestOpts()
	normalize := func(prs []PairResult) []PairResult {
		out := make([]PairResult, len(prs))
		copy(out, prs)
		for i := range out {
			out[i].Result.Stats.Timing = Timing{}
		}
		return out
	}
	var base []PairResult
	for _, par := range []int{1, 4} {
		for _, rw := range []int{1, 2, 8} {
			o := opts
			o.RestartWorkers = rw
			got := normalize(SearchAll(ss, o, par))
			if base == nil {
				base = got
				continue
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("parallelism=%d restartWorkers=%d: sweep output differs\n got: %+v\nwant: %+v", par, rw, got, base)
			}
		}
	}
}

// TestConcurrentSearchesSharedObserver hammers one observer from several
// concurrent searches — the -race suite's food for the buffered-event replay
// and counter merge paths.
func TestConcurrentSearchesSharedObserver(t *testing.T) {
	p := parallelTestPair(900)
	sink := newCollectSink()
	var wg sync.WaitGroup
	results := make([]Result, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := parallelTestOpts()
			opts.RestartWorkers = 4
			opts.Observer = sink
			res, err := Search(p, opts)
			if err != nil {
				t.Errorf("search %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		results[i].Stats.Timing = Timing{}
		results[0].Stats.Timing = Timing{}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("concurrent search %d differs from search 0", i)
		}
	}
	wantClimbs := int64(len(results)) * int64(results[0].Stats.Restarts)
	if got := sink.counts["restarts"]; got != wantClimbs {
		t.Errorf("shared observer restart counter: got %d, want %d", got, wantClimbs)
	}
}

// TestSegmentPanicIsolatedInSweep arms a panic inside one restart segment and
// verifies it surfaces through the parallel pool onto the search goroutine,
// where sweep-level fault isolation converts it into that pair's error — with
// the worker's stack — instead of killing the process.
func TestSegmentPanicIsolatedInSweep(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set(segmentFaultKey("a/b", 1), faultinject.Fault{Panic: "segment boom"})
	mk := func(name string, seed int64) series.Series {
		s := testPair(seed, 900, 100, 170, 1).X
		s.Name = name
		return s
	}
	ss := []series.Series{mk("a", 31), mk("b", 32), mk("c", 33)}
	opts := parallelTestOpts()
	opts.RestartWorkers = 4
	prs := SearchAllContext(context.Background(), ss, opts, SweepOptions{Parallelism: 2})
	if len(prs) != 3 {
		t.Fatalf("got %d pair results, want 3", len(prs))
	}
	var failed *PairResult
	for i := range prs {
		if prs[i].XName == "a" && prs[i].YName == "b" {
			failed = &prs[i]
		} else if prs[i].Err != nil {
			t.Errorf("pair (%s, %s) unexpectedly failed: %v", prs[i].XName, prs[i].YName, prs[i].Err)
		}
	}
	if failed == nil || failed.Err == nil {
		t.Fatal("armed pair did not fail")
	}
	msg := failed.Err.Error()
	if !strings.Contains(msg, "segment boom") {
		t.Errorf("pair error does not carry the panic value: %v", msg)
	}
	if !strings.Contains(msg, "restart worker stack") {
		t.Errorf("pair error does not carry the worker stack: %v", msg)
	}
}

// TestBudgetedSearchStaysSequentialAndPrefixConsistent pins the composition
// with PR 1 budgets: MaxEvaluations forces sequential segments, and the
// budgeted run's candidates remain a prefix of the full run's even when the
// options request many workers.
func TestBudgetedSearchStaysSequentialAndPrefixConsistent(t *testing.T) {
	p := parallelTestPair(900)
	opts := parallelTestOpts()
	opts.RestartWorkers = 8
	var full []string
	opts.onCandidate = func(c window.Scored) { full = append(full, fmt.Sprintf("%+v", c)) }
	if _, err := Search(p, opts); err != nil {
		t.Fatal(err)
	}
	var got []string
	opts.onCandidate = func(c window.Scored) { got = append(got, fmt.Sprintf("%+v", c)) }
	opts.MaxEvaluations = 500
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopReason != StopBudget {
		t.Fatalf("stop reason = %v, want %v", res.Stats.StopReason, StopBudget)
	}
	if len(got) > len(full) {
		t.Fatalf("budgeted run produced more candidates (%d) than the full run (%d)", len(got), len(full))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("candidate %d diverges:\n got: %s\nwant: %s", i, got[i], full[i])
		}
	}
}
