package core

import (
	"sort"

	"tycos/internal/window"
)

// direction identifies an exploration direction that the noise theory can
// prune (Section 6.2.2): extending the end forward in time or extending the
// start backward in time grows the window by concatenating a data partition,
// which is exactly the situation Definition 6.4 covers.
type direction int

const (
	dirEndForward direction = iota
	dirStartBackward
)

// neighborhood generates the δ-neighbourhood N_level of w (Definitions
// 5.1–5.2): all windows whose start, end and delay each differ from w's by
// −δ, 0 or +δ with δ = base·level, excluding w itself and infeasible
// windows. Directions present in pruned are omitted: a pruned dirEndForward
// drops every neighbour with a larger end index, a pruned dirStartBackward
// drops every neighbour with a smaller start index.
func neighborhood(w window.Window, base, level int, cons window.Constraints, pruned map[direction]bool) []window.Window {
	delta := base * level
	var out []window.Window
	for _, ds := range [3]int{-delta, 0, delta} {
		for _, de := range [3]int{-delta, 0, delta} {
			for _, dt := range [3]int{-delta, 0, delta} {
				if ds == 0 && de == 0 && dt == 0 {
					continue
				}
				if pruned[dirEndForward] && de > 0 {
					continue
				}
				if pruned[dirStartBackward] && ds < 0 {
					continue
				}
				n := window.Window{Start: w.Start + ds, End: w.End + de, Delay: w.Delay + dt}
				if cons.Feasible(n) {
					out = append(out, n)
				}
			}
		}
	}
	// Order by delay so the incremental scorer batches same-delay moves
	// (each delay change forces a rebuild).
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delay != out[j].Delay {
			return out[i].Delay < out[j].Delay
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}
