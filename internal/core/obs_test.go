package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"tycos/internal/faultinject"
	"tycos/internal/obs"
	"tycos/internal/series"
)

// collectSink records every observation for payload-level assertions.
type collectSink struct {
	mu     sync.Mutex
	events []obs.Event
	counts map[string]int64
	phases map[obs.Phase]int
}

func newCollectSink() *collectSink {
	return &collectSink{counts: make(map[string]int64), phases: make(map[obs.Phase]int)}
}

func (c *collectSink) Event(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) Count(name string, delta int64) {
	c.mu.Lock()
	c.counts[name] += delta
	c.mu.Unlock()
}

func (c *collectSink) PhaseEnd(p obs.Phase, d time.Duration) {
	c.mu.Lock()
	c.phases[p]++
	c.mu.Unlock()
}

func (c *collectSink) kindCount(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind() == kind {
			n++
		}
	}
	return n
}

// noisyPair builds a long noisy pair with one strong dependent segment —
// the shape that exercises both Section 6 pruning mechanisms.
func noisyPair(seed int64, n, segStart, segEnd int) series.Pair {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := segStart; i <= segEnd; i++ {
		x[i] = rng.NormFloat64() * 2
		y[i] = x[i] + 0.05*rng.NormFloat64()
	}
	return series.MustPair(series.New("x", x), series.New("y", y))
}

// TestTraceMatchesStats is the acceptance check of the observability layer:
// the JSONL trace's ClimbFinished count equals Stats.Restarts, its
// CandidateAccepted count equals the number of returned windows, every phase
// is timed, and the trace's counter totals equal the Stats counters.
func TestTraceMatchesStats(t *testing.T) {
	p := testPair(43, 400, 100, 180, 0)
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	metrics := obs.NewMetrics()

	opts := defaultOpts()
	opts.Variant = VariantLMN
	opts.Observer = obs.Multi(tw, metrics)
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	type line struct {
		TS    string          `json:"ts"`
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	kinds := map[string]int{}
	var counterTotals map[string]int64
	phases := map[string]bool{}
	for i, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ln line
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", i, err, raw)
		}
		kinds[ln.Event]++
		switch ln.Event {
		case "Counters":
			if err := json.Unmarshal(ln.Data, &counterTotals); err != nil {
				t.Fatal(err)
			}
		case "PhaseFinished":
			var pd struct {
				Phase string `json:"phase"`
			}
			if err := json.Unmarshal(ln.Data, &pd); err != nil {
				t.Fatal(err)
			}
			phases[pd.Phase] = true
		}
	}

	if kinds["ClimbFinished"] != res.Stats.Restarts {
		t.Errorf("ClimbFinished events = %d, Stats.Restarts = %d", kinds["ClimbFinished"], res.Stats.Restarts)
	}
	if kinds["CandidateAccepted"] != len(res.Windows) {
		t.Errorf("CandidateAccepted events = %d, returned windows = %d", kinds["CandidateAccepted"], len(res.Windows))
	}
	if kinds["RestartStarted"] < kinds["ClimbFinished"] {
		t.Errorf("RestartStarted (%d) < ClimbFinished (%d)", kinds["RestartStarted"], kinds["ClimbFinished"])
	}
	for _, ph := range []string{"validate", "climb", "finalize"} {
		if !phases[ph] {
			t.Errorf("phase %q not timed in trace", ph)
		}
	}
	if phases["nullmodel"] {
		t.Error("nullmodel phase timed although SignificanceLevel is off")
	}
	wantCounters := map[string]int64{
		"windows_evaluated": int64(res.Stats.WindowsEvaluated),
		"restarts":          int64(res.Stats.Restarts),
		"mi_batch":          int64(res.Stats.MIBatch),
		"mi_incremental":    int64(res.Stats.MIIncremental),
		"pruned_directions": int64(res.Stats.PrunedDirections),
		"noise_blocks":      int64(res.Stats.NoiseBlocks),
	}
	for name, want := range wantCounters {
		if counterTotals[name] != want {
			t.Errorf("trace counter %s = %d, stats say %d", name, counterTotals[name], want)
		}
	}
	for _, name := range []string{"mi.inc_inserts", "mi.inc_removes", "mi.inc_refreshes"} {
		if counterTotals[name] <= 0 {
			t.Errorf("incremental variant emitted no %s work", name)
		}
	}

	// The Metrics sink agrees with the trace.
	if got := metrics.EventCount("ClimbFinished"); got != int64(res.Stats.Restarts) {
		t.Errorf("metrics ClimbFinished = %d, want %d", got, res.Stats.Restarts)
	}
	snap := metrics.Snapshot()
	if snap.Phases[obs.PhaseClimb].Count != 1 {
		t.Errorf("climb phase sampled %d times, want 1", snap.Phases[obs.PhaseClimb].Count)
	}

	// Stats carries the same phase timings.
	if res.Stats.Timing.Total <= 0 || res.Stats.Timing.Climb <= 0 {
		t.Errorf("timing not populated: %+v", res.Stats.Timing)
	}
	if res.Stats.Timing.EvalsPerSec <= 0 {
		t.Errorf("EvalsPerSec = %v", res.Stats.Timing.EvalsPerSec)
	}
}

// TestObserverDoesNotAlterSearch pins the contract that observability is
// read-only: windows and (timing aside) stats are identical with and
// without an observer.
func TestObserverDoesNotAlterSearch(t *testing.T) {
	p := noisyPair(3, 500, 220, 300)
	opts := defaultOpts()
	opts.Variant = VariantLMN
	plain, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Observer = obs.Multi(obs.NewMetrics(), obs.NewTraceWriter(io.Discard))
	observed, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain.Stats.Timing, observed.Stats.Timing = Timing{}, Timing{}
	if plain.Stats != observed.Stats {
		t.Errorf("observer changed stats: %+v vs %+v", plain.Stats, observed.Stats)
	}
	if len(plain.Windows) != len(observed.Windows) {
		t.Fatalf("observer changed window count: %d vs %d", len(plain.Windows), len(observed.Windows))
	}
	for i := range plain.Windows {
		if plain.Windows[i] != observed.Windows[i] {
			t.Errorf("window %d differs: %v vs %v", i, plain.Windows[i], observed.Windows[i])
		}
	}
}

// TestNoiseCountersUnderNoiseVariants covers Stats.PrunedDirections and
// Stats.NoiseBlocks under both noise variants: real data with long noise
// stretches must trigger both mechanisms, the emitted events must agree with
// the counters one-for-one, and the noise-free variants must report zero.
func TestNoiseCountersUnderNoiseVariants(t *testing.T) {
	p := noisyPair(3, 500, 220, 300)
	for _, v := range []Variant{VariantLN, VariantLMN} {
		sink := newCollectSink()
		opts := defaultOpts()
		opts.Variant = v
		opts.Observer = sink
		res, err := Search(p, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Stats.PrunedDirections == 0 {
			t.Errorf("%v: no pruned directions on data with long noise stretches", v)
		}
		if res.Stats.NoiseBlocks == 0 {
			t.Errorf("%v: no noise blocks skipped on data with long noise stretches", v)
		}
		if got := sink.kindCount("DirectionPruned"); got != res.Stats.PrunedDirections {
			t.Errorf("%v: DirectionPruned events = %d, Stats.PrunedDirections = %d", v, got, res.Stats.PrunedDirections)
		}
		if got := sink.kindCount("NoiseBlockSkipped"); got != res.Stats.NoiseBlocks {
			t.Errorf("%v: NoiseBlockSkipped events = %d, Stats.NoiseBlocks = %d", v, got, res.Stats.NoiseBlocks)
		}
		// Each pruned direction names a valid direction.
		sink.mu.Lock()
		for _, e := range sink.events {
			if dp, ok := e.(obs.DirectionPruned); ok {
				if dp.Direction != "end-forward" && dp.Direction != "start-backward" {
					t.Errorf("%v: bad direction %q", v, dp.Direction)
				}
			}
		}
		sink.mu.Unlock()
		// The search must still find the embedded segment despite pruning.
		if !overlapsSegment(res.Windows, 220, 300) {
			t.Errorf("%v: pruning lost the embedded segment: %v", v, res.Windows)
		}
	}
	for _, v := range []Variant{VariantL, VariantLM} {
		opts := defaultOpts()
		opts.Variant = v
		res, err := Search(p, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Stats.PrunedDirections != 0 || res.Stats.NoiseBlocks != 0 {
			t.Errorf("%v: noise-free variant recorded pruning (%d directions, %d blocks)",
				v, res.Stats.PrunedDirections, res.Stats.NoiseBlocks)
		}
	}
}

// TestSweepEmitsPairEvents checks the multisearch wiring: one PairStarted
// per attempt, exactly one PairFinished per pair, with failures, retries and
// checkpoint restores reflected in the payloads.
func TestSweepEmitsPairEvents(t *testing.T) {
	defer faultinject.Clear()
	faultinject.Set("a/b", faultinject.Fault{Err: errors.New("boom"), Times: 1})

	ss := sweepSeries("a", "b", "c")
	sink := newCollectSink()
	opts := defaultOpts()
	opts.Observer = sink
	results := SearchAllContext(context.Background(), ss, opts, SweepOptions{Retries: 1, Parallelism: 2})
	for _, pr := range results {
		if pr.Err != nil {
			t.Fatalf("pair (%s,%s): %v", pr.XName, pr.YName, pr.Err)
		}
	}
	// 3 pairs, one of which needed a retry → 4 attempts, 3 completions.
	if got := sink.kindCount("PairStarted"); got != 4 {
		t.Errorf("PairStarted events = %d, want 4 (3 pairs + 1 retry)", got)
	}
	if got := sink.kindCount("PairFinished"); got != 3 {
		t.Errorf("PairFinished events = %d, want 3", got)
	}
	sink.mu.Lock()
	for _, e := range sink.events {
		if pf, ok := e.(obs.PairFinished); ok {
			if pf.Total != 3 {
				t.Errorf("PairFinished.Total = %d, want 3", pf.Total)
			}
			wantAttempt := 1
			if pf.Pair == "a/b" {
				wantAttempt = 2
			}
			if pf.Attempt != wantAttempt {
				t.Errorf("pair %s finished with Attempt = %d, want %d", pf.Pair, pf.Attempt, wantAttempt)
			}
			if pf.Duration <= 0 {
				t.Errorf("pair %s reports non-positive duration", pf.Pair)
			}
		}
	}
	sink.mu.Unlock()
}

// TestSweepCheckpointRestoreEmitsPairFinished checks that restored pairs
// skip PairStarted but still announce their resolution.
func TestSweepCheckpointRestoreEmitsPairFinished(t *testing.T) {
	ss := sweepSeries("a", "b")
	ck := &mapCheckpoint{m: map[string]Result{}}
	opts := defaultOpts()

	// First sweep populates the checkpoint.
	SearchAllContext(context.Background(), ss, opts, SweepOptions{Checkpoint: ck})

	sink := newCollectSink()
	opts.Observer = sink
	res := SearchAllContext(context.Background(), ss, opts, SweepOptions{Checkpoint: ck})
	if !res[0].FromCheckpoint {
		t.Fatal("pair not restored")
	}
	if got := sink.kindCount("PairStarted"); got != 0 {
		t.Errorf("restored pair emitted %d PairStarted events", got)
	}
	if got := sink.kindCount("PairFinished"); got != 1 {
		t.Fatalf("PairFinished events = %d, want 1", got)
	}
	pf := sink.events[0].(obs.PairFinished)
	if !pf.FromCheckpoint || pf.Attempt != 0 {
		t.Errorf("restored PairFinished = %+v", pf)
	}
}

// mapCheckpoint is an in-memory SweepCheckpoint for tests.
type mapCheckpoint struct {
	mu sync.Mutex
	m  map[string]Result
}

func (c *mapCheckpoint) Lookup(x, y string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[x+"/"+y]
	return r, ok
}

func (c *mapCheckpoint) Record(x, y string, r Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[x+"/"+y] = r
	return nil
}

// TestDeadlineSampledClockStillStops pins the checkStop clock throttling: a
// mid-search Options.Deadline must still cut the search short even though
// the clock is only sampled every deadlineCheckPeriod calls.
func TestDeadlineSampledClockStillStops(t *testing.T) {
	// Big enough that an unbounded search takes far longer than the deadline.
	p := testPair(5, 4000, 500, 900, 0)
	opts := defaultOpts()
	opts.SMax = 200
	opts.Variant = VariantL
	opts.Deadline = time.Now().Add(50 * time.Millisecond)
	start := time.Now()
	res, err := Search(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline overshot by %v", elapsed)
	}
	if !res.Partial || res.Stats.StopReason != StopDeadline {
		t.Errorf("Partial=%v StopReason=%q, want partial deadline stop", res.Partial, res.Stats.StopReason)
	}
}

// BenchmarkSearchObserver quantifies the observability overhead: nil sink
// (the default), an aggregating Metrics sink, and a discard-backed JSONL
// trace. DESIGN.md records the measured nil-vs-baseline delta.
func BenchmarkSearchObserver(b *testing.B) {
	p := testPair(43, 400, 100, 180, 0)
	cases := []struct {
		name string
		sink func() obs.Sink
	}{
		{"nil", func() obs.Sink { return nil }},
		{"metrics", func() obs.Sink { return obs.NewMetrics() }},
		{"trace_discard", func() obs.Sink { return obs.NewTraceWriter(io.Discard) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			opts := defaultOpts()
			opts.Variant = VariantLMN
			for i := 0; i < b.N; i++ {
				opts.Observer = c.sink()
				if _, err := Search(p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
