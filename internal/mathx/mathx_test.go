package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDigammaKnownValues(t *testing.T) {
	// Reference values from Abramowitz & Stegun / standard tables.
	cases := []struct {
		x    float64
		want float64
	}{
		{1, -Euler},
		{0.5, -Euler - 2*math.Ln2},
		{2, 1 - Euler},
		{3, 1.5 - Euler},
		{4, 1 + 0.5 + 1.0/3.0 - Euler},
		{10, Harmonic(9) - Euler},
		{100, Harmonic(99) - Euler},
		{1.5, 2 - Euler - 2*math.Ln2},
	}
	for _, c := range cases {
		got := Digamma(c.x)
		if !AlmostEqual(got, c.want, 1e-11) {
			t.Errorf("Digamma(%v) = %.15f, want %.15f", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrenceProperty(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x must hold everywhere in the positive domain.
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 50) + 0.01
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		return AlmostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDigammaReflection(t *testing.T) {
	// ψ(1−x) − ψ(x) = π cot(πx) for non-integer x.
	for _, x := range []float64{0.25, 0.75, 0.1, 0.9, 0.33} {
		lhs := Digamma(1-x) - Digamma(x)
		rhs := math.Pi / math.Tan(math.Pi*x)
		if !AlmostEqual(lhs, rhs, 1e-9) {
			t.Errorf("reflection failed at x=%v: lhs=%v rhs=%v", x, lhs, rhs)
		}
	}
}

func TestDigammaPoles(t *testing.T) {
	for _, x := range []float64{0, -1, -2, -10} {
		if !math.IsNaN(Digamma(x)) {
			t.Errorf("Digamma(%v) should be NaN at pole, got %v", x, Digamma(x))
		}
	}
}

func TestDigammaIntMatchesDigamma(t *testing.T) {
	for n := 1; n <= 200; n++ {
		a, b := DigammaInt(n), Digamma(float64(n))
		if !AlmostEqual(a, b, 1e-10) {
			t.Fatalf("DigammaInt(%d)=%v != Digamma=%v", n, a, b)
		}
	}
	if !math.IsNaN(DigammaInt(0)) || !math.IsNaN(DigammaInt(-3)) {
		t.Error("DigammaInt of non-positive n should be NaN")
	}
}

func TestDigammaMonotoneIncreasing(t *testing.T) {
	prev := Digamma(0.5)
	for x := 0.6; x < 30; x += 0.1 {
		cur := Digamma(x)
		if cur <= prev {
			t.Fatalf("Digamma not increasing at x=%v: %v <= %v", x, cur, prev)
		}
		prev = cur
	}
}

func TestHarmonic(t *testing.T) {
	if Harmonic(0) != 0 {
		t.Error("H_0 must be 0")
	}
	if !AlmostEqual(Harmonic(1), 1, 0) {
		t.Error("H_1 must be 1")
	}
	if !AlmostEqual(Harmonic(4), 1+0.5+1.0/3+0.25, 1e-15) {
		t.Error("H_4 wrong")
	}
}

func TestLogSumExp(t *testing.T) {
	if !AlmostEqual(LogSumExp(0, 0), math.Ln2, 1e-12) {
		t.Error("LogSumExp(0,0) should be ln 2")
	}
	// No overflow for huge inputs.
	if got := LogSumExp(1000, 1000); !AlmostEqual(got, 1000+math.Ln2, 1e-9) {
		t.Errorf("LogSumExp(1000,1000) = %v", got)
	}
	if got := LogSumExp(math.Inf(-1), 3); got != 3 {
		t.Errorf("LogSumExp(-inf,3) = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt wrong")
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs(-3, 2) != 3 || MaxAbs(1, -4) != 4 || MaxAbs(0, 0) != 0 {
		t.Error("MaxAbs wrong")
	}
}

func TestAlmostEqualEdgeCases(t *testing.T) {
	if AlmostEqual(math.NaN(), 1, 1) {
		t.Error("NaN must not compare equal")
	}
	if !AlmostEqual(math.Inf(1), math.Inf(1), 0) {
		t.Error("equal infinities must compare equal")
	}
	if AlmostEqual(math.Inf(1), math.Inf(-1), 1e300) {
		t.Error("opposite infinities must not compare equal")
	}
}
