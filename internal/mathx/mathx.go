// Package mathx provides the special functions and numeric helpers that the
// TYCOS mutual-information machinery depends on: the digamma function used by
// the KSG estimator, harmonic numbers, and tolerant float comparisons.
//
// Everything here is hand-rolled from standard numerical recipes because the
// module is restricted to the Go standard library.
package mathx

import "math"

// Euler is the Euler–Mascheroni constant γ.
const Euler = 0.57721566490153286060651209008240243104215933593992

// digammaCoef holds the asymptotic-expansion coefficients of ψ(x):
// ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n}/(2n·x^{2n}).
var digammaCoef = [...]float64{
	1.0 / 12.0,
	-1.0 / 120.0,
	1.0 / 252.0,
	-1.0 / 240.0,
	1.0 / 132.0,
	-691.0 / 32760.0,
	1.0 / 12.0,
}

// Digamma returns ψ(x), the logarithmic derivative of the Gamma function.
//
// For x ≤ 0 at integer points ψ has poles; those inputs return NaN (negative
// non-integers are handled through the reflection formula). Accuracy is
// better than 1e-12 over the domain exercised by the KSG estimator (positive
// integers and half-integers).
func Digamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	var result float64
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN() // pole
		}
		// Reflection: ψ(1−x) − ψ(x) = π·cot(πx).
		result -= math.Pi / math.Tan(math.Pi*x)
		x = 1 - x
	}
	// Recurrence ψ(x) = ψ(x+1) − 1/x until x is large enough for the
	// asymptotic series.
	for x < 6 {
		result -= 1 / x
		x++
	}
	result += math.Log(x) - 1/(2*x)
	inv2 := 1 / (x * x)
	pow := inv2
	for _, c := range digammaCoef {
		result -= c * pow
		pow *= inv2
	}
	return result
}

// digammaIntTable caches ψ(n) for n = 1..len−1; the KSG estimator evaluates
// ψ at small integer counts in its innermost loop.
var digammaIntTable = func() []float64 {
	t := make([]float64, 2049)
	t[0] = math.NaN()
	h := 0.0
	for n := 1; n < len(t); n++ {
		t[n] = h - Euler // ψ(n) = H_{n−1} − γ
		h += 1 / float64(n)
	}
	return t
}()

// DigammaInt returns ψ(n) for a positive integer n using the exact identity
// ψ(n) = H_{n−1} − γ, served from a precomputed table for the small counts
// that dominate KSG marginal terms and falling back to Digamma above it.
func DigammaInt(n int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	if n < len(digammaIntTable) {
		return digammaIntTable[n]
	}
	return Digamma(float64(n))
}

// Harmonic returns the n-th harmonic number H_n = Σ_{i=1..n} 1/i, with
// H_0 = 0.
func Harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// LogSumExp returns log(exp(a) + exp(b)) without intermediate overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	m := math.Max(a, b)
	return m + math.Log(math.Exp(a-m)+math.Exp(b-m))
}

// AlmostEqual reports whether a and b differ by at most tol, treating NaN as
// unequal to everything and infinities as equal only when identical.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the inclusive range [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MaxAbs returns max(|a|, |b|), the Chebyshev (L∞) norm of the 2-vector
// (a, b). It is the distance metric of the KSG estimator (paper footnote 1).
func MaxAbs(a, b float64) float64 {
	a, b = math.Abs(a), math.Abs(b)
	if a > b {
		return a
	}
	return b
}
