package mi

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// batchOnSurvivors computes the reference KSG estimate over the surviving
// samples of an insert/remove trace.
func batchOnSurvivors(x, y map[int]float64, k int) (float64, error) {
	xs := make([]float64, 0, len(x))
	ys := make([]float64, 0, len(x))
	ids := make([]int, 0, len(x))
	for id := range x {
		ids = append(ids, id)
	}
	for _, id := range ids {
		xs = append(xs, x[id])
		ys = append(ys, y[id])
	}
	return NewKSG(k, BackendKDTree).Estimate(xs, ys)
}

func TestIncrementalMatchesBatchAfterInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	x, y := gaussianPair(rng, 300, 0.8)
	inc, err := NewIncrementalFrom(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.MI()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewKSG(4, BackendKDTree).Estimate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("incremental = %.12f, batch = %.12f", got, want)
	}
}

func TestIncrementalSlidingWindowMatchesBatch(t *testing.T) {
	// Emulate the LAHC access pattern: slide a window over a series by
	// removing the tail and appending the head, checking against batch at
	// every step.
	rng := rand.New(rand.NewSource(55))
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.7*x[i] + 0.3*rng.NormFloat64()
	}
	w := 80
	inc := NewIncremental(4, 0.4)
	for i := 0; i < w; i++ {
		inc.Insert(i, x[i], y[i])
	}
	batch := NewKSG(4, BackendKDTree)
	for start := 0; start+w+17 <= n; start += 17 {
		// Slide forward 17 steps.
		for s := 0; s < 17; s++ {
			inc.Remove(start + s)
			inc.Insert(start+w+s, x[start+w+s], y[start+w+s])
		}
		got, err := inc.MI()
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := start+17, start+17+w
		want, err := batch.Estimate(x[lo:hi], y[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("window [%d,%d): incremental %.12f != batch %.12f", lo, hi, got, want)
		}
	}
}

func TestIncrementalRandomTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inc := NewIncremental(3, 0.5)
		liveX := map[int]float64{}
		liveY := map[int]float64{}
		next := 0
		for op := 0; op < 120; op++ {
			if len(liveX) < 8 || rng.Float64() < 0.6 {
				xv := rng.NormFloat64()
				yv := 0.5*xv + rng.NormFloat64()
				inc.Insert(next, xv, yv)
				liveX[next], liveY[next] = xv, yv
				next++
			} else {
				for id := range liveX {
					inc.Remove(id)
					delete(liveX, id)
					delete(liveY, id)
					break
				}
			}
		}
		got, err := inc.MI()
		if err != nil {
			return len(liveX) <= inc.K()
		}
		want, err := batchOnSurvivors(liveX, liveY, 3)
		if err != nil {
			return false
		}
		return math.Abs(got-want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalSmallPopulations(t *testing.T) {
	inc := NewIncremental(4, 1)
	if _, err := inc.MI(); !errors.Is(err, ErrTooFewSamples) {
		t.Error("empty estimator must report too few samples")
	}
	rng := rand.New(rand.NewSource(6))
	// Grow through the k threshold and shrink back; MI must stay in sync
	// with batch at every size above k.
	var xs, ys []float64
	for i := 0; i < 12; i++ {
		xv := rng.NormFloat64()
		yv := rng.NormFloat64() + 0.9*xv*xv
		inc.Insert(i, xv, yv)
		xs = append(xs, xv)
		ys = append(ys, yv)
		if i+1 <= 4 {
			if _, err := inc.MI(); err == nil {
				t.Fatalf("MI with %d ≤ k points must fail", i+1)
			}
			continue
		}
		got, err := inc.MI()
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewKSG(4, BackendKDTree).Estimate(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("size %d: incremental %.12f != batch %.12f", i+1, got, want)
		}
	}
	// Shrink below k and verify the error returns.
	for i := 0; i < 9; i++ {
		inc.Remove(i)
	}
	if _, err := inc.MI(); !errors.Is(err, ErrTooFewSamples) {
		t.Error("shrunk estimator must report too few samples")
	}
}

func TestIncrementalRemoveAbsent(t *testing.T) {
	inc := NewIncremental(2, 1)
	if inc.Remove(42) {
		t.Error("removing absent id must return false")
	}
	inc.Insert(1, 0, 0)
	if !inc.Remove(1) || inc.Len() != 0 {
		t.Error("remove existing failed")
	}
}

func TestIncrementalDuplicateInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert must panic")
		}
	}()
	inc := NewIncremental(2, 1)
	inc.Insert(1, 0, 0)
	inc.Insert(1, 1, 1)
}

func TestIncrementalUndoRestoresMI(t *testing.T) {
	// The searcher evaluates neighbours by apply-then-revert; the revert
	// must restore the exact MI.
	rng := rand.New(rand.NewSource(77))
	x, y := gaussianPair(rng, 150, 0.6)
	inc, err := NewIncrementalFrom(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := inc.MI()
	// Apply: remove three, add two.
	inc.Remove(0)
	inc.Remove(1)
	inc.Remove(2)
	inc.Insert(1000, 0.3, -0.2)
	inc.Insert(1001, -1.1, 0.8)
	// Revert.
	inc.Remove(1000)
	inc.Remove(1001)
	inc.Insert(0, x[0], y[0])
	inc.Insert(1, x[1], y[1])
	inc.Insert(2, x[2], y[2])
	after, _ := inc.MI()
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("undo drift: before %.12f, after %.12f", before, after)
	}
}

func BenchmarkIncrementalVsBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 4000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.6*x[i] + 0.4*rng.NormFloat64()
	}
	w := 500
	b.Run("incremental-slide", func(b *testing.B) {
		inc := NewIncremental(4, 0.3)
		for i := 0; i < w; i++ {
			inc.Insert(i, x[i], y[i])
		}
		pos := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pos+w+1 >= n {
				b.StopTimer()
				inc = NewIncremental(4, 0.3)
				for j := 0; j < w; j++ {
					inc.Insert(j, x[j], y[j])
				}
				pos = 0
				b.StartTimer()
			}
			inc.Remove(pos)
			inc.Insert(pos+w, x[pos+w], y[pos+w])
			if _, err := inc.MI(); err != nil {
				b.Fatal(err)
			}
			pos++
		}
	})
	b.Run("batch-slide", func(b *testing.B) {
		est := NewKSG(4, BackendKDTree)
		pos := 0
		for i := 0; i < b.N; i++ {
			if pos+w+1 >= n {
				pos = 0
			}
			if _, err := est.Estimate(x[pos:pos+w], y[pos:pos+w]); err != nil {
				b.Fatal(err)
			}
			pos++
		}
	})
}

func TestNewIncrementalBulkMatchesIncrementalInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	n := 250
	xs := make([]float64, n)
	ys := make([]float64, n)
	ids := make([]int, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.5*xs[i] + rng.NormFloat64()
		ids[i] = i + 1000 // arbitrary id space
	}
	bulk := NewIncrementalBulk(4, 0.5, ids, xs, ys)
	inc := NewIncremental(4, 0.5)
	for i, id := range ids {
		inc.Insert(id, xs[i], ys[i])
	}
	a, err := bulk.MI()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.MI()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("bulk %.12f != per-insert %.12f", a, b)
	}
	// The bulk estimator stays maintainable afterwards.
	bulk.Remove(ids[0])
	inc.Remove(ids[0])
	a, _ = bulk.MI()
	b, _ = inc.MI()
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("after removal bulk %.12f != per-insert %.12f", a, b)
	}
}
