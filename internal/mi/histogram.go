package mi

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is the classic plug-in MI estimator: both variables are
// discretised into equal-width bins and I = Σ p(x,y)·log(p(x,y)/(p(x)p(y)))
// is computed from the empirical cell frequencies. It is the estimator the
// paper contrasts KSG against (Section 3.1) and is hand-rolled here because
// no MI library is available.
type Histogram struct {
	bins int // bins per axis; 0 selects Freedman–Diaconis automatically
}

// NewHistogram returns a histogram estimator with the given number of bins
// per axis; bins ≤ 0 selects the bin count per window via the
// Freedman–Diaconis rule (falling back to Sturges for degenerate IQR).
func NewHistogram(bins int) *Histogram { return &Histogram{bins: bins} }

// Name implements Estimator.
func (e *Histogram) Name() string {
	if e.bins <= 0 {
		return "histogram(fd)"
	}
	return fmt.Sprintf("histogram(b=%d)", e.bins)
}

// Estimate implements Estimator.
func (e *Histogram) Estimate(x, y []float64) (float64, error) {
	if err := checkPair(x, y); err != nil {
		return 0, err
	}
	if len(x) < 2 {
		return 0, ErrTooFewSamples
	}
	bx := e.binCount(x)
	by := e.binCount(y)
	ix := binIndices(x, bx)
	iy := binIndices(y, by)
	joint := make([]int, bx*by)
	mx := make([]int, bx)
	my := make([]int, by)
	for i := range ix {
		joint[ix[i]*by+iy[i]]++
		mx[ix[i]]++
		my[iy[i]]++
	}
	n := float64(len(x))
	var info float64
	for a := 0; a < bx; a++ {
		for b := 0; b < by; b++ {
			c := joint[a*by+b]
			if c == 0 {
				continue
			}
			pxy := float64(c) / n
			px := float64(mx[a]) / n
			py := float64(my[b]) / n
			info += pxy * math.Log(pxy/(px*py))
		}
	}
	if info < 0 {
		info = 0 // numeric noise; plug-in MI is non-negative
	}
	return info, nil
}

func (e *Histogram) binCount(v []float64) int {
	if e.bins > 0 {
		return e.bins
	}
	return FreedmanDiaconisBins(v)
}

// FreedmanDiaconisBins returns the Freedman–Diaconis bin count
// ⌈range / (2·IQR·n^{−1/3})⌉ clamped to [1, 512], falling back to the
// Sturges rule when the IQR is zero.
func FreedmanDiaconisBins(v []float64) int {
	n := len(v)
	if n < 2 {
		return 1
	}
	s := make([]float64, n)
	copy(s, v)
	sort.Float64s(s)
	span := s[n-1] - s[0]
	if span <= 0 {
		return 1
	}
	iqr := quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
	var bins float64
	if iqr > 0 {
		width := 2 * iqr / math.Cbrt(float64(n))
		bins = math.Ceil(span / width)
	} else {
		bins = math.Ceil(math.Log2(float64(n))) + 1 // Sturges
	}
	if bins < 1 {
		bins = 1
	}
	if bins > 512 {
		bins = 512
	}
	return int(bins)
}

// quantileSorted returns the q-quantile of the pre-sorted slice using linear
// interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// binIndices maps each value to its equal-width bin in [0, bins).
func binIndices(v []float64, bins int) []int {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	out := make([]int, len(v))
	span := hi - lo
	if span <= 0 || bins <= 1 {
		return out
	}
	scale := float64(bins) / span
	for i, x := range v {
		b := int((x - lo) * scale)
		if b >= bins {
			b = bins - 1
		}
		out[i] = b
	}
	return out
}

// HistogramEntropy returns the plug-in Shannon entropy (nats) of v using the
// given bin count (0 → Freedman–Diaconis).
func HistogramEntropy(v []float64, bins int) float64 {
	if len(v) == 0 {
		return 0
	}
	if bins <= 0 {
		bins = FreedmanDiaconisBins(v)
	}
	idx := binIndices(v, bins)
	counts := make([]int, bins)
	for _, b := range idx {
		counts[b]++
	}
	return entropyOfCounts(counts, len(v))
}

// HistogramJointEntropy returns the plug-in Shannon entropy (nats) of the
// joint distribution of (x, y) on a bins×bins grid (0 → Freedman–Diaconis
// per axis).
func HistogramJointEntropy(x, y []float64, bins int) float64 {
	if len(x) == 0 || len(x) != len(y) {
		return 0
	}
	bx, by := bins, bins
	if bins <= 0 {
		bx = FreedmanDiaconisBins(x)
		by = FreedmanDiaconisBins(y)
	}
	ix := binIndices(x, bx)
	iy := binIndices(y, by)
	// Occupied joint cells are collected in sorted key order before the
	// entropy fold: float summation is not associative, so folding the
	// p·log p terms in map iteration order would make the estimate differ
	// in its low bits from call to call.
	counts := make(map[int]int)
	for i := range ix {
		counts[ix[i]*by+iy[i]]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts { //lint:allow nodeterm key collection only; the fold below runs in sorted order
		keys = append(keys, k)
	}
	sort.Ints(keys)
	flat := make([]int, 0, len(keys))
	for _, k := range keys {
		flat = append(flat, counts[k])
	}
	return entropyOfCounts(flat, len(x))
}

func entropyOfCounts(counts []int, n int) float64 {
	var h float64
	fn := float64(n)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / fn
		h -= p * math.Log(p)
	}
	return h
}
