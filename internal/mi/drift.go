package mi

import (
	"fmt"
	"math"
	"math/rand"
)

// This file is the bounded-MI-error harness for approximate k-NN engines:
// it quantifies how far an engine's KSG estimates drift from the exact
// answer on a fixed differential corpus, and refuses engine configurations
// whose drift exceeds a caller-set ε. The companion speed measurement lives
// in cmd/tycosbench (-knn), which runs the same corpus under a wall clock;
// this package keeps the harness purely deterministic so it can run in tests
// and under the repo's determinism lint.

// DriftSample is one (x, y) pair of the differential corpus.
type DriftSample struct {
	Label string
	X, Y  []float64
}

// DriftReport summarizes an engine's MI estimate drift against the exact
// estimator over a corpus.
type DriftReport struct {
	Engine  string `json:"engine"`
	K       int    `json:"k"`
	Samples int    `json:"samples"`
	// MaxAbsDrift is the largest |I_engine − I_exact| in nats observed on
	// the corpus — the quantity NewBoundedKSG gates on.
	MaxAbsDrift  float64 `json:"max_abs_drift"`
	MeanAbsDrift float64 `json:"mean_abs_drift"`
	// WorstLabel names the corpus sample realising MaxAbsDrift.
	WorstLabel string `json:"worst_label"`
}

// splitmix64 is the SplitMix64 finalizer, the repo's seed-derivation idiom;
// every rand source in this package derives its seed through it.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func driftSeed(root int64, stream int) int64 {
	h := splitmix64(uint64(root))
	return int64(splitmix64(h ^ uint64(stream)))
}

// DriftCorpus generates the differential corpus the bounded-error mode
// evaluates engines on: bivariate Gaussians across the dependence range,
// tied lattices (the adversarial case for ε-radius estimators), heavy-tailed
// marginals, and an independent pair. Deterministic in (seed, m).
func DriftCorpus(seed int64, m int) []DriftSample {
	if m < 32 {
		m = 32
	}
	var corpus []DriftSample
	stream := 0
	next := func() *rand.Rand {
		stream++
		return rand.New(rand.NewSource(driftSeed(seed, stream)))
	}
	for _, rho := range []float64{0, 0.3, 0.6, 0.9} {
		rng := next()
		x := make([]float64, m)
		y := make([]float64, m)
		c := math.Sqrt(1 - rho*rho)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rho*x[i] + c*rng.NormFloat64()
		}
		corpus = append(corpus, DriftSample{Label: fmt.Sprintf("gauss(rho=%.1f)", rho), X: x, Y: y})
	}
	{
		// Quantized lattice: heavy coordinate ties stress the closed-interval
		// marginal counts and the (distance, index) tie-breaks.
		rng := next()
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = float64(rng.Intn(12)) * 0.25
			y[i] = float64(rng.Intn(12))*0.25 + 0.5*x[i]
		}
		corpus = append(corpus, DriftSample{Label: "lattice", X: x, Y: y})
	}
	{
		// Heavy tails: log-normal marginals with a coupled component, the
		// regime where kd partitions go lopsided.
		rng := next()
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			g := rng.NormFloat64()
			x[i] = math.Exp(g)
			y[i] = math.Exp(0.5*g + 0.5*rng.NormFloat64())
		}
		corpus = append(corpus, DriftSample{Label: "lognormal", X: x, Y: y})
	}
	return corpus
}

// MeasureEngineDrift runs the named engine and the exact kd-tree estimator
// over the corpus and reports the estimate drift. It is purely
// deterministic — a function of (engine, k, seed, corpus) — so the same
// configuration always yields the same report. Unknown engines return an
// error.
func MeasureEngineDrift(engine string, k int, seed int64, corpus []DriftSample) (DriftReport, error) {
	approx, err := NewKSGNamed(k, engine, seed)
	if err != nil {
		return DriftReport{}, err
	}
	exact := NewKSG(k, BackendKDTree)
	rep := DriftReport{Engine: engine, K: approx.K()}
	var total float64
	for _, s := range corpus {
		want, err := exact.Estimate(s.X, s.Y)
		if err != nil {
			return DriftReport{}, fmt.Errorf("mi: drift corpus sample %q: %w", s.Label, err)
		}
		got, err := approx.Estimate(s.X, s.Y)
		if err != nil {
			return DriftReport{}, fmt.Errorf("mi: drift corpus sample %q: %w", s.Label, err)
		}
		d := math.Abs(got - want)
		total += d
		rep.Samples++
		if d > rep.MaxAbsDrift || rep.Samples == 1 {
			rep.MaxAbsDrift = d
			rep.WorstLabel = s.Label
		}
	}
	if rep.Samples > 0 {
		rep.MeanAbsDrift = total / float64(rep.Samples)
	}
	return rep, nil
}

// NewBoundedKSG is the bounded-MI-error constructor: it measures the named
// engine's drift on the corpus (DriftCorpus(seed, m) when corpus is nil) and
// refuses the configuration — returning the report alongside the error — if
// the worst-case |ΔMI| exceeds eps nats. Exact engines pass trivially with a
// zero report. The returned estimator is freshly constructed and unwarmed;
// the measurement estimators are discarded.
func NewBoundedKSG(k int, engine string, seed int64, eps float64, corpus []DriftSample) (*KSG, DriftReport, error) {
	if !(eps >= 0) {
		return nil, DriftReport{}, fmt.Errorf("mi: bounded KSG needs eps ≥ 0, got %v", eps)
	}
	if corpus == nil {
		corpus = DriftCorpus(seed, 256)
	}
	rep, err := MeasureEngineDrift(engine, k, seed, corpus)
	if err != nil {
		return nil, DriftReport{}, err
	}
	if rep.MaxAbsDrift > eps {
		return nil, rep, fmt.Errorf(
			"mi: engine %q drifts up to %.4g nats on %q (mean %.4g over %d samples), above the ε=%.4g bound",
			engine, rep.MaxAbsDrift, rep.WorstLabel, rep.MeanAbsDrift, rep.Samples, eps)
	}
	est, err := NewKSGNamed(k, engine, seed)
	if err != nil {
		return nil, rep, err
	}
	return est, rep, nil
}
