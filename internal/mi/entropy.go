package mi

import (
	"math"
	"sort"

	"tycos/internal/knn"
	"tycos/internal/mathx"
)

// KLEntropy estimates the differential entropy (nats) of the 1-D sample v
// with the Kozachenko–Leonenko k-nearest-neighbour estimator under the L∞
// metric:
//
//	Ĥ = −ψ(k) + ψ(n) + log(2) + (1/n)·Σ log ε_i
//
// where ε_i is the distance from v[i] to its k-th nearest neighbour.
//
// Tied samples need care: a point whose k-th neighbour sits at distance
// zero contributes log 0 = −∞. Instead of flooring ε to an arbitrary
// constant — which silently injects a magic scale (log 1e-12 ≈ −27.6 nats
// per tied point) that swamps the estimate as soon as a few ties appear —
// zero-distance points are excluded from the average and Σ log ε is
// renormalized over the points that do contribute. This is a HEURISTIC,
// not a consistent estimator on tied data: the ψ(n) − ψ(k) bias correction
// assumes the average runs over all n samples, so partially-tied inputs
// pick up an uncontrolled upward shift (a consistent treatment would
// rerun the estimator on the deduplicated subsample, with ψ over its size
// and k-th distances within it). The trade accepted here keeps the common
// weakly-tied case scale-free at the cost of a bias that grows with the
// tie fraction. When every point is tied (a constant or few-valued series
// has no continuous density), the estimator returns −Inf: the differential
// entropy of a distribution with atoms genuinely diverges to −∞. Callers
// MUST guard with math.IsInf before arithmetic on the result — in
// particular, forming entropy differences (e.g. MI via H(X)+H(Y)−H(X,Y))
// yields NaN from −Inf − (−Inf) on degenerate windows.
func KLEntropy(v []float64, k int) (float64, error) {
	n := len(v)
	if k < 1 {
		k = DefaultK
	}
	if n <= k {
		return 0, ErrTooFewSamples
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	var sumLog float64
	contributing := 0
	for i := 0; i < n; i++ {
		eps := kthDistance1D(s, v[i], k)
		if eps <= 0 {
			continue
		}
		sumLog += math.Log(eps)
		contributing++
	}
	if contributing == 0 {
		return math.Inf(-1), nil
	}
	return -mathx.DigammaInt(k) + mathx.Digamma(float64(n)) + math.Ln2 + sumLog/float64(contributing), nil
}

// KLJointEntropy estimates the differential entropy (nats) of the 2-D sample
// (x, y) with the Kozachenko–Leonenko estimator under L∞ (unit-ball volume
// log 4 in two dimensions). Zero-distance (duplicated) points are handled as
// in KLEntropy — excluded from the average, with −Inf returned when every
// point is a duplicate — and the same caveats apply: the exclusion is a
// heuristic that biases partially-tied inputs upward, and callers must
// guard math.IsInf before forming entropy differences.
func KLJointEntropy(x, y []float64, k int) (float64, error) {
	if err := checkPair(x, y); err != nil {
		return 0, err
	}
	n := len(x)
	if k < 1 {
		k = DefaultK
	}
	if n <= k {
		return 0, ErrTooFewSamples
	}
	pts := make([]knn.Point, n)
	for i := range pts {
		pts[i] = knn.Point{X: x[i], Y: y[i]}
	}
	tree := knn.NewKDTree(pts)
	var sumLog float64
	contributing := 0
	for i := 0; i < n; i++ {
		nn := tree.KNearest(pts[i], k, i)
		eps := nn[len(nn)-1].Dist
		if eps <= 0 {
			continue
		}
		sumLog += math.Log(eps)
		contributing++
	}
	if contributing == 0 {
		return math.Inf(-1), nil
	}
	return -mathx.DigammaInt(k) + mathx.Digamma(float64(n)) + math.Log(4) + 2*sumLog/float64(contributing), nil
}

// kthDistance1D returns the distance from q to its k-th nearest neighbour in
// the sorted slice s, excluding one occurrence of q itself (the query
// point). Two pointers expand outwards from q's position.
func kthDistance1D(s []float64, q float64, k int) float64 {
	lo := sort.SearchFloat64s(s, q)
	left, right := lo-1, lo
	skippedSelf := false
	var dist float64
	taken := 0
	for taken < k {
		dl, dr := math.Inf(1), math.Inf(1)
		if left >= 0 {
			dl = q - s[left]
		}
		if right < len(s) {
			dr = s[right] - q
		}
		if math.IsInf(dl, 1) && math.IsInf(dr, 1) {
			break
		}
		if dr <= dl {
			//lint:allow floateq exact compare identifies the query's own stored coordinate; q was copied from s unchanged
			if !skippedSelf && s[right] == q {
				skippedSelf = true
				right++
				continue
			}
			dist = dr
			right++
		} else {
			dist = dl
			left--
		}
		taken++
	}
	return dist
}
