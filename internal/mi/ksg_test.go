package mi

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// gaussianPair draws n samples of a bivariate Gaussian with correlation rho.
func gaussianPair(rng *rand.Rand, n int, rho float64) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	c := math.Sqrt(1 - rho*rho)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		x[i] = a
		y[i] = rho*a + c*b
	}
	return x, y
}

func TestKSGGaussianGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	est := NewKSG(4, BackendKDTree)
	for _, rho := range []float64{0, 0.5, 0.9} {
		x, y := gaussianPair(rng, 2000, rho)
		got, err := est.Estimate(x, y)
		if err != nil {
			t.Fatal(err)
		}
		want := GaussianMI(rho)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("rho=%v: KSG = %.4f, analytic = %.4f", rho, got, want)
		}
	}
}

// TestKSGNullBias pins the digamma convention tightly: algorithm 2 is
// near-unbiased at ρ = 0, so the estimate averaged over independent draws
// must sit within 0.02 nats of zero at m = 2000. A convention mistake —
// e.g. evaluating ψ on the count including the query point while keeping
// the −1/k term — shifts every estimate by ⟨1/n_x + 1/n_y⟩ ≈ 0.03 nats at
// this m, which the looser 0.08 ground-truth tolerance would let through
// but this test catches.
func TestKSGNullBias(t *testing.T) {
	const (
		m      = 2000
		rounds = 8
	)
	est := NewKSG(4, BackendKDTree)
	var mean float64
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		x, y := gaussianPair(rng, m, 0)
		got, err := est.Estimate(x, y)
		if err != nil {
			t.Fatal(err)
		}
		mean += got / rounds
	}
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean KSG bias at rho=0, m=%d over %d rounds = %+.4f nats, want |bias| ≤ 0.02", m, rounds, mean)
	}
}

func TestKSGDetectsNonlinearDependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64()*8 - 4
		y[i] = x[i]*x[i] + 0.1*rng.Float64() // quadratic, PCC ≈ 0
	}
	est := NewKSG(4, BackendKDTree)
	mi, err := est.Estimate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mi < 1.0 {
		t.Errorf("quadratic dependence MI = %.4f, want strongly positive", mi)
	}
	// Independent control stays near zero.
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	mi, err = est.Estimate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi) > 0.1 {
		t.Errorf("independent MI = %.4f, want ≈0", mi)
	}
}

func TestKSGBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y := gaussianPair(rng, 400, 0.7)
	var results []float64
	for _, b := range []Backend{BackendKDTree, BackendBrute, BackendGrid} {
		got, err := NewKSG(4, b).Estimate(x, y)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		results = append(results, got)
	}
	for i := 1; i < len(results); i++ {
		if math.Abs(results[i]-results[0]) > 1e-9 {
			t.Errorf("backend %d result %.12f differs from kdtree %.12f", i, results[i], results[0])
		}
	}
}

func TestKSGErrors(t *testing.T) {
	est := NewKSG(4, BackendKDTree)
	if _, err := est.Estimate([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := est.Estimate(nil, nil); !errors.Is(err, ErrTooFewSamples) {
		t.Error("empty input must be ErrTooFewSamples")
	}
	if _, err := est.Estimate([]float64{1, 2, 3}, []float64{4, 5, 6}); !errors.Is(err, ErrTooFewSamples) {
		t.Error("m <= k must be ErrTooFewSamples")
	}
}

func TestKSGInvariantToUniformAffineTransform(t *testing.T) {
	// Scaling both axes by the same factor and shifting each axis
	// independently preserves every L∞ neighbourhood, so the KSG estimate
	// must be bit-for-bit stable (up to fp rounding). Note that scaling a
	// single axis is NOT an invariance: it reweights the max-norm.
	rng := rand.New(rand.NewSource(21))
	x, y := gaussianPair(rng, 800, 0.8)
	est := NewKSG(4, BackendKDTree)
	base, _ := est.Estimate(x, y)
	x2 := make([]float64, len(x))
	y2 := make([]float64, len(y))
	for i := range x {
		x2[i] = 3*x[i] + 10
		y2[i] = 3*y[i] - 5
	}
	scaled, _ := est.Estimate(x2, y2)
	// Boundary counts (|Δx| ≤ dx) can flip by one point when rounding moves
	// a sample across the marginal boundary, so allow a small drift.
	if math.Abs(base-scaled) > 0.01 {
		t.Errorf("uniform affine transform changed KSG: %.6f vs %.6f", base, scaled)
	}
}

func TestKSGDefaultK(t *testing.T) {
	e := NewKSG(0, BackendKDTree)
	if e.K() != DefaultK {
		t.Errorf("K() = %d, want %d", e.K(), DefaultK)
	}
	if e.Name() == "" || Backend(99).String() == "" || NormNone.String() == "" {
		t.Error("names must be non-empty")
	}
}

func TestNormalize(t *testing.T) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	rng := rand.New(rand.NewSource(3))
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.1*rng.NormFloat64()
	}
	raw := 2.0
	if Normalize(raw, x, y, NormNone) != raw {
		t.Error("NormNone must pass through")
	}
	me := Normalize(raw, x, y, NormMaxEntropy)
	if me <= 0 || me > 1 {
		t.Errorf("max-entropy normalization out of range: %v", me)
	}
	if want := raw / math.Log(100); math.Abs(me-want) > 1e-12 {
		t.Errorf("max-entropy = %v, want %v", me, want)
	}
	jh := Normalize(raw, x, y, NormJointHistogram)
	if jh < 0 || jh > 1 {
		t.Errorf("joint-histogram normalization out of range: %v", jh)
	}
	// Negative raw MI passes through scaled: the ordering among near-zero
	// scores is gradient texture for the search, and σ > 0 keeps negative
	// scores out of accepted results.
	if got, want := Normalize(-0.5, x, y, NormMaxEntropy), -0.5/math.Log(100); math.Abs(got-want) > 1e-12 {
		t.Errorf("negative raw MI = %v, want %v (scaled, unclamped)", got, want)
	}
	// Huge raw MI clamps to 1.
	if Normalize(1e9, x, y, NormJointHistogram) != 1 {
		t.Error("oversized normalized MI must clamp to 1")
	}
}

func BenchmarkKSGBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := gaussianPair(rng, 500, 0.6)
	for _, backend := range []Backend{BackendKDTree, BackendBrute, BackendGrid} {
		est := NewKSG(4, backend)
		b.Run(backend.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
