package mi

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	est := NewHistogram(0)
	x, y := gaussianPair(rng, 5000, 0.9)
	got, err := est.Estimate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := GaussianMI(0.9) // ≈ 0.830
	// Plug-in histogram MI is biased upwards; accept a broad band but
	// require the right order of magnitude and sign.
	if got < 0.5*want || got > 2.5*want {
		t.Errorf("histogram MI = %.4f, analytic = %.4f", got, want)
	}
	// Independent data must score much lower than dependent data.
	x2, y2 := gaussianPair(rng, 5000, 0)
	ind, err := est.Estimate(x2, y2)
	if err != nil {
		t.Fatal(err)
	}
	if ind >= got {
		t.Errorf("independent (%.4f) must score below dependent (%.4f)", ind, got)
	}
}

func TestHistogramFixedBins(t *testing.T) {
	est := NewHistogram(8)
	if est.Name() != "histogram(b=8)" {
		t.Errorf("name = %q", est.Name())
	}
	rng := rand.New(rand.NewSource(5))
	x, y := gaussianPair(rng, 1000, 0.8)
	got, err := est.Estimate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("fixed-bin MI = %v, want positive", got)
	}
}

func TestHistogramNonNegativeAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	est := NewHistogram(0)
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(300)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		got, err := est.Estimate(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 {
			t.Fatalf("negative histogram MI: %v", got)
		}
	}
}

func TestHistogramErrors(t *testing.T) {
	est := NewHistogram(0)
	if _, err := est.Estimate([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample must fail")
	}
	if _, err := est.Estimate([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	if FreedmanDiaconisBins([]float64{1}) != 1 {
		t.Error("single value → 1 bin")
	}
	if FreedmanDiaconisBins([]float64{2, 2, 2, 2}) != 1 {
		t.Error("constant data → 1 bin")
	}
	// Degenerate IQR with nonzero span falls back to Sturges.
	v := []float64{0, 0, 0, 0, 0, 0, 0, 0, 100}
	if b := FreedmanDiaconisBins(v); b < 2 || b > 512 {
		t.Errorf("Sturges fallback gave %d bins", b)
	}
	rng := rand.New(rand.NewSource(1))
	big := make([]float64, 10000)
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	if b := FreedmanDiaconisBins(big); b < 10 || b > 512 {
		t.Errorf("normal 10k bins = %d", b)
	}
}

func TestHistogramEntropy(t *testing.T) {
	// Uniform over b bins should approach log(b).
	n := 100000
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	h := HistogramEntropy(v, 16)
	if math.Abs(h-math.Log(16)) > 0.01 {
		t.Errorf("uniform entropy = %v, want ≈%v", h, math.Log(16))
	}
	if HistogramEntropy(nil, 4) != 0 {
		t.Error("empty entropy must be 0")
	}
	if HistogramEntropy([]float64{3, 3, 3}, 4) != 0 {
		t.Error("constant entropy must be 0")
	}
}

func TestHistogramJointEntropyBoundsMI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := gaussianPair(rng, 2000, 0.7)
	est := NewHistogram(12)
	info, err := est.Estimate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	h := HistogramJointEntropy(x, y, 12)
	if info > h+1e-9 {
		t.Errorf("MI (%v) exceeded joint entropy (%v)", info, h)
	}
	if h <= 0 {
		t.Errorf("joint entropy = %v, want positive", h)
	}
	if HistogramJointEntropy(nil, nil, 4) != 0 {
		t.Error("empty joint entropy must be 0")
	}
}

func TestQuantileSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if q := quantileSorted(s, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := quantileSorted(s, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantileSorted(s, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantileSorted(s, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if q := quantileSorted([]float64{7}, 0.9); q != 7 {
		t.Errorf("single-element quantile = %v", q)
	}
}
