package mi

import (
	"fmt"
	"math"
	"sort"

	"tycos/internal/knn"
	"tycos/internal/mathx"
)

// Incremental maintains the KSG estimate of a point set under insertions and
// removals, implementing the efficient MI computation of Section 7 of the
// paper. Each point carries its influenced region (IR, Definition 7.1) — a
// square of half-width equal to its k-th-neighbour L∞ distance — and its
// influenced marginal regions (IMR, Definition 7.2) given by the
// per-dimension projections of that neighbourhood.
//
// When a point o is inserted or removed:
//
//   - every point p with o inside IR(p) gets a fresh k-NN search and fresh
//     marginal counts (Lemmas 3 and 4);
//   - every other point p with o inside IMR_x(p) or IMR_y(p) gets the
//     corresponding marginal count adjusted by ±1 (Lemmas 5 and 6);
//   - unaffected points keep their cached state.
//
// This turns the per-window cost of a δ-step LAHC move from a full
// re-estimation into work proportional to the few points whose
// neighbourhoods actually changed.
type Incremental struct {
	k    int
	grid *knn.Grid
	xs   *knn.OrderedMultiset
	ys   *knn.OrderedMultiset

	state map[int]*pointState

	// ids keeps the maintained ids sorted. MI() folds the per-point digamma
	// terms in this order: floating-point addition is not associative, so
	// summing in map-iteration order would make the estimate — and hence
	// entire search trajectories — vary from run to run at the ulp level.
	ids []int

	// scratch is reused across kNN refresh queries to avoid allocation in
	// the hottest loop.
	scratch []knn.Neighbor
	// refreshBuf is reused for the per-update refresh candidate list.
	refreshBuf []int
	// statePool recycles pointState records freed by Remove and Reload, so
	// steady-state sliding (remove+insert pairs) and whole-window reloads
	// stay off the heap.
	statePool []*pointState

	ops       IncrementalOps
	estimates int
}

// IncrementalOps counts the point-level work an Incremental has performed.
// Refreshes — one k-NN query plus two marginal interval counts each — are
// the cost driver of the Lemma 3–6 update cascade, so the ratio
// Refreshes/(Inserts+Removes) is the number to watch when profiling the
// incremental scorer.
type IncrementalOps struct {
	// Inserts and Removes count committed point insertions and removals.
	Inserts, Removes int
	// Refreshes counts per-point state recomputations (cascaded refreshes,
	// the updated point's own computation, and full rebuilds alike).
	Refreshes int
}

// Ops returns the work counters accumulated since construction.
func (inc *Incremental) Ops() IncrementalOps { return inc.ops }

type pointState struct {
	p      knn.Point
	dx, dy float64 // IMR half-widths (per-dimension kth-NN projections)
	d      float64 // IR half-width = L∞ distance to the k-th neighbour
	// nx, ny are the closed-interval marginal counts EXCLUDING the point
	// itself — Kraskov's n_x, n_y, the ψ(n_x) digamma arguments of
	// algorithm 2 (Eq. (9)), shared with the batch estimator. With k ≥ 1 the
	// k-th-NN projection keeps them ≥ 1 in exact arithmetic; computePoint
	// and the classify cascade floor them at 1 defensively against fp
	// boundary rounding.
	nx, ny int
}

func (s *pointState) digammas() float64 {
	return mathx.DigammaInt(s.nx) + mathx.DigammaInt(s.ny)
}

// NewIncremental returns an empty incremental estimator with neighbour count
// k (values below 1 become DefaultK). cellSize tunes the underlying grid
// index; pass 0 to use a default of 1.0 (callers that know their data scale
// should derive a size with knn.NewGridFor and pass its cell hint through
// NewIncrementalFrom instead).
func NewIncremental(k int, cellSize float64) *Incremental {
	if k < 1 {
		k = DefaultK
	}
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Incremental{
		k:     k,
		grid:  knn.NewGrid(cellSize),
		xs:    knn.NewOrderedMultiset(nil),
		ys:    knn.NewOrderedMultiset(nil),
		state: make(map[int]*pointState),
	}
}

// NewIncrementalFrom builds an incremental estimator pre-loaded with the
// paired samples (x[i], y[i]) under ids 0..len(x)−1, with a grid cell size
// derived from the data.
func NewIncrementalFrom(x, y []float64, k int) (*Incremental, error) {
	if err := checkPair(x, y); err != nil {
		return nil, err
	}
	pts := make([]knn.Point, len(x))
	for i := range pts {
		pts[i] = knn.Point{X: x[i], Y: y[i]}
	}
	if k < 1 {
		k = DefaultK
	}
	probe := knn.NewGridFor(pts, k)
	// Recover the chosen cell size by inserting into a fresh grid of the
	// same tuning: NewGridFor only depends on the sample, so reuse it.
	inc := &Incremental{
		k:     k,
		grid:  probe,
		xs:    knn.NewOrderedMultiset(nil),
		ys:    knn.NewOrderedMultiset(nil),
		state: make(map[int]*pointState),
	}
	for i, p := range pts {
		inc.Insert(i, p.X, p.Y)
	}
	return inc, nil
}

// NewIncrementalBulk returns an estimator pre-loaded with the given samples
// under the given ids, computing every point's state in one pass instead of
// cascading per-insert updates — the right way to (re)position an estimator
// at a whole new window.
func NewIncrementalBulk(k int, cellSize float64, ids []int, xs, ys []float64) *Incremental {
	inc := NewIncremental(k, cellSize)
	inc.Reload(ids, xs, ys)
	return inc
}

// Reload repositions the estimator at a whole new window in place,
// discarding all maintained points and bulk-loading the given samples
// exactly as NewIncrementalBulk would — same one-pass state computation,
// same counter semantics (Ops and Estimates restart from zero, as on a
// fresh estimator). Unlike a fresh build it keeps the grid, the marginal
// multisets, the id list and the pointState records, so a warm estimator
// reloads a comparable window without heap allocation. The grid cell size
// is retained.
func (inc *Incremental) Reload(ids []int, xs, ys []float64) {
	inc.grid.Reset(inc.grid.Cell())
	//lint:allow nodeterm drain order only permutes interchangeable freed records in the pool; the map ends empty either way
	for id, st := range inc.state {
		inc.statePool = append(inc.statePool, st)
		delete(inc.state, id)
	}
	inc.ids = inc.ids[:0]
	inc.ops = IncrementalOps{}
	inc.estimates = 0
	for i, id := range ids {
		o := knn.Point{X: xs[i], Y: ys[i]}
		inc.ops.Inserts++
		inc.grid.Insert(id, o)
		inc.state[id] = inc.takeState(o)
		inc.ids = append(inc.ids, id)
	}
	// Bulk Reset sorts once; the result is identical to element-wise Insert.
	inc.xs.Reset(xs)
	inc.ys.Reset(ys)
	sort.Ints(inc.ids)
	inc.rebuildAll()
}

// Reconfigure empties the estimator and re-tunes it to a new neighbour count
// and grid cell size, exactly as NewIncremental(k, cellSize) would — but
// reusing the grid, the multisets, the scratch buffers and the pooled
// pointState records. It is the cross-window counterpart of Reload: Reload
// repositions a warm estimator within one pair (same cell), Reconfigure
// retargets it at a different pair whose value span calls for a different
// cell. Counters restart from zero, as on a fresh estimator.
func (inc *Incremental) Reconfigure(k int, cellSize float64) {
	if k < 1 {
		k = DefaultK
	}
	if cellSize <= 0 {
		cellSize = 1
	}
	inc.k = k
	inc.grid.Reset(cellSize)
	//lint:allow nodeterm drain order only permutes interchangeable freed records in the pool; the map ends empty either way
	for id, st := range inc.state {
		inc.statePool = append(inc.statePool, st)
		delete(inc.state, id)
	}
	inc.ids = inc.ids[:0]
	inc.xs.Reset(nil)
	inc.ys.Reset(nil)
	inc.ops = IncrementalOps{}
	inc.estimates = 0
}

// takeState returns a zeroed pointState positioned at o, recycling a pooled
// record when one is available.
func (inc *Incremental) takeState(o knn.Point) *pointState {
	if n := len(inc.statePool); n > 0 {
		st := inc.statePool[n-1]
		inc.statePool = inc.statePool[:n-1]
		*st = pointState{p: o}
		return st
	}
	return &pointState{p: o}
}

// insertID adds id to the sorted id list.
func (inc *Incremental) insertID(id int) {
	i := sort.SearchInts(inc.ids, id)
	inc.ids = append(inc.ids, 0)
	copy(inc.ids[i+1:], inc.ids[i:])
	inc.ids[i] = id
}

// removeID drops id from the sorted id list.
func (inc *Incremental) removeID(id int) {
	i := sort.SearchInts(inc.ids, id)
	if i < len(inc.ids) && inc.ids[i] == id {
		inc.ids = append(inc.ids[:i], inc.ids[i+1:]...)
	}
}

// Len returns the number of points currently maintained.
func (inc *Incremental) Len() int { return len(inc.state) }

// K returns the neighbour count.
func (inc *Incremental) K() int { return inc.k }

// Insert adds the sample (x, y) under id. Inserting an existing id is an
// error (remove it first); ids are typically the time index of the sample.
func (inc *Incremental) Insert(id int, x, y float64) {
	if _, dup := inc.state[id]; dup {
		panic(fmt.Sprintf("mi: duplicate insert of id %d", id))
	}
	o := knn.Point{X: x, Y: y}
	inc.ops.Inserts++
	// With k or fewer pre-existing points, no cached kNN state is
	// meaningful; commit and rebuild.
	small := len(inc.state) <= inc.k

	var refresh []int
	if !small {
		// Phase 1: classify the points the insertion influences (Lemmas 3
		// and 5). Points whose IR contains o need a full refresh once o
		// lands in the structures; points whose IMRs contain o only need
		// count bumps. The candidates are found with grid queries bounded
		// by the running radius maxima instead of scanning every point.
		refresh = inc.classify(o, +1)
	}

	// Phase 2: commit o to the structures.
	inc.grid.Insert(id, o)
	inc.xs.Insert(x)
	inc.ys.Insert(y)
	st := inc.takeState(o)
	inc.state[id] = st
	inc.insertID(id)

	if small {
		inc.rebuildAll()
		return
	}
	// Phase 3: refresh the influenced points and compute o's own state.
	for _, pid := range refresh {
		inc.refreshPoint(pid)
	}
	inc.computePoint(id, st)
}

// Remove deletes the sample under id, reporting whether it existed.
func (inc *Incremental) Remove(id int) bool {
	st, ok := inc.state[id]
	if !ok {
		return false
	}
	o := st.p
	inc.ops.Removes++
	valid := len(inc.state) > inc.k // pre-removal cached state is meaningful
	inc.grid.Remove(id)
	inc.xs.Remove(o.X)
	inc.ys.Remove(o.Y)
	delete(inc.state, id)
	inc.statePool = append(inc.statePool, st)
	inc.removeID(id)

	if !valid || len(inc.state) <= inc.k {
		inc.rebuildAll()
		return true
	}
	for _, pid := range inc.classify(o, -1) {
		inc.refreshPoint(pid)
	}
	return true
}

// classify applies the influence analysis of Lemmas 3–6 for inserting
// (sign +1) or removing (sign −1) the point o: IMR-only points get their
// marginal counts adjusted in place, and the ids whose IR contains o — whose
// kNN state must be recomputed — are returned. A linear pass over the point
// states is used: the per-point test is three comparisons, and indexed
// candidate queries (square/strip grid scans bounded by radius maxima) were
// measured slower here because edge points inflate the radius bounds until
// the candidate sets approach the whole window anyway.
func (inc *Incremental) classify(o knn.Point, sign int) []int {
	refresh := inc.refreshBuf[:0]
	//lint:allow nodeterm order-insensitive: the integer count adjustments commute, and the refresh set's members (not order) determine the recomputed states
	for pid, st := range inc.state {
		if knn.Chebyshev(o, st.p) <= st.d {
			refresh = append(refresh, pid)
			continue
		}
		// The counts track other points entering/leaving the IMR intervals
		// (o ≠ p here, so the excluding-self convention is unaffected); the
		// floor mirrors computePoint's defensive max(count−1, 1) — in exact
		// arithmetic the k-th-NN projection keeps nx, ny ≥ 1.
		if math.Abs(o.X-st.p.X) <= st.dx {
			st.nx += sign
			if st.nx < 1 {
				st.nx = 1
			}
		}
		if math.Abs(o.Y-st.p.Y) <= st.dy {
			st.ny += sign
			if st.ny < 1 {
				st.ny = 1
			}
		}
	}
	inc.refreshBuf = refresh
	return refresh
}

// refreshPoint recomputes the cached state of an existing point after its
// neighbourhood changed.
func (inc *Incremental) refreshPoint(id int) {
	inc.computePoint(id, inc.state[id])
}

// computePoint fills st with a fresh k-NN search and marginal counts.
func (inc *Incremental) computePoint(id int, st *pointState) {
	inc.ops.Refreshes++
	nn := inc.grid.KNearestInto(st.p, inc.k, id, inc.scratch)
	inc.scratch = nn[:0]
	var dx, dy, d float64
	for _, nb := range nn {
		q, _ := inc.grid.Point(nb.Index)
		if v := math.Abs(q.X - st.p.X); v > dx {
			dx = v
		}
		if v := math.Abs(q.Y - st.p.Y); v > dy {
			dy = v
		}
		if nb.Dist > d {
			d = nb.Dist
		}
	}
	st.dx, st.dy, st.d = dx, dy, d
	// The interval counts include the point's own coordinate; subtracting it
	// yields Kraskov's n_x, n_y (counts excluding self, as in the batch
	// estimator). The floor mirrors ksg.go's defensive max(count−1, 1).
	st.nx = inc.xs.CountWithin(st.p.X, dx) - 1
	if st.nx < 1 {
		st.nx = 1
	}
	st.ny = inc.ys.CountWithin(st.p.Y, dy) - 1
	if st.ny < 1 {
		st.ny = 1
	}
}

// rebuildAll recomputes every point's state from scratch. Called when the
// population crosses the k threshold where incremental state is undefined.
func (inc *Incremental) rebuildAll() {
	if len(inc.state) <= inc.k {
		return
	}
	//lint:allow nodeterm order-insensitive: each computePoint rebuilds one point's state from the (fixed) grid, independent of the others
	for id, st := range inc.state {
		inc.computePoint(id, st)
	}
}

// MI returns the current KSG estimate (Eq. 2) over the maintained points,
// or an error when fewer than k+1 points are present. The digamma terms are
// folded in sorted-id order — ψ(n) is a table lookup, so the pass is a cheap
// price for estimates (and search trajectories) that are bit-for-bit
// reproducible no matter in which order the influence updates ran.
func (inc *Incremental) MI() (float64, error) {
	m := len(inc.state)
	if m <= inc.k {
		return 0, fmt.Errorf("%w: m=%d, k=%d", ErrTooFewSamples, m, inc.k)
	}
	var digammaSum float64
	for _, id := range inc.ids {
		digammaSum += inc.state[id].digammas()
	}
	k := float64(inc.k)
	inc.estimates++
	return mathx.DigammaInt(inc.k) - 1/k - digammaSum/float64(m) + mathx.Digamma(float64(m)), nil
}

// Estimates returns the number of successful MI evaluations since
// construction or the last Reload — the same success-only semantics as
// KSG.Estimates (calls that return ErrTooFewSamples are not counted).
func (inc *Incremental) Estimates() int { return inc.estimates }
