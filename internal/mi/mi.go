// Package mi implements the mutual-information machinery of TYCOS: the
// Kraskov–Stögbauer–Grassberger (KSG) k-nearest-neighbour estimator of
// Eq. (2)/(3) of the paper, a histogram (plug-in) estimator, entropy
// estimators, the normalized MI of Section 6.3.1, the top-K adaptive
// threshold of Section 6.3.2, and the incremental estimator of Section 7
// that reuses k-NN and marginal-count state across overlapping windows.
//
// All information quantities are expressed in nats.
package mi

import (
	"errors"
	"fmt"
	"math"
)

// ErrTooFewSamples is returned when a window is too small for the requested
// estimator configuration (KSG needs strictly more samples than k).
var ErrTooFewSamples = errors.New("mi: too few samples for estimation")

// Estimator estimates the mutual information between two equal-length sample
// vectors.
type Estimator interface {
	// Estimate returns I(X;Y) in nats for the paired samples (x[i], y[i]).
	Estimate(x, y []float64) (float64, error)
	// Name identifies the estimator in reports and benchmarks.
	Name() string
}

func checkPair(x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("mi: sample length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return ErrTooFewSamples
	}
	return nil
}

// Normalization selects the denominator of the normalized MI Ĩ = I/H
// (Eq. 18). The paper leaves the "window entropy" H_w unspecified; the
// choices below are the defensible instantiations (see DESIGN.md).
type Normalization int

const (
	// NormMaxEntropy divides by log(m), the maximum possible entropy of a
	// window with m samples. It is O(1) to compute, keeps Ĩ within [0,1]
	// (after clamping estimator noise), and preserves the MI ordering of
	// equal-sized windows. It is the zero value on purpose: a search whose
	// options leave the normalization unset gets the sane threshold scale
	// instead of raw nats.
	NormMaxEntropy Normalization = iota
	// NormNone reports the raw MI estimate in nats.
	NormNone
	// NormJointHistogram divides by the plug-in joint entropy of the window
	// estimated from a 2-D histogram; this is the most literal reading of
	// Eq. (18) but costs O(m) per window.
	NormJointHistogram
)

// String returns the normalization's name.
func (n Normalization) String() string {
	switch n {
	case NormNone:
		return "none"
	case NormMaxEntropy:
		return "max-entropy"
	case NormJointHistogram:
		return "joint-histogram"
	default:
		return fmt.Sprintf("Normalization(%d)", int(n))
	}
}

// Normalize scales a raw MI value for a window of m samples according to n.
// The normalized variants clamp at 1 (estimator variance can push the raw
// value slightly above the entropy bound) but deliberately keep negative
// values: an unbiased KSG estimate on independent data is slightly negative,
// and the ordering among those near-zero scores is exactly the texture a
// local search climbs on. Flooring them at 0 would flatten the landscape to
// a plateau and starve the climb of gradients; acceptance thresholds (σ > 0)
// make the final decision, so negative scores never surface as results.
func Normalize(raw float64, x, y []float64, n Normalization) float64 {
	switch n {
	case NormNone:
		return raw
	case NormMaxEntropy:
		m := len(x)
		if m < 2 {
			return 0
		}
		return clampTo1(raw / math.Log(float64(m)))
	case NormJointHistogram:
		h := HistogramJointEntropy(x, y, 0)
		if h <= 0 {
			return 0
		}
		return clampTo1(raw / h)
	default:
		return raw
	}
}

func clampTo1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
