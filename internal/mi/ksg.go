package mi

import (
	"fmt"
	"math"

	"tycos/internal/knn"
	"tycos/internal/mathx"
)

// Backend selects the k-nearest-neighbour structure used inside the KSG
// estimator (the ablation of Lemma 2's complexity discussion).
type Backend int

const (
	// BackendKDTree builds a k-d tree per estimate: O(m log m) expected.
	BackendKDTree Backend = iota
	// BackendBrute scans linearly per query: O(m²) but allocation-free.
	BackendBrute
	// BackendGrid uses the uniform grid index.
	BackendGrid
)

// String returns the backend's name.
func (b Backend) String() string {
	switch b {
	case BackendKDTree:
		return "kdtree"
	case BackendBrute:
		return "brute"
	case BackendGrid:
		return "grid"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// KSG is the Kraskov–Stögbauer–Grassberger estimator, algorithm 2 (the
// variant the paper uses in Eq. (2)/(3)): per point, the distance to its
// k-th nearest neighbour under L∞ is projected on each axis, the marginal
// neighbour counts n_x, n_y within those projections are taken, and
//
//	I = ψ(k) − 1/k − ⟨ψ(n_x) + ψ(n_y)⟩ + ψ(m).
//
// The zero value is not usable; construct with NewKSG.
//
// A KSG carries a work counter (Estimates) and is therefore not safe for
// concurrent use; every searcher owns its own instance.
type KSG struct {
	k         int
	backend   Backend
	estimates int
}

// DefaultK is the nearest-neighbour count used when none is specified; k=4
// is the customary KSG choice balancing bias and variance.
const DefaultK = 4

// NewKSG returns a KSG estimator with the given neighbour count (k ≥ 1;
// values below 1 become DefaultK) and backend.
func NewKSG(k int, backend Backend) *KSG {
	if k < 1 {
		k = DefaultK
	}
	return &KSG{k: k, backend: backend}
}

// Name implements Estimator.
func (e *KSG) Name() string { return fmt.Sprintf("ksg(k=%d,%s)", e.k, e.backend) }

// K returns the configured neighbour count.
func (e *KSG) K() int { return e.k }

// Estimate implements Estimator. It requires len(x) > k.
func (e *KSG) Estimate(x, y []float64) (float64, error) {
	if err := checkPair(x, y); err != nil {
		return 0, err
	}
	m := len(x)
	if m <= e.k {
		return 0, fmt.Errorf("%w: m=%d, k=%d", ErrTooFewSamples, m, e.k)
	}
	pts := make([]knn.Point, m)
	for i := range pts {
		pts[i] = knn.Point{X: x[i], Y: y[i]}
	}
	var index knn.Index
	switch e.backend {
	case BackendBrute:
		index = knn.NewBrute(pts)
	case BackendGrid:
		g := knn.NewGridFor(pts, e.k)
		for i, p := range pts {
			g.Insert(i, p)
		}
		index = g
	default:
		index = knn.NewKDTree(pts)
	}
	// Sorted marginals make the n_x, n_y interval counts O(log m).
	xs := knn.NewOrderedMultiset(x)
	ys := knn.NewOrderedMultiset(y)

	var sum float64
	for i := 0; i < m; i++ {
		nn := index.KNearest(pts[i], e.k, i)
		dx, dy := marginalRadii(pts[i], pts, nn)
		// Counts include neighbours at exactly the projected distance and
		// exclude the point itself (its own distance 0 is always inside).
		nx := xs.CountWithin(x[i], dx) - 1
		ny := ys.CountWithin(y[i], dy) - 1
		if nx < 1 {
			nx = 1
		}
		if ny < 1 {
			ny = 1
		}
		sum += mathx.DigammaInt(nx) + mathx.DigammaInt(ny)
	}
	k := float64(e.k)
	e.estimates++
	return mathx.DigammaInt(e.k) - 1/k - sum/float64(m) + mathx.Digamma(float64(m)), nil
}

// Estimates returns the number of successful estimations this instance has
// performed — the observability layer reports it as the scorer-level work
// counter behind Stats.MIBatch.
func (e *KSG) Estimates() int { return e.estimates }

// marginalRadii returns the per-dimension projections (dx, dy) of the
// k-nearest-neighbour set of q: the largest |Δx| and |Δy| among the
// neighbours (KSG algorithm 2's ε_x/2 and ε_y/2).
func marginalRadii(q knn.Point, pts []knn.Point, nn []knn.Neighbor) (dx, dy float64) {
	for _, nb := range nn {
		p := pts[nb.Index]
		if d := math.Abs(p.X - q.X); d > dx {
			dx = d
		}
		if d := math.Abs(p.Y - q.Y); d > dy {
			dy = d
		}
	}
	return dx, dy
}

// GaussianMI returns the analytic mutual information −½·ln(1−ρ²) of a
// bivariate Gaussian with correlation ρ; it is the ground truth the
// estimators are validated against in tests and examples.
func GaussianMI(rho float64) float64 {
	return -0.5 * math.Log(1-rho*rho)
}

func logFloat(m int) float64 { return math.Log(float64(m)) }
