package mi

import (
	"fmt"
	"math"

	"tycos/internal/knn"
	"tycos/internal/mathx"
)

// Backend selects the k-nearest-neighbour structure used inside the KSG
// estimator (the ablation of Lemma 2's complexity discussion).
type Backend int

const (
	// BackendKDTree builds a k-d tree per estimate: O(m log m) expected.
	BackendKDTree Backend = iota
	// BackendBrute scans linearly per query: O(m²) but allocation-free.
	BackendBrute
	// BackendGrid uses the uniform grid index.
	BackendGrid
)

// String returns the backend's name.
func (b Backend) String() string {
	switch b {
	case BackendKDTree:
		return "kdtree"
	case BackendBrute:
		return "brute"
	case BackendGrid:
		return "grid"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// EngineNames returns the registered k-NN engine names in sorted order —
// re-exported so layers above (core option validation, CLI flag help) can
// enumerate backends without importing internal/knn directly.
func EngineNames() []string { return knn.EngineNames() }

// HasEngine reports whether a k-NN engine is registered under name.
func HasEngine(name string) bool { return knn.HasEngine(name) }

// EngineExact reports whether the named engine answers queries exactly
// (false for approximate backends, and for unknown names).
func EngineExact(name string) bool {
	s, ok := knn.EngineSpec(name)
	return ok && s.Exact
}

// KSG is the Kraskov–Stögbauer–Grassberger estimator, algorithm 2 (the
// variant the paper uses in Eq. (2)/(3)): per point, the distance to its
// k-th nearest neighbour under L∞ is projected on each axis, the marginal
// neighbour counts n_x, n_y within those projections are taken, and
//
//	I = ψ(k) − 1/k − ⟨ψ(n_x) + ψ(n_y)⟩ + ψ(m)
//
// (Kraskov et al. 2004, Eq. (9)), where n_x, n_y count the OTHER samples
// whose coordinate lies within the closed marginal interval of half-width
// ε_x/2 = max|Δx| over the kNN set (resp. ε_y/2) — the counts exclude the
// point itself. Note algorithm 1 (Eq. (8)) is the variant that evaluates
// ψ(n_x+1); it pairs that with a single strict L∞ radius and NO −1/k term,
// so the two conventions must never be mixed. Computationally the interval
// count over the full multiset includes the query's own coordinate, so
// n_x = count − 1; with k ≥ 1 the neighbour realising the max projection
// lies inside the interval, so count ≥ 2 and n_x ≥ 1 in exact arithmetic.
// A max(count−1, 1) floor guards the digamma against a count collapsing to
// 1 under floating-point boundary rounding on degenerate data.
//
// The zero value is not usable; construct with NewKSG.
//
// A KSG carries a work counter (Estimates) and per-instance reusable scratch
// (the point buffer and the engine's internal arenas persist across Estimate
// calls, making the steady state allocation-free). It is therefore not safe
// for concurrent use; every searcher owns its own instance.
//
// The k-NN structure behind Estimate is a knn.Engine selected by name; the
// legacy Backend constants map onto the exact engines, and NewKSGNamed
// selects any registered engine — including approximate ones, whose MI drift
// the bounded-error constructor (NewBoundedKSG) quantifies and gates.
type KSG struct {
	k         int
	display   string
	engine    knn.Engine
	estimates int

	// Reusable scratch, grown on first use and retained across calls.
	pts []knn.Point
}

// DefaultK is the nearest-neighbour count used when none is specified; k=4
// is the customary KSG choice balancing bias and variance.
const DefaultK = 4

// NewKSG returns a KSG estimator with the given neighbour count (k ≥ 1;
// values below 1 become DefaultK) and backend. Unknown Backend values fall
// back to the kd-tree, as the pre-engine backend switch did.
func NewKSG(k int, backend Backend) *KSG {
	if k < 1 {
		k = DefaultK
	}
	display := backend.String()
	name := display
	if !knn.HasEngine(name) {
		name = "kdtree"
	}
	eng, err := knn.NewEngine(name, knn.Config{K: k})
	if err != nil {
		panic(err) // unreachable: name is registered
	}
	return &KSG{k: k, display: display, engine: eng}
}

// NewKSGNamed returns a KSG estimator backed by the named k-NN engine from
// the registry (mi.EngineNames lists them). seed drives randomized engines
// (tree shapes in the kd-forest); exact engines ignore it. Unknown names
// return an error rather than falling back — a caller selecting an engine
// by name wants that engine or a loud failure.
func NewKSGNamed(k int, engine string, seed int64) (*KSG, error) {
	if k < 1 {
		k = DefaultK
	}
	eng, err := knn.NewEngine(engine, knn.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &KSG{k: k, display: engine, engine: eng}, nil
}

// Name implements Estimator.
func (e *KSG) Name() string { return fmt.Sprintf("ksg(k=%d,%s)", e.k, e.display) }

// K returns the configured neighbour count.
func (e *KSG) K() int { return e.k }

// EngineName returns the name of the k-NN engine answering the queries.
func (e *KSG) EngineName() string { return e.engine.Name() }

// Exact reports whether the underlying engine answers exactly (kd-tree,
// brute, grid) or approximately (kd-forest under budget).
func (e *KSG) Exact() bool { return e.engine.Exact() }

// Estimate implements Estimator. It requires len(x) > k.
func (e *KSG) Estimate(x, y []float64) (float64, error) {
	if err := checkPair(x, y); err != nil {
		return 0, err
	}
	m := len(x)
	if m <= e.k {
		return 0, fmt.Errorf("%w: m=%d, k=%d", ErrTooFewSamples, m, e.k)
	}
	e.pts = e.pts[:0]
	for i := range x {
		e.pts = append(e.pts, knn.Point{X: x[i], Y: y[i]})
	}
	pts := e.pts
	// One Build per estimate: the engine re-indexes the window reusing its
	// arenas (and its sorted marginals, which make the n_x, n_y interval
	// counts O(log m)). The exact engines execute the same operations the
	// pre-engine backend switch did, in the same order, so exact-path
	// estimates are byte-identical to before the engine layer existed.
	e.engine.Build(pts, x, y)

	var sum float64
	for i := 0; i < m; i++ {
		nn := e.engine.SelfKNearest(i, e.k)
		dx, dy := marginalRadii(pts[i], pts, nn)
		// The closed-interval counts include the query's own coordinate;
		// subtracting it yields Kraskov's n_x, n_y (Eq. (9) counts exclude
		// the point itself). The floor is defensive only: in exact arithmetic
		// the k-th-NN projection keeps n_x, n_y ≥ 1, but fp boundary rounding
		// on degenerate data could leave just the query in its interval.
		nx := e.engine.CountX(x[i], dx) - 1
		if nx < 1 {
			nx = 1
		}
		ny := e.engine.CountY(y[i], dy) - 1
		if ny < 1 {
			ny = 1
		}
		sum += mathx.DigammaInt(nx) + mathx.DigammaInt(ny)
	}
	k := float64(e.k)
	e.estimates++
	return mathx.DigammaInt(e.k) - 1/k - sum/float64(m) + mathx.Digamma(float64(m)), nil
}

// Estimates returns the number of successful estimations this instance has
// performed — the observability layer reports it as the scorer-level work
// counter behind Stats.MIBatch.
func (e *KSG) Estimates() int { return e.estimates }

// marginalRadii returns the per-dimension projections (dx, dy) of the
// k-nearest-neighbour set of q: the largest |Δx| and |Δy| among the
// neighbours (KSG algorithm 2's ε_x/2 and ε_y/2).
func marginalRadii(q knn.Point, pts []knn.Point, nn []knn.Neighbor) (dx, dy float64) {
	for _, nb := range nn {
		p := pts[nb.Index]
		if d := math.Abs(p.X - q.X); d > dx {
			dx = d
		}
		if d := math.Abs(p.Y - q.Y); d > dy {
			dy = d
		}
	}
	return dx, dy
}

// GaussianMI returns the analytic mutual information −½·ln(1−ρ²) of a
// bivariate Gaussian with correlation ρ; it is the ground truth the
// estimators are validated against in tests and examples.
//
// A perfectly correlated pair (|ρ| ≥ 1) has infinite mutual information; the
// function returns +Inf explicitly for that range instead of leaking it from
// log(0) (and NaN from |ρ| > 1), so callers comparing against the analytic
// value can guard with math.IsInf. The log1p form keeps precision for small
// |ρ|, where 1−ρ² would cancel.
func GaussianMI(rho float64) float64 {
	if rho <= -1 || rho >= 1 {
		return math.Inf(1)
	}
	return -0.5 * math.Log1p(-rho*rho)
}
