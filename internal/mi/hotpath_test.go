package mi

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestKSGEstimateAllocs pins the tentpole guarantee: after the first call
// warms the per-estimator scratch, KSG.Estimate runs allocation-free on the
// kd-tree and brute backends. The grid backend keeps map-backed state whose
// delete/reinsert cycles occasionally allocate internally; its budget is
// pinned rather than zero.
func TestKSGEstimateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := gaussianPair(rng, 500, 0.6)
	for _, tc := range []struct {
		backend Backend
		budget  float64
	}{
		{BackendKDTree, 0},
		{BackendBrute, 0},
		{BackendGrid, 2}, // map-internal churn, see TestResetAllocs in knn
	} {
		est := NewKSG(4, tc.backend)
		for warm := 0; warm < 16; warm++ {
			if _, err := est.Estimate(x, y); err != nil {
				t.Fatal(err)
			}
		}
		got := testing.AllocsPerRun(10, func() {
			if _, err := est.Estimate(x, y); err != nil {
				t.Fatal(err)
			}
		})
		if got > tc.budget {
			t.Errorf("%s: Estimate allocates %v/op steady-state, budget %v", tc.backend, got, tc.budget)
		}
	}
}

// TestIncrementalSlideAllocs pins the steady-state sliding cost: once the
// point-state pool and scratch are warm, a remove+insert+MI step stays off
// the heap.
func TestIncrementalSlideAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, w := 3000, 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.6*x[i] + 0.4*rng.NormFloat64()
	}
	inc := NewIncremental(4, 0.3)
	for i := 0; i < w; i++ {
		inc.Insert(i, x[i], y[i])
	}
	pos := 0
	slide := func() {
		inc.Remove(pos)
		inc.Insert(pos+w, x[pos+w], y[pos+w])
		if _, err := inc.MI(); err != nil {
			t.Fatal(err)
		}
		pos++
	}
	for warm := 0; warm < 200; warm++ {
		slide()
	}
	// Pinned budget ≤1: the ordered-multiset Insert and the grid's cell map
	// are warm, but map-internal churn can surface an occasional allocation.
	if got := testing.AllocsPerRun(100, slide); got > 1 {
		t.Errorf("steady-state slide allocates %v/op, want ≤1", got)
	}
}

// TestIncrementalReloadAllocs pins the warm whole-window Reload: repositioning
// an estimator on a same-sized window reuses the grid, multisets, id list and
// pooled point states.
func TestIncrementalReloadAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := 300
	ids := make([]int, m)
	xs := make([]float64, m)
	ys := make([]float64, m)
	fill := func(base int) {
		for i := 0; i < m; i++ {
			ids[i] = base + i
			xs[i] = rng.NormFloat64()
			ys[i] = 0.5*xs[i] + 0.5*rng.NormFloat64()
		}
	}
	fill(0)
	inc := NewIncrementalBulk(4, 0.3, ids, xs, ys)
	for warm := 0; warm < 16; warm++ {
		fill(warm * m)
		inc.Reload(ids, xs, ys)
	}
	got := testing.AllocsPerRun(10, func() {
		inc.Reload(ids, xs, ys)
		if _, err := inc.MI(); err != nil {
			t.Fatal(err)
		}
	})
	// Same pinned map-churn budget as the grid backend.
	if got > 2 {
		t.Errorf("warm Reload allocates %v/op, want ≤2", got)
	}
}

// TestBatchIncrementalAgreeOnTies is the formula-alignment regression test:
// the batch and incremental estimators must agree to 1e-9 under the shared
// algorithm-2 convention (ψ(n_x), counts excluding self, floored at 1) — on
// continuous data AND on data with heavy coordinate ties, where any
// divergence in marginal-count or tie-break conventions surfaces immediately.
func TestBatchIncrementalAgreeOnTies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := map[string]func(i int) (float64, float64){
		"continuous": func(int) (float64, float64) {
			x := rng.NormFloat64()
			return x, 0.7*x + 0.3*rng.NormFloat64()
		},
		"quantized": func(int) (float64, float64) {
			// Few-valued coordinates: ties in both marginals and in joint
			// distances on almost every query.
			return float64(rng.Intn(6)), float64(rng.Intn(6))
		},
		"mixed": func(i int) (float64, float64) {
			if i%3 == 0 {
				return float64(i % 5), float64(i % 4)
			}
			return rng.NormFloat64(), rng.NormFloat64()
		},
	}
	for name, gen := range cases {
		const m = 250
		xs := make([]float64, m)
		ys := make([]float64, m)
		ids := make([]int, m)
		for i := 0; i < m; i++ {
			xs[i], ys[i] = gen(i)
			ids[i] = i
		}
		for _, backend := range []Backend{BackendKDTree, BackendBrute, BackendGrid} {
			batch, err := NewKSG(4, backend).Estimate(xs, ys)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, backend, err)
			}
			inc := NewIncrementalBulk(4, 0.5, ids, xs, ys)
			incremental, err := inc.MI()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if math.Abs(batch-incremental) > 1e-9 {
				t.Errorf("%s/%s: batch %.12f vs incremental %.12f (Δ %.3g)",
					name, backend, batch, incremental, math.Abs(batch-incremental))
			}
		}
	}
}

// TestGaussianMIPerfectCorrelation pins the |ρ| ≥ 1 contract: +Inf, never a
// log(0) leak or NaN.
func TestGaussianMIPerfectCorrelation(t *testing.T) {
	for _, rho := range []float64{1, -1, 1.5, -2} {
		if got := GaussianMI(rho); !math.IsInf(got, 1) {
			t.Errorf("GaussianMI(%v) = %v, want +Inf", rho, got)
		}
	}
	if got := GaussianMI(0); got != 0 {
		t.Errorf("GaussianMI(0) = %v, want 0", got)
	}
	if got := GaussianMI(0.5); math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Errorf("GaussianMI(0.5) = %v, want finite positive", got)
	}
}

// TestEstimatesCounterConsistency pins the success-only counter semantics
// shared by the batch and incremental estimators, and Reload's fresh-start
// reset.
func TestEstimatesCounterConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	x, y := gaussianPair(rng, 64, 0.5)

	est := NewKSG(4, BackendKDTree)
	if _, err := est.Estimate(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(x[:2], y[:2]); !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("expected ErrTooFewSamples, got %v", err)
	}
	if est.Estimates() != 1 {
		t.Errorf("KSG.Estimates = %d after 1 success + 1 failure, want 1", est.Estimates())
	}

	ids := make([]int, len(x))
	for i := range ids {
		ids[i] = i
	}
	inc := NewIncrementalBulk(4, 0.5, ids, x, y)
	if inc.Estimates() != 0 {
		t.Errorf("fresh Incremental.Estimates = %d, want 0", inc.Estimates())
	}
	if _, err := inc.MI(); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.MI(); err != nil {
		t.Fatal(err)
	}
	if inc.Estimates() != 2 {
		t.Errorf("Incremental.Estimates = %d after 2 successes, want 2", inc.Estimates())
	}
	empty := NewIncremental(4, 0.5)
	if _, err := empty.MI(); !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("expected ErrTooFewSamples, got %v", err)
	}
	if empty.Estimates() != 0 {
		t.Errorf("failed MI still counted: %d", empty.Estimates())
	}
	inc.Reload(ids, x, y)
	if inc.Estimates() != 0 {
		t.Errorf("Reload must reset Estimates, got %d", inc.Estimates())
	}
}

// TestReloadMatchesBulk verifies a reused estimator Reloaded onto a window is
// indistinguishable from a fresh bulk build: same MI to the last bit, same
// op counters.
func TestReloadMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	reused := NewIncremental(4, 0.5)
	for round := 0; round < 10; round++ {
		m := 30 + rng.Intn(200)
		ids := make([]int, m)
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			ids[i] = round*1000 + i
			xs[i] = rng.NormFloat64()
			ys[i] = 0.4*xs[i] + 0.6*rng.NormFloat64()
		}
		fresh := NewIncrementalBulk(4, 0.5, ids, xs, ys)
		reused.Reload(ids, xs, ys)
		fm, ferr := fresh.MI()
		rm, rerr := reused.MI()
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("round %d: error mismatch %v vs %v", round, ferr, rerr)
		}
		// Exact float inequality is deliberate: bit-identity is the Reload
		// contract. (The linter does not parse test files, so no allow
		// directive is needed.)
		if fm != rm {
			t.Errorf("round %d: fresh %.17g vs reloaded %.17g", round, fm, rm)
		}
		if fresh.Ops() != reused.Ops() {
			t.Errorf("round %d: ops diverged: fresh %+v vs reloaded %+v", round, fresh.Ops(), reused.Ops())
		}
	}
}

// BenchmarkKSGEstimate is the canonical hot-path benchmark: one warm
// estimator per backend, 500-sample windows — the workload tycosbench
// records into BENCH_HOTPATH.json.
func BenchmarkKSGEstimate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := gaussianPair(rng, 500, 0.6)
	for _, backend := range []Backend{BackendKDTree, BackendBrute, BackendGrid} {
		est := NewKSG(4, backend)
		b.Run(backend.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalReload measures the warm whole-window reposition that
// the incremental scorer performs on every cache miss.
func BenchmarkIncrementalReload(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := 500
	ids := make([]int, m)
	xs := make([]float64, m)
	ys := make([]float64, m)
	for i := 0; i < m; i++ {
		ids[i] = i
		xs[i] = rng.NormFloat64()
		ys[i] = 0.6*xs[i] + 0.4*rng.NormFloat64()
	}
	inc := NewIncrementalBulk(4, 0.3, ids, xs, ys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.Reload(ids, xs, ys)
	}
}
