package mi

import "sort"

// TopK implements the adaptive threshold of Section 6.3.2: it maintains the
// K highest MI values seen so far, and Threshold() reports the current
// acceptance bar — the initial seed value until the list fills, then the
// smallest retained MI.
type TopK struct {
	k    int
	seed float64
	vals []float64
}

// NewTopK returns a tracker that keeps the k highest values, with the given
// initial threshold (the MI of the initial window w₀ per the paper).
func NewTopK(k int, seed float64) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, seed: seed}
}

// Offer records a candidate MI value and reports whether it entered the
// top-K list (i.e. whether it met the current threshold).
func (t *TopK) Offer(v float64) bool {
	if len(t.vals) < t.k {
		t.vals = append(t.vals, v)
		sort.Float64s(t.vals)
		return true
	}
	if v <= t.vals[0] {
		return false
	}
	t.vals[0] = v
	// Restore order: bubble the replaced minimum up.
	for i := 1; i < len(t.vals) && t.vals[i] < t.vals[i-1]; i++ {
		t.vals[i], t.vals[i-1] = t.vals[i-1], t.vals[i]
	}
	return true
}

// Threshold returns the current acceptance bar σ.
func (t *TopK) Threshold() float64 {
	if len(t.vals) < t.k {
		return t.seed
	}
	return t.vals[0]
}

// Values returns the retained values in ascending order.
func (t *TopK) Values() []float64 {
	out := make([]float64, len(t.vals))
	copy(out, t.vals)
	return out
}

// Len returns how many values are currently retained.
func (t *TopK) Len() int { return len(t.vals) }
