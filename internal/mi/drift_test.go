package mi

import (
	"math"
	"strings"
	"testing"

	"tycos/internal/knn"
)

// sloppyEngine is a deliberately bad approximate engine registered only from
// the test binary: it answers every self-query with the lowest-indexed
// points regardless of distance, so its MI drift is large and the
// bounded-error refusal path is exercised deterministically.
type sloppyEngine struct {
	pts    []knn.Point
	xs, ys *knn.OrderedMultiset
	buf    []knn.Neighbor
}

func (e *sloppyEngine) Build(pts []knn.Point, xs, ys []float64) {
	e.pts = pts
	if e.xs == nil {
		e.xs = knn.NewOrderedMultiset(nil)
		e.ys = knn.NewOrderedMultiset(nil)
	}
	e.xs.Reset(xs)
	e.ys.Reset(ys)
}

func (e *sloppyEngine) SelfKNearest(i, k int) []knn.Neighbor {
	e.buf = e.buf[:0]
	for j := 0; j < len(e.pts) && len(e.buf) < k; j++ {
		if j == i {
			continue
		}
		e.buf = append(e.buf, knn.Neighbor{Index: j, Dist: knn.Chebyshev(e.pts[i], e.pts[j])})
	}
	return e.buf
}

func (e *sloppyEngine) CountX(x, d float64) int { return e.xs.CountWithin(x, d) }
func (e *sloppyEngine) CountY(y, d float64) int { return e.ys.CountWithin(y, d) }
func (e *sloppyEngine) Len() int                { return len(e.pts) }
func (e *sloppyEngine) Exact() bool             { return false }
func (e *sloppyEngine) Name() string            { return "sloppy-test" }

func init() {
	knn.Register(knn.Spec{Name: "sloppy-test", Exact: false, New: func(knn.Config) knn.Engine {
		return &sloppyEngine{}
	}})
}

// TestMeasureEngineDriftExactZero: exact engines run the same arithmetic as
// the reference, so their drift is exactly zero on every corpus sample.
func TestMeasureEngineDriftExactZero(t *testing.T) {
	corpus := DriftCorpus(17, 128)
	for _, engine := range []string{"kdtree", "brute", "grid"} {
		rep, err := MeasureEngineDrift(engine, 4, 17, corpus)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if rep.MaxAbsDrift != 0 {
			t.Errorf("%s: MaxAbsDrift = %g, want exactly 0", engine, rep.MaxAbsDrift)
		}
		if rep.Samples != len(corpus) {
			t.Errorf("%s: Samples = %d, want %d", engine, rep.Samples, len(corpus))
		}
	}
}

// TestForestDriftBounded pins the approximate backend's quality on the
// harness corpus: drift within the default ε the bench suite uses (0.15
// nats), and the bounded constructor accepts it.
func TestForestDriftBounded(t *testing.T) {
	est, rep, err := NewBoundedKSG(4, "forest", 42, 0.15, nil)
	if err != nil {
		t.Fatalf("NewBoundedKSG(forest): %v (report %+v)", err, rep)
	}
	if est == nil || est.Exact() {
		t.Fatalf("want a non-nil approximate estimator, got %+v", est)
	}
	if rep.MaxAbsDrift <= 0 {
		t.Logf("forest drift is zero on this corpus (budget covers every window)")
	}
	if rep.Samples == 0 || rep.MeanAbsDrift > rep.MaxAbsDrift {
		t.Fatalf("inconsistent report: %+v", rep)
	}
}

// TestNewBoundedKSGRefuses: a sloppy engine must be refused at any
// realistic ε, with the report carried alongside the error.
func TestNewBoundedKSGRefuses(t *testing.T) {
	corpus := DriftCorpus(7, 128)
	est, rep, err := NewBoundedKSG(4, "sloppy-test", 7, 0.01, corpus)
	if err == nil {
		t.Fatalf("want refusal, got estimator %v (report %+v)", est.Name(), rep)
	}
	if est != nil {
		t.Fatal("refusal must not return an estimator")
	}
	if rep.MaxAbsDrift <= 0.01 || rep.WorstLabel == "" {
		t.Fatalf("refusal report should localize the drift: %+v", rep)
	}
	if !strings.Contains(err.Error(), "sloppy-test") {
		t.Fatalf("error should name the engine: %v", err)
	}
	// The same engine passes under an absurdly loose bound — the gate is the
	// caller's ε, not a hardcoded threshold.
	if _, _, err := NewBoundedKSG(4, "sloppy-test", 7, math.Inf(1), corpus); err != nil {
		t.Fatalf("infinite ε must accept: %v", err)
	}
}

// TestNewBoundedKSGErrors pins the argument-validation paths.
func TestNewBoundedKSGErrors(t *testing.T) {
	if _, _, err := NewBoundedKSG(4, "no-such-engine", 1, 0.1, nil); err == nil {
		t.Error("want error for unknown engine")
	}
	if _, _, err := NewBoundedKSG(4, "forest", 1, -0.5, nil); err == nil {
		t.Error("want error for negative eps")
	}
	if _, _, err := NewBoundedKSG(4, "forest", 1, math.NaN(), nil); err == nil {
		t.Error("want error for NaN eps")
	}
}

// TestDriftCorpusDeterministic: the corpus is a pure function of its seed.
func TestDriftCorpusDeterministic(t *testing.T) {
	a := DriftCorpus(5, 64)
	b := DriftCorpus(5, 64)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("labels differ at %d", i)
		}
		for j := range a[i].X {
			if a[i].X[j] != b[i].X[j] || a[i].Y[j] != b[i].Y[j] {
				t.Fatalf("sample %q diverges at %d", a[i].Label, j)
			}
		}
	}
	c := DriftCorpus(6, 64)
	same := true
	for i := range a {
		for j := range a[i].X {
			if a[i].X[j] != c[i].X[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestNewKSGNamedMatchesBackend: the named constructor over an exact engine
// is byte-identical to the legacy Backend constructor.
func TestNewKSGNamedMatchesBackend(t *testing.T) {
	corpus := DriftCorpus(3, 200)
	for _, name := range []string{"kdtree", "brute", "grid"} {
		named, err := NewKSGNamed(4, name, 0)
		if err != nil {
			t.Fatal(err)
		}
		var legacy *KSG
		switch name {
		case "kdtree":
			legacy = NewKSG(4, BackendKDTree)
		case "brute":
			legacy = NewKSG(4, BackendBrute)
		case "grid":
			legacy = NewKSG(4, BackendGrid)
		}
		for _, s := range corpus {
			a, err := named.Estimate(s.X, s.Y)
			if err != nil {
				t.Fatal(err)
			}
			b, err := legacy.Estimate(s.X, s.Y)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s/%s: named %v != legacy %v", name, s.Label, a, b)
			}
		}
		if named.EngineName() != name {
			t.Fatalf("EngineName = %q, want %q", named.EngineName(), name)
		}
	}
}
