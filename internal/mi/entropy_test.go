package mi

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestKLEntropyUniform(t *testing.T) {
	// Differential entropy of U(0, a) is log(a).
	rng := rand.New(rand.NewSource(31))
	for _, a := range []float64{1, 4} {
		v := make([]float64, 4000)
		for i := range v {
			v[i] = rng.Float64() * a
		}
		h, err := KLEntropy(v, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-math.Log(a)) > 0.05 {
			t.Errorf("U(0,%v) entropy = %.4f, want %.4f", a, h, math.Log(a))
		}
	}
}

func TestKLEntropyGaussian(t *testing.T) {
	// H(N(0,σ²)) = ½·log(2πeσ²).
	rng := rand.New(rand.NewSource(33))
	v := make([]float64, 5000)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	h, err := KLEntropy(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * math.Log(2*math.Pi*math.E)
	if math.Abs(h-want) > 0.05 {
		t.Errorf("gaussian entropy = %.4f, want %.4f", h, want)
	}
}

func TestKLJointEntropyIndependentGaussians(t *testing.T) {
	// Independent ⇒ H(X,Y) = H(X) + H(Y) = log(2πe).
	rng := rand.New(rand.NewSource(35))
	n := 4000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	h, err := KLJointEntropy(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(2 * math.Pi * math.E)
	if math.Abs(h-want) > 0.08 {
		t.Errorf("joint entropy = %.4f, want %.4f", h, want)
	}
}

func TestEntropyMIIdentity(t *testing.T) {
	// I(X;Y) = H(X) + H(Y) − H(X,Y); the three kNN estimators should agree
	// approximately with the direct KSG estimate.
	rng := rand.New(rand.NewSource(37))
	x, y := gaussianPair(rng, 3000, 0.8)
	hx, _ := KLEntropy(x, 4)
	hy, _ := KLEntropy(y, 4)
	hxy, _ := KLJointEntropy(x, y, 4)
	indirect := hx + hy - hxy
	direct, _ := NewKSG(4, BackendKDTree).Estimate(x, y)
	if math.Abs(indirect-direct) > 0.15 {
		t.Errorf("identity mismatch: H-based %.4f vs KSG %.4f", indirect, direct)
	}
}

func TestEntropyErrors(t *testing.T) {
	if _, err := KLEntropy([]float64{1, 2}, 4); !errors.Is(err, ErrTooFewSamples) {
		t.Error("too few samples must fail")
	}
	if _, err := KLJointEntropy([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Error("mismatched lengths must fail")
	}
	if _, err := KLJointEntropy(nil, nil, 2); !errors.Is(err, ErrTooFewSamples) {
		t.Error("empty joint must fail")
	}
}

func TestKLEntropyDuplicates(t *testing.T) {
	// A constant series has no continuous density: every ε is zero and the
	// estimator must report the divergence as −Inf, not NaN and not a finite
	// value manufactured by flooring log 0.
	constant := make([]float64, 50)
	h, err := KLEntropy(constant, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(h, -1) {
		t.Errorf("entropy of constant series = %v, want -Inf", h)
	}

	// A few-valued series where every point has ≥ k ties at distance zero is
	// equally degenerate (100 samples over 3 values, k=4: each value appears
	// 33–34 times, so the 4th neighbour is always a tie).
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i % 3)
	}
	h, err = KLEntropy(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(h, -1) {
		t.Errorf("entropy of 3-valued series = %v, want -Inf", h)
	}

	// Partially tied data: a continuous sample with a handful of exact
	// duplicates spliced in. The tied points are excluded from the average,
	// so the estimate must stay finite and close to the untied estimate
	// instead of being dragged toward −∞ by floored log 0 terms.
	rng := rand.New(rand.NewSource(41))
	clean := make([]float64, 2000)
	for i := range clean {
		clean[i] = rng.Float64()
	}
	hClean, err := KLEntropy(clean, 4)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append([]float64(nil), clean...)
	for i := 0; i < 40; i++ { // 8 clusters × 5 copies: every cluster member's ε=0 at k=4
		mixed = append(mixed, clean[i%8])
	}
	hMixed, err := KLEntropy(mixed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(hMixed) || math.IsInf(hMixed, 0) {
		t.Fatalf("entropy of mixed data = %v, want finite", hMixed)
	}
	if math.Abs(hMixed-hClean) > 0.1 {
		t.Errorf("mixed entropy %.4f strays from clean %.4f by more than 0.1", hMixed, hClean)
	}

	// Same contract for the joint estimator.
	cx := make([]float64, 50)
	cy := make([]float64, 50)
	hj, err := KLJointEntropy(cx, cy, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hj, -1) {
		t.Errorf("joint entropy of constant pair = %v, want -Inf", hj)
	}
}

func TestKthDistance1D(t *testing.T) {
	s := []float64{0, 1, 3, 6, 10}
	// From value 3 (self excluded): neighbours at distances 2 (1), 3 (0 and
	// 6), 7 (10).
	if d := kthDistance1D(s, 3, 1); d != 2 {
		t.Errorf("k=1 dist = %v", d)
	}
	if d := kthDistance1D(s, 3, 3); d != 3 {
		t.Errorf("k=3 dist = %v", d)
	}
	if d := kthDistance1D(s, 3, 4); d != 7 {
		t.Errorf("k=4 dist = %v", d)
	}
	// k beyond available points returns the largest seen distance.
	if d := kthDistance1D(s, 3, 10); d != 7 {
		t.Errorf("oversized k dist = %v", d)
	}
}

func TestTopK(t *testing.T) {
	tk := NewTopK(3, 0.1)
	if tk.Threshold() != 0.1 {
		t.Error("seed threshold expected before fill")
	}
	tk.Offer(0.5)
	tk.Offer(0.2)
	if tk.Threshold() != 0.1 {
		t.Error("threshold must stay at seed until K values arrive")
	}
	tk.Offer(0.8)
	if tk.Threshold() != 0.2 {
		t.Errorf("threshold = %v, want 0.2 (min of top-3)", tk.Threshold())
	}
	if tk.Offer(0.1) {
		t.Error("value below threshold must be rejected")
	}
	if !tk.Offer(0.9) {
		t.Error("value above threshold must enter")
	}
	if tk.Threshold() != 0.5 {
		t.Errorf("threshold after update = %v, want 0.5", tk.Threshold())
	}
	vals := tk.Values()
	if len(vals) != 3 || vals[0] != 0.5 || vals[2] != 0.9 {
		t.Errorf("values = %v", vals)
	}
	if tk.Len() != 3 {
		t.Errorf("len = %d", tk.Len())
	}
	// k < 1 is clamped.
	if NewTopK(0, 0).k != 1 {
		t.Error("k must clamp to 1")
	}
}
