package mi

import (
	"math/rand"
	"testing"
)

func TestKSGEstimatesCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := gaussianPair(rng, 64, 0.5)
	e := NewKSG(4, BackendKDTree)
	if e.Estimates() != 0 {
		t.Fatalf("fresh estimator reports %d estimates", e.Estimates())
	}
	for i := 1; i <= 3; i++ {
		if _, err := e.Estimate(x, y); err != nil {
			t.Fatal(err)
		}
		if e.Estimates() != i {
			t.Errorf("after %d estimations counter = %d", i, e.Estimates())
		}
	}
	// Failed estimations (too few samples) do not count.
	if _, err := e.Estimate(x[:3], y[:3]); err == nil {
		t.Fatal("undersized estimate did not fail")
	}
	if e.Estimates() != 3 {
		t.Errorf("failed estimate bumped the counter to %d", e.Estimates())
	}
}

func TestIncrementalOpsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := gaussianPair(rng, 40, 0.6)

	inc, err := NewIncrementalFrom(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	ops := inc.Ops()
	if ops.Inserts != 40 || ops.Removes != 0 {
		t.Fatalf("after 40 inserts: %+v", ops)
	}
	if ops.Refreshes < 40 {
		t.Errorf("40 inserts caused only %d refreshes; every point's state is computed at least once", ops.Refreshes)
	}

	if !inc.Remove(0) {
		t.Fatal("remove failed")
	}
	inc.Insert(100, 0.1, 0.2)
	ops = inc.Ops()
	if ops.Inserts != 41 || ops.Removes != 1 {
		t.Errorf("after one remove and one insert: %+v", ops)
	}
	// Removing an absent id performs no work.
	if inc.Remove(555) {
		t.Fatal("absent id removed")
	}
	if got := inc.Ops().Removes; got != 1 {
		t.Errorf("absent-id remove bumped Removes to %d", got)
	}

	// Bulk construction counts its committed inserts too.
	ids := make([]int, len(x))
	for i := range ids {
		ids[i] = i
	}
	bulk := NewIncrementalBulk(4, 0.5, ids, x, y)
	if got := bulk.Ops().Inserts; got != len(x) {
		t.Errorf("bulk load of %d points reports %d inserts", len(x), got)
	}
	if got := bulk.Ops().Refreshes; got < len(x) {
		t.Errorf("bulk load refreshed only %d points", got)
	}
}
