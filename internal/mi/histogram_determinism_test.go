package mi

import (
	"math/rand"
	"testing"
)

// TestHistogramJointEntropyDeterministic pins the nodeterm fix in
// HistogramJointEntropy: the occupied joint cells were folded into the
// entropy sum in map iteration order, and float addition is not associative,
// so repeated calls on identical inputs disagreed in their low bits. The
// fold now runs in sorted key order; with hundreds of occupied cells, a few
// dozen repetitions reliably caught the old behaviour.
func TestHistogramJointEntropyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.5*x[i] + rng.NormFloat64()
	}
	want := HistogramJointEntropy(x, y, 0)
	for i := 0; i < 50; i++ {
		if got := HistogramJointEntropy(x, y, 0); got != want {
			t.Fatalf("call %d: joint entropy %v != first call's %v (nondeterministic fold order)", i, got, want)
		}
	}
	est := NewHistogram(0)
	first, err := est.Estimate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := est.Estimate(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("call %d: histogram MI %v != first call's %v", i, got, first)
		}
	}
}
