// Package mass implements Mueen's Algorithm for Similarity Search
// (Rakthanmanon et al., KDD 2012), the FFT-based z-normalised Euclidean
// subsequence search the paper uses as a similarity baseline. MASS answers
// "where in ts does something shaped like q occur?" in O(n log n); it has no
// mechanism to search for correlated windows on its own — it needs a query,
// which is exactly the limitation Section 2 points out.
package mass

import (
	"fmt"
	"math"

	"tycos/internal/fft"
)

// DistanceProfile returns the z-normalised Euclidean distance between q and
// every length-|q| subsequence of ts: out[i] = dist(q, ts[i:i+|q|]).
// Subsequences with zero variance are assigned +Inf (no meaningful
// z-normalised distance exists); a zero-variance query returns an error.
func DistanceProfile(q, ts []float64) ([]float64, error) {
	m, n := len(q), len(ts)
	if m < 2 {
		return nil, fmt.Errorf("mass: query length %d too short", m)
	}
	if m > n {
		return nil, fmt.Errorf("mass: query length %d exceeds series length %d", m, n)
	}
	muQ, sigmaQ := meanStd(q)
	//lint:allow floateq exact zero-variance sentinel: z-normalised distance is undefined only at exactly zero
	if sigmaQ == 0 {
		return nil, fmt.Errorf("mass: query has zero variance")
	}
	dots, err := fft.SlidingDotProducts(q, ts)
	if err != nil {
		return nil, err
	}
	mu, sigma := movingMeanStd(ts, m)
	fm := float64(m)
	out := make([]float64, n-m+1)
	for i := range out {
		//lint:allow floateq exact zero-variance sentinel: constant windows get an infinite distance, anything else is computable
		if sigma[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		// d² = 2m·(1 − (QT − m·μq·μt)/(m·σq·σt))
		corr := (dots[i] - fm*muQ*mu[i]) / (fm * sigmaQ * sigma[i])
		d2 := 2 * fm * (1 - corr)
		if d2 < 0 {
			d2 = 0 // numeric noise at perfect matches
		}
		out[i] = math.Sqrt(d2)
	}
	return out, nil
}

// Match is a best-match result: the start index of the subsequence and its
// z-normalised distance to the query.
type Match struct {
	Index    int
	Distance float64
}

// TopMatch returns the best match of q in ts.
func TopMatch(q, ts []float64) (Match, error) {
	prof, err := DistanceProfile(q, ts)
	if err != nil {
		return Match{}, err
	}
	best := Match{Index: -1, Distance: math.Inf(1)}
	for i, d := range prof {
		if d < best.Distance {
			best = Match{Index: i, Distance: d}
		}
	}
	if best.Index < 0 {
		return Match{}, fmt.Errorf("mass: no finite distance in profile")
	}
	return best, nil
}

// meanStd returns the mean and population standard deviation of v.
func meanStd(v []float64) (mu, sigma float64) {
	if len(v) == 0 {
		return 0, 0
	}
	n := float64(len(v))
	var s float64
	for _, x := range v {
		s += x
	}
	mu = s / n
	var ss float64
	for _, x := range v {
		d := x - mu
		ss += d * d
	}
	return mu, math.Sqrt(ss / n)
}

// movingMeanStd returns the mean and population standard deviation of every
// length-m window of ts, computed with running sums in O(n).
func movingMeanStd(ts []float64, m int) (mu, sigma []float64) {
	n := len(ts)
	count := n - m + 1
	mu = make([]float64, count)
	sigma = make([]float64, count)
	var sum, sumSq float64
	for i := 0; i < m; i++ {
		sum += ts[i]
		sumSq += ts[i] * ts[i]
	}
	fm := float64(m)
	for i := 0; ; i++ {
		mean := sum / fm
		variance := sumSq/fm - mean*mean
		if variance < 0 {
			variance = 0
		}
		mu[i] = mean
		sigma[i] = math.Sqrt(variance)
		if i+m >= n {
			break
		}
		sum += ts[i+m] - ts[i]
		sumSq += ts[i+m]*ts[i+m] - ts[i]*ts[i]
	}
	return mu, sigma
}
