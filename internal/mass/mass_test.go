package mass

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveProfile is the O(n·m) reference: explicit z-normalisation of every
// subsequence.
func naiveProfile(q, ts []float64) []float64 {
	m := len(q)
	zq := znorm(q)
	out := make([]float64, len(ts)-m+1)
	for i := range out {
		zs := znorm(ts[i : i+m])
		if zs == nil {
			out[i] = math.Inf(1)
			continue
		}
		var d2 float64
		for j := 0; j < m; j++ {
			d := zq[j] - zs[j]
			d2 += d * d
		}
		out[i] = math.Sqrt(d2)
	}
	return out
}

func znorm(v []float64) []float64 {
	mu, sigma := meanStd(v)
	if sigma == 0 {
		return nil
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = (x - mu) / sigma
	}
	return out
}

func TestDistanceProfileMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		m := 4 + rng.Intn(20)
		n := m + rng.Intn(200)
		q := make([]float64, m)
		ts := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range ts {
			ts[i] = rng.NormFloat64()
		}
		got, err := DistanceProfile(q, ts)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveProfile(q, ts)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: profile[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTopMatchFindsPlantedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = rng.NormFloat64()
	}
	// Plant a sine burst at index 200.
	q := make([]float64, 40)
	for i := range q {
		q[i] = math.Sin(float64(i) * 0.4)
	}
	copy(ts[200:], q)
	match, err := TopMatch(q, ts)
	if err != nil {
		t.Fatal(err)
	}
	if match.Index != 200 {
		t.Errorf("match at %d, want 200", match.Index)
	}
	if match.Distance > 1e-6 {
		t.Errorf("exact match distance = %v", match.Distance)
	}
}

func TestTopMatchScaleInvariance(t *testing.T) {
	// z-normalisation makes MASS invariant to amplitude and offset of the
	// planted pattern.
	rng := rand.New(rand.NewSource(9))
	n := 400
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = rng.NormFloat64()
	}
	q := make([]float64, 30)
	for i := range q {
		q[i] = math.Sin(float64(i) * 0.5)
	}
	for i := range q {
		ts[150+i] = 5*q[i] + 20 // scaled and shifted occurrence
	}
	match, err := TopMatch(q, ts)
	if err != nil {
		t.Fatal(err)
	}
	if match.Index != 150 || match.Distance > 1e-6 {
		t.Errorf("scaled match = %+v", match)
	}
}

func TestDistanceProfileDegenerateWindows(t *testing.T) {
	q := []float64{1, 2, 3}
	ts := []float64{5, 5, 5, 1, 2, 3, 9, 9, 9}
	prof, err := DistanceProfile(q, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(prof[0], 1) {
		t.Error("constant window must have +Inf distance")
	}
	if prof[3] > 1e-9 {
		t.Errorf("exact occurrence distance = %v", prof[3])
	}
}

func TestDistanceProfileErrors(t *testing.T) {
	if _, err := DistanceProfile([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("too-short query must fail")
	}
	if _, err := DistanceProfile([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("query longer than series must fail")
	}
	if _, err := DistanceProfile([]float64{2, 2, 2}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("constant query must fail")
	}
	if _, err := TopMatch([]float64{1, 2}, []float64{3, 3, 3}); err == nil {
		t.Error("all-degenerate profile must fail TopMatch")
	}
}

func TestProfileNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(12)
		n := m + rng.Intn(120)
		q := make([]float64, m)
		ts := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range ts {
			ts[i] = rng.NormFloat64()
		}
		prof, err := DistanceProfile(q, ts)
		if err != nil {
			return false
		}
		for _, d := range prof {
			if d < 0 || math.IsNaN(d) {
				return false
			}
			// Upper bound for z-normalised distance is 2√m.
			if !math.IsInf(d, 1) && d > 2*math.Sqrt(float64(m))+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
