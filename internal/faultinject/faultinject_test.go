package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInertWhenUnarmed(t *testing.T) {
	Clear()
	if err := Fire("anything"); err != nil {
		t.Fatalf("unarmed Fire returned %v", err)
	}
}

func TestErrorInjectionAndTimes(t *testing.T) {
	defer Clear()
	boom := errors.New("boom")
	Set("a/b", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("a/b"); !errors.Is(err, boom) {
			t.Fatalf("fire %d: %v", i, err)
		}
	}
	if err := Fire("a/b"); err != nil {
		t.Fatalf("fault fired past its Times budget: %v", err)
	}
	if Fired("a/b") != 2 {
		t.Errorf("Fired = %d, want 2", Fired("a/b"))
	}
	if err := Fire("other"); err != nil {
		t.Errorf("unkeyed Fire returned %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	defer Clear()
	Set("p", Fault{Panic: "kaboom"})
	defer func() {
		if r := recover(); r == nil {
			t.Error("no panic fired")
		}
	}()
	Fire("p")
}

func TestDelayInjection(t *testing.T) {
	defer Clear()
	Set("slow", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Fire("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("Fire returned after %v, want ≥ 30ms", d)
	}
}

func TestAfterSkipsLeadingCalls(t *testing.T) {
	defer Clear()
	boom := errors.New("boom")
	Set("late", Fault{Err: boom, After: 2, Times: 1})
	for i := 0; i < 2; i++ {
		if err := Fire("late"); err != nil {
			t.Fatalf("fire %d inside the After window: %v", i, err)
		}
	}
	if err := Fire("late"); !errors.Is(err, boom) {
		t.Fatalf("third fire: %v, want injected error", err)
	}
	if err := Fire("late"); err != nil {
		t.Fatalf("fault fired past its Times budget: %v", err)
	}
	if Fired("late") != 1 {
		t.Errorf("Fired = %d, want 1", Fired("late"))
	}
}

func TestEnabledTracksArming(t *testing.T) {
	Clear()
	if Enabled() {
		t.Fatal("Enabled on a cleared registry")
	}
	Set("k", Fault{})
	if !Enabled() {
		t.Error("Enabled false after Set")
	}
	Clear()
	if Enabled() {
		t.Error("Enabled true after Clear")
	}
}

func TestArmFromEnv(t *testing.T) {
	defer Clear()
	t.Setenv("TYCOS_FAULTS_TEST", "a/b=err=transient,after=1,times=2; c=delay=10ms")
	if err := ArmFromEnv("TYCOS_FAULTS_TEST"); err != nil {
		t.Fatal(err)
	}
	if err := Fire("a/b"); err != nil {
		t.Fatalf("fire inside After window: %v", err)
	}
	if err := Fire("a/b"); err == nil || !strings.Contains(err.Error(), "transient") || Fired("a/b") != 1 {
		t.Fatalf("second fire: err=%v fired=%d, want injected error once", err, Fired("a/b"))
	}
	start := time.Now()
	if err := Fire("c"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delay directive not applied (returned after %v)", d)
	}
}

func TestArmFromEnvRejectsMalformedSpecs(t *testing.T) {
	defer Clear()
	for _, spec := range []string{"nokey", "=err=x", "k=unknownverb", "k=delay=notaduration", "k=after=x"} {
		Clear()
		t.Setenv("TYCOS_FAULTS_TEST", spec)
		if err := ArmFromEnv("TYCOS_FAULTS_TEST"); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
		if Enabled() {
			t.Errorf("spec %q armed the registry despite the error", spec)
		}
	}
}

func TestArmFromEnvUnsetIsNoop(t *testing.T) {
	Clear()
	t.Setenv("TYCOS_FAULTS_TEST", "")
	if err := ArmFromEnv("TYCOS_FAULTS_TEST"); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("empty spec armed the registry")
	}
}

func TestClearDisarms(t *testing.T) {
	Set("x", Fault{Panic: "nope"})
	Clear()
	if err := Fire("x"); err != nil {
		t.Fatalf("Fire after Clear: %v", err)
	}
	if Fired("x") != 0 {
		t.Errorf("Fired after Clear = %d", Fired("x"))
	}
}
