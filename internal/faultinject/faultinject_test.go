package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestInertWhenUnarmed(t *testing.T) {
	Clear()
	if err := Fire("anything"); err != nil {
		t.Fatalf("unarmed Fire returned %v", err)
	}
}

func TestErrorInjectionAndTimes(t *testing.T) {
	defer Clear()
	boom := errors.New("boom")
	Set("a/b", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("a/b"); !errors.Is(err, boom) {
			t.Fatalf("fire %d: %v", i, err)
		}
	}
	if err := Fire("a/b"); err != nil {
		t.Fatalf("fault fired past its Times budget: %v", err)
	}
	if Fired("a/b") != 2 {
		t.Errorf("Fired = %d, want 2", Fired("a/b"))
	}
	if err := Fire("other"); err != nil {
		t.Errorf("unkeyed Fire returned %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	defer Clear()
	Set("p", Fault{Panic: "kaboom"})
	defer func() {
		if r := recover(); r == nil {
			t.Error("no panic fired")
		}
	}()
	Fire("p")
}

func TestDelayInjection(t *testing.T) {
	defer Clear()
	Set("slow", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Fire("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("Fire returned after %v, want ≥ 30ms", d)
	}
}

func TestClearDisarms(t *testing.T) {
	Set("x", Fault{Panic: "nope"})
	Clear()
	if err := Fire("x"); err != nil {
		t.Fatalf("Fire after Clear: %v", err)
	}
	if Fired("x") != 0 {
		t.Errorf("Fired after Clear = %d", Fired("x"))
	}
}
