// Package faultinject is a test-only fault registry used to exercise the
// robustness paths of multi-pair sweeps and the tycosd daemon: panics,
// errors, slowdowns and hard kills keyed off injection-point names.
// Production code calls Fire at its injection points; the call is inert (a
// single atomic load) unless a test has armed the registry with Set or
// ArmFromEnv, so the hook costs nothing outside tests.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes the behaviour injected for one key. Delay is applied
// first, then Kill, then Panic, then Err; a zero Fault is a no-op.
type Fault struct {
	// Panic, when non-empty, makes Fire panic with this message.
	Panic string
	// Err, when non-nil, is returned (wrapped) by Fire.
	Err error
	// Delay is slept before killing/panicking/returning.
	Delay time.Duration
	// Kill, when set, makes Fire SIGKILL the calling process — the chaos
	// harness's "the machine died at exactly this instant" primitive. Fire
	// never returns from a kill point.
	Kill bool
	// Times limits how many Fire calls trigger the fault; afterwards the
	// key behaves as if no fault were set. 0 means every call triggers.
	Times int
	// After skips the first After Fire calls for the key before the fault
	// starts triggering, so a chaos test can let a prefix of the workload
	// succeed and die mid-sweep rather than at the first touch.
	After int
}

type entry struct {
	fault Fault
	calls int // Fire calls observed for this key
	fired int // Fire calls that actually triggered
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	table map[string]*entry
)

// Set arms the registry and installs (or replaces) the fault for key,
// resetting its call and fired counts.
func Set(key string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[string]*entry)
	}
	table[key] = &entry{fault: f}
	armed.Store(true)
}

// Clear disarms the registry and removes every fault. Tests should defer it.
func Clear() {
	mu.Lock()
	defer mu.Unlock()
	table = nil
	armed.Store(false)
}

// Enabled reports whether any fault is armed. Production code can consult it
// to keep chaos-only slow paths (e.g. two-phase torn-write journaling) off
// the hot path; like Fire's fast path it is a single atomic load.
func Enabled() bool { return armed.Load() }

// Fired reports how many times the fault for key has triggered.
func Fired(key string) int {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := table[key]; ok {
		return e.fired
	}
	return 0
}

// Fire triggers the fault registered for key, if any: it sleeps Delay, then
// kills the process, panics or returns the configured error. With no armed
// fault it returns nil immediately.
func Fire(key string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	e, ok := table[key]
	if !ok {
		mu.Unlock()
		return nil
	}
	e.calls++
	if e.calls <= e.fault.After || (e.fault.Times > 0 && e.fired >= e.fault.Times) {
		mu.Unlock()
		return nil
	}
	e.fired++
	f := e.fault
	mu.Unlock()
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Kill {
		kill()
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	if f.Err != nil {
		return fmt.Errorf("faultinject: %s: %w", key, f.Err)
	}
	return nil
}

// kill SIGKILLs the calling process and never returns: a kill point models a
// machine dying at that instant, so no deferred cleanup may run after it.
func kill() {
	if p, err := os.FindProcess(os.Getpid()); err == nil {
		p.Kill()
	}
	// SIGKILL delivery is asynchronous; block until it lands rather than
	// letting the caller proceed past its own death.
	select {}
}

// ArmFromEnv arms the registry from the named environment variable, so a
// chaos harness can inject faults into a forked subprocess it cannot call
// Set in. An empty or unset variable is a no-op. The spec grammar is
//
//	key=directive[,directive...][;key=...]
//
// with directives kill, panic=<msg>, err=<msg>, delay=<duration>,
// after=<n> and times=<n>; for example
//
//	TYCOS_FAULTS='checkpoint/record.torn=kill,after=2'
//
// kills the process at the third torn-write injection point. A malformed
// spec returns an error and arms nothing.
func ArmFromEnv(name string) error {
	spec := os.Getenv(name)
	if spec == "" {
		return nil
	}
	faults := make(map[string]Fault)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, directives, ok := strings.Cut(part, "=")
		if !ok || key == "" {
			return fmt.Errorf("faultinject: %s: malformed fault %q (want key=directive,...)", name, part)
		}
		var f Fault
		for _, d := range strings.Split(directives, ",") {
			verb, arg, _ := strings.Cut(d, "=")
			switch verb {
			case "kill":
				f.Kill = true
			case "panic":
				f.Panic = arg
			case "err":
				f.Err = fmt.Errorf("%s", arg)
			case "delay":
				dur, err := time.ParseDuration(arg)
				if err != nil {
					return fmt.Errorf("faultinject: %s: bad delay %q: %v", name, arg, err)
				}
				f.Delay = dur
			case "after":
				n, err := strconv.Atoi(arg)
				if err != nil {
					return fmt.Errorf("faultinject: %s: bad after %q: %v", name, arg, err)
				}
				f.After = n
			case "times":
				n, err := strconv.Atoi(arg)
				if err != nil {
					return fmt.Errorf("faultinject: %s: bad times %q: %v", name, arg, err)
				}
				f.Times = n
			default:
				return fmt.Errorf("faultinject: %s: unknown directive %q in %q", name, verb, part)
			}
		}
		faults[key] = f
	}
	for k, f := range faults {
		Set(k, f)
	}
	return nil
}
