// Package faultinject is a test-only fault registry used to exercise the
// robustness paths of multi-pair sweeps: panics, errors and slowdowns keyed
// off pair names. Production code calls Fire at its injection points; the
// call is inert (a single atomic load) unless a test has armed the registry
// with Set, so the hook costs nothing outside tests.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes the behaviour injected for one key. Delay is applied
// first, then Panic, then Err; a zero Fault is a no-op.
type Fault struct {
	// Panic, when non-empty, makes Fire panic with this message.
	Panic string
	// Err, when non-nil, is returned (wrapped) by Fire.
	Err error
	// Delay is slept before panicking/returning.
	Delay time.Duration
	// Times limits how many Fire calls trigger the fault; afterwards the
	// key behaves as if no fault were set. 0 means every call triggers.
	Times int
}

type entry struct {
	fault Fault
	fired int
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	table map[string]*entry
)

// Set arms the registry and installs (or replaces) the fault for key,
// resetting its fired count.
func Set(key string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[string]*entry)
	}
	table[key] = &entry{fault: f}
	armed.Store(true)
}

// Clear disarms the registry and removes every fault. Tests should defer it.
func Clear() {
	mu.Lock()
	defer mu.Unlock()
	table = nil
	armed.Store(false)
}

// Fired reports how many times the fault for key has triggered.
func Fired(key string) int {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := table[key]; ok {
		return e.fired
	}
	return 0
}

// Fire triggers the fault registered for key, if any: it sleeps Delay, then
// panics or returns the configured error. With no armed fault it returns nil
// immediately.
func Fire(key string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	e, ok := table[key]
	if !ok || (e.fault.Times > 0 && e.fired >= e.fault.Times) {
		mu.Unlock()
		return nil
	}
	e.fired++
	f := e.fault
	mu.Unlock()
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != "" {
		panic("faultinject: " + f.Panic)
	}
	if f.Err != nil {
		return fmt.Errorf("faultinject: %s: %w", key, f.Err)
	}
	return nil
}
