package matrixprofile

import (
	"math"
	"math/rand"
	"testing"
)

func noise(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestABJoinFindsSharedMotif(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := noise(rng, 300)
	b := noise(rng, 300)
	// Plant the same pattern in both series at different offsets.
	for i := 0; i < 40; i++ {
		v := math.Sin(float64(i) * 0.3)
		a[100+i] = v
		b[220+i] = v
	}
	p, err := ABJoin(a, b, 40)
	if err != nil {
		t.Fatal(err)
	}
	motif, err := p.BestMotif()
	if err != nil {
		t.Fatal(err)
	}
	if motif.AIndex != 100 || motif.BIndex != 220 {
		t.Errorf("motif at (%d,%d), want (100,220)", motif.AIndex, motif.BIndex)
	}
	if motif.Distance > 1e-6 {
		t.Errorf("planted motif distance = %v", motif.Distance)
	}
}

func TestABJoinDetectsDelayedLinearButNotQuadratic(t *testing.T) {
	// The Table 1 behaviour: a delayed linear copy is a similarity match
	// (z-normalisation erases slope and offset), a delayed quadratic map is
	// not.
	rng := rand.New(rand.NewSource(5))
	n := 400
	x := noise(rng, n)
	// Smooth x so subsequences have shape (similarity needs structure).
	for i := 1; i < n; i++ {
		x[i] = 0.8*x[i-1] + 0.2*x[i]
	}
	delay := 30
	linY := noise(rng, n)
	quadY := noise(rng, n)
	for i := 100; i < 220; i++ {
		linY[i+delay] = 2*x[i] + 1
		quadY[i+delay] = x[i] * x[i]
	}
	m := 60
	lin, err := ABJoin(x, linY, m)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := ABJoin(x, quadY, m)
	if err != nil {
		t.Fatal(err)
	}
	if lin.MinDist() > 1e-6 {
		t.Errorf("delayed linear copy min dist = %v, want ≈0", lin.MinDist())
	}
	if quad.MinDist() < 1 {
		t.Errorf("delayed quadratic min dist = %v, want clearly non-zero", quad.MinDist())
	}
	if lin.NormalizedMinDist() >= quad.NormalizedMinDist() {
		t.Error("normalized distances must rank linear below quadratic")
	}
}

func TestABJoinIndicesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := noise(rng, 120)
	b := noise(rng, 150)
	m := 20
	p, err := ABJoin(a, b, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Dist) != len(a)-m+1 || len(p.Index) != len(p.Dist) {
		t.Fatalf("profile lengths: %d, %d", len(p.Dist), len(p.Index))
	}
	for i, j := range p.Index {
		if j < 0 || j > len(b)-m {
			t.Errorf("index[%d] = %d out of range", i, j)
		}
	}
}

func TestABJoinDegenerateWindows(t *testing.T) {
	a := []float64{1, 1, 1, 1, 2, 3, 4, 5}
	b := []float64{5, 4, 3, 2, 1, 0, -1, -2}
	p, err := ABJoin(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Dist[0], 1) || p.Index[0] != -1 {
		t.Error("constant A-window must be +Inf / -1")
	}
	// All-degenerate profile: BestMotif fails.
	flat := []float64{2, 2, 2, 2, 2}
	pf, err := ABJoin(flat, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.BestMotif(); err == nil {
		t.Error("all-degenerate profile must fail BestMotif")
	}
	if !math.IsInf(pf.MinDist(), 1) {
		t.Error("all-degenerate MinDist must be +Inf")
	}
}

func TestABJoinErrors(t *testing.T) {
	if _, err := ABJoin([]float64{1, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("m=1 must fail")
	}
	if _, err := ABJoin([]float64{1, 2}, []float64{1, 2, 3}, 3); err == nil {
		t.Error("m exceeding |a| must fail")
	}
}
