// Package matrixprofile implements the matrix profile AB-join of Yeh et al.
// (ICDM 2016), the similarity-join baseline of the paper: for every
// subsequence of A, the z-normalised Euclidean distance to its nearest
// neighbour among the subsequences of B. Because the join compares every
// offset pair, MatrixProfile can match shifted (delayed) subsequences —
// which is why Table 1 shows it detecting linear relations under delay while
// PCC and MASS cannot — but similarity is not correlation, so it still
// misses the non-linear relations.
//
// The implementation is the STAMP-style repeated-MASS join: O(n² log n)
// overall, O(n) memory, FFT-accelerated per row.
package matrixprofile

import (
	"fmt"
	"math"

	"tycos/internal/mass"
)

// Profile holds an AB-join matrix profile: for each start index i of a
// window of A, Dist[i] is the smallest z-normalised distance to any window
// of B and Index[i] is that window's start in B.
type Profile struct {
	WindowLen int
	Dist      []float64
	Index     []int
}

// ABJoin computes the AB-join matrix profile of a against b with subsequence
// length m.
func ABJoin(a, b []float64, m int) (*Profile, error) {
	if m < 2 {
		return nil, fmt.Errorf("matrixprofile: window length %d too short", m)
	}
	if m > len(a) || m > len(b) {
		return nil, fmt.Errorf("matrixprofile: window length %d exceeds series (|a|=%d, |b|=%d)", m, len(a), len(b))
	}
	na := len(a) - m + 1
	p := &Profile{
		WindowLen: m,
		Dist:      make([]float64, na),
		Index:     make([]int, na),
	}
	for i := 0; i < na; i++ {
		q := a[i : i+m]
		//lint:allow floateq exact zero-variance sentinel: constant subsequences are excluded, near-constant ones are legitimate
		if _, sigma := meanStd(q); sigma == 0 {
			p.Dist[i] = math.Inf(1)
			p.Index[i] = -1
			continue
		}
		prof, err := mass.DistanceProfile(q, b)
		if err != nil {
			return nil, err
		}
		best, bestAt := math.Inf(1), -1
		for j, d := range prof {
			if d < best {
				best, bestAt = d, j
			}
		}
		p.Dist[i] = best
		p.Index[i] = bestAt
	}
	return p, nil
}

// Motif is the best-matching subsequence pair of an AB-join.
type Motif struct {
	AIndex, BIndex int
	Distance       float64
}

// BestMotif returns the globally closest subsequence pair of the profile.
func (p *Profile) BestMotif() (Motif, error) {
	best := Motif{AIndex: -1, BIndex: -1, Distance: math.Inf(1)}
	for i, d := range p.Dist {
		if d < best.Distance {
			best = Motif{AIndex: i, BIndex: p.Index[i], Distance: d}
		}
	}
	if best.AIndex < 0 {
		return Motif{}, fmt.Errorf("matrixprofile: profile has no finite distances")
	}
	return best, nil
}

// MinDist returns the smallest distance in the profile (+Inf when the
// profile is all-degenerate).
func (p *Profile) MinDist() float64 {
	best := math.Inf(1)
	for _, d := range p.Dist {
		if d < best {
			best = d
		}
	}
	return best
}

// NormalizedMinDist rescales MinDist by the maximum possible z-normalised
// distance 2·√m, giving a scale-free [0, 1] score for cross-window-length
// comparisons (0 = perfect match).
func (p *Profile) NormalizedMinDist() float64 {
	return p.MinDist() / (2 * math.Sqrt(float64(p.WindowLen)))
}

func meanStd(v []float64) (mu, sigma float64) {
	n := float64(len(v))
	var s float64
	for _, x := range v {
		s += x
	}
	mu = s / n
	var ss float64
	for _, x := range v {
		d := x - mu
		ss += d * d
	}
	return mu, math.Sqrt(ss / n)
}
