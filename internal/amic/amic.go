// Package amic implements the Adaptive Mutual-Information-based Correlation
// framework (Ho et al., IEEE Trans. Big Data 2019), the authors' own
// predecessor to TYCOS and the final baseline of the effectiveness
// evaluation. AMIC searches top-down: it scores the whole pair, and windows
// that fail the threshold are bisected recursively until the minimum size,
// so correlations surface at the coarsest scale at which they hold.
//
// Crucially, AMIC has no time-delay dimension — every window is evaluated at
// τ = 0 — which is why Table 1 shows it detecting every relation type when
// td = 0 and none of them when the series are shifted, and why Table 3 shows
// it missing every delayed household/city correlation.
package amic

import (
	"tycos/internal/mi"
	"tycos/internal/series"
	"tycos/internal/window"
)

// Options configures an AMIC search.
type Options struct {
	// SMin is the smallest window worth scoring (and the recursion floor).
	SMin int
	// SMax caps the window size: larger spans are split without scoring.
	SMax int
	// Sigma is the correlation threshold on the normalized MI.
	Sigma float64
	// K is the KSG neighbour count (0 → mi.DefaultK).
	K int
	// Normalization scales the score. Pass mi.NormMaxEntropy to make Sigma
	// directly comparable with the TYCOS defaults; the zero value reports
	// raw MI.
	Normalization mi.Normalization
}

// Search runs the top-down AMIC recursion over the pair and returns the
// accepted windows (all with Delay 0), ordered by start index.
func Search(p series.Pair, opts Options) ([]window.Scored, error) {
	if opts.K <= 0 {
		opts.K = mi.DefaultK
	}
	if opts.SMin <= opts.K {
		opts.SMin = opts.K + 1
	}
	if opts.SMax <= 0 || opts.SMax > p.Len() {
		opts.SMax = p.Len()
	}
	est := mi.NewKSG(opts.K, mi.BackendKDTree)
	var out []window.Scored
	var walk func(start, end int)
	walk = func(start, end int) {
		size := end - start + 1
		if size < opts.SMin {
			return
		}
		if size <= opts.SMax {
			xs := p.X.Values[start : end+1]
			ys := p.Y.Values[start : end+1]
			raw, err := est.Estimate(xs, ys)
			if err == nil {
				score := mi.Normalize(raw, xs, ys, opts.Normalization)
				if score >= opts.Sigma {
					out = append(out, window.Scored{
						Window: window.Window{Start: start, End: end},
						MI:     score,
					})
					return
				}
			}
		}
		if size < 2*opts.SMin {
			return // halves would fall below the floor
		}
		mid := start + size/2
		walk(start, mid-1)
		walk(mid, end)
	}
	walk(0, p.Len()-1)
	return out, nil
}
