package amic

import (
	"math"
	"math/rand"
	"testing"

	"tycos/internal/mi"
	"tycos/internal/series"
	"tycos/internal/window"
)

func pairWithSegment(seed int64, n, segStart, segEnd, delay int) series.Pair {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := segStart; i <= segEnd; i++ {
		y[i+delay] = x[i] + 0.05*rng.NormFloat64()
	}
	return series.MustPair(series.New("x", x), series.New("y", y))
}

func TestAMICFindsAlignedCorrelation(t *testing.T) {
	p := pairWithSegment(3, 512, 128, 255, 0)
	ws, err := Search(p, Options{SMin: 16, Sigma: 0.25, Normalization: mi.NormMaxEntropy})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("AMIC found nothing")
	}
	seg := window.Window{Start: 128, End: 255}
	found := false
	for _, w := range ws {
		if w.Delay != 0 {
			t.Errorf("AMIC produced a delayed window %v", w)
		}
		if w.OverlapX(seg) > 40 {
			found = true
		}
	}
	if !found {
		t.Errorf("aligned segment not found: %v", ws)
	}
}

func TestAMICMissesDelayedCorrelation(t *testing.T) {
	// The defining limitation (Table 1 right half, Table 3 ✗ entries).
	p := pairWithSegment(5, 512, 128, 255, 40)
	ws, err := Search(p, Options{SMin: 16, Sigma: 0.3, Normalization: mi.NormMaxEntropy})
	if err != nil {
		t.Fatal(err)
	}
	seg := window.Window{Start: 128, End: 255}
	for _, w := range ws {
		if w.OverlapX(seg) > 60 && w.MI > 0.5 {
			t.Errorf("AMIC should not confidently detect the delayed segment: %v", w)
		}
	}
}

func TestAMICDetectsNonlinearRelation(t *testing.T) {
	// Unlike PCC/MASS/MatrixProfile, AMIC is MI-based and sees a circle.
	rng := rand.New(rand.NewSource(9))
	n := 512
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := 128; i < 384; i++ {
		theta := rng.Float64() * 2 * 3.14159265
		x[i] = 3 * cos(theta)
		y[i] = 3*sin(theta) + 0.05*rng.NormFloat64()
	}
	p := series.MustPair(series.New("x", x), series.New("y", y))
	ws, err := Search(p, Options{SMin: 16, Sigma: 0.2, Normalization: mi.NormMaxEntropy})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range ws {
		if w.OverlapX(window.Window{Start: 128, End: 383}) > 60 {
			found = true
		}
	}
	if !found {
		t.Errorf("circle relation not found: %v", ws)
	}
}

func TestAMICRespectsSizeBounds(t *testing.T) {
	p := pairWithSegment(11, 400, 0, 399, 0) // fully correlated pair
	ws, err := Search(p, Options{SMin: 16, SMax: 100, Sigma: 0.2, Normalization: mi.NormMaxEntropy})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("nothing found on fully correlated pair")
	}
	for _, w := range ws {
		if w.Size() > 100 {
			t.Errorf("window %v exceeds SMax", w)
		}
		if w.Size() < 16 {
			t.Errorf("window %v below SMin", w)
		}
	}
}

func TestAMICDefaults(t *testing.T) {
	p := pairWithSegment(13, 64, 0, 63, 0)
	// K defaulting and SMin floor: SMin below k is raised.
	ws, err := Search(p, Options{SMin: 2, Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Error("zero threshold should accept the root window")
	}
}

func cos(x float64) float64 { return math.Cos(x) }

func sin(x float64) float64 { return math.Sin(x) }
