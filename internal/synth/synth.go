// Package synth generates the synthetic workloads of the paper's
// effectiveness evaluation: the nine relation types of Table 1 (linear and
// non-linear, monotonic and non-monotonic, functional and non-functional),
// composite time-series pairs embedding those relations between stretches of
// independent noise with configurable time delays, and autocorrelated pairs
// for the runtime experiments (Synthetic 1–3 of Fig. 9).
//
// All generators are deterministic given a seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"tycos/internal/series"
)

// Relation enumerates the y = f(x) relation types of Table 1.
type Relation int

const (
	// RelIndependent draws x ~ N(3, 5) and y ~ N(0, 1) independently.
	RelIndependent Relation = iota
	// RelLinear is y = 2x + u on x ∈ [0, 10].
	RelLinear
	// RelExp is y = 0.01^(x+u) on x ∈ [−10, 10].
	RelExp
	// RelQuad is y = x² + u on x ∈ [−4, 4].
	RelQuad
	// RelCircle is y = ±√(3² − x² + u) on x ∈ [−3, 3] (non-functional).
	RelCircle
	// RelSine is y = 2·sin(x) + u on x ∈ [0, 10].
	RelSine
	// RelCross alternates y = x + u and y = −x + u on x ∈ [−5, 5]
	// (non-functional).
	RelCross
	// RelQuartic is y = x⁴ − 4x³ + 4x² + x + u on x ∈ [−1, 3].
	RelQuartic
	// RelSqrt is y = √x on x ∈ [0, 25] (no added noise, as in the paper).
	RelSqrt
)

// Relations lists every relation type in Table 1 order.
var Relations = []Relation{
	RelIndependent, RelLinear, RelExp, RelQuad, RelCircle,
	RelSine, RelCross, RelQuartic, RelSqrt,
}

// String returns the Table 1 row label.
func (r Relation) String() string {
	switch r {
	case RelIndependent:
		return "Independent"
	case RelLinear:
		return "Linear"
	case RelExp:
		return "Exp."
	case RelQuad:
		return "Quad."
	case RelCircle:
		return "Circle"
	case RelSine:
		return "Sine"
	case RelCross:
		return "Cross"
	case RelQuartic:
		return "Quartic"
	case RelSqrt:
		return "Square root"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Dependent reports whether the relation carries actual dependence (every
// type except RelIndependent).
func (r Relation) Dependent() bool { return r != RelIndependent }

// Generate draws n samples of the relation. The x values follow an AR(1)
// drift mapped into the relation's domain: real sensors move smoothly
// through their operating range (which gives the sequences the temporal
// shape the similarity baselines need), yet the process decorrelates within
// ~30 lags, so a time-shifted copy of the relation is NOT detectable at the
// wrong alignment — the property Table 1's delayed columns depend on.
// u ~ U(0, 1) is the paper's additive noise.
func Generate(r Relation, n int, rng *rand.Rand) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	lo, hi := r.domain()
	span := hi - lo
	// AR(1) with φ = 0.9: stationary std ≈ 2.29, correlation half-life ≈ 7
	// lags, negligible beyond ~50.
	drift := make([]float64, n)
	ar := rng.NormFloat64()
	minD, maxD := ar, ar
	for i := 0; i < n; i++ {
		ar = 0.9*ar + rng.NormFloat64()
		drift[i] = ar
		if ar < minD {
			minD = ar
		}
		if ar > maxD {
			maxD = ar
		}
	}
	scale := 0.0
	if maxD > minD {
		scale = 1 / (maxD - minD)
	}
	for i := 0; i < n; i++ {
		xv := lo + (drift[i]-minD)*scale*span
		u := rng.Float64()
		x[i] = xv
		switch r {
		case RelIndependent:
			x[i] = 3 + 5*rng.NormFloat64()
			y[i] = rng.NormFloat64()
		case RelLinear:
			y[i] = 2*xv + u
		case RelExp:
			y[i] = math.Pow(0.01, xv+u)
		case RelQuad:
			y[i] = xv*xv + u
		case RelCircle:
			v := 9 - xv*xv + u
			if v < 0 {
				v = 0
			}
			y[i] = math.Sqrt(v)
			if rng.Intn(2) == 0 {
				y[i] = -y[i]
			}
		case RelSine:
			y[i] = 2*math.Sin(xv) + u
		case RelCross:
			if i%2 == 0 {
				y[i] = xv + u
			} else {
				y[i] = -xv + u
			}
		case RelQuartic:
			y[i] = xv*xv*xv*xv - 4*xv*xv*xv + 4*xv*xv + xv + u
		case RelSqrt:
			y[i] = math.Sqrt(xv)
		}
	}
	return x, y
}

func (r Relation) domain() (lo, hi float64) {
	switch r {
	case RelLinear:
		return 0, 10
	case RelExp:
		return -10, 10
	case RelQuad:
		return -4, 4
	case RelCircle:
		return -3, 3
	case RelSine:
		return 0, 10
	case RelCross:
		return -5, 5
	case RelQuartic:
		return -1, 3
	case RelSqrt:
		return 0, 25
	default:
		return 0, 1
	}
}

// Segment records where a relation was embedded in a composite pair: the X
// interval [Start, End] and the delay at which the matching Y events occur.
type Segment struct {
	Rel   Relation
	Start int
	End   int
	Delay int
}

// Composite is a generated pair with ground truth.
type Composite struct {
	Pair     series.Pair
	Segments []Segment
}

// Compose builds a time-series pair that embeds the given relations in
// order, each spanning segLen samples and followed by sepLen samples of
// independent noise; delay shifts each relation's Y events forward. Both
// series are standardised per segment so no single relation's scale
// dominates. sepLen must exceed delay so delayed events stay inside their
// separator.
func Compose(rels []Relation, segLen, sepLen, delay int, seed int64) (Composite, error) {
	if segLen < 2 {
		return Composite{}, fmt.Errorf("synth: segment length %d too short", segLen)
	}
	if delay < 0 || delay >= sepLen {
		return Composite{}, fmt.Errorf("synth: delay %d must lie in [0, sepLen=%d)", delay, sepLen)
	}
	rng := rand.New(rand.NewSource(seed))
	n := sepLen + len(rels)*(segLen+sepLen)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	var segs []Segment
	pos := sepLen
	for _, rel := range rels {
		xs, ys := Generate(rel, segLen, rng)
		zx := series.ZNormalize(xs)
		zy := series.ZNormalize(ys)
		for i := 0; i < segLen; i++ {
			x[pos+i] = zx[i]
			y[pos+i+delay] = zy[i]
		}
		segs = append(segs, Segment{Rel: rel, Start: pos, End: pos + segLen - 1, Delay: delay})
		pos += segLen + sepLen
	}
	p, err := series.NewPair(series.New("x", x), series.New("y", y))
	if err != nil {
		return Composite{}, err
	}
	return Composite{Pair: p, Segments: segs}, nil
}

// CorrelatedAR generates a pair of length n for the runtime experiments:
// both series are AR(1) noise, with numSegments stretches in which y follows
// x (optionally delayed), giving the search realistic structure to find. The
// returned segments are the ground truth.
func CorrelatedAR(n, numSegments, segLen, maxDelay int, seed int64) (Composite, error) {
	if segLen < 2 || n < numSegments*(segLen+maxDelay+2) {
		return Composite{}, fmt.Errorf("synth: n=%d too small for %d segments of %d (+delay %d)", n, numSegments, segLen, maxDelay)
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	// φ = 0.9 gives the driver realistic persistence (correlation half-life
	// ≈ 7 lags): delayed couplings stay partially visible at τ = 0, which is
	// what lets the τ=0-anchored initial noise pruning of TYCOS_LN find
	// them, exactly as on real sensor data.
	var ax, ay float64
	for i := 0; i < n; i++ {
		ax = 0.9*ax + rng.NormFloat64()
		ay = 0.9*ay + rng.NormFloat64()
		x[i] = ax
		y[i] = ay
	}
	var segs []Segment
	gap := n / max(numSegments, 1)
	for s := 0; s < numSegments; s++ {
		start := s*gap + gap/4
		end := start + segLen - 1
		delay := 0
		if maxDelay > 0 {
			delay = rng.Intn(maxDelay + 1)
		}
		if end+delay >= n {
			break
		}
		for i := start; i <= end; i++ {
			y[i+delay] = x[i] + 0.1*rng.NormFloat64()
		}
		segs = append(segs, Segment{Rel: RelLinear, Start: start, End: end, Delay: delay})
	}
	p, err := series.NewPair(series.New("x", x), series.New("y", y))
	if err != nil {
		return Composite{}, err
	}
	return Composite{Pair: p, Segments: segs}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
