package synth

import (
	"math"
	"math/rand"
	"testing"

	"tycos/internal/baseline"
	"tycos/internal/mi"
)

func TestGenerateDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range Relations {
		x, y := Generate(r, 500, rng)
		if len(x) != 500 || len(y) != 500 {
			t.Fatalf("%v: wrong lengths", r)
		}
		if r == RelIndependent {
			continue
		}
		lo, hi := r.domain()
		for i, v := range x {
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Errorf("%v: x[%d]=%v outside [%v,%v]", r, i, v, lo, hi)
				break
			}
		}
		for _, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v: non-finite y", r)
			}
		}
	}
}

func TestGeneratedRelationsCarryMI(t *testing.T) {
	// Every dependent relation must have clearly higher KSG MI than the
	// independent control — that is the premise of the whole paper.
	rng := rand.New(rand.NewSource(3))
	est := mi.NewKSG(4, mi.BackendKDTree)
	xi, yi := Generate(RelIndependent, 800, rng)
	base, err := est.Estimate(xi, yi)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Relations {
		if !r.Dependent() {
			continue
		}
		x, y := Generate(r, 800, rng)
		got, err := est.Estimate(x, y)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if got < base+0.5 {
			t.Errorf("%v: MI = %.3f not clearly above independent %.3f", r, got, base)
		}
	}
}

func TestPCCBlindToNonMonotone(t *testing.T) {
	// Sanity: the generated quad/circle/sine relations indeed defeat PCC,
	// otherwise Table 1 would be vacuous.
	rng := rand.New(rand.NewSource(5))
	for _, r := range []Relation{RelQuad, RelCircle, RelCross} {
		x, y := Generate(r, 1000, rng)
		if got := math.Abs(baseline.Pearson(x, y)); got > 0.3 {
			t.Errorf("%v: |r| = %.3f, expected PCC-blind relation", r, got)
		}
	}
}

func TestRelationStrings(t *testing.T) {
	if RelSqrt.String() != "Square root" || RelExp.String() != "Exp." {
		t.Error("labels must match Table 1")
	}
	if Relation(99).String() == "" {
		t.Error("unknown relation needs a fallback label")
	}
}

func TestComposeGroundTruth(t *testing.T) {
	rels := []Relation{RelLinear, RelSine}
	c, err := Compose(rels, 100, 60, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 60 + 2*(100+60)
	if c.Pair.Len() != wantLen {
		t.Fatalf("composite length = %d, want %d", c.Pair.Len(), wantLen)
	}
	if len(c.Segments) != 2 {
		t.Fatalf("segments = %d", len(c.Segments))
	}
	est := mi.NewKSG(4, mi.BackendKDTree)
	for _, seg := range c.Segments {
		if seg.Delay != 20 {
			t.Errorf("segment delay = %d", seg.Delay)
		}
		xs, ys, err := c.Pair.DelaySlice(seg.Start, seg.End, seg.Delay)
		if err != nil {
			t.Fatal(err)
		}
		got, err := est.Estimate(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0.5 {
			t.Errorf("%v segment aligned MI = %.3f, want strong", seg.Rel, got)
		}
		// Mis-aligned (delay 0) the same segment must be much weaker.
		xs0, ys0, err := c.Pair.DelaySlice(seg.Start, seg.End, 0)
		if err != nil {
			t.Fatal(err)
		}
		at0, err := est.Estimate(xs0, ys0)
		if err != nil {
			t.Fatal(err)
		}
		if at0 > got/2 {
			t.Errorf("%v segment at τ=0 MI = %.3f vs aligned %.3f: delay not effective", seg.Rel, at0, got)
		}
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose([]Relation{RelLinear}, 1, 10, 0, 1); err == nil {
		t.Error("tiny segment must fail")
	}
	if _, err := Compose([]Relation{RelLinear}, 10, 10, 10, 1); err == nil {
		t.Error("delay ≥ sepLen must fail")
	}
	if _, err := Compose([]Relation{RelLinear}, 10, 10, -1, 1); err == nil {
		t.Error("negative delay must fail")
	}
}

func TestComposeDeterministic(t *testing.T) {
	a, _ := Compose([]Relation{RelQuad}, 50, 30, 5, 42)
	b, _ := Compose([]Relation{RelQuad}, 50, 30, 5, 42)
	for i := range a.Pair.X.Values {
		if a.Pair.X.Values[i] != b.Pair.X.Values[i] || a.Pair.Y.Values[i] != b.Pair.Y.Values[i] {
			t.Fatal("Compose not deterministic for equal seeds")
		}
	}
}

func TestCorrelatedAR(t *testing.T) {
	c, err := CorrelatedAR(2000, 3, 150, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segments) != 3 {
		t.Fatalf("segments = %d", len(c.Segments))
	}
	est := mi.NewKSG(4, mi.BackendKDTree)
	for _, seg := range c.Segments {
		xs, ys, err := c.Pair.DelaySlice(seg.Start, seg.End, seg.Delay)
		if err != nil {
			t.Fatal(err)
		}
		got, err := est.Estimate(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0.8 {
			t.Errorf("AR segment %v MI = %.3f, want strong", seg, got)
		}
	}
	if _, err := CorrelatedAR(100, 5, 100, 0, 1); err == nil {
		t.Error("impossible layout must fail")
	}
}
