package checkpoint

import (
	"fmt"
	"io"

	"tycos/internal/core"
)

// HashOptions writes the canonical serialization of every result-affecting
// core.Options field to w. It is the single place option fields enter a
// journal fingerprint: the daemon's search keys and the discovery engine's
// per-candidate keys both delegate here, so a new result-affecting option
// added to this function invalidates stale journal entries everywhere at
// once instead of poisoning replay in whichever caller forgot it.
//
// The byte layout is pinned by TestHashOptionsGolden: it reproduces the
// pre-refactor discovery serialization exactly, so journals and goldens
// written before the dedupe keep replaying. The result-invariant fields —
// Deadline, RestartWorkers, EstimatorCache, Observer — are deliberately
// absent: each carries a dynamic test pinning that it cannot change results,
// and the fingerprintcov analyzer's allow-list mirrors this set.
func HashOptions(w io.Writer, o core.Options) {
	fmt.Fprintf(w, "%d|%d|%d|%g|%g|%d|%d|%d|%d|%g|%d|%d|%d|%g|%d|%g",
		o.SMin, o.SMax, o.TDMax, o.Sigma, o.Epsilon, o.K, o.Delta, o.MaxIdle,
		o.HistoryLength, o.MinImprovement, int(o.Normalization), o.TopK,
		int(o.Variant), o.Jitter, o.MaxEvaluations, o.SignificanceLevel)
	fmt.Fprintf(w, "|%d", o.Seed)
	// KNNEngine extends the fingerprint only when set: the empty default —
	// every pre-engine configuration — keeps its byte layout, so existing
	// journals and goldens replay unchanged, while any explicit engine choice
	// (exact or approximate) invalidates entries computed under another.
	if o.KNNEngine != "" {
		fmt.Fprintf(w, "|%s", o.KNNEngine)
	}
}
