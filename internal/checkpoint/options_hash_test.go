package checkpoint

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"tycos/internal/core"
	"tycos/internal/mi"
	"tycos/internal/obs"
)

// TestHashOptionsGolden pins the exact byte layout HashOptions emits. These
// bytes feed FNV-64a journal fingerprints in both the daemon and the
// discovery engine; changing them orphans every existing journal entry, so
// the layout may only change deliberately, with this golden updated in the
// same commit.
func TestHashOptionsGolden(t *testing.T) {
	o := core.Options{
		SMin: 6, SMax: 96, TDMax: 30,
		Sigma: 0.25, Epsilon: 0.0625,
		K: 4, Delta: 1, MaxIdle: 5,
		HistoryLength:     7,
		MinImprovement:    0.005,
		Normalization:     mi.NormNone,
		TopK:              3,
		Variant:           core.VariantLMN,
		Jitter:            0.01,
		MaxEvaluations:    1000,
		SignificanceLevel: 2.5,
		Seed:              42,
	}
	var buf bytes.Buffer
	HashOptions(&buf, o)
	want := "6|96|30|0.25|0.0625|4|1|5|7|0.005|" +
		"1|3|3|0.01|1000|2.5|42"
	if got := buf.String(); got != want {
		t.Fatalf("HashOptions bytes changed:\n got %q\nwant %q", got, want)
	}

	buf.Reset()
	HashOptions(&buf, core.Options{})
	wantZero := "0|0|0|0|0|0|0|0|0|0|0|0|0|0|0|0|0"
	if got := buf.String(); got != wantZero {
		t.Fatalf("HashOptions zero-value bytes changed:\n got %q\nwant %q", got, wantZero)
	}

	// An explicit engine choice appends one field; the empty default above
	// proves pre-engine fingerprints keep their byte layout.
	buf.Reset()
	o.KNNEngine = "forest"
	HashOptions(&buf, o)
	wantEngine := want + "|forest"
	if got := buf.String(); got != wantEngine {
		t.Fatalf("HashOptions engine bytes changed:\n got %q\nwant %q", got, wantEngine)
	}
}

// hashInvariantFields are the exported Options fields that must NOT move the
// hash: each is pinned result-invariant by a dynamic test (see the
// fingerprintcov allow-list in internal/lint, which mirrors this set).
var hashInvariantFields = map[string]bool{
	"Deadline":       true,
	"RestartWorkers": true,
	"EstimatorCache": true,
	"Observer":       true,
}

// nonZeroFor builds a non-zero value for an Options field so the coverage
// test can perturb each field independently.
func nonZeroFor(t *testing.T, field reflect.StructField) reflect.Value {
	switch field.Type {
	case reflect.TypeOf(time.Time{}):
		return reflect.ValueOf(time.Unix(1, 0))
	case reflect.TypeOf((*core.EstimatorCache)(nil)):
		return reflect.ValueOf(core.NewEstimatorCache(4))
	case reflect.TypeOf((*obs.Sink)(nil)).Elem():
		return reflect.ValueOf(obs.NewMetrics())
	}
	v := reflect.New(field.Type).Elem()
	switch field.Type.Kind() {
	case reflect.Int, reflect.Int64:
		v.SetInt(7)
	case reflect.Float64:
		v.SetFloat(0.5)
	case reflect.String:
		v.SetString("forest")
	default:
		t.Fatalf("no non-zero value for field %s of type %s", field.Name, field.Type)
	}
	return v
}

// TestHashOptionsCoversAllFields is the dynamic cross-check behind the
// fingerprintcov analyzer: perturbing any exported result-affecting field
// must change the emitted bytes, and perturbing a result-invariant field
// must not. A new Options field fails this test until it is either added to
// HashOptions or explicitly classified invariant here and in the analyzer's
// allow-list.
func TestHashOptionsCoversAllFields(t *testing.T) {
	var zero bytes.Buffer
	HashOptions(&zero, core.Options{})

	rt := reflect.TypeOf(core.Options{})
	for i := 0; i < rt.NumField(); i++ {
		field := rt.Field(i)
		if !field.IsExported() {
			continue
		}
		var o core.Options
		reflect.ValueOf(&o).Elem().Field(i).Set(nonZeroFor(t, field))
		var buf bytes.Buffer
		HashOptions(&buf, o)
		moved := buf.String() != zero.String()
		if hashInvariantFields[field.Name] {
			if moved {
				t.Errorf("result-invariant field %s moved the hash bytes; it must stay out of journal fingerprints", field.Name)
			}
			continue
		}
		if !moved {
			t.Errorf("result-affecting field %s does not move the hash bytes; journaled results would replay across a change to it", field.Name)
		}
	}
}
