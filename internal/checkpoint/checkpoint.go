// Package checkpoint journals completed pair results of a multi-pair TYCOS
// sweep to an append-only JSONL file, one record per line, so a killed sweep
// can be restarted with the same journal and recompute only the pairs that
// never finished. The format is deliberately dumb — flat JSON lines, flushed
// record by record — because the failure mode it guards against is the
// process dying at an arbitrary instant: a torn final line (the write the
// kill interrupted) is detected and ignored on reopen, and every intact line
// before it is recovered.
//
// The always-on daemon (internal/daemon) raises the stakes: its journal
// lives for weeks, not one sweep, so Open streams the file instead of
// slurping it (a multi-GB journal costs one bounded buffer, not its own
// size in RSS), Options.Fsync upgrades the per-record flush to a real
// fsync for kill -9 durability, and Compact rewrites the journal through a
// temp-file rename so re-recorded keys and skipped garbage don't grow it
// without bound.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"tycos/internal/core"
	"tycos/internal/faultinject"
)

// record is one journal line: a completed pair and its search result.
type record struct {
	X      string      `json:"x"`
	Y      string      `json:"y"`
	Result core.Result `json:"result"`
}

// Options tunes a journal's durability/size trade-offs; the zero value is
// the original sweep behaviour (flush to the OS per record, never fsync,
// never compact).
type Options struct {
	// Fsync forces an fsync after every Record, so a journaled result
	// survives not just a killed process but a lost page cache (power cut,
	// kill -9 followed by a crash). Costs one fsync syscall per record.
	Fsync bool
	// MaxLineBytes bounds one journal line during Open; longer lines are
	// skipped as garbage without ever being held in memory whole. 0 selects
	// DefaultMaxLineBytes. Record refuses to append a line over the bound,
	// so a journal never skips its own records on reopen.
	MaxLineBytes int
	// AutoCompactBytes, when positive, triggers Compact from inside Record
	// once the file exceeds this size and more than half of it is dead
	// weight (overwritten keys, skipped garbage, compaction leftovers).
	// 0 never auto-compacts.
	AutoCompactBytes int64
}

// DefaultMaxLineBytes is the Open line bound when Options.MaxLineBytes is 0.
// A journal line is one pair result — a few hundred bytes per accepted
// window — so 8 MiB is far above any legitimate record.
const DefaultMaxLineBytes = 8 << 20

// Journal is a JSONL-backed core.SweepCheckpoint. It is safe for concurrent
// use by the sweep's workers.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	done      map[string]core.Result
	path      string
	opts      Options
	fileBytes int64 // size of the journal file, tracked across appends
	liveBytes int64 // bytes a compaction would keep (one line per live key)

	// trailingNewline records whether the last byte seen by load was '\n',
	// so OpenOptions can repair a torn tail before the first append without
	// re-reading the file.
	trailingNewline bool
}

var _ core.SweepCheckpoint = (*Journal)(nil)

// key joins a pair's names unambiguously (series names cannot contain NUL).
func key(x, y string) string { return x + "\x00" + y }

// Open loads the journal at path (creating it if absent) with default
// Options and returns it ready for lookups and appends.
func Open(path string) (*Journal, error) { return OpenOptions(path, Options{}) }

// OpenOptions is Open with explicit durability/size options. The journal is
// read as a bounded stream: memory use is one line buffer regardless of
// file size. Unparsable lines — a torn tail from a killed process, an
// over-long line, or unrelated garbage — are skipped, not fatal; a missing
// trailing newline is repaired before appending so the next record cannot
// be glued onto a torn one.
func OpenOptions(path string, opts Options) (*Journal, error) {
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = DefaultMaxLineBytes
	}
	j := &Journal{done: make(map[string]core.Result), path: path, opts: opts}
	if err := j.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if st, err := f.Stat(); err == nil {
		j.fileBytes = st.Size()
	}
	if j.fileBytes > 0 && !j.trailingNewline {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close() //lint:allow errdrop best-effort cleanup; the WriteString error is what the caller sees
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		j.fileBytes++
	}
	j.f = f
	return j, nil
}

// load streams the journal once, recovering every intact line. It fills
// done and liveBytes; a missing file is an empty journal.
func (j *Journal) load() error {
	f, err := os.Open(j.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close() //lint:allow errdrop read-only handle; a close error cannot lose journal bytes

	// ReadSlice hands back the reader's internal buffer, so one line costs
	// at most MaxLineBytes of transient memory; anything longer is consumed
	// chunk by chunk and dropped.
	bufSize := j.opts.MaxLineBytes
	if bufSize > 64<<10 {
		bufSize = 64 << 10
	}
	r := bufio.NewReaderSize(f, bufSize)
	line := make([]byte, 0, 4096)
	overflow := false
	flush := func() {
		defer func() { line, overflow = line[:0], false }()
		if overflow || len(line) == 0 {
			return
		}
		var rec record
		if json.Unmarshal(line, &rec) != nil {
			return
		}
		k := key(rec.X, rec.Y)
		if old, ok := j.done[k]; ok {
			j.liveBytes -= recordLen(rec.X, rec.Y, old)
		}
		j.done[k] = rec.Result
		j.liveBytes += int64(len(line)) + 1
	}
	for {
		chunk, err := r.ReadSlice('\n')
		if n := len(chunk); n > 0 {
			j.trailingNewline = chunk[n-1] == '\n'
			if j.trailingNewline {
				chunk = chunk[:n-1]
			}
		}
		if !overflow {
			if len(line)+len(chunk) > j.opts.MaxLineBytes {
				overflow = true // skip the whole line, stop buffering it
			} else {
				line = append(line, chunk...)
			}
		}
		switch err {
		case nil:
			flush()
		case bufio.ErrBufferFull:
			// Mid-line: keep accumulating (or discarding) chunks.
		case io.EOF:
			// A final line without a newline is the torn tail of a killed
			// writer; flush tolerates it exactly like any garbage line.
			flush()
			return nil
		default:
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
}

// recordLen returns the journal-line length (newline included) the record
// would occupy, for liveBytes accounting.
func recordLen(x, y string, r core.Result) int64 {
	line, err := json.Marshal(record{X: x, Y: y, Result: r})
	if err != nil {
		return 0
	}
	return int64(len(line)) + 1
}

// Lookup returns the journaled result for the pair, if any.
func (j *Journal) Lookup(xName, yName string) (core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.done[key(xName, yName)]
	return r, ok
}

// Record appends the pair's result to the journal and flushes it to the OS
// (fsyncs it, with Options.Fsync) before reporting success, so a record is
// either durably on its way to disk or the sweep knows it is not.
func (j *Journal) Record(xName, yName string, r core.Result) error {
	if err := faultinject.Fire("checkpoint/record"); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	line, err := json.Marshal(record{X: xName, Y: yName, Result: r})
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if len(line)+1 > j.opts.MaxLineBytes {
		return fmt.Errorf("checkpoint: record for (%s, %s) is %d bytes, over the %d line bound", xName, yName, len(line)+1, j.opts.MaxLineBytes)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	if faultinject.Enabled() {
		// Chaos path: land half the payload on disk, then cross a kill
		// point, so an armed chaos test produces a genuinely torn line —
		// the exact artifact Open's recovery must skip.
		half := len(line) / 2
		if _, err := j.f.Write(line[:half]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if err := faultinject.Fire("checkpoint/record.torn"); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if _, err := j.f.Write(append(line[half:], '\n')); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	} else {
		if _, err := j.f.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if j.opts.Fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	k := key(xName, yName)
	if old, ok := j.done[k]; ok {
		j.liveBytes -= recordLen(xName, yName, old)
	}
	j.done[k] = r
	j.liveBytes += int64(len(line)) + 1
	j.fileBytes += int64(len(line)) + 1
	if j.opts.AutoCompactBytes > 0 && j.fileBytes > j.opts.AutoCompactBytes && j.fileBytes > 2*j.liveBytes {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites the journal to exactly one line per live key, dropping
// overwritten records and unparsable garbage. The rewrite goes through a
// temp file in the same directory, is fsynced, and replaces the journal
// with an atomic rename — a kill at any instant leaves either the old or
// the new journal intact, never a mix.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	return j.compactLocked()
}

// compactLocked implements Compact with j.mu held. The temp file sits next
// to the journal so the rename stays within one filesystem (atomic).
func (j *Journal) compactLocked() error {
	tmpPath := j.path + ".compact"
	out, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	// Deterministic line order: sorted by key. Not required for recovery,
	// but byte-stable compactions are far easier to test and diff.
	keys := make([]string, 0, len(j.done))
	for k := range j.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := bufio.NewWriter(out)
	var written int64
	// discard abandons the half-written temp file: the original journal is
	// untouched, so the compaction error is the only one worth returning.
	discard := func(err error) error {
		out.Close() //lint:allow errdrop best-effort cleanup; the compaction error is what the caller sees
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	for _, k := range keys {
		x, y := splitKey(k)
		line, err := json.Marshal(record{X: x, Y: y, Result: j.done[k]})
		if err != nil {
			return discard(err)
		}
		w.Write(line)     //lint:allow errdrop bufio write errors are sticky; the Flush below surfaces them
		w.WriteByte('\n') //lint:allow errdrop bufio write errors are sticky; the Flush below surfaces them
		written += int64(len(line)) + 1
	}
	if err := w.Flush(); err != nil {
		return discard(err)
	}
	if err := out.Sync(); err != nil {
		return discard(err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	j.f.Close() //lint:allow errdrop old pre-rename handle; its contents are superseded by the compacted file
	j.f = f
	j.fileBytes = written
	j.liveBytes = written
	return nil
}

// splitKey inverts key.
func splitKey(k string) (x, y string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// Len reports the number of journaled pairs.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// SizeBytes reports the journal file's current size as tracked across
// appends and compactions.
func (j *Journal) SizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fileBytes
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the journal's file handle. Records already written stay on
// disk; the journal can be reopened with Open. The checkpoint/close fault
// point lets chaos tests exercise callers' close-error paths, which a real
// close on a healthy filesystem never hits.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err == nil {
		err = faultinject.Fire("checkpoint/close")
	}
	return err
}
