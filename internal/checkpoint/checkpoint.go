// Package checkpoint journals completed pair results of a multi-pair TYCOS
// sweep to an append-only JSONL file, one record per line, so a killed sweep
// can be restarted with the same journal and recompute only the pairs that
// never finished. The format is deliberately dumb — flat JSON lines, flushed
// record by record — because the failure mode it guards against is the
// process dying at an arbitrary instant: a torn final line (the write the
// kill interrupted) is detected and ignored on reopen, and every intact line
// before it is recovered.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"tycos/internal/core"
)

// record is one journal line: a completed pair and its search result.
type record struct {
	X      string      `json:"x"`
	Y      string      `json:"y"`
	Result core.Result `json:"result"`
}

// Journal is a JSONL-backed core.SweepCheckpoint. It is safe for concurrent
// use by the sweep's workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]core.Result
	path string
}

var _ core.SweepCheckpoint = (*Journal)(nil)

// key joins a pair's names unambiguously (series names cannot contain NUL).
func key(x, y string) string { return x + "\x00" + y }

// Open loads the journal at path (creating it if absent) and returns it
// ready for lookups and appends. Unparsable lines — a torn tail from a
// killed process, or unrelated garbage — are skipped, not fatal; a missing
// trailing newline is repaired before appending so the next record cannot be
// glued onto a torn one.
func Open(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	done := make(map[string]core.Result)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var rec record
		if json.Unmarshal([]byte(line), &rec) != nil {
			continue
		}
		done[key(rec.X, rec.Y)] = rec.Result
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return &Journal{f: f, done: done, path: path}, nil
}

// Lookup returns the journaled result for the pair, if any.
func (j *Journal) Lookup(xName, yName string) (core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.done[key(xName, yName)]
	return r, ok
}

// Record appends the pair's result to the journal and flushes it to the OS
// before reporting success, so a record is either durably on its way to disk
// or the sweep knows it is not.
func (j *Journal) Record(xName, yName string, r core.Result) error {
	line, err := json.Marshal(record{X: xName, Y: yName, Result: r})
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	w := bufio.NewWriter(j.f)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	j.done[key(xName, yName)] = r
	return nil
}

// Len reports the number of journaled pairs.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the journal's file handle. Records already written stay on
// disk; the journal can be reopened with Open.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
