package checkpoint

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tycos/internal/core"
	"tycos/internal/faultinject"
	"tycos/internal/series"
	"tycos/internal/window"
)

func testResult(n int) core.Result {
	return core.Result{
		Windows: []window.Scored{
			{Window: window.Window{Start: 10 * n, End: 10*n + 9, Delay: n}, MI: 0.5 + float64(n)/100},
		},
		Stats: core.Stats{WindowsEvaluated: 100 * n, Restarts: n, StopReason: core.StopCompleted},
	}
}

func TestJournalRecordLookupReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Lookup("a", "b"); ok {
		t.Fatal("empty journal reported a record")
	}
	if err := j.Record("a", "b", testResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", "c", testResult(2)); err != nil {
		t.Fatal(err)
	}
	if got, ok := j.Lookup("a", "b"); !ok || got.Stats.WindowsEvaluated != 100 {
		t.Errorf("lookup after record: %+v, %v", got, ok)
	}
	if j.Len() != 2 {
		t.Errorf("Len = %d, want 2", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reopened journal Len = %d, want 2", j2.Len())
	}
	got, ok := j2.Lookup("a", "b")
	if !ok {
		t.Fatal("record lost across reopen")
	}
	want := testResult(1)
	if len(got.Windows) != 1 || got.Windows[0] != want.Windows[0] || got.Stats != want.Stats {
		t.Errorf("round-tripped result differs: %+v vs %+v", got, want)
	}
}

// A kill mid-write leaves a torn trailing line; reopening must recover every
// intact record, ignore the torn tail, and not glue the next record onto it.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("a", "b", testResult(1))
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"x":"a","y":"c","result":{"Windows"`) // torn, no newline
	f.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", j2.Len())
	}
	if _, ok := j2.Lookup("a", "c"); ok {
		t.Error("torn record resurrected")
	}
	if err := j2.Record("a", "d", testResult(3)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Errorf("Len after append-past-torn-tail = %d, want 2", j3.Len())
	}
	if _, ok := j3.Lookup("a", "d"); !ok {
		t.Error("record appended after a torn tail was lost")
	}
}

func TestJournalRecordAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Record("a", "b", testResult(1)); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Record on closed journal: %v", err)
	}
}

// sweepSeries builds deterministic noise series with one coupled pair.
func sweepSeries(names ...string) []series.Series {
	rng := rand.New(rand.NewSource(61))
	ss := make([]series.Series, len(names))
	for i, name := range names {
		v := make([]float64, 250)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		ss[i] = series.New(name, v)
	}
	return ss
}

// The acceptance scenario: a sweep with one persistently failing pair
// journals the others; after a "restart" with the fault gone, only the
// unjournaled pair is recomputed.
func TestSweepResumeRecomputesOnlyUnjournaledPairs(t *testing.T) {
	defer faultinject.Clear()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ss := sweepSeries("a", "b", "c")
	opts := core.Options{SMin: 10, SMax: 60, TDMax: 5, Sigma: 0.25, MaxIdle: 3, Seed: 1}

	faultinject.Set("a/c", faultinject.Fault{Err: errors.New("flaky sensor")})
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	first := core.SearchAllContext(context.Background(), ss, opts, core.SweepOptions{Checkpoint: j})
	if len(first) != 3 {
		t.Fatalf("want 3 pairs, got %d", len(first))
	}
	for _, pr := range first {
		failed := pr.XName == "a" && pr.YName == "c"
		if failed != (pr.Err != nil) {
			t.Fatalf("pair (%s,%s): Err=%v", pr.XName, pr.YName, pr.Err)
		}
	}
	if j.Len() != 2 {
		t.Fatalf("journal holds %d pairs after faulty sweep, want 2", j.Len())
	}
	j.Close() // the "kill"

	faultinject.Clear()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	second := core.SearchAllContext(context.Background(), ss, opts, core.SweepOptions{Checkpoint: j2})
	recomputed := 0
	for i, pr := range second {
		if pr.Err != nil {
			t.Fatalf("pair (%s,%s) failed on resume: %v", pr.XName, pr.YName, pr.Err)
		}
		if pr.FromCheckpoint {
			if pr.Attempts != 0 {
				t.Errorf("restored pair (%s,%s) reports %d attempts", pr.XName, pr.YName, pr.Attempts)
			}
			// Restored results must round-trip exactly.
			a, b := first[i].Result, pr.Result
			if a.Stats != b.Stats || len(a.Windows) != len(b.Windows) {
				t.Errorf("restored pair (%s,%s) differs from the original result", pr.XName, pr.YName)
			}
			continue
		}
		recomputed++
		if pr.XName != "a" || pr.YName != "c" {
			t.Errorf("journaled pair (%s,%s) was recomputed", pr.XName, pr.YName)
		}
	}
	if recomputed != 1 {
		t.Errorf("resume recomputed %d pairs, want exactly the 1 unjournaled pair", recomputed)
	}
	if j2.Len() != 3 {
		t.Errorf("journal holds %d pairs after resume, want 3", j2.Len())
	}
}

// A multi-GB journal must not be slurped whole; the regression proxy is an
// oversized garbage line (way past MaxLineBytes) that Open must skip while
// still recovering every intact record around it.
func TestOpenSkipsOversizedGarbageLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("a", "b", testResult(1))
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MiB of garbage on one line, then an intact record, then a torn tail.
	garbage := strings.Repeat("x", 1<<20)
	f.WriteString(garbage + "\n")
	line, _ := json.Marshal(struct {
		X string      `json:"x"`
		Y string      `json:"y"`
		R core.Result `json:"result"`
	}{X: "a", Y: "c", R: testResult(2)})
	f.Write(append(line, '\n'))
	f.WriteString(`{"x":"a","y":"d","result":`) // torn
	f.Close()

	j2, err := OpenOptions(path, Options{MaxLineBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("Len = %d, want the 2 intact records around the garbage", j2.Len())
	}
	if _, ok := j2.Lookup("a", "c"); !ok {
		t.Error("intact record after the oversized line was lost")
	}
	if _, ok := j2.Lookup("a", "d"); ok {
		t.Error("torn tail resurrected")
	}
}

// A record longer than the line bound must be refused at write time —
// otherwise reopen would silently drop it.
func TestRecordRefusesOversizedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenOptions(path, Options{MaxLineBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	big := core.Result{Windows: make([]window.Scored, 64)}
	if err := j.Record("a", strings.Repeat("y", 200), big); err == nil || !strings.Contains(err.Error(), "line bound") {
		t.Fatalf("oversized record accepted: %v", err)
	}
	if j.Len() != 0 {
		t.Error("refused record entered the in-memory index")
	}
}

func TestFsyncOptionStillRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenOptions(path, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", "b", testResult(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup("a", "b"); !ok {
		t.Error("fsynced record lost")
	}
}

// Compact must drop overwritten keys and garbage, keep every live record,
// and leave a journal that reopens to the same contents.
func TestCompactShrinksAndPreservesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		// The same key re-recorded 20 times: 19 dead lines.
		if err := j.Record("a", "b", testResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Record("a", "c", testResult(99)); err != nil {
		t.Fatal(err)
	}
	before := j.SizeBytes()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after := j.SizeBytes()
	if after >= before {
		t.Errorf("Compact grew the journal: %d -> %d bytes", before, after)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != after {
		t.Errorf("SizeBytes %d disagrees with stat %v (%v)", after, st.Size(), err)
	}
	// The journal stays appendable after the rename swapped its fd.
	if err := j.Record("a", "d", testResult(7)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("Len after compact+reopen = %d, want 3", j2.Len())
	}
	if got, ok := j2.Lookup("a", "b"); !ok || got.Stats.Restarts != 19 {
		t.Errorf("compacted journal kept the wrong version of a/b: %+v ok=%v", got.Stats, ok)
	}
}

// AutoCompactBytes triggers compaction from inside Record once the file is
// mostly dead weight.
func TestAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenOptions(path, Options{AutoCompactBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 200; i++ {
		if err := j.Record("a", "b", testResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 200 rewrites of one ~160-byte record ≈ 32 KiB raw; auto-compaction
	// must have kept the file near one live record.
	if sz := j.SizeBytes(); sz > 2048 {
		t.Errorf("journal is %d bytes after 200 overwrites, want auto-compacted under 2048", sz)
	}
	if j.Len() != 1 {
		t.Errorf("Len = %d, want 1", j.Len())
	}
}

// An injected failure at the torn-write chaos point must leave a torn line
// that the next Open skips, with the failed record absent — zero completed-
// record loss means exactly: error reported ⇒ not journaled, no error ⇒
// journaled.
func TestInjectedTornWriteIsSkippedOnReopen(t *testing.T) {
	defer faultinject.Clear()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", "b", testResult(1)); err != nil {
		t.Fatal(err)
	}
	faultinject.Set("checkpoint/record.torn", faultinject.Fault{Err: errors.New("disk died"), Times: 1})
	if err := j.Record("a", "c", testResult(2)); err == nil {
		t.Fatal("torn write reported success")
	}
	j.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup("a", "c"); ok {
		t.Error("torn record resurrected on reopen")
	}
	if _, ok := j2.Lookup("a", "b"); !ok {
		t.Error("intact record before the torn line was lost")
	}
	// And the journal heals: appending works and survives reopen.
	if err := j2.Record("a", "c", testResult(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := j2.Lookup("a", "c"); !ok {
		t.Error("healed record missing")
	}
}

func TestInjectedRecordErrorIsRetryable(t *testing.T) {
	defer faultinject.Clear()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	faultinject.Set("checkpoint/record", faultinject.Fault{Err: errors.New("transient"), Times: 2})
	var lastErr error
	attempts := 0
	for ; attempts < 5; attempts++ {
		if lastErr = j.Record("a", "b", testResult(1)); lastErr == nil {
			break
		}
	}
	if lastErr != nil || attempts != 2 {
		t.Fatalf("retry loop: attempts=%d err=%v, want success on the 3rd call", attempts, lastErr)
	}
	if _, ok := j.Lookup("a", "b"); !ok {
		t.Error("record missing after successful retry")
	}
}
