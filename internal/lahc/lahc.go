// Package lahc implements Late Acceptance Hill-Climbing (Burke & Bykov,
// EJOR 2017), the local-search metaheuristic TYCOS is built on (Section 3.2
// and Algorithm 1 of the paper).
//
// LAHC extends classic hill climbing with a fixed-length history L_h of
// recently accepted objective values: a candidate is accepted when it beats
// either the current solution or a value drawn from the history, which lets
// the search traverse plateaus and mild setbacks. TYCOS uses the "random"
// policy for selecting and updating history entries (Algorithm 1, lines 9
// and 16–18), which is what Acceptor implements.
package lahc

import "math/rand"

// DefaultHistoryLength is the history size used when none is configured.
const DefaultHistoryLength = 16

// Acceptor encapsulates the LAHC acceptance rule for a maximisation
// objective. The zero value is not usable; construct with New.
type Acceptor struct {
	history []float64
	rng     *rand.Rand
}

// New returns an acceptor whose history has the given length, initialised to
// the objective value of the initial solution. Length values below 1 become
// DefaultHistoryLength. The provided rng drives the random history policy;
// it must be non-nil.
func New(length int, initial float64, rng *rand.Rand) *Acceptor {
	if length < 1 {
		length = DefaultHistoryLength
	}
	h := make([]float64, length)
	for i := range h {
		h[i] = initial
	}
	return &Acceptor{history: h, rng: rng}
}

// Consider applies the acceptance policies of Algorithm 1 to a candidate
// objective value:
//
//	Policy 1: accept if candidate ≥ history probe or candidate > current.
//	Policy 2: reject otherwise.
//
// The comparison against the history probe is non-strict, following the
// canonical LAHC acceptance of Burke & Bykov: that is what lets the walk
// drift across plateaus, the behaviour the paper relies on ("helpful ...
// when the search needs to escape from plateau situations"). Callers that
// need a stopping signal should treat only strict improvements of the
// returned current value as progress (see IdleCounter).
//
// After the decision the probed history slot is updated to the (possibly
// new) current value when that improves the slot. It returns the new current
// value and whether the candidate was accepted.
func (a *Acceptor) Consider(current, candidate float64) (newCurrent float64, accepted bool) {
	slot := a.rng.Intn(len(a.history))
	probe := a.history[slot]
	if candidate >= probe || candidate > current {
		current = candidate
		accepted = true
	}
	if current > probe {
		a.history[slot] = current
	}
	return current, accepted
}

// History returns a copy of the current history list (for inspection and
// tests).
func (a *Acceptor) History() []float64 {
	out := make([]float64, len(a.history))
	copy(out, a.history)
	return out
}

// Reset refills every history slot with the given value, used when the
// search restarts on the unscanned remainder of the data.
func (a *Acceptor) Reset(value float64) {
	for i := range a.history {
		a.history[i] = value
	}
}

// IdleCounter tracks consecutive non-improvements against a maximum idle
// budget (the stopping condition of Algorithm 1, line 4).
type IdleCounter struct {
	idle int
	max  int
}

// NewIdleCounter returns a counter that reports exhaustion after max
// consecutive failures. Values below 1 become 1.
func NewIdleCounter(max int) *IdleCounter {
	if max < 1 {
		max = 1
	}
	return &IdleCounter{max: max}
}

// Step records an iteration outcome and reports whether the search should
// continue (true) or stop (false).
func (c *IdleCounter) Step(improved bool) bool {
	if improved {
		c.idle = 0
		return true
	}
	c.idle++
	return c.idle < c.max
}

// Exhausted reports whether the idle budget has been spent.
func (c *IdleCounter) Exhausted() bool { return c.idle >= c.max }

// Reset clears the idle count.
func (c *IdleCounter) Reset() { c.idle = 0 }
