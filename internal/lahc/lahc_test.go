package lahc

import (
	"math"
	"math/rand"
	"testing"
)

func TestAcceptorBasicPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 0.0, rng)
	// Better candidate is always accepted (Policy 1, current branch).
	cur, ok := a.Consider(0.0, 0.5)
	if !ok || cur != 0.5 {
		t.Fatalf("better candidate rejected: cur=%v ok=%v", cur, ok)
	}
	// Worse-than-everything candidate is rejected (Policy 2): history is
	// all ≥ 0, candidate −1 beats nothing.
	cur, ok = a.Consider(cur, -1)
	if ok || cur != 0.5 {
		t.Fatalf("hopeless candidate accepted: cur=%v ok=%v", cur, ok)
	}
}

func TestAcceptorLateAcceptance(t *testing.T) {
	// A candidate worse than current but better than a stale history value
	// must be acceptable — that is the "late acceptance" behaviour.
	rng := rand.New(rand.NewSource(2))
	a := New(1, 0.0, rng) // single slot: probe is deterministic
	// Current jumps to 10, history slot becomes 10 after the update rule.
	cur, _ := a.Consider(0, 10)
	if cur != 10 {
		t.Fatal("setup failed")
	}
	// History now holds 10; candidate 5 beats neither current nor probe.
	if _, ok := a.Consider(cur, 5); ok {
		t.Error("candidate below history and current must be rejected")
	}
	// Fresh acceptor with stale low history: candidate below current but
	// above probe is accepted.
	b := New(1, 1.0, rng)
	if _, ok := b.Consider(10, 5); !ok {
		t.Error("late acceptance: candidate above stale history must be accepted")
	}
}

func TestAcceptorHistoryUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(8, 0, rng)
	for i := 0; i < 100; i++ {
		cur, _ := a.Consider(float64(i), float64(i+1))
		if cur != float64(i+1) {
			t.Fatal("monotone improvements must always be accepted")
		}
	}
	for _, h := range a.History() {
		if h < 0 {
			t.Error("history must never regress below initial")
		}
	}
	a.Reset(42)
	for _, h := range a.History() {
		if h != 42 {
			t.Error("Reset must refill history")
		}
	}
}

func TestAcceptorDefaultLength(t *testing.T) {
	a := New(0, 1, rand.New(rand.NewSource(4)))
	if len(a.History()) != DefaultHistoryLength {
		t.Errorf("history length = %d", len(a.History()))
	}
}

func TestIdleCounter(t *testing.T) {
	c := NewIdleCounter(3)
	if !c.Step(false) || !c.Step(false) {
		t.Fatal("counter stopped early")
	}
	if c.Step(false) {
		t.Fatal("counter must stop at max idle")
	}
	if !c.Exhausted() {
		t.Error("Exhausted should report true")
	}
	c.Reset()
	if c.Exhausted() {
		t.Error("Reset must clear")
	}
	// An improvement resets the streak.
	c2 := NewIdleCounter(2)
	c2.Step(false)
	c2.Step(true)
	if !c2.Step(false) {
		t.Error("improvement must reset the idle streak")
	}
	if NewIdleCounter(0).max != 1 {
		t.Error("max must clamp to 1")
	}
}

func TestLAHCEscapesPlateau(t *testing.T) {
	// A flat objective with a single peak: plain hill climbing with strict
	// improvement stalls; LAHC's acceptance (candidate > probe drawn from a
	// history seeded below the plateau) lets the walk drift across.
	obj := func(x int) float64 {
		if x == 50 {
			return 2
		}
		return 1 // plateau
	}
	rng := rand.New(rand.NewSource(7))
	pos := 0
	a := New(8, 0, rng) // history below the plateau level
	idle := NewIdleCounter(200)
	cur := obj(pos)
	reached := false
	for steps := 0; steps < 50000; steps++ {
		// Propose a random neighbour ±1.
		next := pos + 1
		if rng.Intn(2) == 0 && pos > 0 {
			next = pos - 1
		}
		cand := obj(next)
		newCur, ok := a.Consider(cur, cand)
		if ok {
			pos = next
			cur = newCur
		}
		if pos == 50 {
			reached = true
			break
		}
		if !idle.Step(ok) {
			idle.Reset()
		}
	}
	if !reached {
		t.Error("LAHC failed to traverse the plateau to the peak")
	}
	if math.IsNaN(cur) {
		t.Error("objective corrupted")
	}
}
