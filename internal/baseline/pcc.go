// Package baseline implements the classical statistical baseline of the
// paper's effectiveness evaluation: the Pearson Correlation Coefficient
// (Pearson 1895) and a sliding-window PCC detector. PCC captures linear
// dependence only, which is exactly why it fails on the non-linear relations
// of Table 1 — reproducing that failure is the point of the baseline.
package baseline

import (
	"fmt"
	"math"

	"tycos/internal/window"
)

// Pearson returns the sample Pearson correlation coefficient r ∈ [−1, 1]
// between x and y. Degenerate inputs (length < 2, zero variance) return 0.
//
// Constancy is detected on the values themselves (min == max), not on the
// centred sum of squares: for a constant series the summed (v−mean)² terms
// can round to a tiny nonzero float, in which case the naive sxx == 0 guard
// misfires and the quotient of two rounding errors comes out as ±1 — a
// constant series scoring as perfectly correlated garbage.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	if constant(x) || constant(y) {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	//lint:allow floateq exact zero-variance sentinel guarding the division; any nonzero sum of squares is valid
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// constant reports whether every value of v equals the first (the exact
// zero-variance case; length ≤ 1 counts as constant).
func constant(v []float64) bool {
	for i := 1; i < len(v); i++ {
		//lint:allow floateq exact constancy test; approximate equality would misclassify genuinely varying data
		if v[i] != v[0] {
			return false
		}
	}
	return true
}

// SlideStats counts the work of one SlidingPCC pass: Windows is the number
// of window positions evaluated, Degenerate the positions skipped under the
// degenerate-window contract below.
type SlideStats struct {
	Windows    int
	Degenerate int
}

// SlidingPCC slides a fixed-size window over the aligned pair (no time
// delay — PCC-based procedures in the literature assume simultaneity) and
// returns every maximal run of positions whose |r| meets the threshold,
// merged into scored windows carrying the strongest |r| seen inside.
func SlidingPCC(x, y []float64, size int, threshold float64) ([]window.Scored, error) {
	out, _, err := SlidingPCCDetail(x, y, size, threshold)
	return out, err
}

// SlidingPCCDetail is SlidingPCC with the pass statistics exposed.
//
// Degenerate-window contract: a position where either side of the window is
// constant (zero variance) — or where r is otherwise non-finite — carries no
// correlation evidence. Such a position never opens or extends a run (an
// open run is closed, exactly as a below-threshold position would), is
// counted in SlideStats.Degenerate, and contributes no score. Callers using
// the maximum |r| as a pruning statistic (the discovery pre-screen) rely on
// this: without it a flatlined sensor would score |r| = 1 through floating-
// point rounding and poison the prune decision.
func SlidingPCCDetail(x, y []float64, size int, threshold float64) ([]window.Scored, SlideStats, error) {
	var stats SlideStats
	if len(x) != len(y) {
		return nil, stats, fmt.Errorf("baseline: length mismatch %d vs %d", len(x), len(y))
	}
	if size < 2 || size > len(x) {
		return nil, stats, fmt.Errorf("baseline: window size %d out of range (n=%d)", size, len(x))
	}
	// constRun[i] is the length of the run of equal values ending at i, so a
	// window [i, i+size−1] is constant iff constRun[i+size−1] ≥ size. One
	// O(n) pass instead of re-scanning each window.
	runX := constRuns(x)
	runY := constRuns(y)
	var out []window.Scored
	open := false
	var cur window.Scored
	for i := 0; i+size <= len(x); i++ {
		stats.Windows++
		end := i + size - 1
		if runX[end] >= size || runY[end] >= size {
			stats.Degenerate++
			if open {
				out = append(out, cur)
				open = false
			}
			continue
		}
		r := math.Abs(Pearson(x[i:i+size], y[i:i+size]))
		if math.IsNaN(r) {
			// Belt and braces: the constancy guards above should make this
			// unreachable, but a NaN must never enter a run's max.
			stats.Degenerate++
			if open {
				out = append(out, cur)
				open = false
			}
			continue
		}
		if r >= threshold {
			if !open {
				cur = window.Scored{Window: window.Window{Start: i, End: end}, MI: r}
				open = true
			} else {
				cur.End = end
				if r > cur.MI {
					cur.MI = r
				}
			}
			continue
		}
		if open {
			out = append(out, cur)
			open = false
		}
	}
	if open {
		out = append(out, cur)
	}
	return out, stats, nil
}

// constRuns returns, per index, the length of the run of equal consecutive
// values ending there.
func constRuns(v []float64) []int {
	runs := make([]int, len(v))
	for i := range v {
		//lint:allow floateq exact constancy test over consecutive samples; see Pearson's degenerate-input contract
		if i > 0 && v[i] == v[i-1] {
			runs[i] = runs[i-1] + 1
		} else {
			runs[i] = 1
		}
	}
	return runs
}
