// Package baseline implements the classical statistical baseline of the
// paper's effectiveness evaluation: the Pearson Correlation Coefficient
// (Pearson 1895) and a sliding-window PCC detector. PCC captures linear
// dependence only, which is exactly why it fails on the non-linear relations
// of Table 1 — reproducing that failure is the point of the baseline.
package baseline

import (
	"fmt"
	"math"

	"tycos/internal/window"
)

// Pearson returns the sample Pearson correlation coefficient r ∈ [−1, 1]
// between x and y. Degenerate inputs (length < 2, zero variance) return 0.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	//lint:allow floateq exact zero-variance sentinel guarding the division; any nonzero sum of squares is valid
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SlidingPCC slides a fixed-size window over the aligned pair (no time
// delay — PCC-based procedures in the literature assume simultaneity) and
// returns every maximal run of positions whose |r| meets the threshold,
// merged into scored windows carrying the strongest |r| seen inside.
func SlidingPCC(x, y []float64, size int, threshold float64) ([]window.Scored, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("baseline: length mismatch %d vs %d", len(x), len(y))
	}
	if size < 2 || size > len(x) {
		return nil, fmt.Errorf("baseline: window size %d out of range (n=%d)", size, len(x))
	}
	var out []window.Scored
	open := false
	var cur window.Scored
	for i := 0; i+size <= len(x); i++ {
		r := math.Abs(Pearson(x[i:i+size], y[i:i+size]))
		if r >= threshold {
			if !open {
				cur = window.Scored{Window: window.Window{Start: i, End: i + size - 1}, MI: r}
				open = true
			} else {
				cur.End = i + size - 1
				if r > cur.MI {
					cur.MI = r
				}
			}
			continue
		}
		if open {
			out = append(out, cur)
			open = false
		}
	}
	if open {
		out = append(out, cur)
	}
	return out, nil
}
