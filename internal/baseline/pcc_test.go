package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonExactCases(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if r := Pearson(x, x); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v", r)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %v", r)
	}
	if r := Pearson(x, []float64{2, 2, 2, 2, 2}); r != 0 {
		t.Errorf("constant y correlation = %v", r)
	}
	if r := Pearson(x, []float64{1, 2}); r != 0 {
		t.Errorf("mismatched length correlation = %v", r)
	}
	if r := Pearson([]float64{1}, []float64{1}); r != 0 {
		t.Errorf("single sample correlation = %v", r)
	}
}

func TestPearsonMissesQuadratic(t *testing.T) {
	// The defining weakness: y = x² on symmetric x has r ≈ 0 despite the
	// perfect functional dependence.
	n := 2001
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = -4 + 8*float64(i)/float64(n-1)
		y[i] = x[i] * x[i]
	}
	if r := math.Abs(Pearson(x, y)); r > 0.05 {
		t.Errorf("quadratic |r| = %v, want ≈0", r)
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPearsonSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		return math.Abs(Pearson(x, y)-Pearson(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSlidingPCCFindsLinearSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := 150; i < 250; i++ {
		y[i] = 2*x[i] + 0.1*rng.NormFloat64()
	}
	ws, err := SlidingPCC(x, y, 30, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("sliding PCC found nothing")
	}
	found := false
	for _, w := range ws {
		if w.Start >= 120 && w.End <= 280 {
			found = true
			if w.MI < 0.8 {
				t.Errorf("window %v carries score below threshold", w)
			}
		}
	}
	if !found {
		t.Errorf("linear segment not localised: %v", ws)
	}
}

func TestSlidingPCCMissesDelayedSegment(t *testing.T) {
	// The same construction shifted by 40 samples must vanish for PCC,
	// reproducing the ✗ entries of Table 1.
	rng := rand.New(rand.NewSource(5))
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := 150; i < 250; i++ {
		y[i+40] = 2*x[i] + 0.1*rng.NormFloat64()
	}
	ws, err := SlidingPCC(x, y, 30, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 {
		t.Errorf("PCC should miss the delayed relation, found %v", ws)
	}
}

func TestPearsonConstantInputsRobust(t *testing.T) {
	// The naive sxx == 0 guard is defeated by floating-point rounding: for a
	// constant series the summed (v−mean)² terms can come out as a tiny
	// nonzero float, and the quotient of two rounding errors then reads as
	// |r| = 1. The degenerate-input contract says any constant side is 0.
	constSmall := make([]float64, 64)
	constHuge := make([]float64, 64)
	varying := make([]float64, 64)
	for i := range constSmall {
		constSmall[i] = 0.1
		constHuge[i] = 1e155
		varying[i] = math.Sin(float64(i) / 3)
	}
	cases := []struct {
		name string
		x, y []float64
	}{
		{"const-const", constSmall, constSmall},
		{"const-huge", constHuge, constSmall},
		{"const-varying", constSmall, varying},
		{"varying-const", varying, constHuge},
	}
	for _, tc := range cases {
		if r := Pearson(tc.x, tc.y); r != 0 {
			t.Errorf("Pearson(%s) = %v, want 0", tc.name, r)
		}
	}
}

func TestSlidingPCCSkipsDegenerateWindows(t *testing.T) {
	// A flatlined stretch in the middle of correlated data: positions whose
	// window lies wholly inside the flatline are degenerate and must be
	// skipped (counted, never scored), splitting the surrounding run.
	rng := rand.New(rand.NewSource(11))
	n := 200
	size := 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2*x[i] + 0.05*rng.NormFloat64()
	}
	for i := 80; i < 120; i++ {
		x[i] = 0.1 // sensor flatline on one side only
	}
	ws, stats, err := SlidingPCCDetail(x, y, size, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	wantDegenerate := 40 - size + 1 // windows wholly inside the flatline
	if stats.Degenerate != wantDegenerate {
		t.Errorf("Degenerate = %d, want %d", stats.Degenerate, wantDegenerate)
	}
	if stats.Windows != n-size+1 {
		t.Errorf("Windows = %d, want %d", stats.Windows, n-size+1)
	}
	for _, w := range ws {
		if w.Start >= 80 && w.End < 120 {
			t.Errorf("window %v lies wholly inside the flatline; degenerate positions must not score", w)
		}
		if math.IsNaN(w.MI) || w.MI > 1+1e-12 {
			t.Errorf("window %v carries a garbage score", w)
		}
	}
}

func TestSlidingPCCAllConstantScoresNothing(t *testing.T) {
	// Both sides fully constant: with threshold 0 every position would
	// previously open one garbage run at |r| = 1; under the contract every
	// position is degenerate and the result is empty.
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = 0.1
		y[i] = 1e155
	}
	ws, stats, err := SlidingPCCDetail(x, y, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 {
		t.Errorf("constant pair produced windows: %v", ws)
	}
	if stats.Degenerate != stats.Windows || stats.Windows != 41 {
		t.Errorf("stats = %+v, want all 41 positions degenerate", stats)
	}
}

func TestSlidingPCCDetailMatchesSlidingPCC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := 100; i < 180; i++ {
		y[i] = x[i] + 0.1*rng.NormFloat64()
	}
	plain, err := SlidingPCC(x, y, 25, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	detail, stats, err := SlidingPCCDetail(x, y, 25, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(detail) {
		t.Fatalf("SlidingPCC and SlidingPCCDetail disagree: %v vs %v", plain, detail)
	}
	for i := range plain {
		if plain[i] != detail[i] {
			t.Errorf("window %d: %v vs %v", i, plain[i], detail[i])
		}
	}
	if stats.Degenerate != 0 {
		t.Errorf("non-degenerate data counted %d degenerate windows", stats.Degenerate)
	}
}

func TestSlidingPCCErrors(t *testing.T) {
	if _, err := SlidingPCC([]float64{1, 2}, []float64{1}, 2, 0.5); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := SlidingPCC([]float64{1, 2}, []float64{1, 2}, 1, 0.5); err == nil {
		t.Error("size 1 must fail")
	}
	if _, err := SlidingPCC([]float64{1, 2}, []float64{1, 2}, 5, 0.5); err == nil {
		t.Error("oversize window must fail")
	}
}
