package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonExactCases(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if r := Pearson(x, x); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v", r)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %v", r)
	}
	if r := Pearson(x, []float64{2, 2, 2, 2, 2}); r != 0 {
		t.Errorf("constant y correlation = %v", r)
	}
	if r := Pearson(x, []float64{1, 2}); r != 0 {
		t.Errorf("mismatched length correlation = %v", r)
	}
	if r := Pearson([]float64{1}, []float64{1}); r != 0 {
		t.Errorf("single sample correlation = %v", r)
	}
}

func TestPearsonMissesQuadratic(t *testing.T) {
	// The defining weakness: y = x² on symmetric x has r ≈ 0 despite the
	// perfect functional dependence.
	n := 2001
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = -4 + 8*float64(i)/float64(n-1)
		y[i] = x[i] * x[i]
	}
	if r := math.Abs(Pearson(x, y)); r > 0.05 {
		t.Errorf("quadratic |r| = %v, want ≈0", r)
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPearsonSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		return math.Abs(Pearson(x, y)-Pearson(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSlidingPCCFindsLinearSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := 150; i < 250; i++ {
		y[i] = 2*x[i] + 0.1*rng.NormFloat64()
	}
	ws, err := SlidingPCC(x, y, 30, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("sliding PCC found nothing")
	}
	found := false
	for _, w := range ws {
		if w.Start >= 120 && w.End <= 280 {
			found = true
			if w.MI < 0.8 {
				t.Errorf("window %v carries score below threshold", w)
			}
		}
	}
	if !found {
		t.Errorf("linear segment not localised: %v", ws)
	}
}

func TestSlidingPCCMissesDelayedSegment(t *testing.T) {
	// The same construction shifted by 40 samples must vanish for PCC,
	// reproducing the ✗ entries of Table 1.
	rng := rand.New(rand.NewSource(5))
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	for i := 150; i < 250; i++ {
		y[i+40] = 2*x[i] + 0.1*rng.NormFloat64()
	}
	ws, err := SlidingPCC(x, y, 30, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 {
		t.Errorf("PCC should miss the delayed relation, found %v", ws)
	}
}

func TestSlidingPCCErrors(t *testing.T) {
	if _, err := SlidingPCC([]float64{1, 2}, []float64{1}, 2, 0.5); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := SlidingPCC([]float64{1, 2}, []float64{1, 2}, 1, 0.5); err == nil {
		t.Error("size 1 must fail")
	}
	if _, err := SlidingPCC([]float64{1, 2}, []float64{1, 2}, 5, 0.5); err == nil {
		t.Error("oversize window must fail")
	}
}
