package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a Prometheus-style metric registry: named families of
// counters, gauges and histograms, optionally split by label values, with a
// text-exposition renderer (WritePrometheus) for a /metrics endpoint.
//
// It doubles as a Sink (+GaugeSink), so plugging it into an Observer fan-out
// turns the search's event/counter/phase stream into scrapeable series with
// no extra wiring:
//
//	search events  → tycos_search_events_total{kind="ClimbFinished"}
//	counters       → tycos_<name>_total (name sanitized)
//	phase timings  → tycos_search_phase_duration_seconds{phase="climb"}
//	gauges         → tycos_<name>
//
// Hot-path behaviour: after a family/series exists, every update is a
// read-locked map lookup plus an atomic op — no allocation. Creating a
// series (first sight of a label value) takes the write lock once.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	// sanitized caches metric-name sanitization for dynamic counter/gauge
	// names arriving through the Sink interface, so repeated emissions of
	// the same name never re-allocate.
	sanitized map[string]string

	events *Vec // tycos_search_events_total{kind}
	phases *Vec // tycos_search_phase_duration_seconds{phase}
}

// metricKind is the Prometheus type of one family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with its label schema and series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu     sync.RWMutex
	series map[string]*Series // joined label values → series
}

// Series is one (family, label values) time series: a counter, a gauge or a
// histogram, depending on the family's kind. Counter/gauge state is a single
// atomic; histograms embed a Histogram.
type Series struct {
	labels []string
	val    atomic.Int64
	hist   *Histogram
}

// Add increments a counter series.
func (s *Series) Add(delta int64) { s.val.Add(delta) }

// Inc increments a counter series by one.
func (s *Series) Inc() { s.val.Add(1) }

// Set sets a gauge series.
func (s *Series) Set(v int64) { s.val.Store(v) }

// Value returns the current counter/gauge value.
func (s *Series) Value() int64 { return s.val.Load() }

// Observe records one observation on a histogram series.
func (s *Series) Observe(v float64) { s.hist.Observe(v) }

// ObserveDuration records a duration in seconds on a histogram series.
func (s *Series) ObserveDuration(d time.Duration) { s.hist.ObserveDuration(d) }

// Hist exposes the underlying histogram of a histogram series.
func (s *Series) Hist() *Histogram { return s.hist }

// Vec is a handle on one family: With resolves (creating on first sight)
// the series for a tuple of label values. An unlabeled family is a Vec used
// with zero label values.
type Vec struct {
	fam *family
}

// labelSep joins label values into series keys; 0x1f (unit separator)
// cannot appear in sane label values, and even if it does the worst case is
// two tuples sharing a series, never a rendering error.
const labelSep = "\x1f"

// With returns the series for the given label values, creating it on first
// use. The value count must match the family's label schema.
func (v *Vec) With(values ...string) *Series {
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			v.fam.name, len(v.fam.labels), len(values)))
	}
	key := ""
	if len(values) == 1 {
		key = values[0] // common case: no join allocation
	} else if len(values) > 1 {
		key = strings.Join(values, labelSep)
	}
	v.fam.mu.RLock()
	s, ok := v.fam.series[key]
	v.fam.mu.RUnlock()
	if ok {
		return s
	}
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	if s, ok := v.fam.series[key]; ok {
		return s
	}
	s = &Series{labels: append([]string(nil), values...)}
	if v.fam.kind == kindHistogram {
		s.hist = NewHistogram()
	}
	v.fam.series[key] = s
	return s
}

// NewRegistry returns a registry pre-wired with the search-event and
// search-phase families the Sink implementation feeds.
func NewRegistry() *Registry {
	r := &Registry{
		families:  make(map[string]*family),
		sanitized: make(map[string]string),
	}
	r.events = r.CounterVec("tycos_search_events_total",
		"Search events observed, by event kind.", "kind")
	r.phases = r.HistogramVec("tycos_search_phase_duration_seconds",
		"Wall-clock duration of search phases, by phase.", "phase")
	return r
}

// register creates (or returns the existing) family. Re-registering with a
// different kind or label schema panics — that is a programming error the
// first scrape would otherwise surface as a corrupt exposition.
func (r *Registry) register(name, help string, kind metricKind, labels ...string) *Vec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different type or label schema", name))
		}
		return &Vec{fam: f}
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]*Series),
	}
	r.families[name] = f
	return &Vec{fam: f}
}

// Counter registers (or fetches) an unlabeled counter and returns its single
// series.
func (r *Registry) Counter(name, help string) *Series {
	return r.register(name, help, kindCounter).With()
}

// GaugeSeries registers (or fetches) an unlabeled gauge and returns its
// single series. (The name avoids the Gauge method, which is the GaugeSink
// implementation.)
func (r *Registry) GaugeSeries(name, help string) *Series {
	return r.register(name, help, kindGauge).With()
}

// Histogram registers (or fetches) an unlabeled histogram and returns its
// single series.
func (r *Registry) Histogram(name, help string) *Series {
	return r.register(name, help, kindHistogram).With()
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *Vec {
	return r.register(name, help, kindCounter, labels...)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *Vec {
	return r.register(name, help, kindGauge, labels...)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *Vec {
	return r.register(name, help, kindHistogram, labels...)
}

// sanitizeName maps an arbitrary counter/gauge name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_] (dots and dashes become underscores),
// caching the result so steady-state emission never allocates.
func (r *Registry) sanitizeName(name string) string {
	r.mu.RLock()
	s, ok := r.sanitized[name]
	r.mu.RUnlock()
	if ok {
		return s
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	s = b.String()
	r.mu.Lock()
	r.sanitized[name] = s
	r.mu.Unlock()
	return s
}

// Event implements Sink: one counter increment per event, keyed by kind.
// Traced wrappers delegate Kind, so stamped and plain events aggregate
// identically.
func (r *Registry) Event(e Event) { r.events.With(e.Kind()).Inc() }

// Count implements Sink: dynamic counters surface as
// tycos_<sanitized name>_total.
func (r *Registry) Count(name string, delta int64) {
	r.Counter("tycos_"+r.sanitizeName(name)+"_total",
		"Cumulative total of the "+name+" search counter.").Add(delta)
}

// PhaseEnd implements Sink: phase durations land in the per-phase histogram.
func (r *Registry) PhaseEnd(p Phase, d time.Duration) {
	r.phases.With(string(p)).ObserveDuration(d)
}

// Gauge implements GaugeSink: levels surface as tycos_<sanitized name>.
func (r *Registry) Gauge(name string, value int64) {
	r.register("tycos_"+r.sanitizeName(name), "Current level of the "+name+" gauge.", kindGauge).With().Set(value)
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelPairs renders {k="v",...} for a series, with extra appended last
// (used for histogram le bounds). Empty schema and no extra renders "".
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// formatBound renders a histogram upper bound the way Prometheus clients do.
func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every family in text exposition format (version
// 0.0.4): families sorted by name, one HELP and TYPE line each, series
// sorted by label values, histograms as cumulative le-buckets plus _sum and
// _count. The output is what GET /metrics serves.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]*Series, 0, len(keys))
		for _, k := range keys {
			series = append(series, f.series[k])
		}
		f.mu.RUnlock()
		if len(series) == 0 {
			continue // a family with no series renders nothing, like client_golang
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch f.kind {
			case kindCounter, kindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPairs(f.labels, s.labels, "", ""), s.Value())
			case kindHistogram:
				snap := s.hist.Snapshot()
				cum := int64(0)
				for i := 0; i < HistogramBuckets; i++ {
					cum += snap.Buckets[i]
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labels, s.labels, "le", formatBound(HistogramUpper(i))), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					labelPairs(f.labels, s.labels, "le", "+Inf"), snap.Count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					labelPairs(f.labels, s.labels, "", ""), strconv.FormatFloat(snap.Sum, 'g', -1, 64))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					labelPairs(f.labels, s.labels, "", ""), snap.Count)
			}
		}
	}
	return bw.Flush()
}
