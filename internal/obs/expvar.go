package obs

import (
	"expvar"
	"time"
)

// ExpvarSink is a Sink that publishes live totals through the standard
// expvar registry, so any process serving http (e.g. tycos -pprof) exposes
// them on /debug/vars. Under the published map:
//
//	events.<Kind>      — occurrences of each event kind
//	counters.<name>    — counter totals
//	gauges.<name>      — last level set for each gauge
//	phase.<p>.count    — completed runs of each phase
//	phase.<p>.ns       — cumulative nanoseconds spent in each phase
//
// expvar.Map is internally synchronised, so the sink is concurrency-safe.
type ExpvarSink struct {
	m *expvar.Map
}

// NewExpvarSink publishes (or re-attaches to) the expvar map with the given
// name. Re-using a name attaches to the existing map rather than panicking,
// so repeated searches in one process accumulate into one map.
func NewExpvarSink(name string) *ExpvarSink {
	if v := expvar.Get(name); v != nil {
		if m, ok := v.(*expvar.Map); ok {
			return &ExpvarSink{m: m}
		}
	}
	return &ExpvarSink{m: expvar.NewMap(name)}
}

// Event implements Sink.
func (s *ExpvarSink) Event(e Event) { s.m.Add("events."+e.Kind(), 1) }

// Count implements Sink.
func (s *ExpvarSink) Count(name string, delta int64) { s.m.Add("counters."+name, delta) }

// PhaseEnd implements Sink.
func (s *ExpvarSink) PhaseEnd(p Phase, d time.Duration) {
	s.m.Add("phase."+string(p)+".count", 1)
	s.m.Add("phase."+string(p)+".ns", int64(d))
}

// Gauge implements GaugeSink: the level replaces the previous value under
// gauges.<name>, so /debug/vars shows current depth, not a running sum.
// The expvar.Int is created once per name and reused on later sets — Set on
// a fresh variable every call would allocate (and churn the map entry) on
// what is a high-frequency path for queue-depth gauges.
func (s *ExpvarSink) Gauge(name string, value int64) {
	key := "gauges." + name
	if v, ok := s.m.Get(key).(*expvar.Int); ok && v != nil {
		v.Set(value)
		return
	}
	v := new(expvar.Int)
	v.Set(value)
	s.m.Set(key, v)
}
