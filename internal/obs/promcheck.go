package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-exposition (version 0.0.4)
// payload — the contract GET /metrics promises scrapers. It is deliberately
// a checker, not a full parser: it verifies the properties a real scrape
// depends on and that regressions would silently corrupt:
//
//   - every sample belongs to a family announced by # HELP and # TYPE lines,
//     in that order, exactly once;
//   - sample names match the family (bare, or _bucket/_sum/_count for
//     histograms) and values parse as numbers;
//   - counter values are non-negative;
//   - histogram buckets have strictly increasing le bounds ending in +Inf,
//     cumulative counts are monotonically non-decreasing, and the +Inf
//     bucket equals the _count sample.
//
// It returns the number of samples checked and the first violation found.
// Both the registry's own tests and the CI metrics-scrape job (via
// cmd/promcheck) run scrapes through this.
func CheckExposition(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	type familyState struct {
		typ       string
		hasHelp   bool
		hasType   bool
		sawSample bool
		// histogram per-series bucket tracking, keyed by the sample's label
		// set minus le.
		buckets map[string][]bucketPoint
		counts  map[string]float64
		hasCnt  map[string]bool
	}
	families := map[string]*familyState{}
	family := func(name string) *familyState {
		f, ok := families[name]
		if !ok {
			f = &familyState{
				buckets: map[string][]bucketPoint{},
				counts:  map[string]float64{},
				hasCnt:  map[string]bool{},
			}
			families[name] = f
		}
		return f
	}
	// owner maps a sample name (possibly suffixed) to its histogram family.
	histOwner := func(name string) (base, suffix string, f *familyState) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				b := strings.TrimSuffix(name, suf)
				if f, ok := families[b]; ok && f.typ == "histogram" {
					return b, suf, f
				}
			}
		}
		return "", "", nil
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			f := family(name)
			switch fields[1] {
			case "HELP":
				if f.hasHelp {
					return samples, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if f.hasType || f.sawSample {
					return samples, fmt.Errorf("line %d: HELP for %s after its TYPE or samples", lineNo, name)
				}
				f.hasHelp = true
			case "TYPE":
				if f.hasType {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if f.sawSample {
					return samples, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				if len(fields) < 4 {
					return samples, fmt.Errorf("line %d: TYPE line for %s missing a type", lineNo, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, fields[3], name)
				}
				f.hasType = true
				f.typ = fields[3]
			}
			continue
		}

		name, labels, value, perr := parseSample(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		samples++

		// Resolve the owning family: exact name, or histogram suffix.
		f, ok := families[name]
		base, suffix := name, ""
		if !ok || !f.hasType {
			base, suffix, f = histOwner(name)
			if f == nil {
				return samples, fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE", lineNo, name)
			}
		}
		if !f.hasHelp || !f.hasType {
			return samples, fmt.Errorf("line %d: family %s is missing HELP or TYPE before samples", lineNo, base)
		}
		f.sawSample = true

		switch f.typ {
		case "counter":
			if value < 0 {
				return samples, fmt.Errorf("line %d: counter %s has negative value %v", lineNo, name, value)
			}
		case "histogram":
			key := labelsKeyWithoutLe(labels)
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return samples, fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				bound, berr := parseLe(le)
				if berr != nil {
					return samples, fmt.Errorf("line %d: %v", lineNo, berr)
				}
				f.buckets[key] = append(f.buckets[key], bucketPoint{le: bound, cum: value})
			case "_count":
				f.counts[key] = value
				f.hasCnt[key] = true
			case "_sum":
				// value already checked numeric; no further constraint.
			default:
				return samples, fmt.Errorf("line %d: histogram family %s has bare sample %s", lineNo, base, name)
			}
		}
	}
	if serr := sc.Err(); serr != nil {
		return samples, serr
	}

	// Per-series histogram invariants, in deterministic order for stable
	// error messages.
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if f.typ != "histogram" {
			continue
		}
		keys := make([]string, 0, len(f.buckets))
		for k := range f.buckets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pts := f.buckets[k]
			for i := 1; i < len(pts); i++ {
				if !(pts[i].le > pts[i-1].le) {
					return samples, fmt.Errorf("histogram %s{%s}: le bounds not strictly increasing (%v after %v)",
						name, k, pts[i].le, pts[i-1].le)
				}
				if pts[i].cum < pts[i-1].cum {
					return samples, fmt.Errorf("histogram %s{%s}: cumulative bucket counts decrease (%v after %v)",
						name, k, pts[i].cum, pts[i-1].cum)
				}
			}
			last := pts[len(pts)-1]
			if !isInf(last.le) {
				return samples, fmt.Errorf("histogram %s{%s}: last bucket bound is %v, want +Inf", name, k, last.le)
			}
			//lint:allow floateq the exposition invariant is exact equality of two rendered integer counts, not a computed-float comparison
			if f.hasCnt[k] && f.counts[k] != last.cum {
				return samples, fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v",
					name, k, f.counts[k], last.cum)
			}
			if !f.hasCnt[k] {
				return samples, fmt.Errorf("histogram %s{%s}: missing _count sample", name, k)
			}
		}
	}
	return samples, nil
}

// bucketPoint is one le-bound and its cumulative count.
type bucketPoint struct {
	le  float64
	cum float64
}

func isInf(v float64) bool { return math.IsInf(v, 1) }

// parseLe parses an le label value, accepting "+Inf".
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q: %v", s, err)
	}
	return v, nil
}

// parseSample parses one exposition sample line:
//
//	name{k="v",...} value [timestamp]
//
// Timestamps are tolerated and ignored.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	// Metric name runs to '{' or whitespace.
	i := strings.IndexAny(rest, "{ \t")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq <= 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					j++
					switch rest[j] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[j])
					}
					continue
				}
				if c == '"' {
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels[key] = val.String()
			rest = strings.TrimLeft(rest, " \t")
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	if fields[0] == "+Inf" || fields[0] == "-Inf" || fields[0] == "NaN" {
		return "", nil, 0, fmt.Errorf("non-finite sample value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value in %q: %v", line, err)
	}
	return name, labels, value, nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// labelsKeyWithoutLe renders a label set (minus le) as a deterministic key.
func labelsKeyWithoutLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}
