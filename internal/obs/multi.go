package obs

import "time"

// multi fans every observation out to each member sink, in order.
type multi []Sink

// Multi composes sinks into one. Nil members are dropped; composing zero
// (remaining) sinks returns nil — the free no-op — and a single sink is
// returned unwrapped.
func Multi(sinks ...Sink) Sink {
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

// Event implements Sink.
func (m multi) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Count implements Sink.
func (m multi) Count(name string, delta int64) {
	for _, s := range m {
		s.Count(name, delta)
	}
}

// PhaseEnd implements Sink.
func (m multi) PhaseEnd(p Phase, d time.Duration) {
	for _, s := range m {
		s.PhaseEnd(p, d)
	}
}
