package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRegistryExpositionIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("tycos_demo_total", "A demo counter.").Add(3)
	r.GaugeSeries("tycos_level", "A demo gauge.").Set(-7)
	lat := r.HistogramVec("tycos_demo_seconds", "A demo histogram.", "route")
	lat.With("/v1/search").Observe(0.004)
	lat.With("/v1/search").Observe(0.2)
	lat.With("/healthz").Observe(1e-7)
	r.CounterVec("tycos_codes_total", "Labeled counter.", "route", "code").
		With("/v1/search", "200").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	samples, err := CheckExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("CheckExposition rejected registry output: %v\n%s", err, out)
	}
	if samples == 0 {
		t.Fatal("no samples rendered")
	}
	for _, want := range []string{
		"# TYPE tycos_demo_total counter",
		"tycos_demo_total 3",
		"# TYPE tycos_level gauge",
		"tycos_level -7",
		"# TYPE tycos_demo_seconds histogram",
		`tycos_demo_seconds_bucket{route="/healthz",le="1e-06"} 1`,
		`tycos_demo_seconds_count{route="/v1/search"} 2`,
		`tycos_codes_total{route="/v1/search",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Gauges render without a _total suffix; empty pre-wired families render
	// nothing (no events were emitted).
	if strings.Contains(out, "tycos_search_events_total") {
		t.Error("empty family rendered")
	}
}

func TestRegistryDeterministicOutput(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Event(ClimbFinished{})
		r.Event(RestartStarted{})
		r.Count("climb.steps", 12)
		r.Count("mi.evals", 7)
		r.PhaseEnd(Phase("climb"), 3*time.Millisecond)
		r.Gauge("queue.depth", 4)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("identical registries rendered differently:\n%s\n---\n%s", a, b)
	}
}

func TestRegistrySinkMapping(t *testing.T) {
	r := NewRegistry()
	r.Event(ClimbFinished{})
	r.Event(Traced{Span: NewTrace(1, 1), Event: ClimbFinished{}}) // stamped aggregates identically
	r.Count("climb.steps", 5)
	r.PhaseEnd(Phase("climb"), 2*time.Millisecond)
	r.Gauge("queue.depth", 9)

	if got := r.events.With("ClimbFinished").Value(); got != 2 {
		t.Fatalf("event counter = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`tycos_search_events_total{kind="ClimbFinished"} 2`,
		"tycos_climb_steps_total 5",
		`tycos_search_phase_duration_seconds_count{phase="climb"} 1`,
		"tycos_queue_depth 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if _, err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("CheckExposition: %v", err)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("tycos_weird_total", "Escaping.", "v").
		With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `v="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if _, err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("CheckExposition rejected escaped output: %v\n%s", err, out)
	}
}

func TestRegistryReregisterPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("tycos_x_total", "first")
	// Same name + same shape is fine and returns the same series.
	s := r.Counter("tycos_x_total", "first")
	s.Add(2)
	if got := r.Counter("tycos_x_total", "first").Value(); got != 2 {
		t.Fatalf("re-fetched series detached: %d", got)
	}
	assertPanics(t, "kind change", func() { r.GaugeSeries("tycos_x_total", "oops") })
	assertPanics(t, "label change", func() { r.CounterVec("tycos_x_total", "oops", "route") })
	assertPanics(t, "arity mismatch", func() {
		r.CounterVec("tycos_y_total", "labeled", "route").With("a", "b")
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestSanitizeName(t *testing.T) {
	r := NewRegistry()
	for in, want := range map[string]string{
		"climb.steps":   "climb_steps",
		"queue-depth":   "queue_depth",
		"ok_name9":      "ok_name9",
		"9starts.digit": "_starts_digit",
	} {
		if got := r.sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
