package obs

import (
	"sort"
	"sync"
	"time"
)

// Metrics is a Sink that aggregates in memory: event counts by kind, counter
// totals by name, and per-phase duration distributions. Snapshot exposes the
// aggregate; the sink itself never allocates per event beyond the phase
// sample slices.
type Metrics struct {
	mu       sync.Mutex
	events   map[string]int64
	counters map[string]int64
	gauges   map[string]int64
	phases   map[Phase][]time.Duration
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics {
	return &Metrics{
		events:   make(map[string]int64),
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		phases:   make(map[Phase][]time.Duration),
	}
}

// Event implements Sink.
func (m *Metrics) Event(e Event) {
	m.mu.Lock()
	m.events[e.Kind()]++
	m.mu.Unlock()
}

// Count implements Sink.
func (m *Metrics) Count(name string, delta int64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// PhaseEnd implements Sink.
func (m *Metrics) PhaseEnd(p Phase, d time.Duration) {
	m.mu.Lock()
	m.phases[p] = append(m.phases[p], d)
	m.mu.Unlock()
}

// Gauge implements GaugeSink: the named gauge is set to value.
func (m *Metrics) Gauge(name string, value int64) {
	m.mu.Lock()
	m.gauges[name] = value
	m.mu.Unlock()
}

// CounterTotal returns the current total of the named counter.
func (m *Metrics) CounterTotal(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// GaugeValue returns the last level set for the named gauge (0 if never set).
func (m *Metrics) GaugeValue(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// EventCount returns the number of events of the given kind seen so far.
func (m *Metrics) EventCount(kind string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events[kind]
}

// PhaseStats summarises the duration distribution of one phase. Quantiles
// are nearest-rank over the recorded samples.
type PhaseStats struct {
	Count int
	Total time.Duration
	Min   time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot is a point-in-time copy of everything a Metrics has aggregated.
type Snapshot struct {
	// Events maps event kind → occurrences.
	Events map[string]int64
	// Counters maps counter name → total.
	Counters map[string]int64
	// Gauges maps gauge name → last level set.
	Gauges map[string]int64
	// Phases maps phase → duration distribution summary.
	Phases map[Phase]PhaseStats
}

// Snapshot returns a consistent copy of the aggregate. The receiver keeps
// aggregating; the snapshot is detached.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Events:   make(map[string]int64, len(m.events)),
		Counters: make(map[string]int64, len(m.counters)),
		Gauges:   make(map[string]int64, len(m.gauges)),
		Phases:   make(map[Phase]PhaseStats, len(m.phases)),
	}
	for k, v := range m.events {
		s.Events[k] = v
	}
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	for p, samples := range m.phases {
		s.Phases[p] = summarize(samples)
	}
	return s
}

// summarize computes the distribution summary of samples (len > 0 assumed
// by construction: phases are only present once a sample arrived).
func summarize(samples []time.Duration) PhaseStats {
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st := PhaseStats{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   quantile(sorted, 50),
		P99:   quantile(sorted, 99),
	}
	for _, d := range sorted {
		st.Total += d
	}
	return st
}

// quantile returns the nearest-rank p-th percentile of sorted samples:
// the smallest sample with at least p% of the distribution at or below it.
func quantile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100 // ceil(n·p/100)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
