// Package obs is the observability layer of the TYCOS search stack: typed
// search events, named counters and phase timers flow from the search into a
// Sink chosen by the caller (core.Options.Observer). The package is
// deliberately dependency-free — stdlib only, enforced by CI — so every
// other layer of the system can emit into it without import cycles.
//
// The hot-path contract is that observability must cost nothing when off:
// the search holds a nil Sink by default and guards every emission with a
// single nil check, so the instrumented binary runs within noise of the
// uninstrumented one (see BenchmarkSearchObserver in internal/core and the
// recorded numbers in DESIGN.md).
//
// Concrete sinks: TraceWriter (JSONL event trace), Metrics (in-memory
// aggregation with per-phase min/p50/p99/max), ExpvarSink (live counters on
// /debug/vars) — composable with Multi. All sinks are safe for concurrent
// use, which a multi-pair sweep's workers require.
package obs

import "time"

// Phase names one timed stage of a search. Every search emits PhaseEnd once
// per phase it ran (the null-model phase only runs when significance
// correction is configured).
type Phase string

const (
	// PhaseValidate covers option validation, input finiteness checks and
	// jitter preprocessing.
	PhaseValidate Phase = "validate"
	// PhaseNullModel covers the significance null-model calibration.
	PhaseNullModel Phase = "nullmodel"
	// PhaseClimb covers the restart/climb loop — the bulk of a search.
	PhaseClimb Phase = "climb"
	// PhaseFinalize covers thresholding, top-K selection and overlap
	// resolution of the accepted candidates.
	PhaseFinalize Phase = "finalize"
)

// Window mirrors the search's time-delay window ([Start, End], Delay)
// without importing it, keeping this package dependency-free.
type Window struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Delay int `json:"delay"`
}

// Event is one typed observation from the search. The concrete types below
// are the full set; sinks type-switch on them.
type Event interface {
	// Kind returns the event's type name as it appears in traces
	// ("RestartStarted", "ClimbFinished", …).
	Kind() string
}

// RestartStarted marks the beginning of one LAHC restart: the searcher is
// about to construct an initial window at ScanFrom and climb from it.
type RestartStarted struct {
	Pair     string `json:"pair,omitempty"`
	Restart  int    `json:"restart"`
	ScanFrom int    `json:"scan_from"`
}

// Kind implements Event.
func (RestartStarted) Kind() string { return "RestartStarted" }

// ClimbFinished marks one completed climb: its local optimum, the climb's
// iteration count and the windows it evaluated (initial-window construction
// included). Interrupted climbs emit nothing — exactly one ClimbFinished is
// emitted per Stats.Restarts.
type ClimbFinished struct {
	Pair        string  `json:"pair,omitempty"`
	Restart     int     `json:"restart"`
	Window      Window  `json:"window"`
	Score       float64 `json:"score"`
	Iterations  int     `json:"iterations"`
	Evaluations int     `json:"evaluations"`
}

// Kind implements Event.
func (ClimbFinished) Kind() string { return "ClimbFinished" }

// CandidateAccepted marks a window accepted into the final result set —
// after thresholding, top-K selection and overlap resolution. Exactly one is
// emitted per returned window.
type CandidateAccepted struct {
	Pair   string  `json:"pair,omitempty"`
	Window Window  `json:"window"`
	Score  float64 `json:"score"`
}

// Kind implements Event.
func (CandidateAccepted) Kind() string { return "CandidateAccepted" }

// DirectionPruned marks one exploration direction cut by the noise theory
// (Section 6.2.2): the partition beyond the window in that direction tested
// as noise. Direction is "end-forward" or "start-backward".
type DirectionPruned struct {
	Pair      string `json:"pair,omitempty"`
	Window    Window `json:"window"`
	Direction string `json:"direction"`
}

// Kind implements Event.
func (DirectionPruned) Kind() string { return "DirectionPruned" }

// NoiseBlockSkipped marks an s_min block identified as noise during the
// initial hierarchical construction (Section 6.2.1); the accumulation it
// poisoned is discarded with it.
type NoiseBlockSkipped struct {
	Pair  string `json:"pair,omitempty"`
	Block Window `json:"block"`
}

// Kind implements Event.
func (NoiseBlockSkipped) Kind() string { return "NoiseBlockSkipped" }

// PairStarted marks one search attempt beginning inside a multi-pair sweep.
// Retried pairs emit one PairStarted per attempt.
type PairStarted struct {
	Pair    string `json:"pair"`
	Attempt int    `json:"attempt"`
	Index   int    `json:"index"`
	Total   int    `json:"total"`
}

// Kind implements Event.
func (PairStarted) Kind() string { return "PairStarted" }

// PairFinished marks one pair's resolution inside a multi-pair sweep:
// searched (possibly after retries), restored from a checkpoint, or failed.
// Attempt is the attempt count consumed (0 for checkpoint restores).
type PairFinished struct {
	Pair           string        `json:"pair"`
	Attempt        int           `json:"attempt"`
	Index          int           `json:"index"`
	Total          int           `json:"total"`
	Windows        int           `json:"windows"`
	Partial        bool          `json:"partial,omitempty"`
	FromCheckpoint bool          `json:"from_checkpoint,omitempty"`
	Err            string        `json:"err,omitempty"`
	Duration       time.Duration `json:"duration_ns"`
}

// Kind implements Event.
func (PairFinished) Kind() string { return "PairFinished" }

// Sink receives the search's observations. Implementations must be safe for
// concurrent use: a sweep shares one Sink across all of its workers. Sinks
// must not block — the search calls them inline.
//
// The search only ever touches a Sink behind a nil check, so a nil Sink is
// the (free) no-op default.
type Sink interface {
	// Event delivers one typed search event.
	Event(e Event)
	// Count adds delta to the named monotonic counter. The search emits its
	// counter totals once at the end of each search, not per increment, so
	// Count is never on the hot path.
	Count(name string, delta int64)
	// PhaseEnd records that one run of phase p took d.
	PhaseEnd(p Phase, d time.Duration)
}
