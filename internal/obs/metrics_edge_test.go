package obs

import (
	"expvar"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSnapshotEmpty(t *testing.T) {
	s := NewMetrics().Snapshot()
	if len(s.Events) != 0 || len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Phases) != 0 {
		t.Fatalf("empty metrics produced a non-empty snapshot: %+v", s)
	}
}

func TestSnapshotQuantileSingleSample(t *testing.T) {
	m := NewMetrics()
	m.PhaseEnd(Phase("climb"), 7*time.Millisecond)
	st := m.Snapshot().Phases[Phase("climb")]
	want := 7 * time.Millisecond
	if st.Count != 1 || st.Min != want || st.P50 != want || st.P99 != want || st.Max != want || st.Total != want {
		t.Fatalf("single-sample stats = %+v, want all %v", st, want)
	}
}

func TestSnapshotQuantileAllEqual(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 50; i++ {
		m.PhaseEnd(Phase("climb"), 3*time.Millisecond)
	}
	st := m.Snapshot().Phases[Phase("climb")]
	want := 3 * time.Millisecond
	if st.Min != want || st.P50 != want || st.P99 != want || st.Max != want {
		t.Fatalf("all-equal stats = %+v, want all %v", st, want)
	}
	if st.Total != 50*want {
		t.Fatalf("total = %v, want %v", st.Total, 50*want)
	}
}

func TestSnapshotQuantileNearestRank(t *testing.T) {
	m := NewMetrics()
	// 100 distinct samples 1ms..100ms, inserted out of order.
	for i := 100; i >= 1; i-- {
		m.PhaseEnd(Phase("climb"), time.Duration(i)*time.Millisecond)
	}
	st := m.Snapshot().Phases[Phase("climb")]
	if st.P50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", st.P50)
	}
	if st.P99 != 99*time.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", st.P99)
	}
	if st.Min != time.Millisecond || st.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", st.Min, st.Max)
	}

	// Two samples: nearest-rank P50 is the smaller one (ceil(2·0.5) = rank 1).
	m2 := NewMetrics()
	m2.PhaseEnd(Phase("x"), 1*time.Millisecond)
	m2.PhaseEnd(Phase("x"), 9*time.Millisecond)
	st2 := m2.Snapshot().Phases[Phase("x")]
	if st2.P50 != time.Millisecond {
		t.Fatalf("two-sample P50 = %v, want 1ms", st2.P50)
	}
	if st2.P99 != 9*time.Millisecond {
		t.Fatalf("two-sample P99 = %v, want 9ms", st2.P99)
	}
}

// TestMetricsSnapshotHammer drives every Sink method and Snapshot from many
// goroutines at once; run under -race it is the aggregator's concurrency
// regression test, and the final totals check that no update was lost.
func TestMetricsSnapshotHammer(t *testing.T) {
	m := NewMetrics()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Event(ClimbFinished{Restart: i})
				m.Count("steps", 2)
				m.Gauge("depth", int64(i))
				m.PhaseEnd(Phase("climb"), time.Duration(i)*time.Microsecond)
				if i%50 == 0 {
					s := m.Snapshot()
					if got := s.Phases[Phase("climb")]; got.Count > 0 && got.Min > got.Max {
						t.Errorf("inconsistent snapshot: %+v", got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	if got := s.Events["ClimbFinished"]; got != workers*perWorker {
		t.Fatalf("events = %d, want %d", got, workers*perWorker)
	}
	if got := s.Counters["steps"]; got != 2*workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := s.Phases[Phase("climb")].Count; got != workers*perWorker {
		t.Fatalf("phase samples = %d, want %d", got, workers*perWorker)
	}
	if _, ok := s.Gauges["depth"]; !ok {
		t.Fatal("gauge missing from snapshot")
	}
}

// TestExpvarGaugeReuse pins the allocation fix: setting the same gauge twice
// must reuse the published expvar.Int, not churn a fresh one per call.
func TestExpvarGaugeReuse(t *testing.T) {
	s := NewExpvarSink("test.gauge.reuse")
	s.Gauge("depth", 3)
	first, ok := s.m.Get("gauges.depth").(*expvar.Int)
	if !ok || first == nil {
		t.Fatalf("gauge not published as *expvar.Int: %#v", s.m.Get("gauges.depth"))
	}
	s.Gauge("depth", 8)
	second := s.m.Get("gauges.depth").(*expvar.Int)
	if first != second {
		t.Fatal("second Gauge call replaced the expvar.Int instead of reusing it")
	}
	if got := second.Value(); got != 8 {
		t.Fatalf("gauge value = %d, want 8", got)
	}
	// Steady state costs at most the key concatenation — no new expvar.Int,
	// no map entry churn.
	if n := testing.AllocsPerRun(100, func() { s.Gauge("depth", 5) }); n > 1 {
		t.Fatalf("steady-state Gauge allocates %v times per call, want at most 1", n)
	}
}

// TestSnapshotDetached guards against snapshot aliasing: mutating the source
// after Snapshot must not change the snapshot.
func TestSnapshotDetached(t *testing.T) {
	m := NewMetrics()
	m.Count("steps", 1)
	m.PhaseEnd(Phase("climb"), time.Millisecond)
	s := m.Snapshot()
	m.Count("steps", 100)
	m.PhaseEnd(Phase("climb"), time.Hour)
	if s.Counters["steps"] != 1 {
		t.Fatalf("snapshot counter mutated: %d", s.Counters["steps"])
	}
	if s.Phases[Phase("climb")].Max != time.Millisecond {
		t.Fatalf("snapshot phase mutated: %+v", s.Phases[Phase("climb")])
	}
	_ = fmt.Sprintf("%+v", s) // snapshots must be printable (no private state)
}
