package obs

import (
	"strings"
	"testing"
)

const validExposition = `# HELP tycos_requests_total Requests served.
# TYPE tycos_requests_total counter
tycos_requests_total{route="/v1/search"} 4
tycos_requests_total{route="/healthz"} 10
# HELP tycos_queue_depth Queue depth.
# TYPE tycos_queue_depth gauge
tycos_queue_depth -2
# HELP tycos_latency_seconds Request latency.
# TYPE tycos_latency_seconds histogram
tycos_latency_seconds_bucket{le="0.001"} 1
tycos_latency_seconds_bucket{le="0.01"} 3
tycos_latency_seconds_bucket{le="+Inf"} 5
tycos_latency_seconds_sum 0.42
tycos_latency_seconds_count 5
`

func TestCheckExpositionValid(t *testing.T) {
	samples, err := CheckExposition(strings.NewReader(validExposition))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if samples != 8 {
		t.Fatalf("counted %d samples, want 8", samples)
	}
}

func TestCheckExpositionViolations(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantErr string
	}{
		{
			"sample without HELP/TYPE",
			"tycos_x_total 1\n",
			"no preceding HELP/TYPE",
		},
		{
			"sample before its TYPE",
			"# HELP tycos_x_total x\ntycos_x_total 1\n# TYPE tycos_x_total counter\n",
			"no preceding HELP/TYPE",
		},
		{
			"sample with TYPE but no HELP",
			"# TYPE tycos_x_total counter\ntycos_x_total 1\n",
			"missing HELP or TYPE",
		},
		{
			"HELP after TYPE",
			"# TYPE tycos_x_total counter\n# HELP tycos_x_total x\ntycos_x_total 1\n",
			"after its TYPE",
		},
		{
			"duplicate TYPE",
			"# HELP tycos_x_total x\n# TYPE tycos_x_total counter\n# TYPE tycos_x_total counter\n",
			"duplicate TYPE",
		},
		{
			"unknown type",
			"# HELP tycos_x_total x\n# TYPE tycos_x_total enum\n",
			"unknown metric type",
		},
		{
			"negative counter",
			"# HELP tycos_x_total x\n# TYPE tycos_x_total counter\ntycos_x_total -1\n",
			"negative value",
		},
		{
			"non-increasing le bounds",
			"# HELP tycos_h h\n# TYPE tycos_h histogram\n" +
				`tycos_h_bucket{le="0.01"} 1` + "\n" +
				`tycos_h_bucket{le="0.001"} 2` + "\n" +
				`tycos_h_bucket{le="+Inf"} 2` + "\n" +
				"tycos_h_sum 1\ntycos_h_count 2\n",
			"not strictly increasing",
		},
		{
			"cumulative counts decrease",
			"# HELP tycos_h h\n# TYPE tycos_h histogram\n" +
				`tycos_h_bucket{le="0.001"} 3` + "\n" +
				`tycos_h_bucket{le="0.01"} 2` + "\n" +
				`tycos_h_bucket{le="+Inf"} 3` + "\n" +
				"tycos_h_sum 1\ntycos_h_count 3\n",
			"counts decrease",
		},
		{
			"missing +Inf bucket",
			"# HELP tycos_h h\n# TYPE tycos_h histogram\n" +
				`tycos_h_bucket{le="0.001"} 1` + "\n" +
				`tycos_h_bucket{le="0.01"} 2` + "\n" +
				"tycos_h_sum 1\ntycos_h_count 2\n",
			"want +Inf",
		},
		{
			"_count disagrees with +Inf bucket",
			"# HELP tycos_h h\n# TYPE tycos_h histogram\n" +
				`tycos_h_bucket{le="+Inf"} 5` + "\n" +
				"tycos_h_sum 1\ntycos_h_count 4\n",
			"_count",
		},
		{
			"missing _count",
			"# HELP tycos_h h\n# TYPE tycos_h histogram\n" +
				`tycos_h_bucket{le="+Inf"} 5` + "\n" +
				"tycos_h_sum 1\n",
			"missing _count",
		},
		{
			"bucket without le",
			"# HELP tycos_h h\n# TYPE tycos_h histogram\n" +
				`tycos_h_bucket{route="/x"} 5` + "\n",
			"missing le",
		},
		{
			"bare sample on histogram family",
			"# HELP tycos_h h\n# TYPE tycos_h histogram\ntycos_h 5\n",
			"bare sample",
		},
		{
			"malformed sample line",
			"# HELP tycos_x_total x\n# TYPE tycos_x_total counter\ntycos_x_total\n",
			"malformed sample",
		},
		{
			"unparseable value",
			"# HELP tycos_x_total x\n# TYPE tycos_x_total counter\ntycos_x_total banana\n",
			"bad sample value",
		},
		{
			"non-finite value",
			"# HELP tycos_g g\n# TYPE tycos_g gauge\ntycos_g NaN\n",
			"non-finite",
		},
		{
			"unterminated label set",
			"# HELP tycos_x_total x\n# TYPE tycos_x_total counter\n" + `tycos_x_total{route="/x" 1` + "\n",
			"malformed label",
		},
		{
			"invalid metric name",
			"# HELP tycos_x x\n# TYPE tycos_x counter\n9bad 1\n",
			"invalid metric name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CheckExposition(strings.NewReader(tc.payload))
			if err == nil {
				t.Fatalf("accepted invalid payload:\n%s", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestCheckExpositionToleratesTimestampsAndBlankLines(t *testing.T) {
	payload := "# HELP tycos_x_total x\n# TYPE tycos_x_total counter\n\ntycos_x_total 3 1700000000000\n"
	if _, err := CheckExposition(strings.NewReader(payload)); err != nil {
		t.Fatalf("timestamped sample rejected: %v", err)
	}
}

func TestParseSampleEscapes(t *testing.T) {
	name, labels, value, err := parseSample(`tycos_x{v="a\"b\\c\nd",w="plain"} 2.5`)
	if err != nil {
		t.Fatalf("parseSample: %v", err)
	}
	if name != "tycos_x" || value != 2.5 {
		t.Fatalf("got name=%q value=%v", name, value)
	}
	if labels["v"] != "a\"b\\c\nd" || labels["w"] != "plain" {
		t.Fatalf("labels = %#v", labels)
	}
}
