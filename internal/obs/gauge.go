package obs

// GaugeSink is the optional extension a Sink may implement to receive
// point-in-time levels — queue depth, in-flight requests, drain state —
// alongside the monotonic counters of the base interface. It is a separate
// interface rather than a Sink method so existing Sink implementations
// (including ones outside this repository) keep compiling.
type GaugeSink interface {
	// Gauge sets the named gauge to value, replacing the previous level.
	Gauge(name string, value int64)
}

// SetGauge forwards a gauge level to s when it supports gauges; other sinks
// (and nil) ignore it. Multi-composed sinks forward to every member that
// implements GaugeSink.
func SetGauge(s Sink, name string, value int64) {
	if gs, ok := s.(GaugeSink); ok {
		gs.Gauge(name, value)
	}
}

// Gauge implements GaugeSink for multi by forwarding to every member that
// supports gauges.
func (m multi) Gauge(name string, value int64) {
	for _, s := range m {
		if gs, ok := s.(GaugeSink); ok {
			gs.Gauge(name, value)
		}
	}
}
