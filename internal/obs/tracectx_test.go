package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"testing"
	"time"
)

// captureSink records every call it receives, for asserting what a wrapper
// forwarded.
type captureSink struct {
	events  []Event
	counts  map[string]int64
	phases  []Phase
	spans   []SpanContext // span column of SpanPhaseEnd calls
	gauges  map[string]int64
	spanful bool // implement SpanPhaseSink?
}

func newCaptureSink(spanful bool) *captureSink {
	return &captureSink{counts: map[string]int64{}, gauges: map[string]int64{}, spanful: spanful}
}

func (c *captureSink) Event(e Event)                  { c.events = append(c.events, e) }
func (c *captureSink) Count(name string, delta int64) { c.counts[name] += delta }
func (c *captureSink) PhaseEnd(p Phase, d time.Duration) {
	c.phases = append(c.phases, p)
	c.spans = append(c.spans, SpanContext{})
}
func (c *captureSink) Gauge(name string, value int64) { c.gauges[name] = value }

// spanCaptureSink adds SpanPhaseSink to captureSink.
type spanCaptureSink struct{ captureSink }

func (c *spanCaptureSink) SpanPhaseEnd(sc SpanContext, p Phase, d time.Duration) {
	c.phases = append(c.phases, p)
	c.spans = append(c.spans, sc)
}

func TestNewTraceDeterministic(t *testing.T) {
	a := NewTrace(42, 7)
	b := NewTrace(42, 7)
	if a != b {
		t.Fatalf("NewTrace not deterministic: %+v vs %+v", a, b)
	}
	if !a.Valid() {
		t.Fatalf("root span should be valid: %+v", a)
	}
	if a.Parent != 0 {
		t.Fatalf("root span has parent %x, want 0", a.Parent)
	}
	// Distinct sequence numbers and seeds give distinct traces.
	seen := map[uint64]bool{}
	for seq := uint64(1); seq <= 100; seq++ {
		id := NewTrace(42, seq).TraceID
		if seen[id] {
			t.Fatalf("trace ID collision at seq %d", seq)
		}
		seen[id] = true
	}
	if NewTrace(1, 1).TraceID == NewTrace(2, 1).TraceID {
		t.Fatal("different seeds produced the same trace ID")
	}
}

func TestChildDeterministic(t *testing.T) {
	root := NewTrace(1, 1)
	a := root.Child("search")
	b := root.Child("search")
	if a != b {
		t.Fatalf("Child not deterministic: %+v vs %+v", a, b)
	}
	if a.TraceID != root.TraceID {
		t.Fatalf("child changed trace ID: %x vs %x", a.TraceID, root.TraceID)
	}
	if a.Parent != root.SpanID {
		t.Fatalf("child parent %x, want root span %x", a.Parent, root.SpanID)
	}
	if !a.Valid() {
		t.Fatalf("child should be valid: %+v", a)
	}
	if other := root.Child("queue.wait"); other.SpanID == a.SpanID {
		t.Fatal("differently named children share a span ID")
	}
}

func TestSamplerRatios(t *testing.T) {
	ids := make([]uint64, 0, 1000)
	for seq := uint64(1); seq <= 1000; seq++ {
		ids = append(ids, NewTrace(9, seq).TraceID)
	}
	none, all := NewSampler(0), NewSampler(1)
	half := NewSampler(0.5)
	sampled := 0
	for _, id := range ids {
		if none.Sampled(id) {
			t.Fatalf("ratio 0 sampled trace %x", id)
		}
		if !all.Sampled(id) {
			t.Fatalf("ratio 1 rejected trace %x", id)
		}
		if half.Sampled(id) {
			sampled++
		}
	}
	// 0.5 over 1000 well-mixed IDs: allow a generous band around 500.
	if sampled < 350 || sampled > 650 {
		t.Fatalf("ratio 0.5 sampled %d of 1000", sampled)
	}
	// Out-of-range ratios clamp rather than misbehave.
	if NewSampler(-3).Sampled(ids[0]) {
		t.Fatal("negative ratio sampled a trace")
	}
	if !NewSampler(7).Sampled(ids[0]) {
		t.Fatal("ratio > 1 rejected a trace")
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	root := NewTrace(3, 1)
	ctx := ContextWithSpan(context.Background(), root)
	got, ok := SpanFromContext(ctx)
	if !ok || got != root {
		t.Fatalf("SpanFromContext = %+v, %v; want %+v, true", got, ok, root)
	}
	if _, ok := SpanFromContext(context.Background()); ok {
		t.Fatal("empty context reported a span")
	}
	// An invalid span stored in the context is treated as absent.
	if _, ok := SpanFromContext(ContextWithSpan(context.Background(), SpanContext{})); ok {
		t.Fatal("invalid span reported as present")
	}
}

func TestWithSpanPassthrough(t *testing.T) {
	root := NewTrace(1, 1)
	if got := WithSpan(nil, root); got != nil {
		t.Fatalf("WithSpan(nil, valid) = %v, want nil", got)
	}
	next := newCaptureSink(false)
	if got := WithSpan(next, SpanContext{}); got != Sink(next) {
		t.Fatal("WithSpan with invalid span should return next unchanged")
	}
	if got := WithSpan(next, root); got == Sink(next) {
		t.Fatal("WithSpan with valid span should wrap")
	}
}

func TestWithSpanStamping(t *testing.T) {
	root := NewTrace(1, 1)
	next := newCaptureSink(false)
	s := WithSpan(next, root)

	s.Event(RestartStarted{Restart: 1})
	if len(next.events) != 1 {
		t.Fatalf("got %d events, want 1", len(next.events))
	}
	tr, ok := next.events[0].(Traced)
	if !ok {
		t.Fatalf("event not stamped: %T", next.events[0])
	}
	if tr.Span != root {
		t.Fatalf("stamped span %+v, want %+v", tr.Span, root)
	}
	if tr.Kind() != "RestartStarted" {
		t.Fatalf("Traced.Kind() = %q, want RestartStarted", tr.Kind())
	}

	// Already-stamped events pass through untouched: the innermost span wins.
	inner := root.Child("inner")
	s.Event(Traced{Span: inner, Event: ClimbFinished{}})
	tr2 := next.events[1].(Traced)
	if tr2.Span != inner {
		t.Fatalf("re-stamping replaced inner span: %+v", tr2.Span)
	}

	// Counters pass through unstamped; gauges forward.
	s.Count("steps", 5)
	if next.counts["steps"] != 5 {
		t.Fatalf("count not forwarded: %v", next.counts)
	}
	SetGauge(s, "depth", 3)
	if next.gauges["depth"] != 3 {
		t.Fatalf("gauge not forwarded: %v", next.gauges)
	}

	// PhaseEnd downgrades for a span-unaware sink...
	s.PhaseEnd(Phase("climb"), time.Millisecond)
	if len(next.phases) != 1 || next.spans[0].Valid() {
		t.Fatalf("span-unaware sink got %v / %v", next.phases, next.spans)
	}
	// ...and carries the span for a span-aware one.
	aware := &spanCaptureSink{captureSink: *newCaptureSink(true)}
	WithSpan(aware, root).PhaseEnd(Phase("climb"), time.Millisecond)
	if len(aware.phases) != 1 || aware.spans[0] != root {
		t.Fatalf("span-aware sink got %v / %v", aware.phases, aware.spans)
	}
}

func TestBaseUnwrapsNestedTraced(t *testing.T) {
	e := ClimbFinished{Restart: 2}
	wrapped := Traced{Span: NewTrace(1, 1), Event: Traced{Span: NewTrace(1, 2), Event: e}}
	if got := Base(wrapped); got != Event(e) {
		t.Fatalf("Base = %#v, want %#v", got, e)
	}
	if got := Base(e); got != Event(e) {
		t.Fatalf("Base of plain event = %#v", got)
	}
}

func TestSpanRecorderBoundAndUnwrap(t *testing.T) {
	r := NewSpanRecorder(2)
	root := NewTrace(1, 1)
	r.Event(Traced{Span: root, Event: RestartStarted{Restart: 1}})
	r.SpanPhaseEnd(root.Child("climb"), Phase("climb"), time.Millisecond)
	r.Event(ClimbFinished{}) // over the bound
	r.PhaseEnd(Phase("merge"), time.Millisecond)

	events, dropped := r.Events()
	if len(events) != 2 || dropped != 2 {
		t.Fatalf("got %d events, %d dropped; want 2, 2", len(events), dropped)
	}
	if events[0].Span != root {
		t.Fatalf("first event span %+v, want root", events[0].Span)
	}
	if _, ok := events[0].Event.(RestartStarted); !ok {
		t.Fatalf("first event not unwrapped: %T", events[0].Event)
	}
	pf, ok := events[1].Event.(PhaseFinished)
	if !ok || pf.Phase != Phase("climb") {
		t.Fatalf("second event = %#v, want climb PhaseFinished", events[1].Event)
	}
	if events[1].Span.Parent != root.SpanID {
		t.Fatalf("phase span parent %x, want %x", events[1].Span.Parent, root.SpanID)
	}

	// Counters are ignored, not recorded.
	r2 := NewSpanRecorder(0)
	r2.Count("steps", 1)
	if events, _ := r2.Events(); len(events) != 0 {
		t.Fatalf("counter was recorded: %v", events)
	}
}

func TestTraceWriterStampsSpans(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.now = fixedClock()

	root := NewTrace(5, 1)
	child := root.Child("search")
	tw.Event(Traced{Span: child, Event: ClimbFinished{Restart: 1}})
	tw.Event(RestartStarted{Restart: 2}) // unstamped
	tw.SpanPhaseEnd(child, Phase("climb"), 3*time.Millisecond)
	tw.PhaseEnd(Phase("merge"), time.Millisecond) // unstamped
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	type line struct {
		Event  string          `json:"event"`
		Trace  string          `json:"trace"`
		Span   string          `json:"span"`
		Parent string          `json:"parent"`
		Data   json.RawMessage `json:"data"`
	}
	var lines []line
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}

	wantTrace := hexUint(root.TraceID)
	if lines[0].Trace != wantTrace || lines[0].Span != hexUint(child.SpanID) || lines[0].Parent != hexUint(root.SpanID) {
		t.Fatalf("stamped event line %+v, want trace=%s span=%s parent=%s",
			lines[0], wantTrace, hexUint(child.SpanID), hexUint(root.SpanID))
	}
	if lines[1].Trace != "" || lines[1].Span != "" || lines[1].Parent != "" {
		t.Fatalf("unstamped event carries span fields: %+v", lines[1])
	}
	if lines[2].Event != "PhaseFinished" || lines[2].Trace != wantTrace {
		t.Fatalf("SpanPhaseEnd line %+v, want stamped PhaseFinished", lines[2])
	}
	if lines[3].Event != "PhaseFinished" || lines[3].Trace != "" {
		t.Fatalf("plain PhaseEnd line %+v, want unstamped PhaseFinished", lines[3])
	}
}

func hexUint(v uint64) string { return strconv.FormatUint(v, 16) }
