package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time { return t }
}

func TestTraceWriterSchema(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.now = fixedClock()

	tw.Event(RestartStarted{Pair: "x/y", Restart: 0, ScanFrom: 0})
	tw.Event(ClimbFinished{Pair: "x/y", Restart: 0, Window: Window{Start: 0, End: 9, Delay: 1}, Score: 0.5, Iterations: 7, Evaluations: 40})
	tw.Event(CandidateAccepted{Pair: "x/y", Window: Window{Start: 0, End: 9, Delay: 1}, Score: 0.5})
	tw.PhaseEnd(PhaseClimb, 1500*time.Microsecond)
	tw.Count("windows_evaluated", 40)
	tw.Count("windows_evaluated", 2)
	tw.Count("restarts", 1)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 trace lines, got %d:\n%s", len(lines), buf.String())
	}
	type line struct {
		TS    string          `json:"ts"`
		Event string          `json:"event"`
		Data  json.RawMessage `json:"data"`
	}
	var parsed []line
	for i, l := range lines {
		var ln line
		if err := json.Unmarshal([]byte(l), &ln); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, l)
		}
		if _, err := time.Parse(time.RFC3339Nano, ln.TS); err != nil {
			t.Errorf("line %d: bad timestamp %q: %v", i, ln.TS, err)
		}
		parsed = append(parsed, ln)
	}
	wantKinds := []string{"RestartStarted", "ClimbFinished", "CandidateAccepted", "PhaseFinished", "Counters"}
	for i, want := range wantKinds {
		if parsed[i].Event != want {
			t.Errorf("line %d: event %q, want %q", i, parsed[i].Event, want)
		}
	}
	var climb ClimbFinished
	if err := json.Unmarshal(parsed[1].Data, &climb); err != nil {
		t.Fatal(err)
	}
	if climb.Window != (Window{Start: 0, End: 9, Delay: 1}) || climb.Evaluations != 40 {
		t.Errorf("ClimbFinished round-trip mangled: %+v", climb)
	}
	var phase struct {
		Phase      string `json:"phase"`
		DurationNS int64  `json:"duration_ns"`
	}
	if err := json.Unmarshal(parsed[3].Data, &phase); err != nil {
		t.Fatal(err)
	}
	if phase.Phase != "climb" || phase.DurationNS != 1500000 {
		t.Errorf("PhaseFinished = %+v", phase)
	}
	var counts map[string]int64
	if err := json.Unmarshal(parsed[4].Data, &counts); err != nil {
		t.Fatal(err)
	}
	if counts["windows_evaluated"] != 42 || counts["restarts"] != 1 {
		t.Errorf("Counters = %v", counts)
	}
}

func TestTraceWriterCloseWithoutCountersOmitsSummary(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Event(RestartStarted{})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Counters") {
		t.Errorf("counterless trace still has a Counters line:\n%s", buf.String())
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(&failingWriter{})
	// Overflow the 4K bufio buffer so the error surfaces.
	for i := 0; i < 200; i++ {
		tw.Event(RestartStarted{Pair: strings.Repeat("x", 64)})
	}
	if err := tw.Close(); err == nil {
		t.Fatal("write error not surfaced by Close")
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 3; i++ {
		m.Event(RestartStarted{})
	}
	m.Event(ClimbFinished{})
	m.Count("evals", 40)
	m.Count("evals", 2)
	for _, d := range []time.Duration{5, 1, 9, 3, 7} {
		m.PhaseEnd(PhaseClimb, d*time.Millisecond)
	}

	if got := m.EventCount("RestartStarted"); got != 3 {
		t.Errorf("EventCount(RestartStarted) = %d", got)
	}
	s := m.Snapshot()
	if s.Events["ClimbFinished"] != 1 || s.Counters["evals"] != 42 {
		t.Errorf("snapshot = %+v", s)
	}
	ph := s.Phases[PhaseClimb]
	if ph.Count != 5 || ph.Min != 1*time.Millisecond || ph.Max != 9*time.Millisecond {
		t.Errorf("phase stats = %+v", ph)
	}
	if ph.P50 != 5*time.Millisecond {
		t.Errorf("p50 = %v, want 5ms", ph.P50)
	}
	if ph.P99 != 9*time.Millisecond {
		t.Errorf("p99 = %v, want 9ms", ph.P99)
	}
	if ph.Total != 25*time.Millisecond {
		t.Errorf("total = %v, want 25ms", ph.Total)
	}
	// The snapshot is detached from further aggregation.
	m.Count("evals", 100)
	if s.Counters["evals"] != 42 {
		t.Error("snapshot mutated by later Count")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Event(PairFinished{})
				m.Count("n", 1)
				m.PhaseEnd(PhaseValidate, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Events["PairFinished"] != 800 || s.Counters["n"] != 800 || s.Phases[PhaseValidate].Count != 800 {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("empty composition must be nil")
	}
	m := NewMetrics()
	if Multi(nil, m) != Sink(m) {
		t.Error("single sink must be returned unwrapped")
	}
	m2 := NewMetrics()
	both := Multi(m, m2)
	both.Event(RestartStarted{})
	both.Count("c", 2)
	both.PhaseEnd(PhaseFinalize, time.Millisecond)
	for i, sink := range []*Metrics{m, m2} {
		s := sink.Snapshot()
		if s.Events["RestartStarted"] != 1 || s.Counters["c"] != 2 || s.Phases[PhaseFinalize].Count != 1 {
			t.Errorf("sink %d missed fan-out: %+v", i, s)
		}
	}
}

func TestExpvarSink(t *testing.T) {
	s := NewExpvarSink("tycos_test")
	s.Event(ClimbFinished{})
	s.Event(ClimbFinished{})
	s.Count("evals", 5)
	s.PhaseEnd(PhaseClimb, 3*time.Millisecond)
	// Re-attaching must not panic and must accumulate into the same map.
	s2 := NewExpvarSink("tycos_test")
	s2.Count("evals", 1)

	m, ok := expvar.Get("tycos_test").(*expvar.Map)
	if !ok {
		t.Fatal("map not published")
	}
	get := func(k string) int64 {
		v, ok := m.Get(k).(*expvar.Int)
		if !ok {
			t.Fatalf("missing expvar key %q", k)
		}
		return v.Value()
	}
	if get("events.ClimbFinished") != 2 {
		t.Errorf("events.ClimbFinished = %d", get("events.ClimbFinished"))
	}
	if get("counters.evals") != 6 {
		t.Errorf("counters.evals = %d", get("counters.evals"))
	}
	if get("phase.climb.count") != 1 || get("phase.climb.ns") != int64(3*time.Millisecond) {
		t.Errorf("phase totals wrong: count=%d ns=%d", get("phase.climb.count"), get("phase.climb.ns"))
	}
}

func TestEventKinds(t *testing.T) {
	kinds := map[Event]string{
		RestartStarted{}:    "RestartStarted",
		ClimbFinished{}:     "ClimbFinished",
		CandidateAccepted{}: "CandidateAccepted",
		DirectionPruned{}:   "DirectionPruned",
		NoiseBlockSkipped{}: "NoiseBlockSkipped",
		PairStarted{}:       "PairStarted",
		PairFinished{}:      "PairFinished",
	}
	for e, want := range kinds {
		if e.Kind() != want {
			t.Errorf("%T.Kind() = %q, want %q", e, e.Kind(), want)
		}
	}
}

func TestTraceWriterFlushDrainsBuffer(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf) // extra layer to prove Flush reaches buf
	tw := NewTraceWriter(bw)
	tw.Event(RestartStarted{})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	if buf.Len() == 0 {
		t.Error("Flush left the line buffered")
	}
}

func TestGauges(t *testing.T) {
	m := NewMetrics()
	var s Sink = Multi(m, NewTraceWriter(io.Discard))
	SetGauge(s, "queue_depth", 3)
	SetGauge(s, "queue_depth", 7) // replaces, does not add
	SetGauge(s, "inflight", 1)
	if got := m.GaugeValue("queue_depth"); got != 7 {
		t.Errorf("queue_depth = %d, want 7 (gauges replace)", got)
	}
	snap := m.Snapshot()
	if snap.Gauges["inflight"] != 1 || snap.Gauges["queue_depth"] != 7 {
		t.Errorf("snapshot gauges = %v", snap.Gauges)
	}
	// A sink with no gauge support (and nil) must be ignored, not panic.
	SetGauge(NewTraceWriter(io.Discard), "x", 1)
	SetGauge(nil, "x", 1)

	ev := NewExpvarSink("gauge_test")
	ev.Gauge("depth", 5)
	ev.Gauge("depth", 2)
	if got := expvar.Get("gauge_test").(*expvar.Map).Get("gauges.depth").String(); got != "2" {
		t.Errorf("expvar gauge = %s, want 2", got)
	}
}
