package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceWriter is a Sink that writes a JSONL event trace: one JSON object per
// line, in emission order. The schema is
//
//	{"ts":"<RFC3339Nano UTC>","event":"<kind>","data":{...}}
//
// where <kind> is the Event.Kind() of the payload ("RestartStarted",
// "ClimbFinished", …), "PhaseFinished" for phase timings with data
// {"phase":"climb","duration_ns":123}, or — as the final line written by
// Close — "Counters" with data {"<name>":<total>,...} holding every counter
// accumulated over the trace's lifetime, keys sorted.
//
// Events arriving stamped (wrapped in Traced, or via SpanPhaseEnd) add hex
// trace/span/parent fields to the line:
//
//	{"ts":...,"event":"ClimbFinished","trace":"9ab...","span":"41c...","parent":"7fe...","data":{...}}
//
// so every line of one request can be grepped by its trace ID.
//
// Writes are buffered; call Close (or Flush) to drain them. The first write
// or marshal error is sticky and returned by Flush/Close; later lines are
// dropped rather than interleaved with a torn line.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	counts map[string]int64
	err    error
	now    func() time.Time // test hook; defaults to time.Now
}

// NewTraceWriter returns a TraceWriter emitting to w. The caller keeps
// ownership of w: Close flushes the trace but does not close w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{
		bw:     bufio.NewWriter(w),
		counts: make(map[string]int64),
		now:    time.Now,
	}
}

// traceLine is the on-disk shape of one trace line. Trace/span/parent are
// lower-case hex IDs, omitted for unstamped lines so untraced runs keep the
// original schema byte for byte.
type traceLine struct {
	TS     string `json:"ts"`
	Event  string `json:"event"`
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	Data   any    `json:"data,omitempty"`
}

// Event implements Sink. A Traced event is unwrapped: the base event becomes
// the line's kind and data, the span its trace/span/parent columns.
func (t *TraceWriter) Event(e Event) {
	var sc SpanContext
	if tr, ok := e.(Traced); ok {
		sc, e = tr.Span, Base(tr.Event)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.writeSpan(e.Kind(), sc, e)
}

// phaseData is the payload of a "PhaseFinished" line.
type phaseData struct {
	Phase      string `json:"phase"`
	DurationNS int64  `json:"duration_ns"`
}

// PhaseEnd implements Sink.
func (t *TraceWriter) PhaseEnd(p Phase, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.write("PhaseFinished", phaseData{Phase: string(p), DurationNS: int64(d)})
}

// SpanPhaseEnd implements SpanPhaseSink: the phase timing line carries the
// span that produced it.
func (t *TraceWriter) SpanPhaseEnd(sc SpanContext, p Phase, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.writeSpan("PhaseFinished", sc, phaseData{Phase: string(p), DurationNS: int64(d)})
}

// Count implements Sink. Counter deltas are accumulated, not written per
// call; Close emits the totals as the trace's final "Counters" line.
func (t *TraceWriter) Count(name string, delta int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[name] += delta
}

// write appends one unstamped line; the caller holds t.mu.
func (t *TraceWriter) write(kind string, data any) {
	t.writeSpan(kind, SpanContext{}, data)
}

// writeSpan appends one line, stamping trace/span/parent when sc is valid;
// the caller holds t.mu.
func (t *TraceWriter) writeSpan(kind string, sc SpanContext, data any) {
	if t.err != nil {
		return
	}
	line := traceLine{
		TS:    t.now().UTC().Format(time.RFC3339Nano),
		Event: kind,
		Data:  data,
	}
	if sc.Valid() {
		line.Trace = strconv.FormatUint(sc.TraceID, 16)
		line.Span = strconv.FormatUint(sc.SpanID, 16)
		if sc.Parent != 0 {
			line.Parent = strconv.FormatUint(sc.Parent, 16)
		}
	}
	b, err := json.Marshal(line)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Flush drains buffered lines to the underlying writer and returns the
// sticky error, if any.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *TraceWriter) flushLocked() error {
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close writes the accumulated counter totals as a final "Counters" line
// (keys sorted, omitted when no counter was touched), flushes, and returns
// the sticky error. It does not close the underlying writer.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.counts) > 0 {
		// json.Marshal sorts map keys, but an ordered copy keeps the line
		// deterministic even if the totals are mutated concurrently.
		names := make([]string, 0, len(t.counts))
		for name := range t.counts {
			names = append(names, name)
		}
		sort.Strings(names)
		ordered := make(map[string]int64, len(names))
		for _, name := range names {
			ordered[name] = t.counts[name]
		}
		t.write("Counters", ordered)
		t.counts = make(map[string]int64)
	}
	return t.flushLocked()
}
