package obs

import (
	"context"
	"hash/fnv"
	"sync"
	"time"
)

// Request-scoped tracing.
//
// A SpanContext identifies one unit of work inside one request: the trace ID
// is shared by everything the request caused, span IDs name the individual
// units (HTTP handler, queue wait, the search itself), and parent links make
// the set a tree. IDs are derived deterministically — a daemon restarted
// with the same seed assigns the same trace ID to the same request sequence
// number, so chaos harnesses can compare traces across runs byte for byte.
//
// Stamping is a sink concern, not an event concern: the search keeps
// emitting its plain typed events, and WithSpan wraps the chosen Sink so
// every event passing through is wrapped in a Traced carrying the span.
// Sinks that understand spans (TraceWriter, SpanRecorder) surface them;
// sinks that don't see the same Kind() they always did. A nil sink stays
// nil through WithSpan, preserving the free no-op default.

// SpanContext locates one span inside one trace. The zero value is "not
// traced" — Valid reports false and stamping is skipped entirely.
type SpanContext struct {
	// TraceID is shared by every span of one request.
	TraceID uint64
	// SpanID identifies this span within the trace.
	SpanID uint64
	// Parent is the SpanID of the enclosing span (0 for the root).
	Parent uint64
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Child derives the deterministic child span of sc for the named unit of
// work. Equal (parent, name) pairs yield equal children, so a replayed
// request reconstructs the identical span tree; qualify the name (e.g. with
// the pair) when one parent fans out into several same-kind children.
func (sc SpanContext) Child(name string) SpanContext {
	h := fnv.New64a()
	h.Write([]byte(name))
	return SpanContext{
		TraceID: sc.TraceID,
		SpanID:  nonzeroID(mix64(sc.SpanID ^ h.Sum64())),
		Parent:  sc.SpanID,
	}
}

// NewTrace derives the deterministic root span for the seq-th request of a
// process seeded with seed. Distinct (seed, seq) pairs give independent
// trace IDs (SplitMix64 mixing), and the root span ID is itself derived from
// the trace ID so the whole tree is a pure function of (seed, seq).
func NewTrace(seed int64, seq uint64) SpanContext {
	id := nonzeroID(mix64(mix64(uint64(seed)) ^ seq))
	return SpanContext{TraceID: id, SpanID: nonzeroID(mix64(id))}
}

// mix64 is the SplitMix64 finalizer — the same bijective mixer the search
// uses for per-restart seed derivation.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nonzeroID keeps derived IDs out of the zero value's "not traced" meaning.
func nonzeroID(id uint64) uint64 {
	if id == 0 {
		return 1
	}
	return id
}

// Sampler is a deterministic head sampler: the decision is a pure function
// of the trace ID, so every participant of a trace (and every replay of the
// request) agrees on it without coordination.
type Sampler struct {
	// bits is the acceptance threshold on the top 53 bits of the trace ID,
	// in [0, 1<<53]; using the float-exact 53-bit range keeps the
	// ratio→threshold conversion free of uint64-overflow edge cases.
	bits uint64
}

// NewSampler returns a sampler accepting approximately ratio of all trace
// IDs: ≤0 samples nothing, ≥1 samples everything.
func NewSampler(ratio float64) Sampler {
	switch {
	case ratio <= 0:
		return Sampler{bits: 0}
	case ratio >= 1:
		return Sampler{bits: 1 << 53}
	default:
		return Sampler{bits: uint64(ratio * (1 << 53))}
	}
}

// Sampled reports the (deterministic) sampling decision for a trace ID.
func (s Sampler) Sampled(traceID uint64) bool { return traceID>>11 < s.bits }

// ctxKey carries a SpanContext through a context.Context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sc; the search reads it in
// SearchContext and stamps its observations with a derived child span.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext returns the span carried by ctx, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Traced wraps an event with the span that caused it. Kind delegates to the
// wrapped event, so kind-keyed sinks (Metrics, Registry) aggregate traced
// and untraced emissions identically; span-aware sinks type-assert for the
// wrapper. Use Base to unwrap before type-switching on concrete event types.
type Traced struct {
	Span  SpanContext
	Event Event
}

// Kind implements Event by delegating to the wrapped event.
func (t Traced) Kind() string { return t.Event.Kind() }

// Base returns the innermost event under any Traced wrapping; type switches
// over concrete event types should run on Base(e), not e.
func Base(e Event) Event {
	for {
		t, ok := e.(Traced)
		if !ok {
			return e
		}
		e = t.Event
	}
}

// SpanFinished marks the completion of one named span — the handler, the
// queue wait, the search. It is always emitted through a span-stamping sink,
// so the trace line carries which span finished; Duration is the span's
// wall-clock length.
type SpanFinished struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// Kind implements Event.
func (SpanFinished) Kind() string { return "SpanFinished" }

// PhaseFinished is the event form of a PhaseEnd observation; span-aware
// sinks use it to keep phase timings inside the span tree (the base Sink
// interface keeps its dedicated PhaseEnd method unchanged).
type PhaseFinished struct {
	Phase      Phase `json:"phase"`
	DurationNS int64 `json:"duration_ns"`
}

// Kind implements Event.
func (PhaseFinished) Kind() string { return "PhaseFinished" }

// SpanPhaseSink is the optional extension a Sink may implement to receive
// phase timings with the span that produced them; sinks without it get the
// plain PhaseEnd. Separate interface, same rationale as GaugeSink.
type SpanPhaseSink interface {
	SpanPhaseEnd(sc SpanContext, p Phase, d time.Duration)
}

// phaseEndSpan delivers one phase timing to s, preferring the span-aware
// form when both the span and the sink support it.
func phaseEndSpan(s Sink, sc SpanContext, p Phase, d time.Duration) {
	if sc.Valid() {
		if sp, ok := s.(SpanPhaseSink); ok {
			sp.SpanPhaseEnd(sc, p, d)
			return
		}
	}
	s.PhaseEnd(p, d)
}

// SpanPhaseEnd implements SpanPhaseSink for multi by forwarding to every
// member, downgrading to PhaseEnd for members without span support.
func (m multi) SpanPhaseEnd(sc SpanContext, p Phase, d time.Duration) {
	for _, s := range m {
		phaseEndSpan(s, sc, p, d)
	}
}

// spanSink stamps everything flowing through it with one SpanContext.
type spanSink struct {
	sc   SpanContext
	next Sink
}

// WithSpan returns a sink that stamps every event and phase timing with sc
// before forwarding to next. A nil next or invalid span returns next
// unchanged, so the no-op default stays free and double-wrapping cannot
// detach a trace. Events already stamped (Traced) pass through untouched —
// the innermost span wins, since it is the closest to the work.
func WithSpan(next Sink, sc SpanContext) Sink {
	if next == nil || !sc.Valid() {
		return next
	}
	return spanSink{sc: sc, next: next}
}

// Event implements Sink.
func (s spanSink) Event(e Event) {
	if _, ok := e.(Traced); ok {
		s.next.Event(e)
		return
	}
	s.next.Event(Traced{Span: s.sc, Event: e})
}

// Count implements Sink; counters are process totals, not per-span data.
func (s spanSink) Count(name string, delta int64) { s.next.Count(name, delta) }

// PhaseEnd implements Sink.
func (s spanSink) PhaseEnd(p Phase, d time.Duration) { phaseEndSpan(s.next, s.sc, p, d) }

// Gauge implements GaugeSink by forwarding; levels are process state.
func (s spanSink) Gauge(name string, value int64) { SetGauge(s.next, name, value) }

// SpanEvent is one observation captured by a SpanRecorder: the (possibly
// zero) span it belongs to and the plain event.
type SpanEvent struct {
	Span  SpanContext
	Event Event
}

// SpanRecorder is a bounded in-memory Sink that keeps every stamped event of
// one request so a slow-search logger can reconstruct the full span tree
// after the fact. Recording past the bound drops events (counted) instead of
// growing; counters are ignored — they are process totals, not request data.
type SpanRecorder struct {
	mu      sync.Mutex
	limit   int
	events  []SpanEvent
	dropped int
}

// NewSpanRecorder returns a recorder keeping at most limit events
// (limit ≤ 0 selects 4096).
func NewSpanRecorder(limit int) *SpanRecorder {
	if limit <= 0 {
		limit = 4096
	}
	return &SpanRecorder{limit: limit}
}

// record appends one captured observation under the bound.
func (r *SpanRecorder) record(sc SpanContext, e Event) {
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, SpanEvent{Span: sc, Event: e})
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Event implements Sink, unwrapping Traced stamps into the span column.
func (r *SpanRecorder) Event(e Event) {
	var sc SpanContext
	if t, ok := e.(Traced); ok {
		sc, e = t.Span, Base(t.Event)
	}
	r.record(sc, e)
}

// Count implements Sink (ignored; counters are not request-scoped).
func (r *SpanRecorder) Count(name string, delta int64) {}

// PhaseEnd implements Sink; unstamped phase timings are captured span-less.
func (r *SpanRecorder) PhaseEnd(p Phase, d time.Duration) {
	r.record(SpanContext{}, PhaseFinished{Phase: p, DurationNS: int64(d)})
}

// SpanPhaseEnd implements SpanPhaseSink.
func (r *SpanRecorder) SpanPhaseEnd(sc SpanContext, p Phase, d time.Duration) {
	r.record(sc, PhaseFinished{Phase: p, DurationNS: int64(d)})
}

// Events returns the captured observations in emission order plus how many
// were dropped past the bound.
func (r *SpanRecorder) Events() ([]SpanEvent, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, len(r.events))
	copy(out, r.events)
	return out, r.dropped
}
