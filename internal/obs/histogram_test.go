package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// An observation exactly on a bucket's upper bound lands in that bucket
	// (le is inclusive); just above it spills into the next.
	for i := 0; i < HistogramBuckets-1; i++ {
		h := NewHistogram()
		upper := HistogramUpper(i)
		h.Observe(upper)
		h.Observe(upper * 1.0001)
		s := h.Snapshot()
		if s.Buckets[i] != 1 {
			t.Fatalf("bucket %d (le=%v): got %d on-bound observations, want 1", i, upper, s.Buckets[i])
		}
		if s.Buckets[i+1] != 1 {
			t.Fatalf("bucket %d: observation just above %v not in next bucket", i+1, upper)
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)                   // at/below the first bound → bucket 0
	h.Observe(-1)                  // negative durations (clock weirdness) → bucket 0
	h.Observe(histMinUpper)        // exactly the first bound → bucket 0
	h.Observe(math.MaxFloat64 / 2) // beyond the last finite bound → overflow
	s := h.Snapshot()
	if s.Buckets[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", s.Buckets[0])
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", s.Overflow)
	}
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
}

func TestHistogramDropsNonFinite(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("non-finite observations recorded: count=%d sum=%v", s.Count, s.Sum)
	}
	// The sum stays usable afterwards.
	h.Observe(2.5)
	if s := h.Snapshot(); s.Count != 1 || s.Sum != 2.5 {
		t.Fatalf("after NaN: count=%d sum=%v, want 1, 2.5", s.Count, s.Sum)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(time.Millisecond) // 1e-3 s = bucket with upper 2^10µs? — just assert via bucketIndex
	s := h.Snapshot()
	want := bucketIndex(0.001)
	if s.Buckets[want] != 1 {
		t.Fatalf("1ms not in bucket %d: %v", want, s.Buckets)
	}
	if s.Sum != 0.001 {
		t.Fatalf("sum = %v, want 0.001", s.Sum)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.00042) }); n != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", n)
	}
}

func TestHistogramConcurrentCountInvariant(t *testing.T) {
	h := NewHistogram()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshots taken mid-flight must keep Count equal to the bucket totals
	// (the property the exposition's +Inf bucket == _count check relies on).
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			total := s.Overflow
			for _, b := range s.Buckets {
				total += b
			}
			if total != s.Count {
				t.Errorf("snapshot count %d != bucket total %d", s.Count, total)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("final count %d, want %d", s.Count, workers*perWorker)
	}
}
