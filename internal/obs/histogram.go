package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// HistogramBuckets is the number of finite buckets in every Histogram: upper
// bounds double from histMinUpper, so 36 buckets span 1µs to ~68719s (about
// 19 hours) — the full plausible range of request latencies and queue waits
// — in a fixed-size array that never reallocates.
const HistogramBuckets = 36

// histMinUpper is the upper bound of the first bucket, in the histogram's
// value unit (seconds for latency histograms): 1µs.
const histMinUpper = 1e-6

// Histogram is an allocation-free, concurrency-safe distribution of float64
// observations over log₂-spaced buckets. All state is a fixed array of
// atomics: Observe is a few arithmetic operations plus two atomic adds and a
// CAS loop for the sum — no locks, no allocation — so it can sit on the
// daemon's per-request path without budget concerns.
//
// The bucket layout is fixed (HistogramBuckets doublings of histMinUpper)
// rather than configurable: every histogram in the process shares one shape,
// which keeps rendering, checking and cross-metric comparison trivial, and
// log-spaced bounds put constant relative resolution (~2×) everywhere on the
// latency axis, which is what tail analysis needs.
type Histogram struct {
	// counts[i] holds observations in (upper(i-1), upper(i)]; the final
	// element is the +Inf overflow bucket. The total count is the sum of
	// the buckets — deriving it instead of keeping a separate atomic is
	// what makes a concurrent snapshot's `_count == +Inf bucket` invariant
	// hold exactly, which the Prometheus exposition checker asserts.
	counts [HistogramBuckets + 1]atomic.Int64
	// sumBits is the float64 sum of all observations, stored as bits and
	// updated by CAS so Observe never needs a lock.
	sumBits atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// HistogramUpper returns the upper bound of finite bucket i.
func HistogramUpper(i int) float64 {
	return histMinUpper * float64(uint64(1)<<uint(i))
}

// bucketIndex maps an observation to its bucket: the smallest i with
// v ≤ upper(i), or the overflow bucket past the last finite bound.
func bucketIndex(v float64) int {
	if v <= histMinUpper {
		return 0
	}
	// Past the last finite bound: overflow. Checked before the log so a huge
	// v cannot overflow v/histMinUpper to +Inf, whose int conversion is
	// platform-defined (negative on amd64) and would land in bucket 0.
	if v > HistogramUpper(HistogramBuckets-1) {
		return HistogramBuckets
	}
	// ceil(log2(v/min)); Log2 is exact on the bucket boundaries themselves
	// because they are powers of two times histMinUpper.
	i := int(math.Ceil(math.Log2(v / histMinUpper)))
	if i >= HistogramBuckets {
		return HistogramBuckets
	}
	if i < 0 {
		return 0
	}
	return i
}

// Observe records one observation. Non-finite values are dropped — a NaN
// would poison the sum forever and carries no latency information.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus base unit
// for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state, with
// per-bucket (non-cumulative) counts aligned to HistogramUpper bounds and
// the +Inf overflow in Overflow.
type HistogramSnapshot struct {
	Buckets  [HistogramBuckets]int64
	Overflow int64
	Count    int64
	Sum      float64
}

// Snapshot copies the current state. Counts are read bucket-by-bucket, so a
// snapshot taken during concurrent observation is approximately — not
// transactionally — consistent, which is all a scrape needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := 0; i < HistogramBuckets; i++ {
		s.Buckets[i] = h.counts[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Overflow = h.counts[HistogramBuckets].Load()
	s.Count += s.Overflow
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}
