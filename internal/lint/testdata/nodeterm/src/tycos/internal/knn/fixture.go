// Package knn is a tycoslint fixture impersonating the k-NN engine package
// (the virtual src root gives it the import path tycos/internal/knn, which
// is inside the nodeterm scope). It exercises the determinism traps an
// engine implementation can fall into: registry iteration over a map,
// wall-clock seeding, and global-RNG tree randomization.
package knn

import (
	"math/rand"
	"sort"
	"time"
)

type spec struct{ name string }

var registry = map[string]spec{}

// namesUnsorted ranges the registry map directly: selection order would
// change run to run.
func namesUnsorted() []string {
	var names []string
	for name := range registry { // want "map iteration order is nondeterministic"
		names = append(names, name)
	}
	return names
}

// namesSorted collects then sorts — the registry idiom the real engine
// layer uses; the post-range sort makes the order deterministic, but the
// range itself still needs the allowlist with a stated reason.
func namesSorted() []string {
	var names []string
	//lint:allow nodeterm order-insensitive fold: collected names are sorted before use
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// clockSeed seeds a randomized tree from the wall clock: two builds of the
// same point set would disagree.
func clockSeed() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// globalShuffle randomizes split axes through the global generator, whose
// state is shared across the whole process.
func globalShuffle(axes []int) {
	rand.Shuffle(len(axes), func(i, j int) { // want "rand.Shuffle uses the global generator"
		axes[i], axes[j] = axes[j], axes[i]
	})
}

// seededShuffle threads an explicit source: deterministic, not flagged.
func seededShuffle(axes []int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(axes), func(i, j int) {
		axes[i], axes[j] = axes[j], axes[i]
	})
}
