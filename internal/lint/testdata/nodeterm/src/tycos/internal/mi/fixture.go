// Package mi is a tycoslint fixture impersonating a nodeterm-scoped package
// (the virtual src root gives it the import path tycos/internal/mi). Each
// `want` comment names a diagnostic the nodeterm analyzer must report on
// that line.
package mi

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time.Until reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the global generator"
}

func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // explicit seed: deterministic, not flagged
	return rng.Float64()
}

func mapRange(m map[int]int) int {
	s := 0
	for k := range m { // want "map iteration order is nondeterministic"
		s += k
	}
	return s
}

func sliceRange(v []int) int {
	s := 0
	for _, x := range v { // slices iterate in index order: not flagged
		s += x
	}
	return s
}

func allowedClock() time.Time {
	//lint:allow nodeterm fixture: observability timing only
	return time.Now()
}

func allowedFold(m map[string]int64) int64 {
	var total int64
	//lint:allow nodeterm fixture: integer sum commutes
	for _, v := range m {
		total += v
	}
	return total
}
