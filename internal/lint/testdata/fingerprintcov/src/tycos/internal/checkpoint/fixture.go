package checkpoint

import (
	"fmt"
	"hash/fnv"
	"io"

	"tycos/internal/core"
)

// HashOptions covers every result-affecting field: no finding.
func HashOptions(w io.Writer, o core.Options) {
	fmt.Fprintf(w, "%d|%d|%g|%d", o.SMin, o.SMax, o.Sigma, o.Seed)
}

// fingerprintComplete reads every result-affecting field directly: no finding.
func fingerprintComplete(name string, o core.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d|%d|%g|%d", name, o.SMin, o.SMax, o.Sigma, o.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// fingerprintDelegating forwards the whole Options value to HashOptions, so
// it inherits full coverage through the cross-function fact: no finding.
func fingerprintDelegating(name string, n int, o core.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00", name, n)
	HashOptions(h, o)
	return fmt.Sprintf("%016x", h.Sum64())
}

// fingerprintMissing hashes all result-affecting fields except SMax — the
// "deleted one field" case must produce exactly one finding.
func fingerprintMissing(name string, o core.Options) string { // want "does not hash result-affecting core.Options field SMax"
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d|%g|%d", name, o.SMin, o.Sigma, o.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// fingerprintAllowed drops Sigma but carries a suppression: no finding.
//
//lint:allow fingerprintcov fixture: legacy v0 journal format predates Sigma; migration covered elsewhere
func fingerprintAllowed(o core.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", o.SMin, o.SMax, o.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// fingerprintBytes hashes raw bytes, not core.Options: out of the analyzer's
// jurisdiction, no finding.
func fingerprintBytes(b []byte) string {
	h := fnv.New64a()
	h.Write(b) //lint:allow errdrop fixture: hash.Hash Write never returns an error
	return fmt.Sprintf("%016x", h.Sum64())
}
