// Package core is a fixture stand-in for the real tycos/internal/core: the
// fingerprintcov analyzer matches the Options struct by name and import-path
// suffix, so this tree exercises it without loading the live module.
package core

import "time"

// Cache stands in for the estimator cache.
type Cache struct{}

// Options mirrors the shape of the real search options: four
// result-affecting fields, three result-invariant fields that are on the
// analyzer's in-source allow-list (RestartWorkers, EstimatorCache,
// Deadline), and one unexported field callers cannot set.
type Options struct {
	SMin  int
	SMax  int
	Sigma float64
	Seed  int64

	RestartWorkers int
	EstimatorCache *Cache
	Deadline       time.Time

	onCandidate func(string)
}
