// Package daemon is a fixture stand-in for the admission/telemetry layer:
// the mutexspan analyzer scopes by import path, so this tree impersonates
// tycos/internal/daemon.
package daemon

import (
	"net/http"
	"os"
	"sync"
)

type server struct {
	mu    sync.Mutex
	admit sync.RWMutex
	queue chan int
	f     *os.File
}

func (s *server) sendHeld() {
	s.mu.Lock()
	s.queue <- 1 // want "channel send while mutex s.mu is held"
	s.mu.Unlock()
}

func (s *server) recvHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.queue // want "channel receive while mutex s.mu is held"
}

func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	n := len(s.queue)
	s.mu.Unlock()
	s.queue <- n // span closed: no finding
}

// nonBlockingAdmit mirrors the real admission path: a select with a default
// clause never blocks, so holding the read lock across it is fine.
func (s *server) nonBlockingAdmit(t int) bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	select {
	case s.queue <- t:
		return true
	default:
		return false
	}
}

func (s *server) blockingSelectHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select with no default while mutex s.mu is held"
	case v := <-s.queue:
		return v
	}
}

func (s *server) httpHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get("http://localhost/health") // want "net/http call"
}

func (s *server) fsyncHeld() {
	s.mu.Lock()
	s.f.Sync() // want "file fsync"
	s.mu.Unlock()
}

// record is a helper that fsyncs; the Blocks fact propagates through it.
func (s *server) record(b []byte) error {
	if _, err := s.f.Write(b); err != nil {
		return err
	}
	return s.f.Sync()
}

func (s *server) indirectHeld() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.record(nil) // want "call to record blocks"
}

// spawnHeld starts a goroutine while locked: the spawn itself does not
// block, so no finding.
func (s *server) spawnHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.queue <- 1
	}()
}

// allowedSend carries a suppression with a stated reason: no finding.
func (s *server) allowedSend() {
	s.mu.Lock()
	//lint:allow mutexspan fixture: buffered channel sized to the worker count, send cannot block
	s.queue <- 1
	s.mu.Unlock()
}
