// Package core is a fixture stand-in for the deterministic search core: the
// seedflow analyzer scopes by import path, so this tree impersonates
// tycos/internal/core and carries its own copy of the SplitMix64 idiom.
package core

import "math/rand"

// splitmix64 is the finalizer; its name marks it as the derivation primitive.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// restartSeed derives through the mixer; the DerivesSeed fact propagates.
func restartSeed(root int64, seg, restart int) int64 {
	h := splitmix64(uint64(root))
	h = splitmix64(h ^ uint64(seg))
	h = splitmix64(h ^ uint64(restart))
	return int64(h)
}

func derivedRNG(root int64, seg, restart int) *rand.Rand {
	return rand.New(rand.NewSource(restartSeed(root, seg, restart))) // derived: no finding
}

func convertedRNG(root int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(root))))) // conversion unwraps: no finding
}

func offsetRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 0x5eed)) // want "not derived through the SplitMix64 idiom"
}

func rawRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "not derived through the SplitMix64 idiom"
}

func literalRNG() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want "not derived through the SplitMix64 idiom"
}

// allowedRNG carries a suppression with a stated reason: no finding.
func allowedRNG(seed int64) *rand.Rand {
	//lint:allow seedflow fixture: domain offset pinned by committed goldens
	return rand.New(rand.NewSource(seed + 1))
}
