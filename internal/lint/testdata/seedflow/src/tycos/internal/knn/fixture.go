// Package knn is a seedflow fixture impersonating the k-NN engine package:
// randomized-tree engines must derive every per-tree seed from the root
// seed through the SplitMix64 idiom, so that tree t of engine e is the same
// tree in every run and on every worker.
package knn

import "math/rand"

// splitmix64 is the finalizer; its name marks it as the derivation primitive.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// forestSeed derives tree t's stream from the engine root seed; the
// DerivesSeed fact propagates through it.
func forestSeed(root int64, tree int) int64 {
	h := splitmix64(uint64(root))
	return int64(splitmix64(h ^ uint64(tree)))
}

func derivedTreeRNG(root int64, tree int) *rand.Rand {
	return rand.New(rand.NewSource(forestSeed(root, tree))) // derived: no finding
}

// offsetTreeRNG derives per-tree streams by adding the tree index: adjacent
// roots collide (root 1, tree 0 == root 0, tree 1), so seedflow rejects it.
func offsetTreeRNG(root int64, tree int) *rand.Rand {
	return rand.New(rand.NewSource(root + int64(tree))) // want "not derived through the SplitMix64 idiom"
}

func rawTreeRNG(root int64) *rand.Rand {
	return rand.New(rand.NewSource(root)) // want "not derived through the SplitMix64 idiom"
}
