// Package floateqpkg is a tycoslint fixture for the floateq analyzer.
package floateqpkg

func eqFloat(a, b float64) bool {
	return a == b // want "raw float == comparison"
}

func neqFloat32(a, b float32) bool {
	return a != b // want "raw float != comparison"
}

func eqComplex(a, b complex128) bool {
	return a == b // want "raw float == comparison"
}

func eqMixedConst(a float64) bool {
	return a == 0 // want "raw float == comparison"
}

func eqInt(a, b int) bool {
	return a == b // integer equality is exact: not flagged
}

func constFolded() bool {
	return 1.5 == 1.5 // compile-time constant: not flagged
}

func ordered(a, b float64) bool {
	return a < b // only == and != are flagged
}

func allowedExact(a float64) bool {
	//lint:allow floateq fixture: exact zero sentinel
	return a == 0
}
