// Package mathx is a tycoslint fixture verifying the floateq exemption: the
// comparator package owns exact float comparisons, so nothing here is
// flagged.
package mathx

func ExactEq(a, b float64) bool { return a == b }

func ExactNeq(a, b float64) bool { return a != b }
