// Package gopanicpkg is a tycoslint fixture for the gopanic analyzer.
package gopanicpkg

func worker() {}

func spawnNaked(done chan struct{}) {
	go func() { // want "goroutine has no recover"
		close(done)
	}()
}

func spawnNamed() {
	go worker() // want "go statement calls a named function"
}

func spawnRecovered(done chan struct{}) {
	go func() {
		defer func() {
			_ = recover()
		}()
		close(done)
	}()
}

func spawnNestedRecover(out chan error) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				out <- nil
			}
		}()
		close(out)
	}()
}

func spawnAllowed(done chan struct{}) {
	//lint:allow gopanic fixture: panics routed through the harness's repanic path
	go func() {
		close(done)
	}()
}

// pool mirrors the daemon's worker-pool shapes: a fixed set of goroutines
// ranging over a shared queue.
type pool struct {
	queue chan int
}

func (p *pool) drain() {
	for range p.queue {
	}
}

// spawnMethod is the tempting-but-wrong daemon spawn: a method call hides
// panic isolation away from the go statement.
func (p *pool) spawnMethod() {
	go p.drain() // want "go statement calls a named function"
}

// spawnWorkerLoop is the accepted worker-pool shape: a range-over-queue
// literal with a recover backstop visible at the spawn site.
func (p *pool) spawnWorkerLoop(onLost func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				onLost()
			}
		}()
		for range p.queue {
		}
	}()
}

// spawnServe is the HTTP-listener shape: the serve callee recovers handler
// panics internally, so the spawn carries a directive naming that path.
func (p *pool) spawnServe(serve func() error) {
	//lint:allow gopanic fixture: the server recovers handler panics per connection
	go func() {
		_ = serve()
	}()
}
