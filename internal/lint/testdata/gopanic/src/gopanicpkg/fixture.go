// Package gopanicpkg is a tycoslint fixture for the gopanic analyzer.
package gopanicpkg

func worker() {}

func spawnNaked(done chan struct{}) {
	go func() { // want "goroutine has no recover"
		close(done)
	}()
}

func spawnNamed() {
	go worker() // want "go statement calls a named function"
}

func spawnRecovered(done chan struct{}) {
	go func() {
		defer func() {
			_ = recover()
		}()
		close(done)
	}()
}

func spawnNestedRecover(out chan error) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				out <- nil
			}
		}()
		close(out)
	}()
}

func spawnAllowed(done chan struct{}) {
	//lint:allow gopanic fixture: panics routed through the harness's repanic path
	go func() {
		close(done)
	}()
}
