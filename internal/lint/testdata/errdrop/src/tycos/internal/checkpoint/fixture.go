// Package checkpoint is a fixture stand-in for the journal write path: the
// errdrop analyzer scopes by import path, so this tree impersonates
// tycos/internal/checkpoint.
package checkpoint

import (
	"bufio"
	"os"
)

type journal struct {
	f *os.File
	w *bufio.Writer
}

// Record stands in for the durability verb on the real Journal.
func (j *journal) Record(key string) error {
	_, err := j.w.WriteString(key)
	return err
}

func dropStmt(j *journal) {
	j.Record("x") // want "error from Record is discarded"
}

func dropBlank(j *journal) {
	_ = j.f.Sync() // want "error from Sync is assigned to _"
}

func dropWriteN(j *journal, b []byte) {
	n, _ := j.f.Write(b) // want "error from Write is assigned to _"
	_ = n
}

func dropDefer(j *journal) {
	defer j.f.Close() // want "error from Close is discarded"
}

func dropGo(j *journal) {
	go j.w.Flush() // want "error from Flush is discarded"
}

// checked handles every error: no findings.
func checked(j *journal, b []byte) error {
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	return j.f.Close()
}

// allowedDrop carries a suppression with a stated reason: no finding.
func allowedDrop(j *journal) {
	//lint:allow errdrop fixture: read-only handle, a close error cannot lose written data
	defer j.f.Close()
}

// noError calls a Write-named method that returns no error: out of scope.
type counter struct{ n int }

func (c *counter) Write(b []byte) { c.n += len(b) }

func countOnly(c *counter, b []byte) {
	c.Write(b)
}
