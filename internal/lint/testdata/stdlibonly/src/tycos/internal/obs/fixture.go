// Package obs is a tycoslint fixture impersonating the observability leaf
// package, which must not import anything module-internal.
package obs

import (
	_ "encoding/json" // stdlib imports are fine everywhere

	_ "tycos/internal/window" // want "observability sinks must stay embeddable"
)
