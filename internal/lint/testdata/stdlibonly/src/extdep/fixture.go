// Package extdep is a tycoslint fixture for the stdlibonly analyzer: a
// package that smuggles in a third-party dependency.
package extdep

import (
	"fmt"

	_ "example.com/notreal/dep" // want "non-stdlib import example.com/notreal/dep"
)

func Hello() string { return fmt.Sprint("hi") }
