// Package modernpkg exercises the loader's go/types source-importer path on
// syntax added after the framework was written: generics (type parameters,
// constraint interfaces, generic instantiation), Go 1.21 min/max builtins,
// and Go 1.22 range-over-int with per-iteration loop variables. The fixture
// carries no want annotations — the full analyzer suite must type-check it
// and report nothing.
package modernpkg

// number is a union constraint.
type number interface {
	~int | ~int64 | ~float64
}

// pair is a generic struct with two type parameters.
type pair[K comparable, V any] struct {
	key K
	val V
}

// sum folds any numeric slice.
func sum[T number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

// index reports the position of needle using == on a comparable type
// parameter; floateq must not mistake the type parameter for a float.
func index[T comparable](xs []T, needle T) int {
	for i, x := range xs {
		if x == needle {
			return i
		}
	}
	return -1
}

// zip pairs two slices, instantiating the generic struct.
func zip[K comparable, V any](ks []K, vs []V) []pair[K, V] {
	n := min(len(ks), len(vs))
	out := make([]pair[K, V], 0, max(n, 0))
	for i := range n { // Go 1.22 range-over-int
		out = append(out, pair[K, V]{key: ks[i], val: vs[i]})
	}
	return out
}

// captures relies on Go 1.22 per-iteration loop variables: each closure
// observes its own i.
func captures(n int) []func() int {
	var fs []func() int
	for i := range n {
		fs = append(fs, func() int { return i })
	}
	return fs
}

// useAll keeps every declaration referenced from one exported symbol.
func UseAll() int {
	total := sum([]int{1, 2, 3})
	total += index([]string{"a", "b"}, "b")
	total += len(zip([]int{1}, []string{"x"}))
	for _, f := range captures(3) {
		total += f()
	}
	return total
}
