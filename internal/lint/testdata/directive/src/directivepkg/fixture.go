// Package directivepkg is a tycoslint fixture for the allow-directive
// machinery itself: malformed and stale directives are findings too.
package directivepkg

func unusedAllow(a, b int) bool {
	//lint:allow floateq nothing on the next line is a float comparison // want "unused allow directive"
	return a == b
}

func missingReason(a, b float64) bool {
	//lint:allow floateq // want "missing a reason"
	return a == b // want "raw float == comparison"
}

func missingRule(a, b float64) bool {
	//lint:allow // want "missing a rule name"
	return b == a // want "raw float == comparison"
}
