// Package discovery is a tycoslint fixture impersonating the discovery
// engine so the ctxflow analyzer's scope applies to its scheduler loops.
package discovery

import (
	"context"
	"sync"
	"sync/atomic"
)

type shard struct{ from, to int }

type engine struct{ done []bool }

func (e *engine) searchCandidate(ctx context.Context, i int) { e.done[i] = ctx == nil }
func (e *engine) screenCandidate(ctx context.Context, i int) { e.done[i] = ctx == nil }

// UncheckedScheduler mirrors the discovery fan-out gone wrong: workers pull
// shards and confirm candidates without ever consulting the context, so a
// cancelled discovery grinds through the whole fleet anyway.
func UncheckedScheduler(ctx context.Context, e *engine, shards []shard) {
	var next int32
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(atomic.AddInt32(&next, 1)) - 1
				if si >= len(shards) {
					return
				}
				sh := shards[si]
				for i := sh.from; i < sh.to; i++ { // want "loop calls the scorer but contains no stop check"
					e.searchCandidate(ctx, i)
				}
			}
		}()
	}
	wg.Wait()
}

// GuardedScheduler is the sanctioned shape: every scheduler iteration checks
// the context before dispatching a candidate.
func GuardedScheduler(ctx context.Context, e *engine, shards []shard) {
	var next int32
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(atomic.AddInt32(&next, 1)) - 1
				if si >= len(shards) {
					return
				}
				sh := shards[si]
				for i := sh.from; i < sh.to; i++ {
					if ctx.Err() != nil {
						continue
					}
					e.searchCandidate(ctx, i)
				}
			}
		}()
	}
	wg.Wait()
}

// UncheckedScreen dispatches the pre-screen through a func value the way
// runShards does; the dispatch name alone marks the loop as a climb loop.
func UncheckedScreen(ctx context.Context, e *engine, n int) {
	work := e.screenCandidate
	for i := 0; i < n; i++ { // want "loop calls the scorer but contains no stop check"
		work(ctx, i)
	}
}

// GuardedScreen is the same dispatch with the stop check in place.
func GuardedScreen(ctx context.Context, e *engine, n int) {
	work := e.screenCandidate
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			continue
		}
		work(ctx, i)
	}
}

// DroppedCtx accepts a context and never consults it — the per-candidate
// searches it dispatches cannot be interrupted mid-flight.
func DroppedCtx(ctx context.Context, e *engine, i int) { // want "never uses its context.Context parameter"
	e.searchCandidate(context.Background(), i)
}
