// Package core is a tycoslint fixture impersonating the search core so the
// ctxflow analyzer's scope applies.
package core

import "context"

type scorerT struct{}

func (scorerT) score(i int) float64 { return float64(i) }

type climber struct {
	sc  scorerT
	ctx context.Context
}

func (c *climber) checkStop() bool { return c.ctx != nil && c.ctx.Err() != nil }

// DroppedCtx accepts a context and never consults it.
func DroppedCtx(ctx context.Context, n int) float64 { // want "never uses its context.Context parameter"
	var c climber
	var s float64
	for i := 0; i < n; i++ { // want "loop calls the scorer but contains no stop check"
		s += c.sc.score(i)
	}
	return s
}

// BlankCtx declares the parameter away entirely.
func BlankCtx(_ context.Context) {} // want "discards its context.Context parameter"

// GuardedClimb threads the stop check into its scoring loop.
func GuardedClimb(ctx context.Context, n int) float64 {
	c := climber{ctx: ctx}
	var s float64
	for i := 0; i < n; i++ {
		if c.checkStop() {
			break
		}
		s += c.sc.score(i)
	}
	return s
}

// DirectDone uses the context's own Done channel as the stop check.
func DirectDone(ctx context.Context, n int) float64 {
	var c climber
	var s float64
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return s
		default:
		}
		s += c.sc.score(i)
	}
	return s
}

// allowedInner shows the sanctioned escape hatch for bounded inner scans.
func allowedInner(n int) float64 {
	var c climber
	var s float64
	//lint:allow ctxflow fixture: bounded inner scan, stop checked by the caller
	for i := 0; i < n; i++ {
		s += c.sc.score(i)
	}
	return s
}

// scoreFreeLoop never scores, so it needs no stop check.
func scoreFreeLoop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// DrainQueue mirrors a daemon worker loop gone wrong: it ranges over a task
// queue scoring work but never consults the context it accepted, so a
// cancelled daemon would keep scoring until the queue closes.
func DrainQueue(ctx context.Context, queue chan int) float64 { // want "never uses its context.Context parameter"
	var c climber
	var s float64
	for i := range queue { // want "loop calls the scorer but contains no stop check"
		s += c.sc.score(i)
	}
	return s
}

// DrainQueueGuarded is the accepted worker-loop shape: each dequeued task
// re-checks the context before scoring.
func DrainQueueGuarded(ctx context.Context, queue chan int) float64 {
	var c climber
	var s float64
	for i := range queue {
		if ctx.Err() != nil {
			break
		}
		s += c.sc.score(i)
	}
	return s
}
