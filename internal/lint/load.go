package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package: the unit the analyzers run
// over. Test files (*_test.go) are excluded — the invariants tycoslint
// enforces are about shipped search code, and test packages routinely use
// wall clocks and exact float comparisons on purpose.
type Package struct {
	// ImportPath is the package's import path. For packages under a
	// testdata/…/src/ tree it is computed relative to that src directory, so
	// fixtures can impersonate scoped paths like tycos/internal/core.
	ImportPath string
	// Module is the module path of the tree the package was loaded from.
	Module string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses and type-checks packages using only the standard
// library: go/parser for syntax and go/types with the source importer for
// semantics. It deliberately avoids golang.org/x/tools — the module's
// stdlib-only constraint applies to the linter that enforces it.
type Loader struct {
	// Root is the module root directory (the one containing go.mod).
	Root string
	// ModulePath is the module path declared in go.mod; filled by Load when
	// empty.
	ModulePath string

	fset *token.FileSet
	std  types.Importer
}

// Load resolves the patterns (directories, or dir/... for a recursive walk,
// relative to Root) into packages, parses their non-test files and
// type-checks them in dependency order. Directories named testdata are
// skipped by recursive walks unless the pattern itself points inside one.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if l.ModulePath == "" {
		mp, err := modulePath(filepath.Join(l.Root, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.ModulePath = mp
	}
	l.fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.fset, "source", nil)

	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	ordered, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*types.Package)
	for _, p := range ordered {
		if err := l.check(p, byPath); err != nil {
			return nil, err
		}
		byPath[p.ImportPath] = p.Types
	}
	return ordered, nil
}

// expand resolves the CLI-style patterns into package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.Root, base)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// parseDir parses the directory's non-test Go files into a Package with no
// type information yet; nil when the directory has no buildable files.
func (l *Loader) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if isSourceFile(e) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	p := &Package{Dir: dir, Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	ip, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	p.ImportPath = ip
	p.Module = l.ModulePath
	return p, nil
}

// importPath derives a package's import path from its directory. Inside a
// testdata tree the nearest ancestor directory named src acts as a virtual
// module root (the analysistest convention), so fixture packages can carry
// scoped import paths such as tycos/internal/core without colliding with the
// real tree; everywhere else the path is module-relative.
func (l *Loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if i := strings.LastIndex(abs, string(filepath.Separator)+"testdata"+string(filepath.Separator)); i >= 0 {
		rest := abs[i+len(string(filepath.Separator)+"testdata"+string(filepath.Separator)):]
		parts := strings.Split(rest, string(filepath.Separator))
		for j, part := range parts {
			if part == "src" {
				return strings.Join(parts[j+1:], "/"), nil
			}
		}
	}
	rootAbs, err := filepath.Abs(l.Root)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(rootAbs, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// check type-checks one package against the packages already checked.
func (l *Loader) check(p *Package, byPath map[string]*types.Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &moduleImporter{module: l.ModulePath, loaded: byPath, std: l.std},
	}
	tpkg, err := conf.Check(p.ImportPath, l.fset, p.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	p.Types = tpkg
	p.Info = info
	return nil
}

// moduleImporter resolves imports for the type checker: packages loaded in
// this run are served directly, standard-library paths go through the source
// importer, and anything else — third-party paths, or module-internal paths
// outside the load set — resolves to an empty placeholder package. The
// placeholder keeps type-checking alive for fixtures that blank-import a
// path the stdlibonly analyzer should flag; any actual use of a
// placeholder's members is still a type error.
type moduleImporter struct {
	module string
	loaded map[string]*types.Package
	std    types.Importer
	fakes  map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.loaded[path]; ok {
		return p, nil
	}
	moduleInternal := path == m.module || strings.HasPrefix(path, m.module+"/")
	if !moduleInternal && isStdlibPath(path) {
		return m.std.Import(path)
	}
	if m.fakes == nil {
		m.fakes = make(map[string]*types.Package)
	}
	if p, ok := m.fakes[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	m.fakes[path] = p
	return p, nil
}

// isStdlibPath reports whether an import path names a standard-library
// package: by convention the first path element of every non-stdlib package
// is a domain name and therefore contains a dot.
func isStdlibPath(path string) bool {
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	return first != "" && !strings.Contains(first, ".")
}

// topoSort orders packages so every package follows the packages it imports;
// imports that are not part of this load (stdlib, placeholders) impose no
// ordering. Import cycles are an error.
func topoSort(pkgs []*Package) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		if other, dup := byPath[p.ImportPath]; dup {
			return nil, fmt.Errorf("lint: duplicate import path %s (%s and %s)", p.ImportPath, other.Dir, p.Dir)
		}
		byPath[p.ImportPath] = p
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(pkgs))
	ordered := make([]*Package, 0, len(pkgs))
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = visiting
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[path]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.ImportPath] = done
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}
