package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// fingerprintInvariant is the explicit allow-list of exported core.Options
// fields that are result-invariant: changing them cannot change what a
// search returns, so journal fingerprints must NOT include them (a replayed
// result is equally valid under any value). Every entry is a claim pinned by
// a dynamic test; adding a field here without such a test is how replay
// poisoning sneaks back in.
var fingerprintInvariant = map[string]string{
	// Byte-identical across worker counts: TestParallelDeterminism /
	// TestRestartPlanDeterminism pin that the segment plan depends only on
	// (Seed, restarts), never on RestartWorkers.
	"RestartWorkers": "parallel plan is worker-count invariant",
	// Cache reuse is bit-identical to recomputation by the Reload contract
	// (hotpath reuse tests in internal/mi and internal/knn).
	"EstimatorCache": "cache hits are bit-identical to recomputation",
	// Observers only watch: TestObserverDoesNotAlterSearch pins that results
	// are identical with and without one attached.
	"Observer": "observability must not alter results",
	// A deadline truncates the walk but truncation is surfaced to the caller
	// and partial runs are re-run, not replayed, after a crash.
	"Deadline": "wall-clock budget; expiry surfaces as an explicit error",
}

// FingerprintCov cross-references the fields of core.Options against what
// each fingerprint function actually hashes. The crash-safe journals
// (internal/checkpoint) replay a stored result whenever the fingerprint of a
// request matches, so any result-affecting Options field missing from the
// hash lets a journal written under one configuration satisfy a request made
// under another — silent replay poisoning. A field is counted as hashed when
// the function reads it off its Options parameter directly or forwards the
// whole parameter to a helper that does (the OptionsCoverage fact).
var FingerprintCov = &Analyzer{
	Name: "fingerprintcov",
	Doc: "every result-affecting core.Options field must be folded into every " +
		"journal fingerprint; result-invariant fields are allow-listed in-source",
	Run: runFingerprintCov,
}

// isFingerprintFunc matches the functions whose output keys journal replay:
// anything named like a fingerprint, plus the canonical HashOptions helper.
func isFingerprintFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "fingerprint") || lower == "hashoptions"
}

func runFingerprintCov(pass *Pass) {
	info := pass.Pkg.Info
	pass.walkFiles(func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isFingerprintFunc(fd.Name.Name) {
				continue
			}
			param := optionsParam(info, fd)
			if param == nil {
				continue // hashes something other than core.Options
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			covered := pass.Facts.OptionsCoverage(fn)
			missing := missingOptionFields(param.Type(), covered)
			for _, field := range missing {
				pass.Report(fd.Pos(),
					"fingerprint %s does not hash result-affecting core.Options field %s; a journaled result could replay across a change to it (allow-list it in fingerprintInvariant only with a test pinning invariance)",
					fd.Name.Name, field)
			}
		}
	})
}

// missingOptionFields returns the exported, result-affecting fields of the
// Options struct type that are absent from covered, sorted for stable
// diagnostics. Unexported fields cannot be set by callers and are excluded.
func missingOptionFields(t types.Type, covered map[string]bool) []string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if _, invariant := fingerprintInvariant[f.Name()]; invariant {
			continue
		}
		if !covered[f.Name()] {
			missing = append(missing, f.Name())
		}
	}
	sort.Strings(missing)
	return missing
}
