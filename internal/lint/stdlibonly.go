package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// leafPackages are module packages that must not import anything from the
// module itself: internal/obs is the embeddable observability surface, and
// keeping it stdlib-pure is what lets a sink be vendored into another
// process without dragging the search engine along. This generalizes the
// old CI grep over `go list -deps ./internal/obs`.
var leafPackages = map[string]bool{
	"tycos/internal/obs": true,
}

// StdlibOnly enforces the module's dependency rule as a typed check instead
// of a CI grep: every import in every package must be either standard
// library or module-internal (no third-party modules, no cgo), and the
// designated leaf packages must not import module-internal packages either.
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc: "imports must be stdlib or module-internal everywhere; " +
		"internal/obs must be stdlib-pure",
	Run: runStdlibOnly,
}

func runStdlibOnly(pass *Pass) {
	leaf := leafPackages[pass.Pkg.ImportPath]
	modulePrefix := pass.Pkg.Module
	pass.walkFiles(func(f *ast.File) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == "C":
				pass.Report(imp.Pos(), "cgo import; the module is pure Go on the standard library only")
			case path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/"):
				if leaf {
					pass.Report(imp.Pos(), "%s imports module-internal %s; observability sinks must stay embeddable with zero module dependencies", pass.Pkg.ImportPath, path)
				}
			case !isStdlibPath(path):
				pass.Report(imp.Pos(), "non-stdlib import %s; the module must build with the Go standard library alone", path)
			}
		}
	})
}
