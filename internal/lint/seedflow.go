package lint

import (
	"go/ast"
	"go/types"
)

// seedflowScope is nodeterm's scope plus the discovery engine: everywhere a
// deterministic contract (byte-identical restart merge, fleet-order replay)
// depends on which RNG stream a computation draws from.
var seedflowScope = map[string]bool{
	"tycos/internal/core":      true,
	"tycos/internal/mi":        true,
	"tycos/internal/knn":       true,
	"tycos/internal/lahc":      true,
	"tycos/internal/discovery": true,
}

// SeedFlow extends nodeterm from "no global RNG" to seed provenance: every
// rand source constructed in the deterministic packages must be seeded with
// a value that went through the SplitMix64 derivation idiom (restartSeed,
// CandidateSeed, or any function that calls the mixer). Raw seeds and
// additive offsets (seed+k) produce streams whose low bits are correlated
// across nearby coordinates — exactly the failure AMIC-style estimator
// comparisons punish — and make two call sites that pick the same offset
// silently share a stream.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "rand sources in the deterministic packages must be seeded through " +
		"the SplitMix64 derivation idiom, not raw or offset seeds",
	Run: runSeedFlow,
}

// seedSourceCtors are the math/rand constructors whose argument is a seed.
var seedSourceCtors = map[string]bool{
	"NewSource": true, // math/rand
	"NewPCG":    true, // math/rand/v2
}

func runSeedFlow(pass *Pass) {
	if !seedflowScope[pass.Pkg.ImportPath] {
		return
	}
	info := pass.Pkg.Info
	pass.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !seedSourceCtors[fn.Name()] {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			for _, arg := range call.Args {
				if !seedDerived(pass, info, arg) {
					pass.Report(call.Pos(),
						"rand.%s seed is not derived through the SplitMix64 idiom (restartSeed/CandidateSeed); raw or offset seeds correlate streams across nearby coordinates",
						fn.Name())
					return true
				}
			}
			return true
		})
	})
}

// seedDerived reports whether the seed expression is the result of a
// SplitMix64-derived function call (unwrapping conversions like int64(...)).
func seedDerived(pass *Pass, info *types.Info, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			// Unwrap type conversions: uint64(derive(...)).
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			fn := calleeFunc(info, x)
			return fn != nil && pass.Facts.DerivesSeed(fn)
		default:
			return false
		}
	}
}
