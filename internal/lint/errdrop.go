package lint

import (
	"go/ast"
	"go/types"
)

// errdropScope lists the packages whose write paths back the crash-safety
// story: the journal itself, the daemon that records admissions through it,
// the discovery engine that checkpoints shard results, and series ingest.
// Elsewhere a dropped error is style; here it means a fsync or journal
// append can fail without anyone noticing, and the next crash replays a
// journal that silently lost entries.
var errdropScope = map[string]bool{
	"tycos/internal/checkpoint": true,
	"tycos/internal/daemon":     true,
	"tycos/internal/discovery":  true,
	"tycos/internal/series":     true,
}

// errdropVerbs are the method/function names whose error return is part of
// the durability contract. The set is deliberately narrow — it excludes
// Encode/Fprintf-style response writing (an HTTP client that went away is
// not a durability event) and names every call that can lose journal bytes.
var errdropVerbs = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"Record":      true,
	"Sync":        true,
	"Flush":       true,
	"Close":       true,
}

// ErrDrop flags discarded error returns from durability-relevant calls in
// the journal/checkpoint/ingest write paths: a call used as a bare
// statement, deferred, spawned with go, or assigned with the error position
// blanked.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "journal, checkpoint and ingest write paths must not discard error " +
		"returns from Write/Record/Sync/Flush/Close",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !errdropScope[pass.Pkg.ImportPath] {
		return
	}
	info := pass.Pkg.Info
	pass.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, info, call)
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, info, n.Call)
			case *ast.GoStmt:
				checkDroppedCall(pass, info, n.Call)
			case *ast.AssignStmt:
				checkBlankedError(pass, info, n)
			}
			return true
		})
	})
}

// checkDroppedCall reports a durability-verb call whose entire result tuple
// (which includes an error) is discarded.
func checkDroppedCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	name, ok := droppedErrVerb(info, call)
	if !ok {
		return
	}
	pass.Report(call.Pos(),
		"error from %s is discarded; a swallowed error on this write path breaks crash-safe replay (check it, or allowlist with the reason it cannot lose data)",
		name)
}

// checkBlankedError reports assignments that keep some results of a
// durability-verb call but blank the error positions, e.g. n, _ := w.Write(b).
func checkBlankedError(pass *Pass, info *types.Info, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := droppedErrVerb(info, call)
	if !ok {
		return
	}
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	results := sig.Results()
	for i := 0; i < results.Len() && i < len(assign.Lhs); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		if id := identOf(assign.Lhs[i]); id != nil && id.Name == "_" {
			pass.Report(assign.Pos(),
				"error from %s is assigned to _; a swallowed error on this write path breaks crash-safe replay (check it, or allowlist with the reason it cannot lose data)",
				name)
			return
		}
	}
}

// droppedErrVerb reports whether the call targets a durability verb whose
// signature returns an error, and returns the verb name.
func droppedErrVerb(info *types.Info, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	if !errdropVerbs[name] {
		return "", false
	}
	sig := callSignature(info, call)
	if sig == nil {
		return "", false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return name, true
		}
	}
	return "", false
}

// callSignature resolves the signature of the called function or method,
// including calls through interfaces and function values.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
