package lint

import (
	"go/ast"
	"go/types"
)

// nodetermScope lists the packages whose behaviour must be a pure function
// of (input, Options): the search core and the estimator/acceptor machinery
// beneath it. The byte-identical parallel-search guarantee (see
// internal/core/parallel.go) holds only while nothing in these packages
// consults a wall clock, a global RNG, or Go's randomized map iteration
// order on a path that influences results.
var nodetermScope = map[string]bool{
	"tycos/internal/core": true,
	"tycos/internal/mi":   true,
	"tycos/internal/knn":  true,
	"tycos/internal/lahc": true,
}

// randAllowed are the math/rand package-level functions that do not touch
// the global generator: constructors fed an explicit seed or an explicit
// *rand.Rand remain deterministic.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// NoDeterm forbids the three nondeterminism sources inside the search core:
// wall-clock reads (time.Now/Since/Until), the global math/rand generator,
// and iteration over maps. Deliberate uses — the throttled deadline clock,
// observability timings, order-insensitive map folds — carry allow
// directives with their justification.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "forbid wall-clock reads, global math/rand state and map iteration " +
		"in the deterministic search packages",
	Run: runNoDeterm,
}

func runNoDeterm(pass *Pass) {
	if !nodetermScope[pass.Pkg.ImportPath] {
		return
	}
	info := pass.Pkg.Info
	pass.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Package-level selector only: method values on rand.Rand or
				// time.Time are fine, so require the receiver-less form.
				if _, isPkg := info.Uses[identOf(n.X)].(*types.PkgName); !isPkg {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						pass.Report(n.Pos(), "time.%s reads the wall clock; search behaviour must depend only on the input and Options", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !randAllowed[fn.Name()] {
						pass.Report(n.Pos(), "rand.%s uses the global generator; derive a seeded *rand.Rand from Options.Seed instead", fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Report(n.Pos(), "map iteration order is nondeterministic; iterate a sorted key slice, or allowlist a provably order-insensitive fold")
				}
			}
			return true
		})
	})
}

// identOf unwraps a (possibly parenthesised) identifier expression.
func identOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
