// Package lint is a stdlib-only static-analysis framework plus the TYCOS
// analyzer suite. It exists because the properties the search engine's
// correctness claims rest on — determinism of the restart walk, tolerant
// float comparisons, cancellation flowing into every climb loop, panic
// isolation in worker goroutines, and a dependency tree that stays inside
// the standard library — are invariants of the source code, not of any one
// test run. Encoding them as analyzers makes CI fail when a change breaks
// one, instead of relying on review convention.
//
// The framework deliberately avoids golang.org/x/tools: packages are loaded
// with go/parser and type-checked with go/types using the source importer,
// so the linter itself obeys the stdlib-only rule it enforces.
//
// Findings can be suppressed, one line at a time, with an allow directive on
// the offending line or the line directly above it:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory — an allowlist entry is a claim that the flagged
// code is safe, and the claim has to be stated. Unused directives are
// themselves reported, so stale suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, rendered as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package and reports findings through pass.Report.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package, plus the cross-function
// facts computed once over the whole load (see facts.go).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *FactSet

	result *fileSet
}

// Report records a finding at pos unless an allow directive for the
// analyzer's rule covers that line.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.result.report(p.Pkg.Fset.Position(pos), p.Analyzer.Name, fmt.Sprintf(format, args...))
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// fileSet accumulates diagnostics and directives across a package run.
type fileSet struct {
	diags  []Diagnostic
	allows []*allowDirective
	// byLine indexes directives by (filename, line) for suppression lookup.
	byLine map[string]map[int]*allowDirective
}

func (fs *fileSet) report(pos token.Position, rule, msg string) {
	if d := fs.lookup(pos, rule); d != nil {
		d.used = true
		return
	}
	fs.diags = append(fs.diags, Diagnostic{Pos: pos, Rule: rule, Message: msg})
}

// lookup finds an allow directive for rule on the diagnostic's line or the
// line directly above it.
func (fs *fileSet) lookup(pos token.Position, rule string) *allowDirective {
	lines := fs.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d := lines[line]; d != nil && d.rule == rule {
			return d
		}
	}
	return nil
}

// allowPrefix introduces an allow directive comment.
const allowPrefix = "//lint:allow"

// collectDirectives parses every //lint:allow comment in the package.
// Malformed directives (no rule, or no reason) are reported immediately
// under the directive rule: a suppression without a stated justification is
// not a suppression.
func collectDirectives(pkg *Package, fs *fileSet) {
	fs.byLine = make(map[string]map[int]*allowDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowfoo — not our directive
				}
				// A nested comment marker ends the directive: the reason is
				// the text before it, never a trailing // annotation.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					fs.diags = append(fs.diags, Diagnostic{Pos: pos, Rule: "directive",
						Message: "allow directive is missing a rule name: //lint:allow <rule> <reason>"})
					continue
				}
				if len(fields) == 1 {
					fs.diags = append(fs.diags, Diagnostic{Pos: pos, Rule: "directive",
						Message: fmt.Sprintf("allow directive for %q is missing a reason: //lint:allow <rule> <reason>", fields[0])})
					continue
				}
				d := &allowDirective{pos: pos, rule: fields[0], reason: strings.Join(fields[1:], " ")}
				fs.allows = append(fs.allows, d)
				lines := fs.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]*allowDirective)
					fs.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = d
			}
		}
	}
}

// Run executes the analyzers over the packages and returns every surviving
// diagnostic, sorted by position. A directive that suppressed nothing is
// reported as unused when its rule belongs to an analyzer in this run —
// stale allowlist entries are how invariants rot silently.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	facts := ComputeFacts(pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		fs := &fileSet{}
		collectDirectives(pkg, fs)
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Facts: facts, result: fs})
		}
		for _, d := range fs.allows {
			if !d.used && active[d.rule] {
				fs.diags = append(fs.diags, Diagnostic{Pos: d.pos, Rule: "directive",
					Message: fmt.Sprintf("unused allow directive for rule %q", d.rule)})
			}
		}
		all = append(all, fs.diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Rule < all[j].Rule
	})
	return all
}

// Analyzers returns the full TYCOS analyzer suite in a stable order: the
// PR-4 statement-local checks first, then the contract-aware analyzers that
// lean on the cross-function fact store.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterm, FloatEq, CtxFlow, GoPanic, StdlibOnly,
		FingerprintCov, ErrDrop, MutexSpan, SeedFlow,
	}
}

// Allow is one active, well-formed suppression directive, surfaced for
// audits via tycoslint -allows.
type Allow struct {
	Pos    token.Position
	Rule   string
	Reason string
}

func (a Allow) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", a.Pos.Filename, a.Pos.Line, a.Rule, a.Reason)
}

// CollectAllows parses every //lint:allow directive in the packages and
// returns them sorted by position. Malformed directives are omitted here —
// Run reports those as findings.
func CollectAllows(pkgs []*Package) []Allow {
	var out []Allow
	for _, pkg := range pkgs {
		fs := &fileSet{}
		collectDirectives(pkg, fs)
		for _, d := range fs.allows {
			out = append(out, Allow{Pos: d.pos, Rule: d.rule, Reason: d.reason})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// ByName resolves a comma-separated rule list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// walkFiles applies fn to every file of the pass's package.
func (p *Pass) walkFiles(fn func(f *ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
