package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FactSet is the lightweight cross-function fact store the contract-aware
// analyzers share. The PR-4 analyzers judged every statement in isolation;
// the invariants added since need one hop of interprocedural knowledge —
// whether a callee blocks before returning (mutexspan), whether a seed
// expression went through the SplitMix64 finalizer (seedflow), and which
// core.Options fields a hash helper folds in on behalf of its caller
// (fingerprintcov). ComputeFacts walks every loaded package once, records
// per-function primitives plus the static call edges between functions, and
// resolves the transitive closure, so an analyzer can ask about a call
// target in another package (the loader type-checks packages in dependency
// order, and facts are keyed by *types.Func, which is shared across that
// load).
//
// The store is deliberately conservative in both directions: only statically
// resolved callees (*types.Func) propagate facts — calls through interface
// methods or function values contribute nothing — and function literals and
// go statements are excluded from a function's own behaviour (a spawned
// goroutine blocking does not block its spawner).
type FactSet struct {
	funcs map[*types.Func]*funcFacts
}

// funcFacts is what ComputeFacts knows about one function.
type funcFacts struct {
	// blocksPrimitive marks a body that itself contains a blocking operation:
	// a channel send/receive, a select with no default, a range over a
	// channel, a call into net/http, or an (*os.File).Sync.
	blocksPrimitive bool
	// derivesSeedPrimitive marks a SplitMix64-style mixer by name.
	derivesSeedPrimitive bool
	// optionsFields are the core.Options fields the body reads off its
	// core.Options parameter (empty when the function has no such parameter).
	optionsFields map[string]bool
	// optionsDelegates are callees the core.Options parameter is forwarded
	// to whole; their field coverage counts as this function's.
	optionsDelegates []*types.Func
	// callees are the statically resolved calls the body makes (function
	// literals and go statements excluded), for transitive propagation.
	callees []*types.Func

	// resolved memoization for the transitive queries.
	blocksResolved, blocksValue           bool
	derivesResolved, derivesValue         bool
	coverageResolved                      bool
	coverageValue                         map[string]bool
	blocksVisiting, derivesVisiting, coverageVisiting bool
}

// ComputeFacts collects function facts across all loaded packages.
func ComputeFacts(pkgs []*Package) *FactSet {
	fs := &FactSet{funcs: make(map[*types.Func]*funcFacts)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fs.funcs[obj] = collectFuncFacts(pkg.Info, fd)
			}
		}
	}
	return fs
}

// collectFuncFacts gathers one function's primitive facts and call edges.
func collectFuncFacts(info *types.Info, fd *ast.FuncDecl) *funcFacts {
	ff := &funcFacts{optionsFields: make(map[string]bool)}
	if strings.Contains(strings.ToLower(fd.Name.Name), "splitmix") {
		ff.derivesSeedPrimitive = true
	}
	param := optionsParam(info, fd)
	walkOwnCode(fd.Body, func(n ast.Node) {
		if isBlockingOp(info, n) {
			ff.blocksPrimitive = true
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if param != nil && info.Uses[identOf(n.X)] == param {
				ff.optionsFields[n.Sel.Name] = true
			}
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			if callee == nil {
				return
			}
			ff.callees = append(ff.callees, callee)
			if param != nil {
				for _, arg := range n.Args {
					if info.Uses[identOf(arg)] == param {
						ff.optionsDelegates = append(ff.optionsDelegates, callee)
					}
				}
			}
		}
	})
	return ff
}

// walkOwnCode visits the nodes that execute on the function's own goroutine
// as part of its own activation: function literals (which may run later, or
// never) and go statements (which run elsewhere) are skipped. Select
// statements are visited as a unit — their communication guards belong to
// the select (which blocks exactly when it has no default clause), so the
// guards are never visited as standalone channel operations; the clause
// bodies run inline and are walked normally.
func walkOwnCode(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			visit(n)
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, stmt := range cc.Body {
					walkOwnCode(stmt, visit)
				}
			}
			return false
		}
		visit(n)
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isBlockingOp reports whether the node is one of the recognised blocking
// primitives: channel send/receive, a select with no default, a range over a
// channel, a call into net/http, or a file fsync.
func isBlockingOp(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			return true
		}
	case *ast.SelectStmt:
		return !selectHasDefault(n)
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	case *ast.CallExpr:
		callee := calleeFunc(info, n)
		if callee == nil {
			return false
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "net/http" {
			return true
		}
		if isFileSync(callee) {
			return true
		}
	}
	return false
}

// blockingOpKind names the blocking primitive for diagnostics; empty when
// the node is not one.
func blockingOpKind(info *types.Info, n ast.Node) string {
	if !isBlockingOp(info, n) {
		return ""
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		return "a channel send"
	case *ast.UnaryExpr:
		return "a channel receive"
	case *ast.SelectStmt:
		return "a select with no default"
	case *ast.RangeStmt:
		return "a range over a channel"
	case *ast.CallExpr:
		callee := calleeFunc(info, n)
		if callee != nil && isFileSync(callee) {
			return "a file fsync (" + callee.Name() + ")"
		}
		if callee != nil {
			return "a net/http call (" + callee.Name() + ")"
		}
	}
	return "a blocking operation"
}

// isFileSync reports an (*os.File).Sync method object.
func isFileSync(fn *types.Func) bool {
	if fn.Name() != "Sync" || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// calleeFunc statically resolves a call's target function or method; nil for
// function values, interface dispatch the checker cannot pin, conversions
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// optionsParam returns the function's first parameter of type core.Options
// (or *core.Options), nil when there is none.
func optionsParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isCoreOptions(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// isCoreOptions reports the search core's Options struct (the fixture trees
// impersonate the same tycos/internal/core import path).
func isCoreOptions(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Options" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// Blocks reports whether the function, or anything it statically calls,
// performs a blocking operation before returning.
func (fs *FactSet) Blocks(fn *types.Func) bool {
	ff := fs.funcs[fn]
	if ff == nil {
		return false
	}
	if ff.blocksResolved {
		return ff.blocksValue
	}
	if ff.blocksVisiting {
		return false // recursion: the cycle alone cannot introduce blocking
	}
	ff.blocksVisiting = true
	v := ff.blocksPrimitive
	for _, c := range ff.callees {
		if v {
			break
		}
		v = fs.Blocks(c)
	}
	ff.blocksVisiting = false
	ff.blocksResolved, ff.blocksValue = true, v
	return v
}

// DerivesSeed reports whether the function's value is produced through the
// SplitMix64 derivation idiom (the function is a mixer, or calls one).
func (fs *FactSet) DerivesSeed(fn *types.Func) bool {
	ff := fs.funcs[fn]
	if ff == nil {
		return false
	}
	if ff.derivesResolved {
		return ff.derivesValue
	}
	if ff.derivesVisiting {
		return false
	}
	ff.derivesVisiting = true
	v := ff.derivesSeedPrimitive
	for _, c := range ff.callees {
		if v {
			break
		}
		v = fs.DerivesSeed(c)
	}
	ff.derivesVisiting = false
	ff.derivesResolved, ff.derivesValue = true, v
	return v
}

// OptionsCoverage returns the set of core.Options field names the function
// feeds into its output, directly or through helpers it forwards the whole
// Options value to. Nil when the function is unknown.
func (fs *FactSet) OptionsCoverage(fn *types.Func) map[string]bool {
	ff := fs.funcs[fn]
	if ff == nil {
		return nil
	}
	if ff.coverageResolved {
		return ff.coverageValue
	}
	if ff.coverageVisiting {
		return ff.optionsFields
	}
	ff.coverageVisiting = true
	covered := make(map[string]bool, len(ff.optionsFields))
	for f := range ff.optionsFields {
		covered[f] = true
	}
	for _, d := range ff.optionsDelegates {
		for f := range fs.OptionsCoverage(d) {
			covered[f] = true
		}
	}
	ff.coverageVisiting = false
	ff.coverageResolved, ff.coverageValue = true, covered
	return covered
}
