package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// mutexspanScope lists the packages where a mutex held across a blocking
// operation is a liveness bug waiting for load: the daemon serves admission,
// drain and telemetry under its locks, and the discovery engine coordinates
// shard workers under its progress lock. internal/checkpoint is deliberately
// out of scope — the Journal holds its mutex across Write+Sync by design;
// that serialisation IS its durability contract.
var mutexspanScope = map[string]bool{
	"tycos/internal/daemon":    true,
	"tycos/internal/discovery": true,
}

// MutexSpan flags blocking operations — channel sends/receives, selects with
// no default, net/http calls, file fsyncs, and calls to functions the fact
// store knows to block — executed while a sync.Mutex or sync.RWMutex is
// held. A blocked lock holder stalls every contender: one slow fsync under
// the admission lock and no request is admitted or drained until it returns.
// The analysis is per-statement-list: a span opens at x.Lock()/x.RLock() and
// closes at the matching unlock on the same receiver expression (a deferred
// unlock extends the span to the end of the enclosing block).
var MutexSpan = &Analyzer{
	Name: "mutexspan",
	Doc: "no blocking operations (channel ops, selects without default, " +
		"net/http, fsync, or calls that do any of these) while a mutex is held " +
		"in the daemon and discovery packages",
	Run: runMutexSpan,
}

func runMutexSpan(pass *Pass) {
	if !mutexspanScope[pass.Pkg.ImportPath] {
		return
	}
	info := pass.Pkg.Info
	pass.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			if block, ok := n.(*ast.BlockStmt); ok {
				scanLockSpans(pass, info, block.List)
			}
			return true
		})
	})
}

// lockCall recognises a mutex lock or unlock statement and returns the
// rendered receiver expression (e.g. "s.admitMu") plus whether it acquires.
func lockCall(info *types.Info, stmt ast.Stmt) (recv string, acquire, release bool) {
	expr, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false, false
	}
	return lockExpr(info, expr.X)
}

func lockExpr(info *types.Info, e ast.Expr) (recv string, acquire, release bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, false
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// deferredUnlock recognises `defer x.Unlock()` / `defer x.RUnlock()`.
func deferredUnlock(info *types.Info, stmt ast.Stmt) (string, bool) {
	def, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return "", false
	}
	recv, _, release := lockExpr(info, def.Call)
	return recv, release
}

// scanLockSpans walks one statement list, tracking which mutexes are held at
// each statement and reporting blocking operations inside a held span. Locks
// whose unlock the linear scan cannot see (conditional unlocks, unlocks in
// nested blocks) close the span pessimistically at the point of uncertainty
// rather than flag everything after it.
func scanLockSpans(pass *Pass, info *types.Info, stmts []ast.Stmt) {
	held := make(map[string]bool)
	for _, stmt := range stmts {
		if recv, acquire, release := lockCall(info, stmt); acquire {
			held[recv] = true
			continue
		} else if release {
			delete(held, recv)
			continue
		}
		if _, ok := deferredUnlock(info, stmt); ok {
			// Deferred unlock: the span runs to the end of this block, so the
			// mutex stays in held and the remaining statements are scanned.
			continue
		}
		if len(held) == 0 {
			continue
		}
		reportBlockingIn(pass, info, stmt, held)
	}
}

// reportBlockingIn flags every blocking operation inside stmt while the held
// mutexes are locked. Nested statement lists are scanned here too (their own
// Lock/Unlock pairs are handled by the per-block scan; a nested unlock of an
// outer mutex is rare enough that we accept the conservative span).
func reportBlockingIn(pass *Pass, info *types.Info, stmt ast.Stmt, held map[string]bool) {
	names := heldNames(held)
	walkOwnCode(stmt, func(n ast.Node) {
		kind := blockingOpKind(info, n)
		if kind == "" {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && pass.Facts.Blocks(fn) {
					pass.Report(n.Pos(),
						"call to %s blocks (channel op, net/http, or fsync in its call tree) while %s is held; a stalled holder blocks every contender",
						fn.Name(), names)
				}
			}
			return
		}
		// An unlock inside the walked subtree is not a blocking op; skip the
		// call so `if cond { mu.Unlock() }` does not read as a finding.
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, release := lockExpr(info, call); release {
				return
			}
		}
		pass.Report(n.Pos(), "%s while %s is held; a stalled holder blocks every contender", kind, names)
	})
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for name := range held {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 1 {
		return "mutex " + names[0]
	}
	return "mutexes " + strings.Join(names, ", ")
}
