package lint

import (
	"go/ast"
)

// GoPanic enforces the fault-isolation invariant: a panic on a goroutine
// that nothing recovers kills the whole process, which voids the sweep's
// per-pair isolation and the restart workers' repanic contract. Every go
// statement must therefore spawn a function literal that visibly recovers
// (directly or through a deferred closure); goroutines that route panics
// elsewhere by construction carry an allow directive naming that path.
var GoPanic = &Analyzer{
	Name: "gopanic",
	Doc: "every go statement must spawn a function literal containing a " +
		"recover, or carry an allow directive naming its repanic path",
	Run: runGoPanic,
}

func runGoPanic(pass *Pass) {
	pass.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				pass.Report(gs.Pos(), "go statement calls a named function; use a function literal with a deferred recover so panic isolation is visible at the spawn site")
				return true
			}
			if !containsRecover(lit.Body) {
				pass.Report(gs.Pos(), "goroutine has no recover; an escaped panic kills the process and voids per-pair fault isolation")
			}
			return true
		})
	})
}

// containsRecover reports whether the block calls recover() anywhere,
// including inside deferred closures.
func containsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
			found = true
		}
		return true
	})
	return found
}
