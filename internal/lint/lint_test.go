package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantPattern extracts expected-diagnostic annotations from fixture comments.
// A comment containing `want "substring"` on (or trailing) a line declares
// that an analyzer must report a diagnostic on that line whose message
// contains the substring. Multiple want markers may share a comment.
var wantPattern = regexp.MustCompile(`want "([^"]+)"`)

type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

func collectWants(pkgs []*Package) []*want {
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantPattern.FindAllStringSubmatch(c.Text, -1) {
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, substr: m[1]})
					}
				}
			}
		}
	}
	return wants
}

// runFixture loads one testdata fixture tree, runs the given analyzers, and
// checks the diagnostics against the fixture's want annotations exactly: every
// diagnostic must match a want on its line, and every want must be matched.
func runFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	loader := &Loader{Root: "../.."}
	pkgs, err := loader.Load("internal/lint/testdata/" + fixture + "/...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", fixture)
	}
	wants := collectWants(pkgs)
	diags := Run(pkgs, analyzers)

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		rules   string // "" = full suite
	}{
		{"nodeterm", "nodeterm"},
		{"floateq", "floateq"},
		{"ctxflow", "ctxflow"},
		{"gopanic", "gopanic"},
		{"stdlibonly", "stdlibonly"},
		{"fingerprintcov", "fingerprintcov"},
		{"errdrop", "errdrop"},
		{"mutexspan", "mutexspan"},
		{"seedflow", "seedflow"},
		{"directive", ""},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			analyzers, err := ByName(tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			runFixture(t, tc.fixture, analyzers)
		})
	}
}

// TestRepoLintsClean is the acceptance gate: the live tree must produce zero
// diagnostics under the full analyzer suite. Any new finding is either a real
// invariant violation to fix or needs an explicit //lint:allow with a reason.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader := &Loader{Root: "../.."}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %s", d)
	}
}

// TestModernSyntax proves the go/parser + go/types source-importer path
// handles post-framework language features — generics, min/max builtins, and
// Go 1.22 range-over-int with per-iteration loop variables — without load
// errors or false findings. The fixture carries no want annotations, so
// runFixture doubles as a zero-diagnostics assertion over the full suite.
func TestModernSyntax(t *testing.T) {
	runFixture(t, "modern", Analyzers())
}

// TestCollectAllows pins the -allows audit listing: every well-formed
// directive in a fixture tree is surfaced with position, rule and reason.
func TestCollectAllows(t *testing.T) {
	loader := &Loader{Root: "../.."}
	pkgs, err := loader.Load("internal/lint/testdata/seedflow/...")
	if err != nil {
		t.Fatal(err)
	}
	allows := CollectAllows(pkgs)
	if len(allows) != 1 {
		t.Fatalf("CollectAllows = %d entries, want 1: %v", len(allows), allows)
	}
	a := allows[0]
	if a.Rule != "seedflow" || !strings.Contains(a.Reason, "domain offset") {
		t.Fatalf("CollectAllows[0] = %+v", a)
	}
	if !strings.Contains(a.String(), "fixture.go") || !strings.Contains(a.String(), "[seedflow]") {
		t.Fatalf("Allow.String() = %q", a.String())
	}
}

// TestByName covers subset selection and unknown-rule errors.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	two, err := ByName("nodeterm, gopanic")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "nodeterm" || two[1].Name != "gopanic" {
		t.Fatalf("ByName subset = %v", two)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName accepted an unknown rule")
	}
}

// TestDiagnosticString pins the rendered diagnostic format that CI greps rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "nodeterm", Message: "call to time.Now"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 7
	got := d.String()
	if got != "a/b.go:7: [nodeterm] call to time.Now" {
		t.Fatalf("Diagnostic.String() = %q", got)
	}
	if fmt.Sprint(d) != got {
		t.Fatalf("fmt.Sprint disagrees with String: %q", fmt.Sprint(d))
	}
}
