package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floateqExempt lists packages allowed to compare floats exactly:
// internal/mathx owns the tolerant comparators and the special-function
// code whose pole/reflection tests are exact by definition.
var floateqExempt = map[string]bool{
	"tycos/internal/mathx": true,
}

// FloatEq forbids raw == / != between floating-point (or complex) operands
// outside internal/mathx. Scores, MI estimates and normalized values travel
// through enough arithmetic that exact equality is almost always a latent
// bug; mathx.AlmostEqual states the tolerance explicitly. Genuinely exact
// comparisons — sentinel zeros, bit-pattern membership in a multiset —
// carry allow directives saying why exactness is correct.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "forbid raw float ==/!= outside internal/mathx; use " +
		"mathx.AlmostEqual or allowlist a genuinely exact comparison",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	if floateqExempt[pass.Pkg.ImportPath] {
		return
	}
	info := pass.Pkg.Info
	pass.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			// A comparison the compiler folds to a constant cannot misfire
			// at run time.
			if tv, ok := info.Types[be]; ok && tv.Value != nil {
				return true
			}
			if isFloatOperand(info, be.X) || isFloatOperand(info, be.Y) {
				pass.Report(be.Pos(), "raw float %s comparison; use mathx.AlmostEqual (or allowlist if exactness is intended)", be.Op)
			}
			return true
		})
	})
}

// isFloatOperand reports whether the expression's type is (or contains, for
// complex numbers) a floating-point value.
func isFloatOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
