package lint

import (
	"go/ast"
	"go/types"
)

// ctxflowScope limits the analyzer to the packages carrying a cancellation
// contract: the search core (SearchContext promises a cancelled context
// stops the search at the next restart or climb-iteration boundary) and the
// discovery engine (Discover promises a stop at the next candidate
// boundary). Both are only true if every loop that scores windows — or
// dispatches candidate work — also consults a stop signal.
var ctxflowScope = map[string]bool{
	"tycos/internal/core":      true,
	"tycos/internal/discovery": true,
}

// scorerCalls are the method names through which the search evaluates
// windows, plus the discovery scheduler's per-candidate dispatch names. A
// loop that invokes one of these is a climb (or enumeration, or scheduling)
// loop and must be interruptible.
var scorerCalls = map[string]bool{
	"score":      true,
	"mustScore":  true,
	"finalScore": true,
	// Discovery: the shard scheduler's dispatch ("work" is the func-value
	// name runShards fans out) and the per-candidate stages it points at.
	"work":            true,
	"searchCandidate": true,
	"screenCandidate": true,
}

// stopCalls are the recognised stop checks: the searcher's budget/context
// gate, or direct context-method use.
var stopCalls = map[string]bool{
	"checkStop": true,
	"Done":      true,
	"Err":       true,
}

// CtxFlow enforces the cancellation contract in internal/core with two
// checks: an exported function that accepts a context.Context must actually
// use it (a dropped ctx parameter silently breaks SearchContext's promise),
// and every loop that calls the scorer must contain a stop check —
// checkStop, ctx.Done or ctx.Err — among its direct statements. Inner loops
// that are deliberately checked only at their enclosing iteration boundary
// (bounded neighbourhood scans) carry allow directives explaining the bound.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "exported entry points taking a context must use it, and every " +
		"scorer-calling loop in internal/core must contain a stop check",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if !ctxflowScope[pass.Pkg.ImportPath] {
		return
	}
	info := pass.Pkg.Info
	pass.walkFiles(func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.IsExported() {
				checkCtxUsed(pass, info, fd)
			}
			checkLoops(pass, fd.Body)
		}
	})
}

// checkCtxUsed reports an exported function whose context.Context parameter
// is never read in its body.
func checkCtxUsed(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Report(name.Pos(), "exported %s discards its context.Context parameter; thread it into the search loops", fd.Name.Name)
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if !objUsed(info, fd.Body, obj) {
				pass.Report(name.Pos(), "exported %s never uses its context.Context parameter %s; thread it into the search loops", fd.Name.Name, name.Name)
			}
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func objUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

// checkLoops walks every for/range statement in the body and reports loops
// whose direct statements call the scorer without also containing a stop
// check. "Direct" excludes nested loops and function literals: a nested
// loop is its own climb boundary and is judged on its own.
func checkLoops(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		hasScorer, hasStop := scanLoopBody(loopBody)
		if hasScorer && !hasStop {
			pass.Report(n.Pos(), "loop calls the scorer but contains no stop check (checkStop / ctx.Done / ctx.Err); cancellation cannot interrupt it")
		}
		return true
	})
}

// scanLoopBody classifies the calls among a loop body's direct statements.
func scanLoopBody(body *ast.BlockStmt) (hasScorer, hasStop bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // nested loops and closures are judged separately
		case *ast.CallExpr:
			name := calleeName(n)
			if scorerCalls[name] {
				hasScorer = true
			}
			if stopCalls[name] {
				hasStop = true
			}
		case *ast.UnaryExpr:
			// <-ctx.Done() appears as a receive; the Done call beneath it is
			// caught by the CallExpr case, so nothing extra is needed here.
		}
		return true
	})
	return hasScorer, hasStop
}

// calleeName extracts the bare name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
