package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The drivers are exercised end-to-end by cmd/benchgen and the root
// benchmarks; the tests here verify structure and the cheap invariants on
// minimal workloads.

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "bee"}}
	tb.Append(1, 2.5)
	tb.Append("hello, world", "q\"q")
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# x — demo") || !strings.Contains(out, "2.500") {
		t.Errorf("render output:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"hello, world"`) || !strings.Contains(csv, `"q""q"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,bee\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).seed() != 1 {
		t.Error("zero seed must default to 1")
	}
	if (Config{Seed: 9}).seed() != 9 {
		t.Error("explicit seed lost")
	}
	var buf bytes.Buffer
	cfg := Config{Log: &buf}
	cfg.logf("hi %d", 3)
	if buf.String() != "hi 3\n" {
		t.Errorf("logf output %q", buf.String())
	}
	// A nil log must not panic.
	Config{}.logf("ignored")
	if mark(true) != "yes" || mark(false) != "no" {
		t.Error("mark labels wrong")
	}
}

func TestTable2Static(t *testing.T) {
	tb := Table2(Config{})
	if len(tb.Rows) != 6 || len(tb.Header) != 3 {
		t.Errorf("table2 shape: %d rows, %d cols", len(tb.Rows), len(tb.Header))
	}
}

func TestFig4And6Shapes(t *testing.T) {
	f4 := Fig4(Config{Quick: true})
	if len(f4.Rows) < 10 {
		t.Errorf("fig4 rows = %d", len(f4.Rows))
	}
	f6 := Fig6(Config{Quick: true})
	if len(f6.Rows) < 5 {
		t.Errorf("fig6 rows = %d", len(f6.Rows))
	}
	// Fig 6's point: the prefix-free curve should dominate on average.
	var incl, excl float64
	for _, r := range f6.Rows {
		var a, b float64
		if _, err := sscan(r[1], &a); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[2], &b); err != nil {
			t.Fatal(err)
		}
		incl += a
		excl += b
	}
	if excl <= incl {
		t.Errorf("excluding the noisy prefix should raise MI: incl=%.3f excl=%.3f", incl, excl)
	}
}

func TestFig13CConvergence(t *testing.T) {
	tb := Fig13C(Config{Quick: true})
	if len(tb.Rows) < 3 {
		t.Fatalf("fig13c rows = %d", len(tb.Rows))
	}
	// With td_max = 0 the delayed snow→collision coupling is invisible or
	// weaker than with a covering bound; window counts must not explode as
	// td_max grows past the injected delay.
	var counts []float64
	for _, r := range tb.Rows {
		var c float64
		if _, err := sscan(r[1], &c); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, c)
	}
	last := counts[len(counts)-1]
	prev := counts[len(counts)-2]
	if last != 0 && prev != 0 {
		ratio := last / prev
		if ratio > 3 || ratio < 1.0/3 {
			t.Errorf("window count should stabilise for covering td_max: %v", counts)
		}
	}
}

// sscan parses a single float from s.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestFormatMinutes(t *testing.T) {
	if formatMinutes(30) != "30m" {
		t.Errorf("30 → %q", formatMinutes(30))
	}
	if formatMinutes(90) != "1.5h" {
		t.Errorf("90 → %q", formatMinutes(90))
	}
	if formatMinutes(0) != "0m" {
		t.Errorf("0 → %q", formatMinutes(0))
	}
}

func TestFig13BQuickShape(t *testing.T) {
	tb := Fig13B(Config{Quick: true})
	if len(tb.Rows) < 2 {
		t.Fatalf("fig13b rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != 3 {
			t.Errorf("row shape: %v", r)
		}
	}
}
